//! Shared helpers for the workspace integration tests.
#![allow(dead_code)] // each test binary uses a different subset

#[allow(unused_imports)] // each test binary uses a different subset
pub use hcm::harness::rule_set_of;

/// A fresh relational employees database with one row per `(id, value)`.
#[must_use]
pub fn employees_db(rows: &[(&str, i64)]) -> hcm::ris::relational::Database {
    let mut db = hcm::ris::relational::Database::new();
    db.create_table("employees", &["empid", "salary"]).unwrap();
    for (id, v) in rows {
        db.execute(&format!("INSERT INTO employees VALUES ('{id}', {v})"))
            .unwrap();
    }
    db
}

/// CM-RID for a relational source offering notify + read on
/// `salary1(n)` (the paper's site A).
pub const RID_SRC: &str = r#"
ris = relational
service = 200ms
[interface]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

/// CM-RID for a relational source offering write (+ no-spontaneous-
/// write) on `salary2(n)` (the paper's site B).
pub const RID_DST: &str = r#"
ris = relational
service = 200ms
[interface]
WR(salary2(n), b) -> W(salary2(n), b) within 1s
Ws(salary2(n), b) -> false
[command write salary2]
update employees set salary = $value where empid = $p0
[command insert salary2]
insert into employees values ($p0, $value)
[command read salary2]
select salary from employees where empid = $p0
[map salary2]
table = employees
key = empid
col = salary
"#;
