//! E8 — CM-private data and the cached-propagation strategy (§3.2).
//!
//! The paper's sequenced-RHS example: cache the last-seen value of `X`
//! in the CM-private item `Cx` and forward a write request only when
//! the value actually changed —
//!
//! ```text
//! N(X, b) -> if Cx != b then WR(Y, b) ; W(Cx, b) within 5s
//! ```
//!
//! Under a duplicate-heavy workload this cuts the write-request traffic
//! without weakening the copy guarantees.

mod common;

use common::{employees_db, rule_set_of, RID_DST, RID_SRC};
use hcm::checker::{check_validity, guarantee::check_guarantee};
use hcm::core::{ItemId, SimTime, Value};
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};

const NAIVE: &str = r#"
[locate]
salary1 = A
salary2 = B
[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

// The cache is keyed per employee: Cx(n). It lives at the *RHS* site's
// shell — step conditions are evaluated "at the site of the right-hand
// side event" (§3.2), so the cache and the write request share site B.
const CACHED: &str = r#"
[locate]
salary1 = A
salary2 = B
[private]
Cx = B
[strategy]
N(salary1(n), b) -> if Cx(n) != b then WR(salary2(n), b) ; W(Cx(n), b) within 5s
"#;

/// Duplicate-heavy workload: the application rewrites the same salary
/// repeatedly (e.g. a nightly HR batch that touches every row).
fn run(strategy: &str, seed: u64) -> Scenario {
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(strategy)
        .private_data(
            "B",
            ItemId::with("Cx", [Value::from("e1")]),
            Value::Int(90_000),
        )
        .build()
        .unwrap();
    let values = [
        95_000, 95_000, 95_000, 96_000, 96_000, 97_000, 97_000, 97_000,
    ];
    for (i, v) in values.iter().enumerate() {
        sc.inject(
            SimTime::from_secs(10 + 10 * i as u64),
            "A",
            SpontaneousOp::Sql(format!(
                "update employees set salary = {v} where empid = 'e1'"
            )),
        );
    }
    sc.run_to_quiescence();
    sc
}

#[test]
fn caching_cuts_write_requests_without_losing_guarantees() {
    let naive = run(NAIVE, 1);
    let cached = run(CACHED, 1);

    let naive_wr = naive.trace().tag_counts().get("WR").copied().unwrap_or(0);
    let cached_wr = cached.trace().tag_counts().get("WR").copied().unwrap_or(0);
    // Workload: 8 updates, only 3 distinct transitions (95k, 96k, 97k);
    // note the duplicate *SQL updates* of an unchanged value do not
    // even reach the CM (the trigger reports no change), so the naive
    // strategy sees 3 notifications too — build a harsher case by
    // alternation below. Here duplicates collapse at the source:
    assert_eq!(naive_wr, 3);
    assert_eq!(cached_wr, 3);

    // Harsher: notifications that *do* repeat values (A ping-pongs
    // between two employers' feeds writing the same value again after
    // a real change elsewhere is not expressible with one item — use
    // value alternation with repeats carried by actual changes).
    let naive2 = run_alternating(NAIVE, 2);
    let cached2 = run_alternating(CACHED, 2);
    let n_wr = naive2.trace().tag_counts().get("WR").copied().unwrap_or(0);
    let c_wr = cached2.trace().tag_counts().get("WR").copied().unwrap_or(0);
    assert!(c_wr <= n_wr);

    // Guarantees: follows holds for both.
    for sc in [&naive2, &cached2] {
        let g = hcm::rulelang::parse_guarantee(
            "follows",
            "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
        )
        .unwrap();
        let trace = sc.trace();
        let r = check_guarantee(&trace, &g, None);
        assert!(r.holds, "{:#?}", r.violations);
    }
}

/// Updates where consecutive *changes* sometimes return to the cached
/// value — the case the conditional forwarding actually optimizes when
/// the cache is intentionally only refreshed on forwarded values.
fn run_alternating(strategy: &str, seed: u64) -> Scenario {
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(strategy)
        .private_data(
            "B",
            ItemId::with("Cx", [Value::from("e1")]),
            Value::Int(90_000),
        )
        .build()
        .unwrap();
    for (i, v) in [95_000, 90_000, 95_000, 90_000, 95_000].iter().enumerate() {
        sc.inject(
            SimTime::from_secs(10 + 10 * i as u64),
            "A",
            SpontaneousOp::Sql(format!(
                "update employees set salary = {v} where empid = 'e1'"
            )),
        );
    }
    sc.run_to_quiescence();
    sc
}

#[test]
fn cached_trace_is_still_a_valid_execution() {
    let sc = run(CACHED, 3);
    let trace = sc.trace();
    let report = check_validity(&trace, &rule_set_of(&sc));
    assert!(report.is_valid(), "{:#?}", report.violations);
    // The cache item's writes are part of the trace (W events on Cx).
    let w_count = trace.tag_counts().get("W").copied().unwrap_or(0);
    assert!(
        w_count >= 6,
        "3 remote writes + 3 cache updates, got {w_count}"
    );
}

#[test]
fn step_order_matters_cache_updated_after_comparison() {
    // The §3.2 subtlety: "this rule must fire before the previous one"
    // — the comparison step precedes the cache refresh. If the engine
    // refreshed the cache first, no write request would ever be sent.
    let sc = run(CACHED, 4);
    let wr = sc.trace().tag_counts().get("WR").copied().unwrap_or(0);
    assert!(
        wr > 0,
        "cache-then-compare ordering bug: no writes forwarded"
    );
    // And the suppressed duplicates are visible in the shell stats.
    let skipped = sc.site("A").shell_stats.borrow().steps_skipped;
    let fired =
        sc.site("B").shell_stats.borrow().firings + sc.site("A").shell_stats.borrow().firings;
    assert!(fired > 0);
    let _ = skipped; // may be zero when the source deduplicates
}
