//! E16 — durable state and crash recovery (§5).
//!
//! The paper's crash taxonomy turns on memory: "crashes can be mapped
//! to metric failures if the database … can remember messages". This
//! experiment runs the same lossy-crash schedule under the three
//! durability regimes and shows the promotion/demotion:
//!
//! * `Durability::LoseState` — a lossy translator crash destroys an
//!   accepted-but-unperformed write: the obligation is gone, the
//!   failure escalates to *logical*, and only a reset restores
//!   guarantees.
//! * `Durability::Durable` — the same crash schedule, but the
//!   translator write-ahead-logged the accepted write; recovery
//!   replays it, the write lands late, and the failure stays *metric*
//!   (detected, then cleared) — delayed, never lost.
//! * Shells recover their CM-private data and guarantee registry
//!   byte-for-byte from checkpoint + log suffix.
//!
//! `Durability::MessageOnly` (the default) is the historical behaviour
//! exercised by E7 and stays bit-for-bit unchanged.

mod common;

use common::{employees_db, rule_set_of, RID_SRC};
use hcm::checker::{check_validity, guarantee::check_guarantee};
use hcm::core::{ItemId, SimDuration, SimTime, Value};
use hcm::obs::Scope;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::durability::shell_state_blob;
use hcm::toolkit::shell::FailureConfig;
use hcm::toolkit::{
    Durability, GuaranteeStatus, Scenario, ScenarioBuilder, SpontaneousOp, StoreKind, StoreSetup,
};

/// Site B with a deliberately slow database (2s service time) so a
/// crash can land inside the accept-to-perform window of a write.
const RID_DST_SLOW: &str = r#"
ris = relational
service = 2s
[interface]
WR(salary2(n), b) -> W(salary2(n), b) within 10s
Ws(salary2(n), b) -> false
[command write salary2]
update employees set salary = $value where empid = $p0
[command insert salary2]
insert into employees values ($p0, $value)
[command read salary2]
select salary from employees where empid = $p0
[map salary2]
table = employees
key = empid
col = salary
"#;

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s

[guarantee follows]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1

[guarantee follows_metric]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t1 - 10s < t2 and t2 <= t1
"#;

fn build(seed: u64, durability: Durability) -> Scenario {
    ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_DST_SLOW,
        )
        .unwrap()
        .strategy(STRATEGY)
        .failure_config(FailureConfig {
            deadline: SimDuration::from_secs(5),
            escalation: SimDuration::from_secs(30),
            heartbeat: None,
        })
        .durability(durability)
        .build()
        .unwrap()
}

fn update(sc: &mut Scenario, t: u64, v: i64) {
    sc.inject(
        SimTime::from_secs(t),
        "A",
        SpontaneousOp::Sql(format!(
            "update employees set salary = {v} where empid = 'e1'"
        )),
    );
}

/// The crash schedule shared by the regime-comparison tests: the write
/// is accepted by B's slow translator around t≈40.2s and would be
/// performed at ≈42.2s; the lossy crash at 41s lands in between.
fn crash_schedule(sc: &mut Scenario) {
    update(sc, 40, 95_000);
    sc.crash("B", SimTime::from_secs(41), true);
    sc.recover("B", SimTime::from_secs(60));
}

fn salary2_at_end(sc: &Scenario) -> Option<Value> {
    let trace = sc.trace();
    let item = ItemId::with("salary2", [Value::from("e1")]);
    trace.value_at(&item, trace.end_time())
}

#[test]
fn durable_translator_demotes_lossy_crash_to_metric_failure() {
    let mut sc = build(16, Durability::Durable(StoreSetup::default()));
    crash_schedule(&mut sc);
    sc.run_to_quiescence();

    // The accepted write survived the crash and landed after recovery.
    assert_eq!(salary2_at_end(&sc), Some(Value::Int(95_000)));
    assert_eq!(
        sc.obs
            .metrics
            .counter(Scope::Site(1), "translator.writes_recovered"),
        1,
        "the pending write must come back from the log"
    );

    // §5 demotion: detected as metric (the deadline passed while B was
    // down), then cleared by the late response — never logical.
    let b = sc.site("B").shell_stats.borrow();
    assert_eq!(b.metric_failures_detected, 1);
    assert_eq!(b.logical_failures_detected, 0, "durable crash is metric");
    assert_eq!(b.failures_cleared, 1);
    assert_eq!(
        sc.site("B").registry.borrow().status("follows"),
        Some(GuaranteeStatus::Valid)
    );

    // Post-mortem: the non-metric guarantee verdict matches a
    // crash-free run (holds); the metric guarantee was genuinely
    // violated *during the outage* — that is what "demoted to a metric
    // failure" means on the trace.
    let trace = sc.trace();
    let follows = hcm::rulelang::parse_guarantee(
        "follows",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
    )
    .unwrap();
    assert!(check_guarantee(&trace, &follows, None).holds);
    let metric = hcm::rulelang::parse_guarantee(
        "follows_metric",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t1 - 10s < t2 and t2 <= t1",
    )
    .unwrap();
    assert!(
        !check_guarantee(&trace, &metric, None).holds,
        "the ~22s recovery delay must break the 10s κ bound"
    );

    // The store actually worked for a living.
    let t_scope = Scope::Actor(3); // translator B = actor n + 1 = 3
    assert!(sc.obs.metrics.counter(t_scope, "store.appends") > 0);
    assert_eq!(sc.obs.metrics.counter(t_scope, "store.recoveries"), 1);
    assert_eq!(sc.obs.metrics.counter(t_scope, "store.truncations"), 0);
}

#[test]
fn lossy_crash_without_store_loses_the_write_for_good() {
    let mut sc = build(16, Durability::LoseState);
    crash_schedule(&mut sc);
    sc.run_until(SimTime::from_secs(300));

    // The write vanished with the crash: salary2 is stale forever.
    assert_eq!(salary2_at_end(&sc), Some(Value::Int(90_000)));
    assert_eq!(
        sc.obs
            .metrics
            .counter(Scope::Site(1), "translator.writes_lost"),
        1
    );
    assert_eq!(
        sc.obs
            .metrics
            .counter(Scope::Site(1), "translator.writes_recovered"),
        0
    );

    // §5 promotion: never served, the metric failure escalates to
    // logical, voiding even non-metric guarantees until a reset.
    let b = sc.site("B").shell_stats.borrow();
    assert_eq!(b.metric_failures_detected, 1);
    assert_eq!(b.logical_failures_detected, 1, "lost state is logical");
    assert_eq!(
        sc.site("B").registry.borrow().status("follows"),
        Some(GuaranteeStatus::SuspendedLogical)
    );
    assert_eq!(
        sc.site("A").registry.borrow().status("follows"),
        Some(GuaranteeStatus::SuspendedLogical),
        "suspension propagates to every shell"
    );
}

/// The same schedule under the two regimes, side by side: identical
/// failure detection, opposite outcomes — that is the paper's demotion
/// claim in one assert.
#[test]
fn durability_is_the_only_difference_between_metric_and_logical() {
    let mut durable = build(17, Durability::Durable(StoreSetup::default()));
    let mut lossy = build(17, Durability::LoseState);
    for sc in [&mut durable, &mut lossy] {
        crash_schedule(sc);
        sc.run_until(SimTime::from_secs(300));
    }
    // Both detect the outage the same way…
    assert_eq!(
        durable
            .site("B")
            .shell_stats
            .borrow()
            .metric_failures_detected,
        lossy
            .site("B")
            .shell_stats
            .borrow()
            .metric_failures_detected,
    );
    // …but only the storeless run escalates and loses data.
    assert_eq!(
        durable
            .site("B")
            .shell_stats
            .borrow()
            .logical_failures_detected,
        0
    );
    assert_eq!(
        lossy
            .site("B")
            .shell_stats
            .borrow()
            .logical_failures_detected,
        1
    );
    assert_ne!(salary2_at_end(&durable), salary2_at_end(&lossy));
}

// ---------------------------------------------------------------------
// Shell-state recovery: CM-private data + guarantee registry.
// ---------------------------------------------------------------------

const CACHED: &str = r#"
[locate]
salary1 = A
salary2 = B
[private]
Cx = B
[strategy]
N(salary1(n), b) -> if Cx(n) != b then WR(salary2(n), b) ; W(Cx(n), b) within 5s

[guarantee follows]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1
"#;

fn build_cached(seed: u64, durability: Durability) -> Scenario {
    ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            common::RID_DST,
        )
        .unwrap()
        .strategy(CACHED)
        .private_data(
            "B",
            ItemId::with("Cx", [Value::from("e1")]),
            Value::Int(90_000),
        )
        .durability(durability)
        .build()
        .unwrap()
}

#[test]
fn durable_shell_recovers_byte_identical_state() {
    let setup = StoreSetup {
        checkpoint_every: 4, // small cadence: exercise checkpoint + suffix replay
        ..StoreSetup::default()
    };
    let mut sc = build_cached(18, Durability::Durable(setup));
    for (i, v) in [95_000, 96_000, 97_000].iter().enumerate() {
        update(&mut sc, 10 + 10 * i as u64, *v);
    }
    // Let the updates fully propagate, then snapshot the shell's
    // canonical durable-state encoding.
    sc.run_until(SimTime::from_secs(36));
    let before = shell_state_blob(&sc.site("B").private, &sc.site("B").registry);

    // Lossy shell crash: private data and registry are wiped…
    sc.crash_shell("B", SimTime::from_secs(37), true);
    sc.recover_shell("B", SimTime::from_secs(39));
    // …and rebuilt from checkpoint + log replay on recovery.
    sc.run_until(SimTime::from_secs(45));
    let after = shell_state_blob(&sc.site("B").private, &sc.site("B").registry);
    assert_eq!(before, after, "recovered state must be byte-identical");
    assert_eq!(
        sc.site("B")
            .private
            .borrow()
            .get(&ItemId::with("Cx", [Value::from("e1")])),
        Some(&Value::Int(97_000)),
        "and it is the real pre-crash state, not an empty one"
    );

    // The shell keeps working after recovery: one more update flows
    // through cache-compare-and-forward as if nothing happened.
    update(&mut sc, 50, 98_000);
    sc.run_to_quiescence();
    assert_eq!(salary2_at_end(&sc), Some(Value::Int(98_000)));
    assert_eq!(
        sc.site("B")
            .private
            .borrow()
            .get(&ItemId::with("Cx", [Value::from("e1")])),
        Some(&Value::Int(98_000))
    );

    // Post-mortem parity with a crash-free run: same validity verdict,
    // same guarantee verdict, same final data.
    let report = check_validity(&sc.trace(), &rule_set_of(&sc));
    assert!(report.is_valid(), "{:#?}", report.violations);
    let mut baseline = build_cached(18, Durability::MessageOnly);
    for (i, v) in [95_000, 96_000, 97_000].iter().enumerate() {
        update(&mut baseline, 10 + 10 * i as u64, *v);
    }
    update(&mut baseline, 50, 98_000);
    baseline.run_to_quiescence();
    let g = hcm::rulelang::parse_guarantee(
        "follows",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
    )
    .unwrap();
    assert_eq!(
        check_guarantee(&sc.trace(), &g, None).holds,
        check_guarantee(&baseline.trace(), &g, None).holds,
    );
    assert_eq!(salary2_at_end(&sc), salary2_at_end(&baseline));

    // Shell B (actor 1) exercised checkpoints, appends, and recovery.
    let scope = Scope::Actor(1);
    assert!(sc.obs.metrics.counter(scope, "store.appends") > 0);
    assert!(sc.obs.metrics.counter(scope, "store.checkpoints") >= 1);
    assert_eq!(sc.obs.metrics.counter(scope, "store.recoveries"), 1);
}

#[test]
fn shell_without_store_loses_private_state() {
    let mut sc = build_cached(19, Durability::LoseState);
    for (i, v) in [95_000, 96_000, 97_000].iter().enumerate() {
        update(&mut sc, 10 + 10 * i as u64, *v);
    }
    sc.run_until(SimTime::from_secs(36));
    sc.crash_shell("B", SimTime::from_secs(37), true);
    sc.recover_shell("B", SimTime::from_secs(39));
    sc.run_until(SimTime::from_secs(45));
    assert_eq!(
        sc.site("B")
            .private
            .borrow()
            .get(&ItemId::with("Cx", [Value::from("e1")])),
        None,
        "without a store the cache is simply gone"
    );
}

// ---------------------------------------------------------------------
// File-backed store: real segments on disk, CRC-checked end to end.
// ---------------------------------------------------------------------

#[test]
fn file_backed_store_recovers_across_the_same_schedule() {
    let dir = std::env::temp_dir().join(format!("hcm-e16-files-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let setup = StoreSetup {
        kind: StoreKind::File(dir.clone()),
        checkpoint_every: 2,
        segment_bytes: 256, // force rotation with tiny segments
    };
    let mut sc = build(20, Durability::Durable(setup));
    crash_schedule(&mut sc);
    sc.run_to_quiescence();

    // Same behaviour as the in-memory store…
    assert_eq!(salary2_at_end(&sc), Some(Value::Int(95_000)));
    assert_eq!(
        sc.site("B").shell_stats.borrow().logical_failures_detected,
        0
    );
    // …with real per-actor directories on disk.
    for sub in ["site0-shell", "site1-translator"] {
        assert!(dir.join(sub).is_dir(), "missing store dir {sub}");
    }
    let t_dir = dir.join("site1-translator");
    let files: Vec<_> = std::fs::read_dir(&t_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(
        files.iter().any(|f| f.starts_with("wal-")),
        "no WAL segments in {files:?}"
    );
    let t_scope = Scope::Actor(3);
    assert_eq!(sc.obs.metrics.counter(t_scope, "store.recoveries"), 1);
    assert_eq!(sc.obs.metrics.counter(t_scope, "store.truncations"), 0);

    let _ = std::fs::remove_dir_all(&dir);
}
