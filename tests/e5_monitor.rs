//! E5 — monitoring without enforcement (§6.3), integration level.
//!
//! Runs the monitor deployment (one CM-Shell serving a kv store and a
//! relational store, both notify-only) under randomized workloads and
//! checks the `(Flag ∧ Tb = s)@t ⇒ (X = Y)@@[s, t−κ]` guarantee on
//! every trace.

use hcm::checker::guarantee::check_guarantee;
use hcm::core::SimTime;
use hcm::protocols::monitor;
use hcm::simkit::SimRng;

#[test]
fn guarantee_holds_across_random_workloads() {
    for seed in 1..=5u64 {
        let mut m = monitor::build(seed, 100);
        let mut rng = SimRng::seeded(seed * 101);
        let mut t = 10u64;
        for _ in 0..20 {
            t += rng.int_in(5, 60) as u64;
            let v = rng.int_in(0, 3); // few values → frequent re-convergence
            if rng.chance(0.5) {
                m.write_x(SimTime::from_secs(t), v);
            } else {
                m.write_y(SimTime::from_secs(t), v);
            }
        }
        m.run();
        let trace = m.recorder.snapshot();
        let g = m.guarantee();
        let r = check_guarantee(&trace, &g, None);
        assert!(r.holds, "seed {seed}: {:#?}", r.violations);
    }
}

#[test]
fn flag_actually_transitions_under_divergence() {
    let mut m = monitor::build(9, 1);
    m.write_x(SimTime::from_secs(10), 2);
    m.write_y(SimTime::from_secs(30), 2);
    m.write_x(SimTime::from_secs(50), 3);
    m.write_y(SimTime::from_secs(70), 3);
    m.run();
    assert_eq!(
        *m.transitions.borrow(),
        4,
        "two divergences, two re-convergences"
    );
}

#[test]
fn kappa_smaller_than_notification_bound_fails() {
    // The κ in the guarantee must absorb the notify delay; κ = 0 is
    // refutable whenever a divergence occurs (checked in the protocols
    // unit tests); here: κ must also cover *both* interfaces' bounds —
    // halve it below the slower bound and a crossing workload breaks it.
    let mut m = monitor::build(10, 0);
    for i in 0..6 {
        m.write_x(SimTime::from_secs(10 + i * 20), (i % 2) as i64);
        m.write_y(SimTime::from_secs(20 + i * 20), (i % 2) as i64);
    }
    m.run();
    let trace = m.recorder.snapshot();
    let tight = hcm::rulelang::parse_guarantee(
        "monitor_tight",
        "(Flag = true and Tb = s) @ t => (X = Y) @@ [s, t - 50ms]",
    )
    .unwrap();
    assert!(
        !check_guarantee(&trace, &tight, None).holds,
        "κ = 50ms cannot hold"
    );
    let proper = m.guarantee();
    let r = check_guarantee(&trace, &proper, None);
    assert!(r.holds, "{:#?}", r.violations);
}
