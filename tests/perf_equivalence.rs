//! Perf-path equivalence — the optimized fast paths must be invisible.
//!
//! PR "fast paths everywhere" added (1) a deterministic parallel sweep
//! driver, (2) parallel guarantee checking, and (3) pruned salient
//! grids with memoized sub-formula evaluation inside the guarantee
//! checker. None of these may change a single observable byte. This
//! suite pins that down three ways:
//!
//! * parallel sweep vs serial sweep over real experiment cells (E1
//!   salary propagation, E3 demarcation) — byte-identical metrics
//!   snapshots and identical verdicts;
//! * `check_guarantees_parallel` vs per-guarantee serial
//!   `check_guarantee` — identical reports, including violation
//!   details;
//! * a regression pin for the PR 1 cross-atom-breakpoint bug: the
//!   component-pruned grids must keep breakpoints that only matter
//!   through a *different* atom sharing the time variables.

mod common;

use common::{employees_db, RID_DST, RID_SRC};
use hcm::checker::guarantee::{check_guarantee, check_guarantees_parallel};
use hcm::core::{EventDesc, ItemId, SimDuration, SimTime, SiteId, Trace, Value};
use hcm::protocols::demarcation::{self, DemarcConfig, GrantPolicy};
use hcm::rulelang::parse_guarantee;
use hcm::simkit::SimRng;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::shell::FailureConfig;
use hcm::toolkit::{
    DispatchMode, Durability, Scenario, ScenarioBuilder, SpontaneousOp, StoreSetup,
};
use hcm_bench::sweep;

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s

[guarantee follows]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1

[guarantee leads]
(salary1(n) = x) @ t1 => (salary2(n) = x) @ t2 and t2 >= t1
"#;

/// One E1-style cell: build, run, post-mortem. Returns everything an
/// experiment table would print — the full metrics snapshot (which
/// includes the checker's own counters) plus the guarantee verdicts —
/// as deterministic strings.
fn salary_cell(seed: &u64) -> (String, String) {
    let (metrics, _, verdicts) = salary_cell_mode(*seed, DispatchMode::default());
    (metrics, verdicts)
}

/// The full observable surface a dispatch mode must not perturb: the
/// metrics snapshot, the complete recorded trace, and the post-mortem
/// guarantee verdicts — all as deterministic strings.
fn observables(sc: &Scenario) -> (String, String, String) {
    let pm = hcm::harness::post_mortem(sc);
    let verdicts = pm
        .guarantees
        .iter()
        .map(|g| format!("{}:{}:{}", g.name, g.holds, g.instantiations))
        .collect::<Vec<_>>()
        .join(";");
    // The event list is the trace's observable content (its lookup
    // indices are HashMaps whose Debug order is unstable).
    let trace = sc.recorder.with(|t| format!("{:?}", t.events()));
    (sc.metrics_jsonl(), trace, verdicts)
}

fn salary_cell_mode(seed: u64, mode: DispatchMode) -> (String, String, String) {
    salary_cell_sharded(seed, mode, 1)
}

fn salary_cell_sharded(seed: u64, mode: DispatchMode, shards: u32) -> (String, String, String) {
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 100), ("e2", 250)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 100), ("e2", 250)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .dispatch_mode(mode)
        .shards(shards)
        .build()
        .unwrap();
    sc.inject(
        SimTime::from_secs(10 + seed % 7),
        "A",
        SpontaneousOp::Sql(format!(
            "update employees set salary = {} where empid = 'e1'",
            200 + seed
        )),
    );
    sc.run_to_quiescence();
    observables(&sc)
}

#[test]
fn parallel_sweep_matches_serial_on_salary_cells() {
    let seeds: &[u64] = &[3, 8, 11];
    let par = sweep::run(seeds, salary_cell);
    let ser = sweep::run_serial(seeds, salary_cell);
    assert_eq!(par, ser, "parallel sweep must be byte-identical to serial");
}

/// One E3 demarcation cell: a seeded workload under a grant policy.
fn demarc_cell(key: &(u64, GrantPolicy)) -> (String, bool) {
    let (seed, policy) = *key;
    let mut rng = SimRng::seeded(seed);
    let mut t = SimTime::from_secs(5);
    let ops: Vec<(SimTime, bool, i64)> = (0..12)
        .map(|_| {
            t += SimDuration::from_secs(rng.int_in(5, 40) as u64);
            (t, rng.chance(0.5), rng.int_in(1, 15))
        })
        .collect();
    let mut d = demarcation::build(DemarcConfig {
        seed,
        x0: 0,
        y0: 400,
        line: 200,
        policy,
    });
    for &(at, lower, delta) in &ops {
        d.try_update(at, lower, delta);
    }
    d.run();
    (d.scenario.metrics_jsonl(), d.invariant_held())
}

#[test]
fn parallel_sweep_matches_serial_on_demarcation_cells() {
    let keys: Vec<(u64, GrantPolicy)> = [1u64, 4, 9]
        .into_iter()
        .flat_map(|seed| {
            [
                (seed, GrantPolicy::Requested),
                (seed, GrantPolicy::All),
                (seed, GrantPolicy::HalfAvailable),
            ]
        })
        .collect();
    let par = sweep::run(&keys, demarc_cell);
    let ser = sweep::run_serial(&keys, demarc_cell);
    assert_eq!(par, ser);
    assert!(
        par.iter().all(|(_, held)| *held),
        "demarcation invariant must hold in every cell"
    );
}

fn write(tr: &mut Trace, t: u64, base: &str, v: i64) {
    let item = ItemId::plain(base);
    let old = tr.value_at(&item, SimTime::from_secs(t));
    tr.push(
        SimTime::from_secs(t),
        SiteId::new(0),
        EventDesc::Ws {
            item,
            old: old.clone(),
            new: Value::Int(v),
        },
        old,
        None,
        None,
    );
}

/// X=1 held only over [10s, 11s); Y reflects it 9s late.
fn lagged_trace() -> Trace {
    let mut tr = Trace::new();
    tr.set_initial(ItemId::plain("X"), Value::Int(0));
    tr.set_initial(ItemId::plain("Y"), Value::Int(0));
    write(&mut tr, 10, "X", 1);
    write(&mut tr, 11, "X", 2);
    write(&mut tr, 20, "Y", 1);
    tr
}

#[test]
fn parallel_guarantee_checking_matches_serial_reports() {
    let tr = lagged_trace();
    // A mix of holding and violated guarantees, checked both ways.
    let gs = vec![
        parse_guarantee(
            "narrow",
            "(Y = y) @ t1 => (X = y) @ t2 and t1 - 5s < t2 and t2 <= t1",
        )
        .unwrap(),
        parse_guarantee(
            "wide",
            "(Y = y) @ t1 => (X = y) @ t2 and t1 - 60s < t2 and t2 <= t1",
        )
        .unwrap(),
        parse_guarantee("exact", "(X = x) @ t1 => (X = x) @ t1").unwrap(),
    ];
    let par = check_guarantees_parallel(&tr, &gs, None);
    assert_eq!(par.len(), gs.len());
    for (g, p) in gs.iter().zip(&par) {
        let s = check_guarantee(&tr, g, None);
        assert_eq!(p.name, s.name);
        assert_eq!(p.holds, s.holds, "verdict differs for {}", g.name);
        assert_eq!(p.instantiations, s.instantiations);
        assert_eq!(
            format!("{:?}", p.violations),
            format!("{:?}", s.violations),
            "violation details differ for {}",
            g.name
        );
    }
    assert!(!par[0].holds, "κ = 5s must be violated on the lagged trace");
    assert!(par[1].holds);
    assert!(par[2].holds);
}

/// Regression pin (PR 1 bug class): t1 and t2 are linked by comparison
/// atoms, so they share one reachability component — t2's candidate
/// grid must include breakpoints contributed by *Y's* atom (through
/// t1) and the ±κ offsets, not just X's own change points. If the
/// pruned grids dropped cross-atom breakpoints, the κ = 5s violation
/// below would be missed (no candidate lands in (t1-5s, t1] where
/// X ≠ 1) and the guarantee would falsely hold.
#[test]
fn pruned_grids_keep_cross_atom_breakpoints() {
    let tr = lagged_trace();
    let narrow = parse_guarantee(
        "narrow",
        "(Y = y) @ t1 => (X = y) @ t2 and t1 - 5s < t2 and t2 <= t1",
    )
    .unwrap();
    let r = check_guarantee(&tr, &narrow, None);
    assert!(
        !r.holds,
        "Y holds a value X last had 9s ago; κ = 5s must be violated"
    );
    assert!(!r.violations.is_empty(), "violation must carry a witness");

    let wide = parse_guarantee(
        "wide",
        "(Y = y) @ t1 => (X = y) @ t2 and t1 - 60s < t2 and t2 <= t1",
    )
    .unwrap();
    assert!(
        check_guarantee(&tr, &wide, None).holds,
        "κ = 60s admits the 9s lag"
    );
}

// ───── dispatch pin: indexed rule dispatch must be invisible ─────
//
// The engine-fast-path PR replaced the shell's linear rule scan with a
// discrimination index (plus Rc-shared rules and scratch-buffer
// reuse). The linear path is retained as `DispatchMode::Linear`;
// running the same seeded cell under both modes must produce
// byte-identical metrics snapshots, traces, and post-mortem verdicts.

#[test]
fn dispatch_modes_agree_on_e1_salary_cells() {
    for seed in [3u64, 8, 11] {
        let lin = salary_cell_mode(seed, DispatchMode::Linear);
        let idx = salary_cell_mode(seed, DispatchMode::Indexed);
        assert_eq!(lin.0, idx.0, "metrics diverge at seed {seed}");
        assert_eq!(lin.1, idx.1, "traces diverge at seed {seed}");
        assert_eq!(lin.2, idx.2, "verdicts diverge at seed {seed}");
    }
}

/// E3 demarcation cell under a pinned dispatch mode; custom limit-
/// traffic events exercise the index's name-keyed bucket.
fn demarc_mode_cell(seed: u64, mode: DispatchMode) -> (String, String, bool) {
    let mut rng = SimRng::seeded(seed);
    let mut t = SimTime::from_secs(5);
    let ops: Vec<(SimTime, bool, i64)> = (0..12)
        .map(|_| {
            t += SimDuration::from_secs(rng.int_in(5, 40) as u64);
            (t, rng.chance(0.5), rng.int_in(1, 15))
        })
        .collect();
    let mut d = demarcation::build_with_dispatch(
        DemarcConfig {
            seed,
            x0: 0,
            y0: 400,
            line: 200,
            policy: GrantPolicy::HalfAvailable,
        },
        mode,
    );
    for &(at, lower, delta) in &ops {
        d.try_update(at, lower, delta);
    }
    d.run();
    let trace = d.scenario.recorder.with(|tr| format!("{:?}", tr.events()));
    (d.scenario.metrics_jsonl(), trace, d.invariant_held())
}

#[test]
fn dispatch_modes_agree_on_e3_demarcation_cells() {
    for seed in [1u64, 9] {
        let lin = demarc_mode_cell(seed, DispatchMode::Linear);
        let idx = demarc_mode_cell(seed, DispatchMode::Indexed);
        assert_eq!(lin, idx, "E3 observables diverge at seed {seed}");
        assert!(idx.2, "demarcation invariant must hold at seed {seed}");
    }
}

/// E7-style failure cell: an overload window (metric failure) and a
/// lossy crash (logical failure) while updates keep flowing — the
/// failure-detection and escalation paths run under both modes.
fn failure_cell(seed: u64, mode: DispatchMode) -> (String, String, String) {
    failure_cell_sharded(seed, mode, 1)
}

fn failure_cell_sharded(seed: u64, mode: DispatchMode, shards: u32) -> (String, String, String) {
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .failure_config(FailureConfig {
            deadline: SimDuration::from_secs(5),
            escalation: SimDuration::from_secs(30),
            heartbeat: None,
        })
        .dispatch_mode(mode)
        .shards(shards)
        .build()
        .unwrap();
    let upd = |v: i64| {
        SpontaneousOp::Sql(format!(
            "update employees set salary = {v} where empid = 'e1'"
        ))
    };
    sc.inject(SimTime::from_secs(10), "A", upd(95_000 + seed as i64));
    sc.overload(
        "B",
        SimTime::from_secs(20),
        SimTime::from_secs(60),
        SimDuration::from_secs(20),
    );
    sc.inject(SimTime::from_secs(30), "A", upd(96_000));
    sc.crash("B", SimTime::from_secs(80), true);
    sc.inject(SimTime::from_secs(90), "A", upd(97_000));
    sc.run_until(SimTime::from_secs(300));
    observables(&sc)
}

#[test]
fn dispatch_modes_agree_on_e7_failure_cells() {
    for seed in [2u64, 6] {
        let lin = failure_cell(seed, DispatchMode::Linear);
        let idx = failure_cell(seed, DispatchMode::Indexed);
        assert_eq!(lin.0, idx.0, "metrics diverge at seed {seed}");
        assert_eq!(lin.1, idx.1, "traces diverge at seed {seed}");
        assert_eq!(lin.2, idx.2, "verdicts diverge at seed {seed}");
    }
}

/// E3 demarcation cell under an explicit shard count — the two sites
/// ride different shards, and the agents' peer traffic crosses the
/// shard boundary over the network.
fn demarc_sharded_cell(seed: u64, shards: u32) -> (String, String, bool) {
    let mut rng = SimRng::seeded(seed);
    let mut t = SimTime::from_secs(5);
    let ops: Vec<(SimTime, bool, i64)> = (0..12)
        .map(|_| {
            t += SimDuration::from_secs(rng.int_in(5, 40) as u64);
            (t, rng.chance(0.5), rng.int_in(1, 15))
        })
        .collect();
    let mut d = demarcation::build_with(
        DemarcConfig {
            seed,
            x0: 0,
            y0: 400,
            line: 200,
            policy: GrantPolicy::HalfAvailable,
        },
        DispatchMode::default(),
        Some(shards),
    );
    for &(at, lower, delta) in &ops {
        d.try_update(at, lower, delta);
    }
    d.run();
    let trace = d.scenario.recorder.with(|tr| format!("{:?}", tr.events()));
    (d.scenario.metrics_jsonl(), trace, d.invariant_held())
}

/// E16-style durable crash/recovery cell: a lossy translator crash
/// lands inside the accept-to-perform window, the write-ahead log
/// replays it after recovery — all while the run is sharded.
fn recovery_cell_sharded(seed: u64, shards: u32) -> (String, String, String) {
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .failure_config(FailureConfig {
            deadline: SimDuration::from_secs(5),
            escalation: SimDuration::from_secs(30),
            heartbeat: None,
        })
        .durability(Durability::Durable(StoreSetup::default()))
        .shards(shards)
        .build()
        .unwrap();
    let upd = |v: i64| {
        SpontaneousOp::Sql(format!(
            "update employees set salary = {v} where empid = 'e1'"
        ))
    };
    sc.inject(SimTime::from_secs(10), "A", upd(95_000 + seed as i64));
    sc.crash("B", SimTime::from_secs(21), true);
    sc.recover("B", SimTime::from_secs(40));
    sc.inject(SimTime::from_secs(50), "A", upd(96_000));
    sc.run_until(SimTime::from_secs(200));
    observables(&sc)
}

// ---- Sharded execution pins ------------------------------------------
//
// The sharded executor must be *invisible*: for every experiment
// family, the full observable surface — metrics snapshot, recorded
// trace, guarantee verdicts — is byte-identical at 1, 2 and 4 shards.
// (Shard counts above the site count clamp down, so `4` also pins the
// clamping path.)

#[test]
fn sharded_execution_agrees_on_e1_salary_cells() {
    for seed in [3u64, 8] {
        let serial = salary_cell_sharded(seed, DispatchMode::default(), 1);
        for k in [2u32, 4] {
            let sharded = salary_cell_sharded(seed, DispatchMode::default(), k);
            assert_eq!(
                serial.0, sharded.0,
                "E1 metrics diverge: seed {seed}, {k} shards"
            );
            assert_eq!(
                serial.1, sharded.1,
                "E1 traces diverge: seed {seed}, {k} shards"
            );
            assert_eq!(
                serial.2, sharded.2,
                "E1 verdicts diverge: seed {seed}, {k} shards"
            );
        }
    }
}

#[test]
fn sharded_execution_agrees_on_e3_demarcation_cells() {
    for seed in [1u64, 9] {
        let serial = demarc_sharded_cell(seed, 1);
        for k in [2u32, 4] {
            let sharded = demarc_sharded_cell(seed, k);
            assert_eq!(
                serial, sharded,
                "E3 observables diverge: seed {seed}, {k} shards"
            );
        }
        assert!(serial.2, "demarcation invariant must hold at seed {seed}");
    }
}

#[test]
fn sharded_execution_agrees_on_e7_failure_cells() {
    for seed in [2u64, 6] {
        let serial = failure_cell_sharded(seed, DispatchMode::default(), 1);
        for k in [2u32, 4] {
            let sharded = failure_cell_sharded(seed, DispatchMode::default(), k);
            assert_eq!(
                serial.0, sharded.0,
                "E7 metrics diverge: seed {seed}, {k} shards"
            );
            assert_eq!(
                serial.1, sharded.1,
                "E7 traces diverge: seed {seed}, {k} shards"
            );
            assert_eq!(
                serial.2, sharded.2,
                "E7 verdicts diverge: seed {seed}, {k} shards"
            );
        }
    }
}

#[test]
fn sharded_execution_agrees_on_e16_recovery_cells() {
    for seed in [4u64, 12] {
        let serial = recovery_cell_sharded(seed, 1);
        for k in [2u32, 4] {
            let sharded = recovery_cell_sharded(seed, k);
            assert_eq!(
                serial.0, sharded.0,
                "E16 metrics diverge: seed {seed}, {k} shards"
            );
            assert_eq!(
                serial.1, sharded.1,
                "E16 traces diverge: seed {seed}, {k} shards"
            );
            assert_eq!(
                serial.2, sharded.2,
                "E16 verdicts diverge: seed {seed}, {k} shards"
            );
        }
    }
}
