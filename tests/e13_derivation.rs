//! E13 — mechanical guarantee derivation (the paper's §3 future work:
//! "we also plan to extend the toolkit so that it can help the system
//! designer derive new guarantees for different interfaces and
//! strategies").
//!
//! Soundness: every guarantee the derivation engine emits for an
//! interface/strategy pair holds on simulated executions of that pair.
//! Tightness: shrinking the derived κ below the real propagation path
//! produces a formula the same traces refute — the computed bound is
//! doing real work.

mod common;

use common::{employees_db, RID_DST, RID_SRC};
use hcm::checker::guarantee::check_guarantee;
use hcm::core::{SimDuration, SimTime};
use hcm::rulelang::parse_guarantee;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::menu::derive;
use hcm::toolkit::workload::PoissonWriter;
use hcm::toolkit::{Scenario, ScenarioBuilder};

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B
[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

fn run(seed: u64) -> Scenario {
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 1000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 1000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap();
    let target = sc.site("A").translator;
    sc.add_actor_for(
        "A",
        Box::new(PoissonWriter::sql_updates(
            target,
            SimDuration::from_secs(25),
            SimTime::from_secs(600),
            "employees",
            "salary",
            "empid",
            vec!["e1".into()],
            (1, 100_000),
        )),
    );
    sc.run_to_quiescence();
    sc
}

#[test]
fn derived_guarantees_hold_on_real_executions() {
    // Derive from the very interface statements the scenario deploys.
    let sc = run(21);
    let src = &sc.site("A").rid.interfaces;
    let dst = &sc.site("B").rid.interfaces;
    let derived = derive::propagation_guarantees(
        "salary1(n)",
        "salary2(n)",
        src,
        dst,
        SimDuration::from_secs(5),
    );
    assert_eq!(
        derived.len(),
        4,
        "notify+write derives all four copy guarantees"
    );
    let trace = sc.trace();
    for d in &derived {
        let g = parse_guarantee(d.name, &d.formula).unwrap();
        let r = check_guarantee(&trace, &g, None);
        assert!(
            r.holds,
            "derived `{}` violated: {:#?}",
            d.name, r.violations
        );
    }
}

#[test]
fn derived_kappa_is_not_trivially_loose() {
    let sc = run(22);
    let trace = sc.trace();
    // The derivation yields κ = 2s + 5s + 1s + 0.5s = 8.5s. The actual
    // propagation path here is ~0.43s, so the derived bound holds with
    // margin — but a κ below the *service* path must fail, showing the
    // formula isn't vacuous.
    let tight = parse_guarantee(
        "too_tight",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t1 - 100ms < t2 and t2 <= t1",
    )
    .unwrap();
    let r = check_guarantee(&trace, &tight, None);
    assert!(
        !r.holds,
        "κ = 100ms is inside the real propagation latency and must fail"
    );
}

#[test]
fn derivation_matches_menu_suggestions() {
    // The suggestion engine (which strategies apply) and the derivation
    // engine (which guarantees, with what bounds) agree on the
    // guarantee names for the same interfaces.
    let sc = run(23);
    let src = &sc.site("A").rid.interfaces;
    let dst = &sc.site("B").rid.interfaces;
    let suggestions = hcm::toolkit::menu::suggest_copy_strategies(
        "salary1(n)",
        "salary2(n)",
        src,
        dst,
        SimDuration::from_secs(60),
        SimDuration::from_secs(5),
    );
    let propagate = suggestions.iter().find(|s| s.name == "propagate").unwrap();
    let derived = derive::propagation_guarantees(
        "salary1(n)",
        "salary2(n)",
        src,
        dst,
        SimDuration::from_secs(5),
    );
    let derived_names: Vec<_> = derived.iter().map(|d| d.name).collect();
    for g in &propagate.valid_guarantees {
        assert!(
            derived_names.contains(g),
            "menu promises `{g}`, derivation omits it"
        );
    }
}
