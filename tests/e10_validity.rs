//! E10 — the valid-execution checker (Appendix A.2) against the live
//! engine.
//!
//! (a) Every trace the engine produces, across seeds and workloads, is
//! a valid execution. (b) Each seeded corruption of a valid trace is
//! caught by the property the corruption targets. Together these give
//! the checker the adversarial calibration the paper's hand proofs got
//! from the proof rules.

mod common;

use common::{employees_db, rule_set_of, RID_DST, RID_SRC};
use hcm::checker::check_validity;
use hcm::core::{EventId, ItemId, SimDuration, SimTime, Trace, Value};
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::workload::PoissonWriter;
use hcm::toolkit::{Scenario, ScenarioBuilder};

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B
[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

fn run_scenario(seed: u64) -> Scenario {
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 1000), ("e2", 2000), ("e3", 3000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 1000), ("e2", 2000), ("e3", 3000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap();
    let target = sc.site("A").translator;
    sc.add_actor_for(
        "A",
        Box::new(PoissonWriter::sql_updates(
            target,
            SimDuration::from_secs(20),
            SimTime::from_secs(900),
            "employees",
            "salary",
            "empid",
            vec!["e1".into(), "e2".into(), "e3".into()],
            (1, 100_000),
        )),
    );
    sc.run_to_quiescence();
    sc
}

#[test]
fn engine_traces_are_valid_across_seeds() {
    for seed in [11, 22, 33, 44] {
        let sc = run_scenario(seed);
        let trace = sc.trace();
        assert!(trace.len() > 40, "seed {seed}: workload too small");
        let report = check_validity(&trace, &rule_set_of(&sc));
        assert!(report.is_valid(), "seed {seed}: {:#?}", report.violations);
        assert!(report.obligations_checked > 20);
    }
}

/// Rebuild a trace with one surgical corruption applied by `f` to the
/// event at `idx` (f returns the replacement fields).
fn corrupt(trace: &Trace, idx: usize, f: impl Fn(&hcm::core::Event) -> hcm::core::Event) -> Trace {
    let mut out = Trace::new();
    for item in trace.items() {
        if let Some(v) = trace.initial(item) {
            out.set_initial(item.clone(), v.clone());
        }
    }
    for (i, e) in trace.events().iter().enumerate() {
        let e = if i == idx { f(e) } else { e.clone() };
        out.push(
            e.time,
            e.site,
            e.desc.clone(),
            e.old_value.clone(),
            e.rule,
            e.trigger,
        );
    }
    out
}

#[test]
fn seeded_corruptions_are_each_caught() {
    let sc = run_scenario(55);
    let trace = sc.trace();
    let rules = rule_set_of(&sc);
    assert!(check_validity(&trace, &rules).is_valid());

    // Find interesting event positions.
    let n_pos = trace
        .events()
        .iter()
        .position(|e| e.desc.tag() == "N")
        .unwrap();
    let w_pos = trace
        .events()
        .iter()
        .position(|e| e.desc.tag() == "W")
        .unwrap();
    let ws_pos = trace
        .events()
        .iter()
        .position(|e| e.desc.tag() == "Ws")
        .unwrap();

    // P2: lie about a write's old value.
    let t2 = corrupt(&trace, w_pos, |e| {
        let mut e = e.clone();
        e.old_value = Some(Value::Int(-999));
        e
    });
    assert!(!check_validity(&t2, &rules).of_property(2).is_empty());

    // P4: give a spontaneous write a rule.
    let t4 = corrupt(&trace, ws_pos, |e| {
        let mut e = e.clone();
        e.rule = Some(hcm::core::RuleId(0));
        e.trigger = Some(EventId(0));
        e
    });
    let r4 = check_validity(&t4, &rules);
    assert!(!r4.of_property(4).is_empty());

    // P5: point an N at the wrong trigger (a W event cannot match the
    // notify interface's Ws LHS).
    let t5 = corrupt(&trace, n_pos.max(w_pos), |e| {
        let mut e = e.clone();
        if e.desc.tag() == "N" || e.desc.tag() == "W" {
            e.trigger = Some(EventId(0));
        }
        e
    });
    // Either a template mismatch or an instance mismatch must fire.
    let r5 = check_validity(&t5, &rules);
    assert!(
        !r5.of_property(5).is_empty() || !r5.of_property(6).is_empty(),
        "retargeted trigger must be caught"
    );

    // P5 metric: push a generated event past its bound.
    let late = corrupt(&trace, n_pos, |e| {
        let mut e = e.clone();
        e.time += SimDuration::from_secs(3600);
        e
    });
    // (This also breaks P1 ordering and the obligation P6 — all fair.)
    let r_late = check_validity(&late, &rules);
    assert!(!r_late.violations.is_empty());
    assert!(
        r_late
            .violations
            .iter()
            .any(|v| v.property == 5 || v.property == 1),
        "{:#?}",
        r_late.violations
    );

    // P6: drop the N entirely — the notify obligation goes unfulfilled.
    let mut dropped = Trace::new();
    for item in trace.items() {
        if let Some(v) = trace.initial(item) {
            dropped.set_initial(item.clone(), v.clone());
        }
    }
    for (i, e) in trace.events().iter().enumerate() {
        if i == n_pos {
            continue;
        }
        // Retarget triggers that pointed at skipped/renumbered events:
        // keep ids stable by re-pushing descriptors only when safe.
        dropped.push(
            e.time,
            e.site,
            e.desc.clone(),
            e.old_value.clone(),
            e.rule,
            e.trigger,
        );
    }
    let r6 = check_validity(&dropped, &rules);
    assert!(
        !r6.violations.is_empty(),
        "dropped notification must be caught"
    );
}

#[test]
fn prohibition_violations_are_caught_end_to_end() {
    // Site B promised no spontaneous writes; a rogue application
    // violates it. The checker flags property 6 on the real trace.
    let mut sc = ScenarioBuilder::new(66)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 1000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 1000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap();
    sc.inject(
        SimTime::from_secs(10),
        "B",
        hcm::toolkit::SpontaneousOp::Sql(
            "update employees set salary = 1 where empid = 'e1'".into(),
        ),
    );
    sc.run_to_quiescence();
    let trace = sc.trace();
    let report = check_validity(&trace, &rule_set_of(&sc));
    assert!(report
        .of_property(6)
        .iter()
        .any(|v| v.msg.contains("prohibited")));
}

#[test]
fn checker_is_deterministic() {
    let sc = run_scenario(77);
    let trace = sc.trace();
    let rules = rule_set_of(&sc);
    let a = check_validity(&trace, &rules);
    let b = check_validity(&trace, &rules);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.obligations_checked, b.obligations_checked);
}

#[test]
fn dropped_initial_state_detected_as_p2() {
    let sc = run_scenario(88);
    let trace = sc.trace();
    // Strip the initial interpretation and shift a value: replay
    // mismatch on old values appears once states are known.
    let mut stripped = Trace::new();
    for e in trace.events() {
        stripped.push(
            e.time,
            e.site,
            e.desc.clone(),
            e.old_value.clone(),
            e.rule,
            e.trigger,
        );
    }
    // Without initials, the first write of each item is unchecked
    // (state unknown) — subsequent ones still are. Corrupt the second
    // Ws *of the same item*.
    let mut seen: Vec<ItemId> = Vec::new();
    let mut later_ws = None;
    for e in stripped.events() {
        if e.desc.tag() == "Ws" {
            let item = e.desc.item().cloned().expect("Ws has an item");
            if seen.contains(&item) {
                later_ws = Some(e.id.0 as usize);
                break;
            }
            seen.push(item);
        }
    }
    if let Some(pos) = later_ws {
        let doctored = corrupt(&stripped, pos, |e| {
            let mut e = e.clone();
            e.old_value = Some(Value::Int(-1));
            e
        });
        let rules = rule_set_of(&sc);
        let r = check_validity(&doctored, &rules);
        assert!(!r.of_property(2).is_empty());
    }
}
