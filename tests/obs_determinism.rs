//! Observability determinism regression: a metrics snapshot is a pure
//! function of (scenario, seed).
//!
//! The registry orders everything with `BTreeMap`s and timestamps
//! records with sim-time only, so running the same scenario twice with
//! the same seed must yield **byte-identical** JSON-lines snapshots —
//! the property that makes snapshots diffable across refactors. E1
//! (salary propagation) covers the toolkit path, E3 (demarcation)
//! covers the protocol agents.

mod common;

use common::{employees_db, RID_DST, RID_SRC};
use hcm::core::{SimDuration, SimTime};
use hcm::protocols::demarcation::{self, DemarcConfig, GrantPolicy};
use hcm::simkit::SimRng;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::workload::PoissonWriter;
use hcm::toolkit::ScenarioBuilder;

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

/// Run the E1 salary-copy deployment and return its (jsonl, table)
/// snapshot pair.
fn e1_snapshot(seed: u64) -> (String, String) {
    let rows = [("e0", 1000i64), ("e1", 2000)];
    let mut sc = ScenarioBuilder::new(seed)
        .site("A", RawStore::Relational(employees_db(&rows)), RID_SRC)
        .unwrap()
        .site("B", RawStore::Relational(employees_db(&rows)), RID_DST)
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap();
    let target = sc.site("A").translator;
    sc.add_actor_for(
        "A",
        Box::new(PoissonWriter::sql_updates(
            target,
            SimDuration::from_secs(20),
            SimTime::from_secs(900),
            "employees",
            "salary",
            "empid",
            vec!["e0".into(), "e1".into()],
            (1, 9_999),
        )),
    );
    sc.run_to_quiescence();
    (sc.metrics_jsonl(), sc.metrics_table())
}

/// Run the E3 demarcation deployment and return its jsonl snapshot.
fn e3_snapshot(seed: u64) -> String {
    let mut rng = SimRng::seeded(seed ^ 0x0B5E_D15E);
    let mut d = demarcation::build(DemarcConfig {
        seed,
        x0: 0,
        y0: 400,
        line: 200,
        policy: GrantPolicy::Requested,
    });
    let mut t = SimTime::from_secs(5);
    for _ in 0..60 {
        t += SimDuration::from_secs(rng.int_in(5, 40) as u64);
        d.try_update(t, rng.chance(0.5), rng.int_in(1, 15));
    }
    d.run();
    d.scenario.metrics_jsonl()
}

#[test]
fn e1_same_seed_snapshots_are_byte_identical() {
    let (jsonl_a, table_a) = e1_snapshot(42);
    let (jsonl_b, table_b) = e1_snapshot(42);
    assert!(!jsonl_a.is_empty());
    assert!(
        jsonl_a.contains("shell.firings"),
        "snapshot missing shell metrics:\n{jsonl_a}"
    );
    assert!(
        jsonl_a.contains("net.delivery_latency"),
        "snapshot missing net metrics"
    );
    assert_eq!(jsonl_a.as_bytes(), jsonl_b.as_bytes());
    assert_eq!(table_a.as_bytes(), table_b.as_bytes());
}

#[test]
fn e1_different_seeds_produce_different_snapshots() {
    // Sanity that the snapshot really captures run-dependent state:
    // different Poisson arrivals must show up in the histograms.
    let (jsonl_a, _) = e1_snapshot(42);
    let (jsonl_b, _) = e1_snapshot(43);
    assert_ne!(jsonl_a, jsonl_b);
}

#[test]
fn e3_same_seed_snapshots_are_byte_identical() {
    let a = e3_snapshot(7);
    let b = e3_snapshot(7);
    assert!(!a.is_empty());
    assert!(
        a.contains("demarc.attempts"),
        "snapshot missing demarcation metrics:\n{a}"
    );
    assert_eq!(a.as_bytes(), b.as_bytes());
}
