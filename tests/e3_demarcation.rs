//! E3 — the Demarcation Protocol (§6.1) and the strict-consistency
//! baseline.
//!
//! Paper claims: (a) the protocol keeps `X ≤ Y` valid **always**
//! without distributed transactions; (b) different limit-change
//! policies can be compared through the limit-change guarantee; and
//! (implicitly, §1) that avoiding global transactions buys locality
//! and availability. This test checks (a) under a randomized workload,
//! compares the three policies, and measures demarcation against the
//! 2PC baseline on the *same* workload.

use hcm::core::{SimDuration, SimTime};
use hcm::protocols::demarcation::{self, DemarcConfig, GrantPolicy};
use hcm::protocols::tpc;
use hcm::simkit::SimRng;

/// A reproducible mixed workload: (time, lower_side?, delta).
fn workload(seed: u64, n: usize) -> Vec<(SimTime, bool, i64)> {
    let mut rng = SimRng::seeded(seed);
    let mut t = SimTime::from_secs(5);
    (0..n)
        .map(|_| {
            t += SimDuration::from_secs(rng.int_in(5, 40) as u64);
            (t, rng.chance(0.5), rng.int_in(1, 15))
        })
        .collect()
}

fn run_demarc(
    policy: GrantPolicy,
    seed: u64,
    ops: &[(SimTime, bool, i64)],
) -> demarcation::DemarcScenario {
    let mut d = demarcation::build(DemarcConfig {
        seed,
        x0: 0,
        y0: 400,
        line: 200,
        policy,
    });
    for &(t, lower, delta) in ops {
        d.try_update(t, lower, delta);
    }
    d.run();
    d
}

#[test]
fn invariant_always_holds_under_random_workload() {
    for seed in [1, 2, 3] {
        let ops = workload(seed, 60);
        for policy in [
            GrantPolicy::Requested,
            GrantPolicy::All,
            GrantPolicy::HalfAvailable,
        ] {
            let d = run_demarc(policy, seed, &ops);
            assert!(
                d.invariant_held(),
                "X ≤ Y violated with {policy:?} seed {seed}"
            );
        }
    }
}

#[test]
fn most_updates_are_local() {
    // Generous initial slack relative to the workload's total drift:
    // the common case the protocol optimizes for.
    let ops = workload(7, 80);
    let mut d = demarcation::build(DemarcConfig {
        seed: 7,
        x0: 0,
        y0: 2000,
        line: 1000,
        policy: GrantPolicy::Requested,
    });
    for &(t, lower, delta) in &ops {
        d.try_update(t, lower, delta);
    }
    d.run();
    let sx = d.stats_x.borrow();
    let sy = d.stats_y.borrow();
    let local = sx.local_ok + sy.local_ok;
    let attempts = sx.attempts + sy.attempts;
    assert!(
        local as f64 / attempts as f64 > 0.6,
        "expected mostly-local updates, got {local}/{attempts}"
    );
}

#[test]
fn policies_trade_requests_for_future_denials() {
    let ops = workload(11, 100);
    let exact = run_demarc(GrantPolicy::Requested, 11, &ops);
    let all = run_demarc(GrantPolicy::All, 11, &ops);
    let req_exact = exact.stats_x.borrow().limit_requests + exact.stats_y.borrow().limit_requests;
    let req_all = all.stats_x.borrow().limit_requests + all.stats_y.borrow().limit_requests;
    // Granting everything means the *granter* runs out sooner and must
    // come asking; the requester asks less. Net message counts differ —
    // the bench sweeps this; here we only require both runs safe and
    // the counters to be meaningfully populated.
    assert!(req_exact > 0 && req_all > 0);
    assert!(exact.invariant_held() && all.invariant_held());
}

#[test]
fn demarcation_beats_tpc_on_latency_and_messages_for_local_updates() {
    let ops = workload(13, 50);

    // Demarcation run.
    let d = run_demarc(GrantPolicy::Requested, 13, &ops);
    let d_messages = d.scenario.sim.network().total_sent();
    let d_ok = {
        let sx = d.stats_x.borrow();
        let sy = d.stats_y.borrow();
        sx.local_ok + sx.granted + sy.local_ok + sy.granted
    };

    // 2PC run on the same workload.
    let mut t = tpc::build(13, 0, 400);
    for &(at, lower, delta) in &ops {
        t.try_update(at, lower, delta);
    }
    t.run();
    let t_stats = t.stats.borrow();

    // Strict consistency commits at most as many updates as the weak
    // protocol satisfies (it aborts on conflicts the demarcation
    // protocol denies too), but pays global coordination for *every*
    // attempt.
    assert!(t_stats.messages as f64 / t_stats.submitted as f64 >= 4.0);
    // Latency: every 2PC commit pays ≥ one prepare/vote round trip +
    // service; demarcation local updates complete in ~1 write.
    let avg_tpc =
        t_stats.latencies_ms.iter().sum::<u64>() as f64 / t_stats.latencies_ms.len().max(1) as f64;
    assert!(
        avg_tpc >= 90.0,
        "2PC per-commit latency should include coordination, got {avg_tpc}ms"
    );
    assert!(d_ok > 0);
    // Message economy: demarcation messages per satisfied update are
    // lower than 2PC messages per submitted update.
    let d_rate = d_messages as f64 / d_ok as f64;
    let t_rate = t_stats.messages as f64 / t_stats.submitted as f64;
    assert!(
        d_rate < t_rate,
        "demarcation {d_rate:.2} msg/op should beat 2PC {t_rate:.2} msg/op"
    );
}

#[test]
fn under_site_failure_demarcation_keeps_local_updates_flowing() {
    // Crash Y's database for a long window. Demarcation: X's local
    // updates (within its limit) still succeed. 2PC: everything aborts.
    let mut d = demarcation::build(DemarcConfig {
        seed: 17,
        x0: 0,
        y0: 400,
        line: 200,
        policy: GrantPolicy::Requested,
    });
    d.scenario.crash("B", SimTime::from_secs(1), true);
    for i in 0..10 {
        d.try_update(SimTime::from_secs(10 + i * 10), true, 5); // X: all local
    }
    d.run();
    assert_eq!(
        d.stats_x.borrow().local_ok,
        10,
        "local updates unaffected by B's crash"
    );
    assert!(d.invariant_held());

    let mut t = tpc::build(17, 0, 400);
    t.sim.crash_at(t.py, SimTime::from_secs(1), true);
    for i in 0..10 {
        t.try_update(SimTime::from_secs(10 + i * 10), true, 5);
    }
    t.run();
    assert_eq!(
        t.stats.borrow().committed,
        0,
        "2PC commits nothing while Y is down"
    );
    assert_eq!(t.stats.borrow().aborted_unavailable, 10);
}

/// §6.1's responsiveness guarantee, formalized: "if there is enough
/// slack at one site, then a change-limit request at the other site
/// must be granted within some time." The limit-change negotiation is
/// recorded as custom events, so this is checkable on the trace.
#[test]
fn limit_requests_with_slack_are_granted_within_bound() {
    let ops = workload(31, 80);
    let d = run_demarc(GrantPolicy::Requested, 31, &ops);
    assert!(d.invariant_held());
    let trace = d.scenario.trace();

    let mut reqs_with_slack = 0;
    for e in trace.events() {
        let hcm::core::EventDesc::Custom { name, args } = &e.desc else {
            continue;
        };
        if name != "LimitReqRecv" {
            continue;
        }
        let need = args[0].as_int().unwrap();
        let avail = args[1].as_int().unwrap();
        if avail < need {
            continue; // not enough slack: denial is legitimate
        }
        reqs_with_slack += 1;
        // A grant at the same site must follow within the bound (one
        // local write + message processing ≪ 1s).
        let granted = trace.events().iter().any(|g| {
            g.site == e.site
                && g.time >= e.time
                && g.time <= e.time + hcm::core::SimDuration::from_secs(1)
                && matches!(&g.desc, hcm::core::EventDesc::Custom { name, .. }
                    if name == "LimitGranted")
        });
        assert!(granted, "request with slack at {} not granted", e.time);
    }
    assert!(
        reqs_with_slack > 0,
        "workload produced no grantable limit requests"
    );
}
