//! E4 — referential integrity with a bounded violation window (§6.2),
//! integration level: randomized workloads, measured violation windows.

use hcm::core::{ItemId, SimDuration, SimTime, Value};
use hcm::protocols::refint;
use hcm::simkit::SimRng;

const HOUR: u64 = 3600;

#[test]
fn randomized_workload_respects_the_window() {
    for seed in [1u64, 2, 3] {
        let mut r = refint::build(
            seed,
            SimDuration::from_secs(HOUR),
            SimTime::from_secs(12 * HOUR),
        );
        let mut rng = SimRng::seeded(seed * 7);
        // 15 employees; ~half get salaries (some before, some after the
        // project record).
        for i in 0..15 {
            let id = format!("e{i}");
            let pt = rng.int_in(60, (8 * HOUR) as i64) as u64;
            r.add_project(SimTime::from_secs(pt), &id, "proj");
            match i % 3 {
                0 => r.add_salary(SimTime::from_secs(pt.saturating_sub(30).max(1)), &id, 1000),
                1 => {
                    // salary arrives within half a window
                    let st = pt + rng.int_in(10, (HOUR / 2) as i64) as u64;
                    r.add_salary(SimTime::from_secs(st), &id, 1000);
                }
                _ => {} // dangling forever
            }
        }
        r.scenario.run_to_quiescence();
        let trace = r.scenario.trace();

        // Direct measurement: every project record either got a salary
        // or was deleted within 2 windows of its creation.
        let max_window = SimDuration::from_secs(2 * HOUR);
        for e in trace.events() {
            let hcm::core::EventDesc::Ws { item, new, .. } = &e.desc else {
                continue;
            };
            if item.base != "project" || !new.exists() {
                continue;
            }
            let salary = ItemId {
                base: "salary".into(),
                params: item.params.clone(),
            };
            let deadline = e.time + max_window;
            let salary_by_deadline = trace
                .value_at(&salary, deadline)
                .is_some_and(|v| v.exists());
            let project_gone_by_deadline =
                !trace.value_at(item, deadline).is_some_and(|v| v.exists());
            assert!(
                salary_by_deadline || project_gone_by_deadline,
                "seed {seed}: {item} dangled past the window"
            );
        }
        // And the formula-level check agrees.
        let rep = hcm::checker::guarantee::check_guarantee(&trace, &r.guarantee(), None);
        assert!(rep.holds, "seed {seed}: {:#?}", rep.violations);
    }
}

#[test]
fn deletion_rate_tracks_dangling_fraction() {
    let mut r = refint::build(
        9,
        SimDuration::from_secs(HOUR),
        SimTime::from_secs(3 * HOUR),
    );
    for i in 0..10 {
        let id = format!("d{i}");
        r.add_project(SimTime::from_secs(100 + i), &id, "p");
        if i < 4 {
            r.add_salary(SimTime::from_secs(50), &id, 1);
        }
    }
    r.scenario.run_to_quiescence();
    assert_eq!(
        r.stats.borrow().deleted,
        6,
        "exactly the dangling records go"
    );
    let trace = r.scenario.trace();
    // Employees with salaries keep their projects.
    for i in 0..4 {
        let p = ItemId::with("project", [Value::from(format!("d{i}"))]);
        assert!(trace
            .value_at(&p, trace.end_time())
            .is_some_and(|v| v.exists()));
    }
}

/// The repair notifies record owners by e-mail — "perhaps notifying
/// the database owner of the deleted records" (§6.2) — through a
/// write-only mail RIS: one notice per deletion, visible as W events
/// on `notice(i)` items in the trace.
#[test]
fn owners_are_notified_of_deletions() {
    let mut r = refint::build(
        11,
        SimDuration::from_secs(HOUR),
        SimTime::from_secs(2 * HOUR),
    );
    r.add_project(SimTime::from_secs(100), "ada", "skunkworks");
    r.add_salary(SimTime::from_secs(100), "bob", 500);
    r.add_project(SimTime::from_secs(200), "bob", "mainline");
    r.scenario.run_to_quiescence();

    let s = r.stats.borrow();
    assert_eq!(s.deleted, 1, "only ada's record dangles");
    assert_eq!(s.notices_sent, 1);

    let trace = r.scenario.trace();
    let notice_writes: Vec<_> = trace
        .events()
        .iter()
        .filter(
            |e| matches!(&e.desc, hcm::core::EventDesc::W { item, .. } if item.base == "notice"),
        )
        .collect();
    assert_eq!(notice_writes.len(), 1);
    match &notice_writes[0].desc {
        hcm::core::EventDesc::W { item, value } => {
            assert_eq!(item.params[0], Value::from("ada"));
            assert!(value.as_str().unwrap().contains("deleted"));
        }
        _ => unreachable!(),
    }
}
