//! Soak test: a larger heterogeneous deployment with mixed workloads,
//! failures and polling, run across several seeds — every trace must be
//! a valid execution and every scenario guarantee must hold.
//!
//! This is the "keep everything honest" test: it composes features the
//! focused experiments exercise in isolation (multiple constraints,
//! parameterized items, mixed store kinds, overload windows,
//! periodic interfaces) and hands the result to the checker.

mod common;

use common::rule_set_of;
use hcm::checker::{check_validity, guarantee::check_guarantee};
use hcm::core::{SimDuration, SimTime, Value};
use hcm::simkit::SimRng;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};

const RID_HR: &str = r#"
ris = relational
service = 100ms
[interface]
Ws(sal(n), b) -> N(sal(n), b) within 2s
RR(sal(n)) when sal(n) = b -> R(sal(n), b) within 1s
[command read sal]
select v from emp where k = $p0
[map sal]
table = emp
key = k
col = v
"#;

const RID_MIRROR: &str = r#"
ris = kv
service = 50ms
[interface]
WR(msal(n), b) -> W(msal(n), b) within 1s
Ws(msal(n), b) -> false
[map msal]
key = sal/$p0
"#;

const RID_PHONEDIR: &str = r#"
ris = whois
service = 100ms
[interface]
P(90s) when wph(n) = b -> N(wph(n), b) within 1s
[map wph]
field = phone
"#;

const RID_PHONEMIRROR: &str = r#"
ris = file
service = 50ms
[interface]
WR(fph(n), b) -> W(fph(n), b) within 1s
[map fph]
path = /phones/$p0.txt
type = str
"#;

const STRATEGY: &str = r#"
[locate]
sal = HR
msal = KV
wph = DIR
fph = FS

[strategy]
N(sal(n), b) -> WR(msal(n), b) within 5s
N(wph(n), b) -> WR(fph(n), b) within 5s
"#;

fn build(seed: u64) -> Scenario {
    let mut hr = hcm::ris::relational::Database::new();
    hr.create_table("emp", &["k", "v"]).unwrap();
    let mut kv = hcm::ris::kvstore::KvStore::new();
    let mut dir = hcm::ris::whois::WhoisDir::new();
    for i in 0..5 {
        hr.execute(&format!(
            "insert into emp values ('e{i}', {})",
            1000 * (i + 1)
        ))
        .unwrap();
        kv.put(&format!("sal/e{i}"), Value::Int(1000 * (i + 1)));
        dir.admin_set(&format!("p{i}"), "phone", &format!("555-0{i}00"));
    }
    ScenarioBuilder::new(seed)
        .site("HR", RawStore::Relational(hr), RID_HR)
        .unwrap()
        .site("KV", RawStore::Kv(kv), RID_MIRROR)
        .unwrap()
        .site("DIR", RawStore::Whois(dir), RID_PHONEDIR)
        .unwrap()
        .site(
            "FS",
            RawStore::File(hcm::ris::filestore::FileStore::new()),
            RID_PHONEMIRROR,
        )
        .unwrap()
        .strategy(STRATEGY)
        .stop_periodics_at(SimTime::from_secs(1800))
        .build()
        .unwrap()
}

#[test]
fn mixed_deployment_survives_randomized_soak() {
    for seed in [101u64, 202, 303] {
        let mut sc = build(seed);
        let mut rng = SimRng::seeded(seed);
        // Random salary updates + occasional phone edits.
        let mut t = 10u64;
        while t < 1500 {
            t += rng.int_in(20, 90) as u64;
            if rng.chance(0.7) {
                let id = rng.int_in(0, 4);
                let v = rng.int_in(500, 9_999);
                sc.inject(
                    SimTime::from_secs(t),
                    "HR",
                    SpontaneousOp::Sql(format!("update emp set v = {v} where k = 'e{id}'")),
                );
            } else {
                let id = rng.int_in(0, 4);
                sc.inject(
                    SimTime::from_secs(t),
                    "DIR",
                    SpontaneousOp::WhoisSet {
                        name: format!("p{id}"),
                        field: "phone".into(),
                        value: format!("555-{:04}", rng.int_in(0, 9999)),
                    },
                );
            }
        }
        // An overload episode on the kv mirror mid-run.
        sc.overload(
            "KV",
            SimTime::from_secs(400),
            SimTime::from_secs(460),
            SimDuration::from_secs(3),
        );
        sc.run_to_quiescence();
        let trace = sc.trace();
        assert!(trace.len() > 80, "seed {seed}: only {} events", trace.len());

        // The overload window *is* a metric failure: during it, the kv
        // mirror's 1s write bound is genuinely violated, and the
        // validity checker must say so — and say nothing else. Every
        // violation must be a time-bound breach (property 5) or the
        // corresponding unfulfilled-window obligation (property 6)
        // attributable to the 400–460s episode.
        let report = check_validity(&trace, &rule_set_of(&sc));
        let window = SimTime::from_secs(395)..=SimTime::from_secs(475);
        for v in &report.violations {
            let bound_related = v.msg.contains("exceeds bound") || v.msg.contains("unfulfilled");
            let in_window = v
                .event
                .and_then(|id| trace.get(hcm::core::EventId(id)))
                .is_some_and(|e| window.contains(&e.time));
            assert!(
                bound_related && in_window,
                "seed {seed}: unexpected violation {v:#?}"
            );
        }
        assert!(
            !report.violations.is_empty(),
            "seed {seed}: the overload episode must be visible to the checker"
        );

        // Salary mirror: non-metric follows + lossless leads (notify).
        for g in [
            "(msal(n) = y) @ t1 => (sal(n) = y) @ t2 and t2 <= t1",
            "(sal(n) = x) @ t1 => (msal(n) = x) @ t2 and t2 >= t1",
        ] {
            let g = hcm::rulelang::parse_guarantee("salary", g).unwrap();
            let r = check_guarantee(&trace, &g, None);
            assert!(r.holds, "seed {seed} `{}`: {:#?}", g.name, r.violations);
        }
        // Phone mirror: polled source ⇒ follows + metric with κ =
        // period + bounds; leads is NOT asserted (polling).
        let g = hcm::rulelang::parse_guarantee(
            "phones",
            "(fph(n) = y) @ t1 => (wph(n) = y) @ t2 and t1 - 100s < t2 and t2 <= t1",
        )
        .unwrap();
        let r = check_guarantee(&trace, &g, None);
        assert!(r.holds, "seed {seed}: {:#?}", r.violations);
    }
}
