//! A corrupt or stale `RemoteFire` must degrade, not kill the engine.
//!
//! A shell that receives a rule id it does not know (a stale message
//! from before a strategy change, or plain corruption) used to be a
//! construction-bug panic. The engine-fast-path PR turned it into a
//! recorded degradation: the shell counts `shell.unknown_rule`,
//! records a spontaneous `UnknownRuleFire` custom event (no generating
//! rule, no trigger — the provenance is by definition unknown), and
//! carries on serving well-formed traffic.

mod common;

use common::{employees_db, RID_DST, RID_SRC};
use hcm::core::{Bindings, EventDesc, EventId, RuleId, SimTime, Value};
use hcm::obs::Scope;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{CmMsg, Scenario, ScenarioBuilder, SpontaneousOp};

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s

[guarantee leads]
(salary1(n) = x) @ t1 => (salary2(n) = x) @ t2 and t2 >= t1
"#;

fn build(seed: u64) -> Scenario {
    ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 100)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 100)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap()
}

#[test]
fn unknown_remote_fire_degrades_to_counter_and_event() {
    let mut sc = build(7);
    // A well-formed update rides along to prove the shell stays alive.
    sc.inject(
        SimTime::from_secs(10),
        "A",
        SpontaneousOp::Sql("update employees set salary = 250 where empid = 'e1'".into()),
    );
    // Rule id 9999 exists nowhere in the registry.
    let shell_b = sc.site("B").shell;
    sc.sim.inject_at(
        SimTime::from_secs(5),
        shell_b,
        CmMsg::RemoteFire {
            rule: RuleId(9999),
            trigger: EventId(0),
            bindings: Bindings::new(),
        },
    );
    sc.run_to_quiescence();

    let site_b = sc.site("B").site;
    assert_eq!(
        sc.obs
            .metrics
            .counter(Scope::Site(site_b.index()), "shell.unknown_rule"),
        1,
        "the bogus fire must be counted"
    );
    // The degradation left a first-class event in the trace.
    let unknown = sc.recorder.with(|t| {
        t.events()
            .iter()
            .filter(|e| {
                matches!(&e.desc, EventDesc::Custom { name, args }
                    if name == "UnknownRuleFire"
                        && args.first() == Some(&Value::Int(i64::from(site_b.index())))
                        && args.get(1) == Some(&Value::Str("r9999".into())))
            })
            .count()
    });
    assert_eq!(unknown, 1, "exactly one UnknownRuleFire event recorded");
    // The legitimate rule still fired: the propagation completed.
    assert_eq!(
        sc.obs
            .metrics
            .counter(Scope::Site(site_b.index()), "shell.unknown_rule"),
        1
    );
    let pm = hcm::harness::post_mortem(&sc);
    assert!(
        pm.guarantees.iter().all(|g| g.holds),
        "the well-formed traffic must still satisfy the guarantee"
    );
}
