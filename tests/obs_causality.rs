//! Causal-chain reconstruction, differentially validated against the
//! checker's rule-causality property (Appendix property 5).
//!
//! `hcm::obs::causal_chain` walks an event's trigger links back to a
//! spontaneous root, re-checking the structural half of property 5 on
//! the way. On a valid E1 execution the two must agree: the checker
//! reports no property-5 violations, and *every* non-spontaneous event
//! reconstructs a chain ending in a spontaneous root. On a tampered
//! trace both must flag the same defect.

mod common;

use common::{employees_db, rule_set_of, RID_DST, RID_SRC};
use hcm::checker::check_validity;
use hcm::core::{EventDesc, EventId, ItemId, RuleId, SimTime, SiteId, Trace, Value};
use hcm::obs::{causal_chain, render_chain};
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{ScenarioBuilder, SpontaneousOp};

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

fn e1_trace() -> (Trace, hcm::checker::RuleSet) {
    let rows = [("e0", 1000i64)];
    let mut sc = ScenarioBuilder::new(11)
        .site("A", RawStore::Relational(employees_db(&rows)), RID_SRC)
        .unwrap()
        .site("B", RawStore::Relational(employees_db(&rows)), RID_DST)
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap();
    for (i, v) in [1500i64, 1700, 2100].iter().enumerate() {
        sc.inject(
            SimTime::from_secs(10 + 30 * i as u64),
            "A",
            SpontaneousOp::Sql(format!(
                "update employees set salary = {v} where empid = 'e0'"
            )),
        );
    }
    sc.run_to_quiescence();
    let rules = rule_set_of(&sc);
    (sc.trace(), rules)
}

/// On a valid execution, every triggered event walks back to a
/// spontaneous root, and the checker agrees there is nothing to flag.
#[test]
fn every_triggered_e1_event_reaches_a_spontaneous_root() {
    let (trace, rules) = e1_trace();
    let report = check_validity(&trace, &rules);
    assert!(
        report.of_property(5).is_empty(),
        "checker found causality violations: {:?}",
        report.of_property(5)
    );

    let mut walked = 0;
    for e in trace.events() {
        if e.is_spontaneous() {
            continue;
        }
        let chain = causal_chain(&trace, e.id);
        assert!(
            chain.rooted,
            "event {} did not reach a spontaneous root:\n{}",
            e.id,
            render_chain(&trace, &chain)
        );
        let root = trace.get(chain.root().unwrap()).unwrap();
        assert!(
            root.is_spontaneous(),
            "chain root {} is not spontaneous",
            root.id
        );
        // Chains are consequence-first and time-monotone backwards.
        for pair in chain.ids.windows(2) {
            let (later, earlier) = (trace.get(pair[0]).unwrap(), trace.get(pair[1]).unwrap());
            assert!(earlier.time <= later.time);
        }
        walked += 1;
    }
    assert!(walked > 0, "E1 produced no triggered events to walk");
}

/// The full propagation chain W ⇐ WR ⇐ N ⇐ Ws appears in the rendering
/// of the final write's chain.
#[test]
fn salary_copy_chain_renders_end_to_end() {
    let (trace, _) = e1_trace();
    let w = trace
        .events()
        .iter()
        .rfind(|e| e.desc.tag() == "W")
        .expect("a W landed at B");
    let chain = causal_chain(&trace, w.id);
    assert!(chain.rooted);
    assert_eq!(
        chain.len(),
        4,
        "expected W ⇐ WR ⇐ N ⇐ Ws:\n{}",
        render_chain(&trace, &chain)
    );
    let tags: Vec<&str> = chain
        .ids
        .iter()
        .map(|id| trace.get(*id).unwrap().desc.tag())
        .collect();
    assert_eq!(tags, ["W", "WR", "N", "Ws"]);
    assert!(render_chain(&trace, &chain).contains("[spontaneous root]"));
}

/// Tampering with trigger links breaks the chain walk and trips the
/// checker's property 5 in the same way.
#[test]
fn tampered_trace_breaks_chain_and_property_5() {
    let item = ItemId::plain("X");
    let mut tr = Trace::new();
    let ws = tr.push(
        SimTime::from_millis(10),
        SiteId::new(0),
        EventDesc::Ws {
            item: item.clone(),
            old: None,
            new: Value::Int(1),
        },
        None,
        None,
        None,
    );
    // A notification whose trigger points past the end of the trace.
    let dangling = tr.push(
        SimTime::from_millis(20),
        SiteId::new(0),
        EventDesc::N {
            item: item.clone(),
            value: Value::Int(1),
        },
        None,
        Some(RuleId(0)),
        Some(EventId(999)),
    );
    // And one whose trigger is *later* than the event itself.
    let backwards = tr.push(
        SimTime::from_millis(5),
        SiteId::new(0),
        EventDesc::N {
            item,
            value: Value::Int(1),
        },
        None,
        Some(RuleId(0)),
        Some(ws),
    );

    let c = causal_chain(&tr, dangling);
    assert!(!c.rooted);
    assert!(c.broken.as_deref().unwrap().contains("dangling trigger"));

    let c = causal_chain(&tr, backwards);
    assert!(!c.rooted);
    assert!(c
        .broken
        .as_deref()
        .unwrap()
        .contains("later than its consequence"));

    let report = check_validity(&tr, &hcm::checker::RuleSet::new());
    assert!(
        !report.of_property(5).is_empty(),
        "checker should flag the tampered trigger links too"
    );
}
