//! E11 — clock skew (§7.2).
//!
//! "Such a scenario does not pose a problem as long as the time
//! intervals specified in the guarantee are significantly larger than
//! the expected skew in system clocks … a clock skew of a few seconds
//! (or even minutes) can be accommodated by including an error margin
//! in the interval specified in the guarantee."
//!
//! Sweep the batch machine's clock skew and find where the tight
//! 17:15 window breaks versus where a margin-widened window survives.

use hcm::checker::guarantee::check_guarantee;
use hcm::core::SimTime;
use hcm::protocols::periodic::{clock, BankScenario};

fn run_with_skew(skew_secs: u64) -> hcm::core::Trace {
    let mut b = hcm::protocols::periodic::build(
        11,
        &[("a1", 100)],
        &[SimTime::from_secs(clock::FIVE_PM + skew_secs)],
    );
    b.branch_update(SimTime::from_secs(clock::NINE_AM + 600), "a1", 500);
    b.scenario.inject(
        SimTime::from_secs(clock::EIGHT_AM_NEXT + 600),
        "BR",
        hcm::toolkit::SpontaneousOp::Sql("insert into accounts values ('pad', 1)".into()),
    );
    b.scenario.run_to_quiescence();
    b.scenario.trace()
}

#[test]
fn skew_within_the_batch_margin_is_harmless() {
    // The 17:00 → 17:15 window already contains ~15 min of slack; any
    // skew below it leaves the guarantee intact.
    for skew in [0u64, 30, 120, 600] {
        let trace = run_with_skew(skew);
        let g = BankScenario::night_guarantee(
            clock::FIVE_FIFTEEN_PM * 1000,
            clock::EIGHT_AM_NEXT * 1000,
        );
        let r = check_guarantee(&trace, &g, None);
        assert!(
            r.holds,
            "skew {skew}s should be absorbed: {:#?}",
            r.violations
        );
    }
}

#[test]
fn skew_beyond_the_margin_breaks_the_tight_window() {
    for skew in [1200u64, 3600] {
        let trace = run_with_skew(skew);
        let tight = BankScenario::night_guarantee(
            clock::FIVE_FIFTEEN_PM * 1000,
            clock::EIGHT_AM_NEXT * 1000,
        );
        assert!(
            !check_guarantee(&trace, &tight, None).holds,
            "skew {skew}s must break the tight window"
        );
        // The §7.2 fix: widen the interval by an error margin covering
        // the expected skew.
        let margin = BankScenario::night_guarantee(
            (clock::FIVE_FIFTEEN_PM + skew) * 1000,
            clock::EIGHT_AM_NEXT * 1000,
        );
        let r = check_guarantee(&trace, &margin, None);
        assert!(r.holds, "skew {skew}s: {:#?}", r.violations);
    }
}

#[test]
fn crossover_is_exactly_the_batch_slack() {
    // The window start is 17:15; the batch at 17:00+skew finishes in
    // under a minute. The crossover therefore sits at ~15 minutes of
    // skew: 14 min passes, 16 min fails.
    let tight =
        BankScenario::night_guarantee(clock::FIVE_FIFTEEN_PM * 1000, clock::EIGHT_AM_NEXT * 1000);
    let pass = run_with_skew(14 * 60);
    assert!(check_guarantee(&pass, &tight, None).holds);
    let fail = run_with_skew(16 * 60);
    assert!(!check_guarantee(&fail, &tight, None).holds);
}
