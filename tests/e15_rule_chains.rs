//! E15 — rule chaining and multi-site routing.
//!
//! The appendix's semantics let generated events trigger further rules
//! ("the events that are produced as a result of rules firing are
//! forwarded … as determined during initialization"), and custom event
//! descriptors extend the vocabulary. This test exercises both: a
//! three-site relay where each hop is a strategy rule fired by the
//! previous hop's event, including a custom-event hop, with provenance
//! verified end to end.

mod common;

use common::{rule_set_of, RID_DST};
use hcm::checker::check_validity;
use hcm::core::{EventDesc, ItemId, SimTime, Value};
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{ScenarioBuilder, SpontaneousOp};

const RID_A: &str = r#"
ris = relational
service = 50ms
[interface]
Ws(src(n), b) -> N(src(n), b) within 1s
RR(src(n)) when src(n) = b -> R(src(n), b) within 1s
[command read src]
select v from t where k = $p0
[map src]
table = t
key = k
col = v
"#;

/// Middle site: no database interaction at all — its shell just relays
/// through a custom event (a pure CM hop, like the paper's Site 3
/// shell-without-database arrangement in reverse).
const RID_MID: &str = r#"
ris = kv
service = 50ms
"#;

/// src(n) at A → custom Relay(n, b) at M → WR(salary2(n), b) at B.
const STRATEGY: &str = r#"
[locate]
src = A
Relay = M
salary2 = B

[strategy]
N(src(n), b) -> Relay(n, b) within 5s
Relay(n, b) -> WR(salary2(n), b) within 5s
"#;

#[test]
fn three_site_relay_preserves_provenance_and_validity() {
    let mut t = hcm::ris::relational::Database::new();
    t.create_table("t", &["k", "v"]).unwrap();
    t.execute("insert into t values ('e1', 1)").unwrap();
    let mut dst = hcm::ris::relational::Database::new();
    dst.create_table("employees", &["empid", "salary"]).unwrap();
    dst.execute("insert into employees values ('e1', 1)")
        .unwrap();

    let mut sc = ScenarioBuilder::new(4)
        .site("A", RawStore::Relational(t), RID_A)
        .unwrap()
        .site(
            "M",
            RawStore::Kv(hcm::ris::kvstore::KvStore::new()),
            RID_MID,
        )
        .unwrap()
        .site("B", RawStore::Relational(dst), RID_DST)
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap();
    sc.inject(
        SimTime::from_secs(10),
        "A",
        SpontaneousOp::Sql("update t set v = 42 where k = 'e1'".into()),
    );
    sc.run_to_quiescence();
    let trace = sc.trace();

    // Full causal chain: Ws@A → N@A → Relay@M → WR@B → W@B.
    let tags: Vec<(&str, u32)> = trace
        .events()
        .iter()
        .map(|e| (e.desc.tag(), e.site.index()))
        .collect();
    assert_eq!(
        tags,
        vec![("Ws", 0), ("N", 0), ("Custom", 1), ("WR", 2), ("W", 2)],
        "trace:\n{trace}"
    );
    // Each event's trigger is the previous one.
    for pair in trace.events().windows(2) {
        assert_eq!(pair[1].trigger, Some(pair[0].id));
    }
    // The custom hop carried the bindings.
    let relay = &trace.events()[2];
    assert_eq!(
        relay.desc,
        EventDesc::Custom {
            name: "Relay".into(),
            args: vec![Value::from("e1"), Value::Int(42)]
        }
    );
    // Value landed.
    assert_eq!(
        trace.value_at(
            &ItemId::with("salary2", [Value::from("e1")]),
            trace.end_time()
        ),
        Some(Value::Int(42))
    );
    // And the whole thing is a valid execution — including property 5
    // causality for the chained custom event.
    let report = check_validity(&trace, &rule_set_of(&sc));
    assert!(report.is_valid(), "{:#?}", report.violations);
}

#[test]
fn chains_do_not_loop() {
    // A rule whose RHS event matches its own LHS would loop; the step
    // budget bounds the damage and the test documents the behaviour.
    let strategy = r#"
[locate]
Ping = A
src = A
[strategy]
Ping(b) -> Ping(b) within 1s
N(src(n), b) -> Ping(b) within 1s
"#;
    let mut t = hcm::ris::relational::Database::new();
    t.create_table("t", &["k", "v"]).unwrap();
    t.execute("insert into t values ('e1', 1)").unwrap();
    let mut sc = ScenarioBuilder::new(5)
        .site("A", RawStore::Relational(t), RID_A)
        .unwrap()
        .strategy(strategy)
        .build()
        .unwrap();
    sc.sim.set_step_budget(500);
    sc.inject(
        SimTime::from_secs(1),
        "A",
        SpontaneousOp::Sql("update t set v = 2 where k = 'e1'".into()),
    );
    let outcome = sc.run_to_quiescence();
    assert_eq!(
        outcome,
        hcm::simkit::RunOutcome::StepBudget,
        "runaway bounded"
    );
    // Trace contains many Ping events — the loop really ran.
    assert!(sc.trace().tag_counts().get("Custom").copied().unwrap_or(0) > 100);
}
