//! E14 — ablation: the in-order-delivery assumption is load-bearing.
//!
//! The paper reports that during the hand verification of the §4.2
//! guarantees "important details (such as a requirement for in-order
//! message processing) … were discovered" — formalized as Appendix
//! property 7. This ablation removes the simulator's FIFO channels and
//! shows, mechanically, exactly what the authors discovered: with
//! racing messages, guarantee (3) "Y strictly follows X" breaks, and
//! the validity checker attributes the breakage to property 7.

mod common;

use common::{employees_db, rule_set_of, RID_DST, RID_SRC};
use hcm::checker::{check_validity, guarantee::check_guarantee};
use hcm::core::{SimDuration, SimTime};
use hcm::simkit::{DelayModel, Network};
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B
[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 60s
"#;

/// Heavy jitter so racing messages actually reorder; `fifo` toggles the
/// paper's assumption.
fn run(seed: u64, fifo: bool) -> Scenario {
    let mut net = Network::new(DelayModel {
        base: SimDuration::from_millis(10),
        jitter: SimDuration::from_millis(4_000),
    });
    net.set_fifo(fifo);
    let mut sc = ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 0)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 0)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .network(net)
        .build()
        .unwrap();
    // Closely spaced distinct updates — each pair races on the A→B
    // channel when FIFO is off.
    for i in 0..30u64 {
        sc.inject(
            SimTime::from_millis(5_000 + i * 700),
            "A",
            SpontaneousOp::Sql(format!(
                "update employees set salary = {} where empid = 'e1'",
                1_000 + i
            )),
        );
    }
    sc.run_to_quiescence();
    sc
}

fn strictly_follows() -> hcm::rulelang::Guarantee {
    hcm::rulelang::parse_guarantee(
        "strictly_follows",
        "(salary2(n) = y1) @ t1 and (salary2(n) = y2) @ t2 and t1 < t2 and y1 != y2 => \
         (salary1(n) = y1) @ t3 and (salary1(n) = y2) @ t4 and t3 < t4",
    )
    .unwrap()
}

#[test]
fn with_fifo_order_is_preserved() {
    let sc = run(3, true);
    let trace = sc.trace();
    let report = check_validity(&trace, &rule_set_of(&sc));
    assert!(report.is_valid(), "{:#?}", report.violations);
    let r = check_guarantee(&trace, &strictly_follows(), None);
    assert!(r.holds, "{:#?}", r.violations);
}

#[test]
fn without_fifo_property_7_and_guarantee_3_break() {
    // Racing messages must eventually reorder under 4s jitter with
    // 700ms spacing; scan seeds for a demonstrating run (the ablation
    // is about *possibility*, determinism per seed is kept).
    let mut saw_violation = false;
    for seed in 1..=6u64 {
        let sc = run(seed, false);
        let trace = sc.trace();
        let report = check_validity(&trace, &rule_set_of(&sc));
        let p7 = !report.of_property(7).is_empty();
        let g3_broken = !check_guarantee(&trace, &strictly_follows(), None).holds;
        if p7 {
            assert!(
                g3_broken,
                "seed {seed}: property-7 reordering must surface as a guarantee-(3) violation"
            );
            saw_violation = true;
            break;
        }
    }
    assert!(
        saw_violation,
        "no seed produced a reordering — jitter/spacing too tame for the ablation"
    );
}
