//! E1 — the §4.2 salary copy constraint with Notify(A) + Write(B) and
//! the update-propagation strategy.
//!
//! Paper claim (§4.2.3): with these interfaces and this strategy,
//! guarantees (1) "Y follows X", (2) "X leads Y", (3) "Y strictly
//! follows X" and the metric form (4) are all valid.
//!
//! This test runs the scenario end-to-end through the simulated
//! toolkit, then (a) verifies the recorded execution against the seven
//! appendix validity properties, and (b) mechanically checks all four
//! guarantees on the trace.

mod common;

use common::{employees_db, rule_set_of, RID_DST, RID_SRC};
use hcm::checker::{check_validity, guarantee::check_guarantee};
use hcm::core::{ItemId, SimDuration, SimTime, Value};
use hcm::rulelang::parse_guarantee;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::workload::PoissonWriter;
use hcm::toolkit::{ScenarioBuilder, SpontaneousOp};

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

/// The four §3.3.1 copy guarantees, in the weak-inequality forms that
/// account for the shared initial interpretation (see DESIGN.md).
fn copy_guarantees() -> Vec<hcm::rulelang::Guarantee> {
    vec![
        parse_guarantee(
            "follows",
            "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
        )
        .unwrap(),
        parse_guarantee(
            "leads",
            "(salary1(n) = x) @ t1 => (salary2(n) = x) @ t2 and t2 >= t1",
        )
        .unwrap(),
        parse_guarantee(
            "strictly_follows",
            "(salary2(n) = y1) @ t1 and (salary2(n) = y2) @ t2 and t1 < t2 and y1 != y2 => \
             (salary1(n) = y1) @ t3 and (salary1(n) = y2) @ t4 and t3 < t4",
        )
        .unwrap(),
        parse_guarantee(
            "follows_metric",
            // κ = 10s comfortably covers the 5s rule bound + 1s write
            // bound + network.
            "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t1 - 10s < t2 and t2 <= t1",
        )
        .unwrap(),
    ]
}

fn build(seed: u64) -> hcm::toolkit::Scenario {
    ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000), ("e2", 70_000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000), ("e2", 70_000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap()
}

#[test]
fn scripted_updates_satisfy_all_four_guarantees() {
    let mut sc = build(1);
    for (t, id, v) in [
        (10u64, "e1", 95_000i64),
        (40, "e2", 71_000),
        (70, "e1", 99_000),
    ] {
        sc.inject(
            SimTime::from_secs(t),
            "A",
            SpontaneousOp::Sql(format!(
                "update employees set salary = {v} where empid = '{id}'"
            )),
        );
    }
    sc.run_to_quiescence();
    let trace = sc.trace();

    // The execution is valid per Appendix A.
    let report = check_validity(&trace, &rule_set_of(&sc));
    assert!(
        report.is_valid(),
        "validity violations: {:#?}",
        report.violations
    );
    assert!(
        report.obligations_checked >= 9,
        "expected ≥3 obligations per update"
    );

    // All four §3.3.1 guarantees hold.
    for g in copy_guarantees() {
        let r = check_guarantee(&trace, &g, None);
        assert!(
            r.holds,
            "guarantee `{}` violated: {:#?}",
            g.name, r.violations
        );
        assert!(r.instantiations > 0, "guarantee `{}` was vacuous", g.name);
    }

    // And the databases really agree at the end.
    for id in ["e1", "e2"] {
        let a = trace.value_at(
            &ItemId::with("salary1", [Value::from(id)]),
            trace.end_time(),
        );
        let b = trace.value_at(
            &ItemId::with("salary2", [Value::from(id)]),
            trace.end_time(),
        );
        assert_eq!(a, b, "databases diverge for {id}");
    }
}

#[test]
fn poisson_workload_satisfies_guarantees() {
    let mut sc = build(7);
    let target = sc.site("A").translator;
    sc.add_actor_for(
        "A",
        Box::new(PoissonWriter::sql_updates(
            target,
            SimDuration::from_secs(30),
            SimTime::from_secs(600),
            "employees",
            "salary",
            "empid",
            vec!["e1".into(), "e2".into()],
            (50_000, 120_000),
        )),
    );
    sc.run_to_quiescence();
    let trace = sc.trace();
    assert!(
        trace.len() > 20,
        "workload too small: {} events",
        trace.len()
    );

    let report = check_validity(&trace, &rule_set_of(&sc));
    assert!(
        report.is_valid(),
        "validity violations: {:#?}",
        report.violations
    );

    for g in copy_guarantees() {
        let r = check_guarantee(&trace, &g, None);
        assert!(
            r.holds,
            "guarantee `{}` violated: {:#?}",
            g.name, r.violations
        );
    }
}

#[test]
fn per_update_propagation_latency_within_bounds() {
    let mut sc = build(3);
    sc.inject(
        SimTime::from_secs(10),
        "A",
        SpontaneousOp::Sql("update employees set salary = 95000 where empid = 'e1'".into()),
    );
    sc.run_to_quiescence();
    let trace = sc.trace();
    let ws = &trace.events()[0];
    let w = trace
        .events()
        .iter()
        .find(|e| e.desc.tag() == "W")
        .expect("propagated write");
    let latency = w.time - ws.time;
    // 2s notify bound + 5s strategy bound + 1s write bound is the
    // theoretical worst case; with 200ms service delays and campus
    // network latency the real chain is well under a second.
    assert!(latency < SimDuration::from_secs(8), "latency {latency}");
    assert!(
        latency >= SimDuration::from_millis(400),
        "latency implausibly low: {latency}"
    );
}
