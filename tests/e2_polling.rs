//! E2 — the §4.2.3 interface change: site A withdraws its notify
//! interface and offers only a read interface, forcing the polling
//! strategy
//!
//! ```text
//! P(60s) -> RR(X) within 1s
//! R(X, b) -> WR(Y, b) within 5s
//! ```
//!
//! Paper claims: guarantees (1), (3), (4) remain valid; guarantee (2)
//! "X leads Y" is **not** valid, because "it is possible for us to
//! 'miss' updates when two or more updates occur in the same polling
//! interval".

mod common;

use common::{employees_db, rule_set_of, RID_DST};
use hcm::checker::{check_validity, guarantee::check_guarantee};
use hcm::core::{SimTime, Value};
use hcm::rulelang::parse_guarantee;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};

/// Site A now offers only the read interface (no notify).
const RID_SRC_READONLY: &str = r#"
ris = relational
service = 200ms
[interface]
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

const POLLING_STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
P(60s) -> RR(salary1("e1")) within 1s
R(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

fn build(seed: u64, horizon_secs: u64) -> Scenario {
    ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_SRC_READONLY,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(POLLING_STRATEGY)
        .stop_periodics_at(SimTime::from_secs(horizon_secs))
        .build()
        .unwrap()
}

fn update(sc: &mut Scenario, t: u64, v: i64) {
    sc.inject(
        SimTime::from_secs(t),
        "A",
        SpontaneousOp::Sql(format!(
            "update employees set salary = {v} where empid = 'e1'"
        )),
    );
}

fn g(name: &str, body: &str) -> hcm::rulelang::Guarantee {
    parse_guarantee(name, body).unwrap()
}

#[test]
fn polling_keeps_follows_and_order_but_loses_leads() {
    let mut sc = build(5, 600);
    // Two updates inside one 60s polling interval: 95k at 70s, 99k at
    // 80s. The 120s poll only sees 99k — 95k is missed. A later lone
    // update (101k at 130s) is picked up by the 180s poll.
    update(&mut sc, 70, 95_000);
    update(&mut sc, 80, 99_000);
    update(&mut sc, 130, 101_000);
    sc.run_to_quiescence();
    let trace = sc.trace();

    // The execution is still valid — polling breaks a guarantee, not
    // the rule semantics.
    let report = check_validity(&trace, &rule_set_of(&sc));
    assert!(report.is_valid(), "{:#?}", report.violations);

    // (1) follows: Y only takes values X has taken.
    let follows = g(
        "follows",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
    );
    let r = check_guarantee(&trace, &follows, None);
    assert!(r.holds, "{:#?}", r.violations);

    // (3) strictly follows: sampled subsequence preserves order.
    let strict = g(
        "strictly_follows",
        "(salary2(n) = y1) @ t1 and (salary2(n) = y2) @ t2 and t1 < t2 and y1 != y2 => \
         (salary1(n) = y1) @ t3 and (salary1(n) = y2) @ t4 and t3 < t4",
    );
    let r = check_guarantee(&trace, &strict, None);
    assert!(r.holds, "{:#?}", r.violations);

    // (4) metric follows with κ = poll period + bounds (60s + 10s).
    let metric = g(
        "follows_metric",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t1 - 70s < t2 and t2 <= t1",
    );
    let r = check_guarantee(&trace, &metric, None);
    assert!(r.holds, "{:#?}", r.violations);

    // (2) leads: VIOLATED — 95k never reaches Y.
    let leads = g(
        "leads",
        "(salary1(n) = x) @ t1 => (salary2(n) = x) @ t2 and t2 >= t1",
    );
    let r = check_guarantee(&trace, &leads, None);
    assert!(
        !r.holds,
        "guarantee (2) must fail under polling with intra-interval updates"
    );
    assert!(r
        .violations
        .iter()
        .any(|v| v.instantiation.contains("95000")));

    // Sanity: the slow lone update did make it.
    let y_vals = trace
        .timeline(&hcm::core::ItemId::with("salary2", [Value::from("e1")]))
        .values_taken();
    assert!(y_vals.contains(&Value::Int(99_000)));
    assert!(y_vals.contains(&Value::Int(101_000)));
    assert!(!y_vals.contains(&Value::Int(95_000)), "95k must be skipped");
}

#[test]
fn leads_survives_when_updates_are_slower_than_polling() {
    let mut sc = build(6, 600);
    // One update per interval: nothing is missed.
    update(&mut sc, 70, 95_000);
    update(&mut sc, 140, 99_000);
    sc.run_to_quiescence();
    let trace = sc.trace();
    let leads = g(
        "leads",
        "(salary1(n) = x) @ t1 => (salary2(n) = x) @ t2 and t2 >= t1",
    );
    let r = check_guarantee(&trace, &leads, None);
    assert!(r.holds, "{:#?}", r.violations);
}

/// Miss-rate sweep: fraction of X's values that never reach Y, as a
/// function of updates per polling interval. This is the quantitative
/// shape behind the paper's qualitative claim — the bench
/// `polling_sweep` reports the full series.
#[test]
fn miss_rate_grows_with_update_rate() {
    let miss_rate = |gap_secs: u64| -> f64 {
        let mut sc = build(9, 1200);
        let mut t = 65;
        let mut v = 90_001;
        while t < 1100 {
            update(&mut sc, t, v);
            t += gap_secs;
            v += 1;
        }
        sc.run_to_quiescence();
        let trace = sc.trace();
        let x_vals = trace
            .timeline(&hcm::core::ItemId::with("salary1", [Value::from("e1")]))
            .values_taken();
        let y_vals = trace
            .timeline(&hcm::core::ItemId::with("salary2", [Value::from("e1")]))
            .values_taken();
        let missed = x_vals.iter().filter(|v| !y_vals.contains(v)).count();
        missed as f64 / x_vals.len() as f64
    };
    let slow = miss_rate(90); // slower than the 60s poll
    let fast = miss_rate(15); // 4 updates per poll interval
    assert!(slow < 0.15, "slow workload should rarely miss (got {slow})");
    assert!(
        fast > 0.5,
        "fast workload should miss most values (got {fast})"
    );
    assert!(fast > slow);
}
