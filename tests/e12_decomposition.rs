//! E12 — decomposing a complex constraint into copy constraints (§7.1).
//!
//! "Consider the constraint X = Y + Z, where X, Y, and Z are at three
//! different sites. A common way to manage this constraint is to have
//! cached copies Yc and Zc of Y and Z, respectively, at the site where
//! X is. Hence, we would have the constraints X = Yc + Zc, Yc = Y and
//! Zc = Z. Only the simple copy constraints are distributed."
//!
//! Here: Y and Z live in two notify-capable databases; the toolkit's
//! propagation rules maintain CM-private `Yc`/`Zc` at X's shell; a
//! local recompute agent (the "local constraint manager" of X's site)
//! keeps `X = Yc + Zc` using only local data — no global transactions
//! anywhere, exactly the paper's point.

mod common;

use hcm::checker::guarantee::check_guarantee;
use hcm::core::{ItemId, Shared, SimDuration, SimTime, Value};
use hcm::simkit::{Actor, ActorId, Ctx};
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::msg::{CmMsg, RequestKind, TranslatorEvent};
use hcm::toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};
use std::collections::BTreeMap;

const RID_X: &str = r#"
ris = relational
service = 50ms
[interface]
WR(X, b) -> W(X, b) within 1s
RR(X) when X = b -> R(X, b) within 1s
[command write X]
update vals set v = $value where k = 'X'
[command read X]
select v from vals where k = 'X'
[map X]
table = vals
key = k
col = v
row = X
"#;

const RID_Y: &str = r#"
ris = relational
service = 50ms
[interface]
Ws(Y, b) -> N(Y, b) within 1s
RR(Y) when Y = b -> R(Y, b) within 1s
[command read Y]
select v from vals where k = 'Y'
[map Y]
table = vals
key = k
col = v
row = Y
"#;

const RID_Z: &str = r#"
ris = kv
service = 50ms
[interface]
Ws(Z, b) -> N(Z, b) within 1s
[map Z]
key = z
"#;

/// The copy constraints are plain toolkit strategy rules; `Yc`/`Zc` are
/// CM-private items at X's shell (the RHS site of both rules).
const STRATEGY: &str = r#"
[locate]
X = SX
Y = SY
Z = SZ

[private]
Yc = SX
Zc = SX

[strategy]
N(Y, b) -> W(Yc, b) within 5s
N(Z, b) -> W(Zc, b) within 5s
"#;

/// The local constraint manager of X's site: watches the cached copies
/// (same-machine data) and rewrites X whenever their sum changes. Local
/// reads + one local write request — no cross-site access.
struct RecomputeAgent {
    translator: ActorId,
    private: Shared<BTreeMap<ItemId, Value>>,
    last_written: Option<i64>,
    period: SimDuration,
    stop_at: SimTime,
    next_req: u64,
}

impl Actor<CmMsg> for RecomputeAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        ctx.schedule_self(self.period, CmMsg::Heartbeat);
    }

    fn on_message(&mut self, msg: CmMsg, ctx: &mut Ctx<'_, CmMsg>) {
        match msg {
            CmMsg::Heartbeat => {
                let sum = {
                    let p = self.private.borrow();
                    let yc = p.get(&ItemId::plain("Yc")).and_then(Value::as_int);
                    let zc = p.get(&ItemId::plain("Zc")).and_then(Value::as_int);
                    match (yc, zc) {
                        (Some(y), Some(z)) => Some(y + z),
                        _ => None,
                    }
                };
                if let Some(sum) = sum {
                    if self.last_written != Some(sum) {
                        self.last_written = Some(sum);
                        let req_id = self.next_req;
                        self.next_req += 1;
                        let me = ctx.me();
                        ctx.send_local(
                            self.translator,
                            CmMsg::Request {
                                req_id,
                                reply_to: me,
                                rule: None,
                                trigger: None,
                                kind: RequestKind::Write(ItemId::plain("X"), Value::Int(sum)),
                            },
                            SimDuration::from_millis(1),
                        );
                    }
                }
                if ctx.now() + self.period <= self.stop_at {
                    ctx.schedule_self(self.period, CmMsg::Heartbeat);
                }
            }
            CmMsg::Cmi(TranslatorEvent::WriteDone { .. }) => {}
            other => panic!("recompute agent: unexpected {other:?}"),
        }
    }
}

fn build(seed: u64, stop: u64) -> Scenario {
    let mut vals_x = hcm::ris::relational::Database::new();
    vals_x.create_table("vals", &["k", "v"]).unwrap();
    vals_x.execute("insert into vals values ('X', 30)").unwrap();
    let mut vals_y = hcm::ris::relational::Database::new();
    vals_y.create_table("vals", &["k", "v"]).unwrap();
    vals_y.execute("insert into vals values ('Y', 10)").unwrap();
    let mut kv_z = hcm::ris::kvstore::KvStore::new();
    kv_z.put("z", Value::Int(20));

    let mut sc = ScenarioBuilder::new(seed)
        .site("SX", RawStore::Relational(vals_x), RID_X)
        .unwrap()
        .site("SY", RawStore::Relational(vals_y), RID_Y)
        .unwrap()
        .site("SZ", RawStore::Kv(kv_z), RID_Z)
        .unwrap()
        .strategy(STRATEGY)
        .private_data("SX", ItemId::plain("Yc"), Value::Int(10))
        .private_data("SX", ItemId::plain("Zc"), Value::Int(20))
        .stop_periodics_at(SimTime::from_secs(stop))
        .build()
        .unwrap();
    let tx = sc.site("SX").translator;
    let private = sc.site("SX").private.clone();
    sc.add_actor_for(
        "SX",
        Box::new(RecomputeAgent {
            translator: tx,
            private,
            last_written: Some(30),
            period: SimDuration::from_secs(1),
            stop_at: SimTime::from_secs(stop),
            next_req: 0,
        }),
    );
    sc
}

#[test]
fn sum_constraint_converges_after_each_update() {
    let mut sc = build(1, 200);
    sc.inject(
        SimTime::from_secs(10),
        "SY",
        SpontaneousOp::Sql("update vals set v = 50 where k = 'Y'".into()),
    );
    sc.inject(
        SimTime::from_secs(60),
        "SZ",
        SpontaneousOp::KvPut {
            key: "z".into(),
            value: Value::Int(-5),
        },
    );
    sc.run_to_quiescence();
    let trace = sc.trace();

    // Final agreement: X = Y + Z across three sites.
    let end = trace.end_time();
    let x = trace
        .value_at(&ItemId::plain("X"), end)
        .and_then(|v| v.as_int())
        .unwrap();
    let y = trace
        .value_at(&ItemId::plain("Y"), end)
        .and_then(|v| v.as_int())
        .unwrap();
    let z = trace
        .value_at(&ItemId::plain("Z"), end)
        .and_then(|v| v.as_int())
        .unwrap();
    assert_eq!(x, y + z, "X={x} Y={y} Z={z}");
    assert_eq!(x, 45);

    // The guarantee language expresses the *local* constraint directly:
    // X equals the cached sum, metrically (within the recompute period
    // + write bound of any cache change).
    let local = hcm::rulelang::parse_guarantee(
        "local_sum",
        "(X = s) @ t1 and t1 >= 5s => (Yc + Zc = s) @ t2 and t1 - 4s < t2 and t2 <= t1",
    )
    .unwrap();
    let r = check_guarantee(&trace, &local, None);
    assert!(r.holds, "{:#?}", r.violations);

    // And the distributed parts are ordinary copy guarantees.
    for (cache, src) in [("Yc", "Y"), ("Zc", "Z")] {
        let g = hcm::rulelang::parse_guarantee(
            "copy",
            &format!("({cache} = v) @ t1 => ({src} = v) @ t2 and t2 <= t1"),
        )
        .unwrap();
        let r = check_guarantee(&trace, &g, None);
        assert!(r.holds, "{cache}: {:#?}", r.violations);
    }
}

#[test]
fn concurrent_updates_still_converge() {
    let mut sc = build(2, 400);
    // Interleaved updates on both inputs.
    for i in 0..6u64 {
        sc.inject(
            SimTime::from_secs(10 + i * 13),
            "SY",
            SpontaneousOp::Sql(format!(
                "update vals set v = {} where k = 'Y'",
                10 + i as i64
            )),
        );
        sc.inject(
            SimTime::from_secs(14 + i * 17),
            "SZ",
            SpontaneousOp::KvPut {
                key: "z".into(),
                value: Value::Int(20 - i as i64),
            },
        );
    }
    sc.run_to_quiescence();
    let trace = sc.trace();
    let end = trace.end_time();
    let x = trace
        .value_at(&ItemId::plain("X"), end)
        .and_then(|v| v.as_int())
        .unwrap();
    let y = trace
        .value_at(&ItemId::plain("Y"), end)
        .and_then(|v| v.as_int())
        .unwrap();
    let z = trace
        .value_at(&ItemId::plain("Z"), end)
        .and_then(|v| v.as_int())
        .unwrap();
    assert_eq!(x, y + z);
}
