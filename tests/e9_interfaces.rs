//! E9 — the interface menu of §3.1.1, exercised end-to-end.
//!
//! * **Conditional notify** ("a notification … only when the update
//!   changes the value of X by more than 10%") reduces notification
//!   traffic; the constraint weakens accordingly.
//! * **Periodic notify** (`P(p) ∧ X = b →ε N(X, b)`) bounds staleness
//!   by `p + ε` without any trigger facility at the source.

mod common;

use common::{employees_db, rule_set_of, RID_DST};
use hcm::checker::{check_validity, guarantee::check_guarantee};
use hcm::core::{ItemId, SimTime, Value};
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{ScenarioBuilder, SpontaneousOp};

/// Site A with a *conditional* notify interface: only >10% changes are
/// reported.
const RID_SRC_CONDITIONAL: &str = r#"
ris = relational
service = 200ms
[interface]
Ws(salary1(n), a, b) when abs(b - a) > 0.1 * a -> N(salary1(n), b) within 2s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

/// Site A (a whois directory!) with a periodic notify interface: the
/// phone directory is dumped every 60s. No triggers, no SQL — the
/// weakest realistic source.
const RID_SRC_PERIODIC_WHOIS: &str = r#"
ris = whois
service = 100ms
[interface]
P(60s) when wphone(n) = b -> N(wphone(n), b) within 1s
[map wphone]
field = phone
"#;

const PROPAGATE: &str = r#"
[locate]
salary1 = A
salary2 = B
[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
"#;

#[test]
fn conditional_notify_suppresses_small_changes() {
    let mut sc = ScenarioBuilder::new(1)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 100_000)])),
            RID_SRC_CONDITIONAL,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 100_000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(PROPAGATE)
        .build()
        .unwrap();
    // +5% (suppressed), then +20% (notified), then -1% (suppressed).
    for (t, v) in [(10u64, 105_000i64), (20, 126_000), (30, 124_700)] {
        sc.inject(
            SimTime::from_secs(t),
            "A",
            SpontaneousOp::Sql(format!(
                "update employees set salary = {v} where empid = 'e1'"
            )),
        );
    }
    sc.run_to_quiescence();
    let a = sc.site("A");
    assert_eq!(a.translator_stats.borrow().notifications, 1);
    assert_eq!(a.translator_stats.borrow().suppressed, 2);
    let trace = sc.trace();
    // Only the big change propagated.
    let item2 = ItemId::with("salary2", [Value::from("e1")]);
    assert_eq!(
        trace.timeline(&item2).values_taken(),
        vec![Value::Int(100_000), Value::Int(126_000)]
    );
    // The execution is valid: the interface's own condition discharges
    // the suppressed obligations.
    let report = check_validity(&trace, &rule_set_of(&sc));
    assert!(report.is_valid(), "{:#?}", report.violations);
    // "leads" cannot hold (suppression loses values); "follows" can.
    let follows = hcm::rulelang::parse_guarantee(
        "follows",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
    )
    .unwrap();
    let fr = check_guarantee(&trace, &follows, None);
    assert!(fr.holds, "violations {:#?}\ntrace:\n{trace}", fr.violations);
    let leads = hcm::rulelang::parse_guarantee(
        "leads",
        "(salary1(n) = x) @ t1 => (salary2(n) = x) @ t2 and t2 >= t1",
    )
    .unwrap();
    assert!(!check_guarantee(&trace, &leads, None).holds);
}

/// Destination CM-RID for the whois scenario: phone numbers in a
/// writable relational mirror.
const RID_DST_PHONES: &str = r#"
ris = relational
service = 100ms
[interface]
WR(mphone(n), b) -> W(mphone(n), b) within 1s
[command write mphone]
update phones set phone = $value where name = $p0
[command insert mphone]
insert into phones values ($p0, $value)
[command read mphone]
select phone from phones where name = $p0
[map mphone]
table = phones
key = name
col = phone
"#;

const WHOIS_STRATEGY: &str = r#"
[locate]
wphone = A
mphone = B
[strategy]
N(wphone(n), b) -> WR(mphone(n), b) within 5s
"#;

#[test]
fn periodic_notify_bounds_staleness_by_period() {
    let mut dir = hcm::ris::whois::WhoisDir::new();
    dir.admin_set("ann", "phone", "555-0100");
    let mut phones = hcm::ris::relational::Database::new();
    phones.create_table("phones", &["name", "phone"]).unwrap();
    phones
        .execute("insert into phones values ('ann', '555-0100')")
        .unwrap();

    let mut sc = ScenarioBuilder::new(2)
        .site("A", RawStore::Whois(dir), RID_SRC_PERIODIC_WHOIS)
        .unwrap()
        .site("B", RawStore::Relational(phones), RID_DST_PHONES)
        .unwrap()
        .strategy(WHOIS_STRATEGY)
        .stop_periodics_at(SimTime::from_secs(400))
        .build()
        .unwrap();

    // The administrator changes Ann's number at t = 75s — between the
    // 60s and 120s dumps.
    sc.inject(
        SimTime::from_secs(75),
        "A",
        SpontaneousOp::WhoisSet {
            name: "ann".into(),
            field: "phone".into(),
            value: "555-0199".into(),
        },
    );
    sc.run_to_quiescence();
    let trace = sc.trace();

    // The mirror got the new number shortly after the 120s dump.
    let mirror = ItemId::with("mphone", [Value::from("ann")]);
    let update_event = trace
        .events()
        .iter()
        .find(|e| {
            matches!(&e.desc, hcm::core::EventDesc::W { item, value }
                if *item == mirror && *value == Value::from("555-0199"))
        })
        .expect("mirror updated");
    assert!(update_event.time >= SimTime::from_secs(120));
    assert!(
        update_event.time <= SimTime::from_secs(128),
        "staleness must be bounded by period + bounds, got {}",
        update_event.time
    );

    // Metric guarantee with κ = period + slack (70s) holds; κ smaller
    // than the period cannot.
    let wide = hcm::rulelang::parse_guarantee(
        "mirror_fresh",
        "(mphone(n) = y) @ t1 => (wphone(n) = y) @ t2 and t1 - 70s < t2 and t2 <= t1",
    )
    .unwrap();
    let r = check_guarantee(&trace, &wide, None);
    assert!(r.holds, "{:#?}", r.violations);

    // Every periodic dump produced a notification (ann exists): at
    // least 6 polls in 400s.
    let n_count = trace.tag_counts().get("N").copied().unwrap_or(0);
    assert!(n_count >= 6, "got {n_count} notifications");
    let p_count = trace.tag_counts().get("P").copied().unwrap_or(0);
    assert!(p_count >= 6);
}

#[test]
fn periodic_notify_trace_is_valid() {
    let mut dir = hcm::ris::whois::WhoisDir::new();
    dir.admin_set("ann", "phone", "1");
    let mut phones = hcm::ris::relational::Database::new();
    phones.create_table("phones", &["name", "phone"]).unwrap();
    let mut sc = ScenarioBuilder::new(3)
        .site("A", RawStore::Whois(dir), RID_SRC_PERIODIC_WHOIS)
        .unwrap()
        .site("B", RawStore::Relational(phones), RID_DST_PHONES)
        .unwrap()
        .strategy(WHOIS_STRATEGY)
        .stop_periodics_at(SimTime::from_secs(200))
        .build()
        .unwrap();
    sc.run_to_quiescence();
    let trace = sc.trace();
    let report = check_validity(&trace, &rule_set_of(&sc));
    assert!(report.is_valid(), "{:#?}", report.violations);
    assert!(report.obligations_checked > 0);
}
