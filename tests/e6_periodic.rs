//! E6 — the §6.4 banking scenario and its periodic guarantee,
//! integration level (multi-account randomized day).

use hcm::core::SimTime;
use hcm::protocols::periodic::{clock, BankScenario};
use hcm::simkit::SimRng;

#[test]
fn randomized_working_day_yields_the_night_guarantee() {
    for seed in [1u64, 2, 3] {
        let accounts: Vec<(String, i64)> =
            (0..8).map(|i| (format!("a{i}"), 1000 + i as i64)).collect();
        let refs: Vec<(&str, i64)> = accounts.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let mut b =
            hcm::protocols::periodic::build(seed, &refs, &[SimTime::from_secs(clock::FIVE_PM)]);
        let mut rng = SimRng::seeded(seed * 31);
        // Random updates strictly inside banking hours.
        for _ in 0..30 {
            let t = rng.int_in(clock::NINE_AM as i64, (clock::FIVE_PM - 120) as i64) as u64;
            let acct = format!("a{}", rng.int_in(0, 7));
            let v = rng.int_in(0, 10_000);
            b.branch_update(SimTime::from_secs(t), &acct, v);
        }
        // Horizon pad past 08:00 next day.
        b.scenario.inject(
            SimTime::from_secs(clock::EIGHT_AM_NEXT + 600),
            "BR",
            hcm::toolkit::SpontaneousOp::Sql("insert into accounts values ('pad', 1)".into()),
        );
        b.scenario.run_to_quiescence();
        let trace = b.scenario.trace();

        // The batch finished inside the 15-minute window.
        let finish = b.stats.borrow().last_finish.expect("batch ran");
        assert!(
            finish <= SimTime::from_secs(clock::FIVE_FIFTEEN_PM),
            "seed {seed}: batch finished at {finish}"
        );

        let g = BankScenario::night_guarantee(
            clock::FIVE_FIFTEEN_PM * 1000,
            clock::EIGHT_AM_NEXT * 1000,
        );
        let r = hcm::checker::guarantee::check_guarantee(&trace, &g, None);
        assert!(r.holds, "seed {seed}: {:#?}", r.violations);
        assert!(r.instantiations > 0);
    }
}

#[test]
fn batch_cost_scales_with_accounts_not_updates() {
    // 3 accounts, many updates: the batch still propagates each account
    // once — the message economy of periodic strategies.
    let mut b = hcm::protocols::periodic::build(
        7,
        &[("a0", 1), ("a1", 2), ("a2", 3)],
        &[SimTime::from_secs(clock::FIVE_PM)],
    );
    for i in 0..50 {
        b.branch_update(
            SimTime::from_secs(clock::NINE_AM + 60 * i),
            &format!("a{}", i % 3),
            i as i64,
        );
    }
    b.scenario.run_to_quiescence();
    assert_eq!(
        b.stats.borrow().propagated,
        3,
        "one write per account, not per update"
    );
}
