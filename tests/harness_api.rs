//! The `hcm::harness` post-mortem API — the one-call check downstream
//! users run after a scenario.

mod common;

use common::{employees_db, RID_DST, RID_SRC};
use hcm::core::SimTime;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{ScenarioBuilder, SpontaneousOp};

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s

[guarantee follows]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1

[guarantee leads]
(salary1(n) = x) @ t1 => (salary2(n) = x) @ t2 and t2 >= t1
"#;

#[test]
fn post_mortem_checks_validity_and_declared_guarantees() {
    let mut sc = ScenarioBuilder::new(8)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 100)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 100)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap();
    sc.inject(
        SimTime::from_secs(10),
        "A",
        SpontaneousOp::Sql("update employees set salary = 200 where empid = 'e1'".into()),
    );
    sc.run_to_quiescence();

    let pm = hcm::harness::post_mortem(&sc);
    assert!(
        pm.all_good(),
        "validity: {:#?}\nguarantees: {:#?}",
        pm.validity,
        pm.guarantees
    );
    assert_eq!(pm.guarantees.len(), 2);
    assert!(pm.guarantees.iter().any(|g| g.name == "follows"));
    assert!(pm.trace.len() >= 4);
    assert!(pm.validity.obligations_checked >= 3);
}

#[test]
fn post_mortem_reports_broken_guarantees() {
    // Sabotage: a spontaneous write at B violates its no-spontaneous-
    // write promise AND makes `follows` false (salary2 takes a value
    // salary1 never had).
    let mut sc = ScenarioBuilder::new(9)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 100)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 100)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap();
    sc.inject(
        SimTime::from_secs(10),
        "B",
        SpontaneousOp::Sql("update employees set salary = 777 where empid = 'e1'".into()),
    );
    // Horizon pad so `leads` has settling room.
    sc.inject(
        SimTime::from_secs(60),
        "A",
        SpontaneousOp::Sql("update employees set salary = 101 where empid = 'e1'".into()),
    );
    sc.run_to_quiescence();

    let pm = hcm::harness::post_mortem(&sc);
    assert!(!pm.all_good());
    // The prohibition breach shows up in validity…
    assert!(pm
        .validity
        .of_property(6)
        .iter()
        .any(|v| v.msg.contains("prohibited")));
    // …and the rogue value breaks `follows`.
    let follows = pm.guarantees.iter().find(|g| g.name == "follows").unwrap();
    assert!(!follows.holds);
}
