//! E7 — failure handling (§5).
//!
//! Paper claims: a **metric failure** (time bounds missed, service
//! eventually provided) invalidates only *metric* guarantees — the
//! non-metric ones "continue to be valid, which may allow many
//! applications to continue to function". A **logical failure**
//! (interface statements void) invalidates both, "until the system is
//! reset". The CM detects failures and propagates the information so
//! guarantees can be marked invalid at every shell.

mod common;

use common::{employees_db, RID_DST, RID_SRC};
use hcm::checker::guarantee::check_guarantee;
use hcm::core::{EventDesc, SimDuration, SimTime, Value};
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::shell::FailureConfig;
use hcm::toolkit::{GuaranteeStatus, Scenario, ScenarioBuilder, SpontaneousOp};

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s

[guarantee follows]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1

[guarantee follows_metric]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t1 - 10s < t2 and t2 <= t1
"#;

fn build(seed: u64) -> Scenario {
    ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .failure_config(FailureConfig {
            deadline: SimDuration::from_secs(5),
            escalation: SimDuration::from_secs(30),
            heartbeat: None,
        })
        .build()
        .unwrap()
}

fn update(sc: &mut Scenario, t: u64, v: i64) {
    sc.inject(
        SimTime::from_secs(t),
        "A",
        SpontaneousOp::Sql(format!(
            "update employees set salary = {v} where empid = 'e1'"
        )),
    );
}

#[test]
fn overload_causes_metric_failure_and_suspends_only_metric_guarantees() {
    let mut sc = build(1);
    // B's database is overloaded 30s–200s: every operation takes 20s
    // longer than normal — well beyond the 5s detection deadline.
    sc.overload(
        "B",
        SimTime::from_secs(30),
        SimTime::from_secs(200),
        SimDuration::from_secs(20),
    );
    update(&mut sc, 40, 95_000);

    // Run just past the detection deadline.
    sc.run_until(SimTime::from_secs(48));
    let reg_b = sc.site("B").registry.borrow().status("follows_metric");
    assert_eq!(reg_b, Some(GuaranteeStatus::SuspendedMetric));
    let nonmetric_b = sc.site("B").registry.borrow().status("follows");
    assert_eq!(
        nonmetric_b,
        Some(GuaranteeStatus::Valid),
        "non-metric survives"
    );
    // Propagated to the other shell too.
    assert_eq!(
        sc.site("A").registry.borrow().status("follows_metric"),
        Some(GuaranteeStatus::SuspendedMetric)
    );

    // The late write eventually lands (metric, not logical): guarantees
    // clear once the response arrives.
    sc.run_to_quiescence();
    assert_eq!(
        sc.site("B").registry.borrow().status("follows_metric"),
        Some(GuaranteeStatus::Valid),
        "late response clears a metric failure"
    );
    assert_eq!(
        sc.site("B").shell_stats.borrow().metric_failures_detected,
        1
    );
    assert_eq!(sc.site("B").shell_stats.borrow().failures_cleared, 1);
    assert_eq!(
        sc.site("B").shell_stats.borrow().logical_failures_detected,
        0
    );

    // The trace confirms the paper's semantics: the *non-metric*
    // follows guarantee still holds on the actual data…
    let trace = sc.trace();
    let follows = hcm::rulelang::parse_guarantee(
        "follows",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
    )
    .unwrap();
    assert!(check_guarantee(&trace, &follows, None).holds);
    // …while the metric one was genuinely violated during the episode.
    let metric = hcm::rulelang::parse_guarantee(
        "follows_metric",
        "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t1 - 10s < t2 and t2 <= t1",
    )
    .unwrap();
    assert!(
        !check_guarantee(&trace, &metric, None).holds,
        "the 20s-delayed write must break the 10s κ bound"
    );
}

#[test]
fn crash_causes_logical_failure_requiring_reset() {
    let mut sc = build(2);
    // B crashes losing messages, and never recovers within the horizon.
    sc.crash("B", SimTime::from_secs(30), true);
    update(&mut sc, 40, 95_000);
    sc.run_until(SimTime::from_secs(300));

    // 5s deadline → metric flag; +30s escalation → logical.
    let b = sc.site("B");
    assert_eq!(b.shell_stats.borrow().metric_failures_detected, 1);
    assert_eq!(b.shell_stats.borrow().logical_failures_detected, 1);
    assert_eq!(
        b.registry.borrow().status("follows"),
        Some(GuaranteeStatus::SuspendedLogical),
        "logical failure takes down non-metric guarantees too"
    );
    assert_eq!(
        sc.site("A").registry.borrow().status("follows"),
        Some(GuaranteeStatus::SuspendedLogical)
    );

    // Only a reset restores validity (§5).
    sc.site("B")
        .registry
        .borrow_mut()
        .reset(SimTime::from_secs(300));
    assert_eq!(
        sc.site("B").registry.borrow().status("follows"),
        Some(GuaranteeStatus::Valid)
    );
}

#[test]
fn detection_latency_is_bounded_by_the_deadline() {
    let mut sc = build(3);
    sc.crash("B", SimTime::from_secs(30), true);
    update(&mut sc, 40, 95_000);
    sc.run_until(SimTime::from_secs(120));
    let trace = sc.trace();
    // Find the WR (request receipt would be lost — the request message
    // itself is dropped at the crashed translator, so detection keys
    // off the requesting shell's own send time) and the detection
    // event.
    let detect = trace
        .events()
        .iter()
        .find(|e| {
            matches!(&e.desc, EventDesc::Custom { name, args }
            if name == "FailureDetected" && args.get(1) == Some(&Value::from("metric")))
        })
        .expect("metric failure detected");
    // The N that triggered the request happened ~40.x s; the deadline
    // is 5s; detection must land within ~6s of the N event.
    let n_event = trace
        .events()
        .iter()
        .find(|e| e.desc.tag() == "N")
        .expect("notify");
    let latency = detect.time.saturating_since(n_event.time);
    assert!(
        latency <= SimDuration::from_millis(5_200),
        "detection latency {latency} exceeds deadline + slack"
    );
}

#[test]
fn recovery_replays_and_clears_even_after_crash() {
    // A *non-lossy* crash ("the database can remember messages", §5):
    // requests queue and replay at recovery, so the failure stays
    // metric and clears on its own.
    let mut sc = build(4);
    sc.crash("B", SimTime::from_secs(30), false);
    sc.recover("B", SimTime::from_secs(50));
    update(&mut sc, 40, 95_000);
    sc.run_to_quiescence();
    let b = sc.site("B");
    assert_eq!(b.shell_stats.borrow().metric_failures_detected, 1);
    assert_eq!(b.shell_stats.borrow().logical_failures_detected, 0);
    assert_eq!(b.shell_stats.borrow().failures_cleared, 1);
    assert_eq!(
        b.registry.borrow().status("follows_metric"),
        Some(GuaranteeStatus::Valid)
    );
    // The write actually happened after recovery.
    let trace = sc.trace();
    let item = hcm::core::ItemId::with("salary2", [Value::from("e1")]);
    assert_eq!(
        trace.value_at(&item, trace.end_time()),
        Some(Value::Int(95_000))
    );
}

#[test]
fn no_failure_no_suspension() {
    let mut sc = build(5);
    update(&mut sc, 10, 91_000);
    update(&mut sc, 20, 92_000);
    sc.run_to_quiescence();
    for site in ["A", "B"] {
        let reg = sc.site(site).registry.borrow();
        assert_eq!(reg.status("follows"), Some(GuaranteeStatus::Valid));
        assert_eq!(reg.status("follows_metric"), Some(GuaranteeStatus::Valid));
    }
    assert_eq!(
        sc.site("B").shell_stats.borrow().metric_failures_detected,
        0
    );
}

#[test]
fn heartbeat_detects_silent_failure_without_traffic() {
    // §5: "if the database fails silently … there is no way for the
    // CM-Translator to detect the failure" — unless the CM probes. With
    // a heartbeat, a crash is detected with NO application activity at
    // all; without one, it goes unnoticed for the whole run.
    let build_hb = |heartbeat: Option<SimDuration>| {
        ScenarioBuilder::new(9)
            .site(
                "A",
                RawStore::Relational(employees_db(&[("e1", 1)])),
                RID_SRC,
            )
            .unwrap()
            .site(
                "B",
                RawStore::Relational(employees_db(&[("e1", 1)])),
                RID_DST,
            )
            .unwrap()
            .strategy(STRATEGY)
            .failure_config(FailureConfig {
                deadline: SimDuration::from_secs(5),
                escalation: SimDuration::from_secs(30),
                heartbeat,
            })
            .stop_periodics_at(SimTime::from_secs(200))
            .build()
            .unwrap()
    };

    // With heartbeat: crash B, no workload — still detected.
    let mut sc = build_hb(Some(SimDuration::from_secs(10)));
    sc.crash("B", SimTime::from_secs(15), true);
    sc.run_until(SimTime::from_secs(120));
    let b = sc.site("B");
    assert!(
        b.shell_stats.borrow().metric_failures_detected >= 1,
        "heartbeat must detect the silent crash"
    );
    assert!(b.shell_stats.borrow().logical_failures_detected >= 1);
    assert_eq!(
        b.registry.borrow().status("follows"),
        Some(GuaranteeStatus::SuspendedLogical)
    );
    // Detection time: first probe after the crash is at 20s, deadline
    // 5s → detection by ~25s.
    let trace = sc.trace();
    let detect = trace
        .events()
        .iter()
        .find(|e| matches!(&e.desc, EventDesc::Custom { name, .. } if name == "FailureDetected"))
        .expect("detected");
    assert!(
        detect.time <= SimTime::from_secs(26),
        "detected at {} — expected within heartbeat + deadline",
        detect.time
    );

    // Without heartbeat: the same silent crash is never noticed.
    let mut sc2 = build_hb(None);
    sc2.crash("B", SimTime::from_secs(15), true);
    sc2.run_until(SimTime::from_secs(120));
    assert_eq!(
        sc2.site("B").shell_stats.borrow().metric_failures_detected,
        0,
        "no probing, no traffic, no detection — the paper's silent-failure gap"
    );
}

/// Build a scenario whose shell at B heartbeats its translator: silent
/// failures are detected without any application workload (§5's
/// "detected within heartbeat + deadline").
fn build_with_heartbeat(seed: u64, stop: u64) -> Scenario {
    ScenarioBuilder::new(seed)
        .site(
            "A",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_SRC,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees_db(&[("e1", 90_000)])),
            RID_DST,
        )
        .unwrap()
        .strategy(STRATEGY)
        .failure_config(FailureConfig {
            deadline: SimDuration::from_secs(5),
            escalation: SimDuration::from_secs(30),
            heartbeat: Some(SimDuration::from_secs(10)),
        })
        .stop_periodics_at(SimTime::from_secs(stop))
        .build()
        .unwrap()
}

/// A crashed translator is detected purely by heartbeat probes — no
/// update traffic at all — and escalates metric → logical on schedule.
#[test]
fn heartbeat_detects_silent_crash_and_escalates() {
    let mut sc = build_with_heartbeat(5, 280);
    sc.crash("B", SimTime::from_secs(32), true);
    sc.run_until(SimTime::from_secs(300));

    let b = sc.site("B").shell_stats.borrow();
    assert!(
        b.metric_failures_detected >= 1,
        "heartbeat missed the silent crash"
    );
    assert!(
        b.logical_failures_detected >= 1,
        "metric failure never escalated"
    );
    // No rule ever fired and no application request was sent: the
    // detection really came from the heartbeat path.
    assert_eq!(b.firings, 0);
    assert_eq!(b.requests_sent, 0);
    let hb = sc.obs.metrics.counter(
        hcm::obs::Scope::Site(sc.site("B").site.index()),
        "shell.heartbeats",
    );
    assert!(hb >= 3, "expected several heartbeat probes, saw {hb}");

    // First probe lost is the 40s one; 5s deadline → detection by ~45s.
    let trace = sc.trace();
    let detect = trace
        .events()
        .iter()
        .find(|e| {
            matches!(&e.desc, EventDesc::Custom { name, args }
            if name == "FailureDetected" && args.get(1) == Some(&Value::from("metric")))
        })
        .expect("metric failure detected");
    assert!(
        detect.time <= SimTime::from_secs(48),
        "silent failure detected too late: {}",
        detect.time
    );
    assert_eq!(
        sc.site("B").registry.borrow().status("follows"),
        Some(GuaranteeStatus::SuspendedLogical),
        "escalation voids non-metric guarantees"
    );
}

/// An overloaded (slow but alive) translator trips the heartbeat's
/// metric deadline, then the late probe responses clear the failure:
/// the armed → metric → cleared lifecycle, with no logical escalation.
#[test]
fn heartbeat_metric_failure_clears_on_late_response() {
    let mut sc = build_with_heartbeat(6, 150);
    // Every B operation takes 12s extra during 25s–90s: beyond the 5s
    // deadline, well under the 30s escalation.
    sc.overload(
        "B",
        SimTime::from_secs(25),
        SimTime::from_secs(90),
        SimDuration::from_secs(12),
    );
    sc.run_to_quiescence();

    let b = sc.site("B").shell_stats.borrow();
    assert!(b.metric_failures_detected >= 1, "slow probe never flagged");
    assert!(
        b.failures_cleared >= 1,
        "late probe response never cleared the flag"
    );
    assert_eq!(
        b.logical_failures_detected, 0,
        "12s delay must not escalate"
    );
    assert_eq!(
        sc.site("B").registry.borrow().status("follows_metric"),
        Some(GuaranteeStatus::Valid),
        "metric guarantees recover once responses resume"
    );
}
