//! Budget control with the Demarcation Protocol (§6.1).
//!
//! ```text
//! cargo run --example budget_demarcation
//! ```
//!
//! The paper's intro scenario, quantified: a construction company's
//! *spending* `X` lives in its own database; the *budget* `Y` lives in
//! the owner's. The inter-site constraint `X ≤ Y` must hold **always**,
//! but the two databases share no transactions. The Demarcation
//! Protocol splits the constraint into local CHECK constraints around a
//! negotiated limit, so everyday spending is a purely local write.
//!
//! The example runs the same workload under the three slack policies
//! and under the 2PC baseline, printing the trade-offs.

use hcm::core::{SimDuration, SimTime};
use hcm::protocols::demarcation::{self, DemarcConfig, GrantPolicy};
use hcm::protocols::tpc;
use hcm::simkit::SimRng;

fn workload(seed: u64, n: usize) -> Vec<(SimTime, bool, i64)> {
    let mut rng = SimRng::seeded(seed);
    let mut t = SimTime::from_secs(5);
    (0..n)
        .map(|_| {
            t += SimDuration::from_secs(rng.int_in(10, 60) as u64);
            // 70% spending increases, 30% budget cuts.
            (t, rng.chance(0.7), rng.int_in(1, 20))
        })
        .collect()
}

fn main() {
    let ops = workload(2024, 120);
    println!(
        "workload: {} updates (spend increases + budget cuts)\n",
        ops.len()
    );
    println!(
        "{:<14} {:>6} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "policy", "ok", "local", "granted", "denied", "limit-reqs", "messages"
    );

    for policy in [
        GrantPolicy::Requested,
        GrantPolicy::HalfAvailable,
        GrantPolicy::All,
    ] {
        let mut d = demarcation::build(DemarcConfig {
            seed: 1,
            x0: 0,
            y0: 1200,
            line: 600,
            policy,
        });
        for &(t, lower, delta) in &ops {
            d.try_update(t, lower, delta);
        }
        d.run();
        assert!(d.invariant_held(), "X ≤ Y must always hold");
        let sx = d.stats_x.borrow();
        let sy = d.stats_y.borrow();
        println!(
            "{:<14} {:>6} {:>8} {:>8} {:>8} {:>10} {:>10}",
            format!("{policy:?}"),
            sx.local_ok + sx.granted + sy.local_ok + sy.granted,
            sx.local_ok + sy.local_ok,
            sx.granted + sy.granted,
            sx.denied + sy.denied,
            sx.limit_requests + sy.limit_requests,
            d.scenario.sim.network().total_sent(),
        );
    }

    // Baseline: the facility the paper's environment lacks.
    let mut t2 = tpc::build(1, 0, 1200);
    for &(t, lower, delta) in &ops {
        t2.try_update(t, lower, delta);
    }
    t2.run();
    let st = t2.stats.borrow();
    let avg_latency =
        st.latencies_ms.iter().sum::<u64>() as f64 / st.latencies_ms.len().max(1) as f64;
    println!(
        "{:<14} {:>6} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "2PC baseline",
        st.committed,
        0,
        st.committed,
        st.aborted_constraint + st.aborted_unavailable,
        "-",
        st.messages,
    );
    println!("\n2PC mean commit latency: {avg_latency:.0} ms (every update pays coordination)");
    println!("Demarcation local updates complete in one local write (~52 ms).");

    // Availability under failure.
    println!("\n── With the budget database down for the whole run ───────────");
    let mut d = demarcation::build(DemarcConfig {
        seed: 9,
        x0: 0,
        y0: 1200,
        line: 600,
        policy: GrantPolicy::Requested,
    });
    d.scenario.crash("B", SimTime::from_secs(1), true);
    for &(t, lower, delta) in ops.iter().filter(|(_, lower, _)| *lower) {
        d.try_update(t, lower, delta);
    }
    d.run();
    let sx = d.stats_x.borrow();
    println!(
        "  demarcation: {} of {} spend updates still succeeded locally",
        sx.local_ok, sx.attempts
    );

    let mut t3 = tpc::build(9, 0, 1200);
    t3.sim.crash_at(t3.py, SimTime::from_secs(1), true);
    for &(t, lower, delta) in ops.iter().filter(|(_, lower, _)| *lower) {
        t3.try_update(t, lower, delta);
    }
    t3.run();
    println!(
        "  2PC:         {} of {} committed (blocked on the dead site)",
        t3.stats.borrow().committed,
        t3.stats.borrow().submitted
    );
}
