//! A banking day with a periodic guarantee (§6.4).
//!
//! ```text
//! cargo run --example banking_day
//! ```
//!
//! "All update transactions occur between 9 a.m. and 5 p.m. … propagate
//! the new values of account balances from the branch to the head
//! office at the end of each working day" — and the toolkit can then
//! offer: *balances agree from 17:15 until 08:00 the next morning*,
//! which lets the head office's financial-analysis application run
//! overnight "with the assurance of consistency".

use hcm::checker::guarantee::check_guarantee;
use hcm::core::{ItemId, SimTime, Value};
use hcm::protocols::periodic::{clock, BankScenario};
use hcm::simkit::SimRng;

fn hhmm(secs: u64) -> String {
    format!("{:02}:{:02}", (secs / 3600) % 24, (secs % 3600) / 60)
}

fn main() {
    let accounts: Vec<(String, i64)> = (0..5)
        .map(|i| (format!("acct{i}"), 1_000 * (i as i64 + 1)))
        .collect();
    let refs: Vec<(&str, i64)> = accounts.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let mut bank = hcm::protocols::periodic::build(3, &refs, &[SimTime::from_secs(clock::FIVE_PM)]);

    // A day of branch activity, strictly inside banking hours.
    let mut rng = SimRng::seeded(99);
    let mut updates = Vec::new();
    for _ in 0..25 {
        let t = rng.int_in(clock::NINE_AM as i64, (clock::FIVE_PM - 300) as i64) as u64;
        let acct = format!("acct{}", rng.int_in(0, 4));
        let v = rng.int_in(100, 20_000);
        updates.push((t, acct.clone(), v));
    }
    updates.sort();
    println!(
        "── Branch activity ({} updates) ──────────────────────────────",
        updates.len()
    );
    for (t, acct, v) in &updates {
        println!("  {} {} ← {v}", hhmm(*t), acct);
        bank.branch_update(SimTime::from_secs(*t), acct, *v);
    }
    // Horizon pad past 08:00 next day.
    bank.scenario.inject(
        SimTime::from_secs(clock::EIGHT_AM_NEXT + 1800),
        "BR",
        hcm::toolkit::SpontaneousOp::Sql("insert into accounts values ('pad', 1)".into()),
    );
    bank.scenario.run_to_quiescence();
    let trace = bank.scenario.trace();

    let finish = bank.stats.borrow().last_finish.expect("batch ran");
    println!("\n── End-of-day batch ───────────────────────────────────────────");
    println!("  started  {}", hhmm(clock::FIVE_PM));
    println!(
        "  finished {} ({} balances propagated)",
        hhmm(finish.as_secs()),
        bank.stats.borrow().propagated
    );

    println!("\n── Periodic guarantee ─────────────────────────────────────────");
    let night =
        BankScenario::night_guarantee(clock::FIVE_FIFTEEN_PM * 1000, clock::EIGHT_AM_NEXT * 1000);
    let r = check_guarantee(&trace, &night, None);
    println!(
        "  balances agree {} → {} next day: {:?} ({} instantiations)",
        hhmm(clock::FIVE_FIFTEEN_PM),
        hhmm(clock::EIGHT_AM_NEXT),
        r.outcome(),
        r.instantiations
    );
    let allday = BankScenario::night_guarantee(clock::NINE_AM * 1000, clock::EIGHT_AM_NEXT * 1000);
    println!(
        "  …but over the whole day: {:?} (consistency is genuinely periodic)",
        check_guarantee(&trace, &allday, None).outcome()
    );

    println!("\n── Overnight head-office view ─────────────────────────────────");
    let midnight = SimTime::from_secs(24 * 3600);
    for (name, _) in &accounts {
        let br = trace.value_at(
            &ItemId::with("bbal", [Value::from(name.as_str())]),
            midnight,
        );
        let hq = trace.value_at(
            &ItemId::with("hbal", [Value::from(name.as_str())]),
            midnight,
        );
        println!("  {name}: branch = {br:?}, head office = {hq:?}");
        assert_eq!(br, hq);
    }
}
