//! Quickstart — the paper's §4.2 salary-copy scenario, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the two-site deployment (San Francisco branch database A with
//! a notify interface, New York headquarters database B with a write
//! interface), asks the menu for applicable strategies, runs a small
//! workload, and then *mechanically checks* the §3.3.1 guarantees and
//! the Appendix-A validity of the recorded execution.

use hcm::checker::{check_validity, guarantee::check_guarantee, RuleSet};
use hcm::core::{ItemId, SimDuration, SimTime, Value};
use hcm::obs::{causal_chain, render_chain};
use hcm::rulelang::parse_guarantee;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::menu;
use hcm::toolkit::{Scenario, ScenarioBuilder, SpontaneousOp};

const RID_SF: &str = r#"
ris = relational
service = 200ms
[interface]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

const RID_NY: &str = r#"
ris = relational
service = 200ms
[interface]
WR(salary2(n), b) -> W(salary2(n), b) within 1s
Ws(salary2(n), b) -> false
[command write salary2]
update employees set salary = $value where empid = $p0
[command insert salary2]
insert into employees values ($p0, $value)
[command read salary2]
select salary from employees where empid = $p0
[map salary2]
table = employees
key = empid
col = salary
"#;

const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s

[guarantee follows]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1

[guarantee leads]
(salary1(n) = x) @ t1 => (salary2(n) = x) @ t2 and t2 >= t1
"#;

fn employees(rows: &[(&str, i64)]) -> hcm::ris::relational::Database {
    let mut db = hcm::ris::relational::Database::new();
    db.create_table("employees", &["empid", "salary"]).unwrap();
    for (id, v) in rows {
        db.execute(&format!("INSERT INTO employees VALUES ('{id}', {v})"))
            .unwrap();
    }
    db
}

fn print_topology(sc: &Scenario) {
    println!("── Deployment (paper Figs. 1–2) ───────────────────────────────");
    for site in &sc.sites {
        println!("  site `{}` ({:?})", site.name, site.rid.kind);
        println!("    CM-Shell      actor{}", site.shell.0);
        println!("    CM-Translator actor{}", site.translator.0);
        for (stmt, id) in site.rid.interfaces.iter().zip(&site.iface_ids) {
            println!("    interface {id}: {stmt}");
        }
    }
    println!("  strategy rules:");
    for r in sc.strategy.rules.iter() {
        println!(
            "    {} @ LHS {} / RHS {}: {}",
            r.id, r.lhs_site, r.rhs_site, r.rule
        );
    }
    println!();
}

fn main() {
    // 1. The suggestion engine (§4.1): given the two sites' interfaces,
    //    which proven strategies apply, and with which guarantees?
    let src = vec![hcm::rulelang::parse_interface(&menu::interfaces::notify(
        "salary1(n)",
        SimDuration::from_secs(2),
    ))
    .unwrap()];
    let dst = vec![hcm::rulelang::parse_interface(&menu::interfaces::write(
        "salary2(n)",
        SimDuration::from_secs(1),
    ))
    .unwrap()];
    println!("── Menu suggestions ────────────────────────────────────────────");
    for s in menu::suggest_copy_strategies(
        "salary1(n)",
        "salary2(n)",
        &src,
        &dst,
        SimDuration::from_secs(60),
        SimDuration::from_secs(5),
    ) {
        println!(
            "  strategy `{}` — proven guarantees: {:?}",
            s.name, s.valid_guarantees
        );
        for r in &s.rules {
            println!("    {r}");
        }
    }
    println!();

    // 2. Build and run the deployment.
    let mut sc = ScenarioBuilder::new(42)
        .site(
            "A",
            RawStore::Relational(employees(&[("e1", 90_000), ("e2", 70_000)])),
            RID_SF,
        )
        .unwrap()
        .site(
            "B",
            RawStore::Relational(employees(&[("e1", 90_000), ("e2", 70_000)])),
            RID_NY,
        )
        .unwrap()
        .strategy(STRATEGY)
        .build()
        .unwrap();
    print_topology(&sc);

    for (t, id, v) in [
        (10u64, "e1", 95_000i64),
        (40, "e2", 71_000),
        (70, "e1", 99_000),
    ] {
        sc.inject(
            SimTime::from_secs(t),
            "A",
            SpontaneousOp::Sql(format!(
                "update employees set salary = {v} where empid = '{id}'"
            )),
        );
    }
    sc.run_to_quiescence();
    let trace = sc.trace();

    println!(
        "── Recorded execution ({} events) ─────────────────────────────",
        trace.len()
    );
    print!("{trace}");
    println!();

    // 3. Check validity (Appendix A.2) and the guarantees (§3.3.1).
    let mut rules = RuleSet::new();
    for site in &sc.sites {
        for (stmt, id) in site.rid.interfaces.iter().zip(&site.iface_ids) {
            rules.add_interface(*id, site.site, stmt);
        }
    }
    for r in sc.strategy.rules.iter() {
        rules.add_strategy(r.id, r.lhs_site, r.rhs_site, &r.rule);
    }
    let validity = check_validity(&trace, &rules);
    println!("── Checks ──────────────────────────────────────────────────────");
    println!(
        "  valid execution: {} ({} obligations verified)",
        validity.is_valid(),
        validity.obligations_checked
    );
    for g in [
        parse_guarantee(
            "follows",
            "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
        )
        .unwrap(),
        parse_guarantee(
            "leads",
            "(salary1(n) = x) @ t1 => (salary2(n) = x) @ t2 and t2 >= t1",
        )
        .unwrap(),
        parse_guarantee(
            "follows_metric(κ=10s)",
            "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t1 - 10s < t2 and t2 <= t1",
        )
        .unwrap(),
    ] {
        let r = check_guarantee(&trace, &g, None);
        println!(
            "  guarantee `{}`: {:?} ({} instantiations)",
            g.name,
            r.outcome(),
            r.instantiations
        );
    }

    // 4. Final state agreement.
    println!("\n── Final state ─────────────────────────────────────────────────");
    for id in ["e1", "e2"] {
        let a = trace.value_at(
            &ItemId::with("salary1", [Value::from(id)]),
            trace.end_time(),
        );
        let b = trace.value_at(
            &ItemId::with("salary2", [Value::from(id)]),
            trace.end_time(),
        );
        println!("  {id}: SF = {a:?}, NY = {b:?}");
    }

    // 5. Observability: the run's metrics snapshot (deterministic per
    //    seed — run twice and diff) and the causal chain of the last
    //    write landing at NY, walked back to the spontaneous update
    //    that caused it.
    println!("\n── Metrics (hcm-obs registry) ──────────────────────────────────");
    print!("{}", sc.metrics_table());
    let w = trace
        .events()
        .iter()
        .rfind(|e| e.desc.tag() == "W")
        .expect("a write landed at NY");
    let chain = causal_chain(&trace, w.id);
    println!(
        "\n── Causality: how did {} come to be? ──────────────────────────",
        w.desc
    );
    print!("{}", render_chain(&trace, &chain));
}
