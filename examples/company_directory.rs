//! Company directory — the paper's Stanford deployment in miniature
//! (§4.3): "the Stanford 'whois' database, the Computer Science
//! Department's custom personnel database ('lookup'), the database
//! group's Sybase database, and a bibliographic database", coordinated
//! *without modifying the databases or the existing applications*.
//!
//! ```text
//! cargo run --example company_directory
//! ```
//!
//! Four genuinely different stores:
//!   * `whois`  — read-only directory, periodic-notify (polled dumps);
//!   * `lookup` — key-value store with watches (notify);
//!   * `hr`     — relational database with triggers and a write interface;
//!   * `biblio` — append-only publications, read-only.
//!
//! Constraints:
//!   * phone numbers: whois → hr mirror (periodic notify + write);
//!   * phone numbers: lookup → hr mirror (notify + write);
//!   * referential integrity: every database-group paper in `biblio`
//!     must be mentioned in `hr`'s publications table (checked on the
//!     trace).

use hcm::checker::guarantee::check_guarantee;
use hcm::core::{ItemId, SimTime, Value};
use hcm::rulelang::parse_guarantee;
use hcm::toolkit::backends::RawStore;
use hcm::toolkit::{ScenarioBuilder, SpontaneousOp};

const RID_WHOIS: &str = r#"
ris = whois
service = 100ms
[interface]
P(120s) when wphone(n) = b -> N(wphone(n), b) within 1s
[map wphone]
field = phone
"#;

const RID_LOOKUP: &str = r#"
ris = kv
service = 50ms
[interface]
Ws(lphone(n), b) -> N(lphone(n), b) within 1s
[map lphone]
key = phone/$p0
"#;

const RID_HR: &str = r#"
ris = relational
service = 150ms
[interface]
WR(wmirror(n), b) -> W(wmirror(n), b) within 1s
WR(lmirror(n), b) -> W(lmirror(n), b) within 1s
RR(hrpub(a, t)) when hrpub(a, t) = b -> R(hrpub(a, t), b) within 1s
[command write wmirror]
update wphones set phone = $value where name = $p0
[command insert wmirror]
insert into wphones values ($p0, $value)
[command read wmirror]
select phone from wphones where name = $p0
[command write lmirror]
update lphones set phone = $value where name = $p0
[command insert lmirror]
insert into lphones values ($p0, $value)
[command read lmirror]
select phone from lphones where name = $p0
[map wmirror]
table = wphones
key = name
col = phone
[map lmirror]
table = lphones
key = name
col = phone
"#;

const RID_BIBLIO: &str = r#"
ris = biblio
service = 100ms
[map paper]
mode = year
"#;

const STRATEGY: &str = r#"
[locate]
wphone = WHOIS
lphone = LOOKUP
wmirror = HR
lmirror = HR
paper = BIB

[strategy]
N(wphone(n), b) -> WR(wmirror(n), b) within 5s
N(lphone(n), b) -> WR(lmirror(n), b) within 5s
"#;

fn main() {
    // Raw stores with their own native content.
    let mut whois = hcm::ris::whois::WhoisDir::new();
    whois.admin_set("hector", "phone", "415-1001");
    whois.admin_set("jennifer", "phone", "415-1002");

    let mut lookup = hcm::ris::kvstore::KvStore::new();
    lookup.put("phone/chaw", Value::from("415-2001"));

    let mut hr = hcm::ris::relational::Database::new();
    hr.create_table("wphones", &["name", "phone"]).unwrap();
    hr.create_table("lphones", &["name", "phone"]).unwrap();
    hr.execute("insert into wphones values ('hector', '415-1001')")
        .unwrap();
    hr.execute("insert into wphones values ('jennifer', '415-1002')")
        .unwrap();
    hr.execute("insert into lphones values ('chaw', '415-2001')")
        .unwrap();

    let mut biblio = hcm::ris::biblio::BiblioDb::new();
    biblio.append("widom", "Active Database Systems", 1994);

    let mut sc = ScenarioBuilder::new(7)
        .site("WHOIS", RawStore::Whois(whois), RID_WHOIS)
        .unwrap()
        .site("LOOKUP", RawStore::Kv(lookup), RID_LOOKUP)
        .unwrap()
        .site("HR", RawStore::Relational(hr), RID_HR)
        .unwrap()
        .site("BIB", RawStore::Biblio(biblio), RID_BIBLIO)
        .unwrap()
        .strategy(STRATEGY)
        .stop_periodics_at(SimTime::from_secs(600))
        .build()
        .unwrap();

    println!("── Heterogeneous deployment ──────────────────────────────────");
    for site in &sc.sites {
        println!("  {:7} {:?}", site.name, site.rid.kind);
    }

    // The workload: administrators and applications act natively.
    sc.inject(
        SimTime::from_secs(90),
        "WHOIS",
        SpontaneousOp::WhoisSet {
            name: "hector".into(),
            field: "phone".into(),
            value: "415-9999".into(),
        },
    );
    sc.inject(
        SimTime::from_secs(150),
        "LOOKUP",
        SpontaneousOp::KvPut {
            key: "phone/chaw".into(),
            value: Value::from("415-2999"),
        },
    );
    sc.inject(
        SimTime::from_secs(200),
        "BIB",
        SpontaneousOp::BiblioAppend {
            author: "widom".into(),
            title: "Constraint Toolkit".into(),
            year: 1996,
        },
    );
    sc.run_to_quiescence();
    let trace = sc.trace();

    println!(
        "\n── Trace ({} events) ──────────────────────────────────────────",
        trace.len()
    );
    for e in trace.events().iter().take(40) {
        println!("  {e}");
    }

    println!("\n── Copy-constraint checks ─────────────────────────────────────");
    // whois mirror: staleness bounded by the 120s poll + bounds.
    let g1 = parse_guarantee(
        "whois_mirror_fresh",
        "(wmirror(n) = y) @ t1 => (wphone(n) = y) @ t2 and t1 - 130s < t2 and t2 <= t1",
    )
    .unwrap();
    let r1 = check_guarantee(&trace, &g1, None);
    println!("  whois → hr (κ = 130s): {:?}", r1.outcome());

    // lookup mirror: notify-based, tight κ.
    let g2 = parse_guarantee(
        "lookup_mirror_fresh",
        "(lmirror(n) = y) @ t1 => (lphone(n) = y) @ t2 and t1 - 10s < t2 and t2 <= t1",
    )
    .unwrap();
    let r2 = check_guarantee(&trace, &g2, None);
    println!("  lookup → hr (κ = 10s): {:?}", r2.outcome());

    println!("\n── Referential integrity (monitoring only) ───────────────────");
    // The biblio paper added at t=200 has no hr record: a monitored
    // violation the CM can only report (biblio and hr's pub table are
    // read-only / unmanaged here) — exactly the §6.3 situation.
    let g3 = parse_guarantee(
        "papers_mentioned",
        "(exists(paper(a, t))) @@ [u, u + 300s] => exists(hrpub(a, t)) @? [u, u + 300s]",
    )
    .unwrap();
    let r3 = check_guarantee(&trace, &g3, None);
    println!(
        "  every biblio paper mentioned in hr within 300s: {:?} ({} violations)",
        r3.outcome(),
        r3.violations.len()
    );

    println!("\n── Final mirrors ──────────────────────────────────────────────");
    for (item, label) in [
        (
            ItemId::with("wmirror", [Value::from("hector")]),
            "hector (whois)",
        ),
        (
            ItemId::with("lmirror", [Value::from("chaw")]),
            "chaw (lookup)",
        ),
    ] {
        println!("  {label}: {:?}", trace.value_at(&item, trace.end_time()));
    }
}
