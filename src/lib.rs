//! # hcm — constraint management in heterogeneous information systems
//!
//! A full reproduction of *"A Toolkit for Constraint Management in
//! Heterogeneous Information Systems"* (Chawathe, Garcia-Molina, Widom;
//! ICDE 1996) as a Rust workspace. This facade crate re-exports every
//! component; see `README.md` for a tour and `DESIGN.md` for the
//! system inventory.
//!
//! * [`core`] — values, virtual time, items, six-tuple events,
//!   templates, traces.
//! * [`rulelang`] — the rule language: interfaces, strategies,
//!   guarantees, spec files.
//! * [`simkit`] — deterministic discrete-event simulation substrate.
//! * [`ris`] — five heterogeneous Raw Information Sources.
//! * [`toolkit`] — CM-Shells, CM-Translators, CM-RIDs, menus,
//!   scenarios: the paper's contribution.
//! * [`checker`] — mechanical validity and guarantee checking.
//! * [`protocols`] — demarcation, polling, caching, monitor,
//!   referential integrity, periodic propagation, and the 2PC baseline.
//! * [`obs`] — deterministic sim-time observability: metrics registry,
//!   causal rule-firing spans, snapshot exporters.
//! * [`store`] — durable state: append-only CRC-checked event log,
//!   checkpoints, crash-recovery replay (§5 "remember messages").
//! * [`harness`] — toolkit↔checker glue: build a rule set from a
//!   scenario, run the standard post-mortem.

pub mod harness;

pub use hcm_checker as checker;
pub use hcm_core as core;
pub use hcm_obs as obs;
pub use hcm_protocols as protocols;
pub use hcm_ris as ris;
pub use hcm_rulelang as rulelang;
pub use hcm_simkit as simkit;
pub use hcm_store as store;
pub use hcm_toolkit as toolkit;
