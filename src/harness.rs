//! Convenience harness tying the toolkit to the checker.
//!
//! The toolkit (which *produces* executions) and the checker (which
//! *judges* them) are deliberately independent crates; this module is
//! the bridge used by the experiment suite, the benches and downstream
//! users: build the checker's rule set from a scenario, and run the
//! standard post-mortem (validity + every guarantee the strategy
//! specification declared).

use hcm_checker::guarantee::{check_guarantees_parallel_stats, GuaranteeReport};
use hcm_checker::{check_validity, RuleSet, ValidityReport};
use hcm_core::Trace;
use hcm_obs::Scope;
use hcm_toolkit::Scenario;

/// Build the checker's rule set from a scenario: every site's interface
/// statements plus the compiled strategy rules with their placement.
#[must_use]
pub fn rule_set_of(scenario: &Scenario) -> RuleSet {
    let mut rs = RuleSet::new();
    for site in &scenario.sites {
        for (stmt, id) in site.rid.interfaces.iter().zip(&site.iface_ids) {
            rs.add_interface(*id, site.site, stmt);
        }
    }
    for rule in scenario.strategy.rules.iter() {
        rs.add_strategy(rule.id, rule.lhs_site, rule.rhs_site, &rule.rule);
    }
    rs
}

/// The standard post-mortem over a finished scenario.
#[derive(Debug)]
pub struct PostMortem {
    /// The recorded execution.
    pub trace: Trace,
    /// Appendix-A validity verdict.
    pub validity: ValidityReport,
    /// One report per `[guarantee]` section of the strategy spec.
    pub guarantees: Vec<GuaranteeReport>,
}

impl PostMortem {
    /// `true` when the execution is valid and every declared guarantee
    /// holds (vacuous counts as holding).
    #[must_use]
    pub fn all_good(&self) -> bool {
        self.validity.is_valid() && self.guarantees.iter().all(|g| g.holds)
    }
}

/// Snapshot the scenario's trace and check everything: the seven
/// validity properties against the deployed rules, and each guarantee
/// declared in the strategy specification.
///
/// Guarantees are checked concurrently (they are independent; see
/// `check_guarantees_parallel`) and reported in declaration order.
/// The checker's cache/grid counters are recorded into the scenario's
/// metrics registry under `checker.*` — evaluation is deterministic,
/// so this keeps `metrics_jsonl` byte-identical across runs of the
/// same seed.
#[must_use]
pub fn post_mortem(scenario: &Scenario) -> PostMortem {
    let trace = scenario.trace();
    // Surface the trace's silent linear-scan downgrade: an
    // out-of-order push permanently demotes the indexed lookups every
    // guarantee check below relies on. Zero for all simulation traces.
    let m = &scenario.obs.metrics;
    if trace.index_downgrades() > 0 {
        m.add(
            Scope::Global,
            "trace.index_downgrades",
            trace.index_downgrades(),
        );
    }
    for (at, last, site) in trace.downgrade_log() {
        eprintln!(
            "trace: out-of-order push at {at} (after {last}) from {site} — \
             indexed lookups downgraded to linear scans"
        );
    }
    let rules = rule_set_of(scenario);
    let validity = check_validity(&trace, &rules);
    let checked = check_guarantees_parallel_stats(&trace, &scenario.strategy.guarantees, None);
    let mut guarantees = Vec::with_capacity(checked.len());
    for (report, stats) in checked {
        m.add(Scope::Global, "checker.probe_hits", stats.probe_hits);
        m.add(Scope::Global, "checker.probe_misses", stats.probe_misses);
        m.add(Scope::Global, "checker.atom_cache_hits", stats.atom_hits);
        m.add(
            Scope::Global,
            "checker.atom_cache_misses",
            stats.atom_misses,
        );
        m.add(Scope::Global, "checker.grid_points", stats.grid_points);
        guarantees.push(report);
    }
    PostMortem {
        trace,
        validity,
        guarantees,
    }
}
