//! Causal spans for rule firings, and the provenance walker.
//!
//! A [`Span`] covers one stage of a rule-firing lifecycle: the
//! triggering event arriving at a CM-Shell, its condition evaluation,
//! each sequenced RHS step, the CMI request or `RemoteFire` it emits,
//! and completion. Parent links tie the stages to the firing's root
//! span, mirroring the provenance the six-tuple already carries in its
//! `rule`/`trigger` fields.
//!
//! [`causal_chain`] is the read side: starting from any recorded
//! event, walk the `trigger` links back to a *spontaneous* root (an
//! event with neither `rule` nor `trigger` — an application write or
//! a periodic tick). The checker's rule-causality property (Appendix
//! property 5) verifies each link is a legitimate rule consequence;
//! the walker reconstructs the chain those links form, and the two are
//! differentially tested against each other.

use hcm_core::{ordkey, EventId, OrderKey, RuleId, SimTime, SiteId, Trace};
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifier of a span within one [`SpanLog`].
///
/// Like [`EventId`], two encodings share the `u64`: **plain** ids
/// (`< 2^32`) are log indexes in creation order (what raw
/// [`SpanLog::start`] assigns), while **packed** ids carry the minting
/// component's origin in the high bits and its private sequence number
/// in the low bits (what [`Spans::scoped`] handles assign). Packed ids
/// identify a span without encoding its position, so they are stable
/// across serial and sharded executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Sentinel returned by [`Spans::start`] while recording is
    /// disabled. [`SpanLog::end`] and [`SpanLog::annotate`] on it are
    /// no-ops, so callers can hold it without checking.
    pub const DISABLED: SpanId = SpanId(u64::MAX);

    /// A packed id: `origin`'s `seq`-th span.
    #[must_use]
    pub fn packed(origin: u32, seq: u32) -> SpanId {
        SpanId((u64::from(origin) + 1) << 32 | u64::from(seq))
    }

    /// The origin of a packed id; `None` for plain (index) ids and the
    /// [`SpanId::DISABLED`] sentinel.
    #[must_use]
    pub fn origin_of(id: SpanId) -> Option<u32> {
        if id == SpanId::DISABLED {
            return None;
        }
        let hi = id.0 >> 32;
        (hi > 0).then(|| (hi - 1) as u32)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match SpanId::origin_of(*self) {
            Some(origin) => write!(f, "s{origin}.{}", self.0 & 0xFFFF_FFFF),
            None => write!(f, "s{}", self.0),
        }
    }
}

/// Which lifecycle stage a span covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole rule firing at a shell: trigger matched → RHS done.
    Firing,
    /// Condition evaluation of a firing (suppressed or passed).
    CondEval,
    /// One sequenced RHS step (zero-based index).
    RhsStep(usize),
    /// A CMI request to a translator, from send to response.
    Request,
    /// Shipping a matched rule to the RHS site for execution.
    RemoteFire,
    /// A heartbeat probe of an idle translator.
    Heartbeat,
    /// Anything else (protocol agents, experiments).
    Other(String),
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanKind::Firing => write!(f, "firing"),
            SpanKind::CondEval => write!(f, "cond"),
            SpanKind::RhsStep(i) => write!(f, "rhs[{i}]"),
            SpanKind::Request => write!(f, "request"),
            SpanKind::RemoteFire => write!(f, "remote-fire"),
            SpanKind::Heartbeat => write!(f, "heartbeat"),
            SpanKind::Other(s) => write!(f, "{s}"),
        }
    }
}

/// One recorded lifecycle stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// Enclosing span, if any (RHS steps point at their firing).
    pub parent: Option<SpanId>,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Site the stage ran at.
    pub site: SiteId,
    /// Strategy/interface rule involved, if any.
    pub rule: Option<RuleId>,
    /// The six-tuple trigger event the stage descends from, if any.
    pub trigger: Option<EventId>,
    /// When the stage began.
    pub start: SimTime,
    /// When it finished (`None` while open / for never-closed spans).
    pub end: Option<SimTime>,
    /// Free-form annotation ("suppressed", item written, …).
    pub note: String,
}

/// Append-only log of spans, in creation order (creation order is
/// simulation order, hence deterministic per seed; sharded runs tag
/// out-of-order arrivals and restore creation order in
/// [`SpanLog::finalize_order`]).
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    spans: Vec<Span>,
    /// Packed id → index. Plain ids are their own index.
    by_id: HashMap<u64, u32>,
    /// Canonical keys of the tagged tail `spans[tail_start..]`,
    /// parallel runs only.
    tail_keys: Vec<OrderKey>,
    tail_start: usize,
}

impl SpanLog {
    /// Open a span; returns its id (the span's log index).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        kind: SpanKind,
        parent: Option<SpanId>,
        site: SiteId,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
        start: SimTime,
        note: impl Into<String>,
    ) -> SpanId {
        let id = SpanId(self.spans.len() as u64);
        self.start_as(id, kind, parent, site, rule, trigger, start, note.into());
        id
    }

    /// Open a span under a caller-minted (typically packed) id.
    #[allow(clippy::too_many_arguments)]
    fn start_as(
        &mut self,
        id: SpanId,
        kind: SpanKind,
        parent: Option<SpanId>,
        site: SiteId,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
        start: SimTime,
        note: String,
    ) {
        if let Some(key) = ordkey::next() {
            if self.tail_keys.is_empty() {
                self.tail_start = self.spans.len();
            }
            self.tail_keys.push(key);
        }
        let idx = self.spans.len() as u32;
        if SpanId::origin_of(id).is_some() {
            self.by_id.insert(id.0, idx);
        }
        self.spans.push(Span {
            id,
            parent,
            kind,
            site,
            rule,
            trigger,
            start,
            end: None,
            note,
        });
    }

    fn index_of(&self, id: SpanId) -> Option<usize> {
        match SpanId::origin_of(id) {
            Some(_) => self.by_id.get(&id.0).map(|&i| i as usize),
            None => Some(id.0 as usize),
        }
    }

    /// Close a span (idempotent; closing an unknown id is a no-op so
    /// callers need not track lifecycle corner cases).
    pub fn end(&mut self, id: SpanId, at: SimTime) {
        if let Some(i) = self.index_of(id) {
            if let Some(s) = self.spans.get_mut(i) {
                s.end.get_or_insert(at);
            }
        }
    }

    /// Append to a span's note.
    pub fn annotate(&mut self, id: SpanId, note: &str) {
        if let Some(i) = self.index_of(id) {
            if let Some(s) = self.spans.get_mut(i) {
                if !s.note.is_empty() {
                    s.note.push_str("; ");
                }
                s.note.push_str(note);
            }
        }
    }

    /// Restore canonical creation order after a sharded run: stably
    /// sort the tagged tail by its [`OrderKey`]s and rebuild the id
    /// map. No-op after serial runs (nothing is tagged).
    pub fn finalize_order(&mut self) {
        if self.tail_keys.is_empty() {
            return;
        }
        assert_eq!(
            self.tail_start + self.tail_keys.len(),
            self.spans.len(),
            "tagged span tail must be contiguous"
        );
        let tail = self.spans.split_off(self.tail_start);
        let keys = std::mem::take(&mut self.tail_keys);
        let mut zipped: Vec<(OrderKey, Span)> = keys.into_iter().zip(tail).collect();
        zipped.sort_by_key(|(k, _)| *k);
        self.spans.extend(zipped.into_iter().map(|(_, s)| s));
        self.by_id.clear();
        for (i, s) in self.spans.iter().enumerate() {
            if SpanId::origin_of(s.id).is_some() {
                self.by_id.insert(s.id.0, i as u32);
            }
        }
    }

    /// Look a span up.
    #[must_use]
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.index_of(id).and_then(|i| self.spans.get(i))
    }

    /// All spans in creation order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Direct children of a span.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }
}

/// Cheaply clonable handle to a shared [`SpanLog`].
///
/// Recording can be switched off ([`Spans::set_enabled`]) for
/// throughput-critical runs: `start` then returns
/// [`SpanId::DISABLED`] without touching the log, and `end`/`annotate`
/// on that sentinel are no-ops. The default is enabled — observability
/// snapshots stay byte-identical unless a scenario opts out.
///
/// An unscoped handle assigns plain index ids (serial semantics). A
/// [`Spans::scoped`] handle mints packed, position-independent ids
/// from its own counter — what simulation actors must use so span ids
/// are identical across serial and sharded executions. Scoped handles
/// are single-owner: cloning one copies the counter, so treat the
/// clone as a move.
#[derive(Debug, Default)]
pub struct Spans {
    log: Arc<Mutex<SpanLog>>,
    disabled: Arc<AtomicBool>,
    /// `origin + 1` of a scoped handle; 0 for unscoped.
    origin: u32,
    next_seq: Cell<u32>,
}

impl Clone for Spans {
    fn clone(&self) -> Self {
        Spans {
            log: Arc::clone(&self.log),
            disabled: Arc::clone(&self.disabled),
            origin: self.origin,
            next_seq: self.next_seq.clone(),
        }
    }
}

impl Spans {
    /// A fresh, empty log (recording enabled).
    #[must_use]
    pub fn new() -> Self {
        Spans::default()
    }

    /// A handle over the same log that mints packed span ids scoped to
    /// `origin` (conventionally the holding actor's id), starting at
    /// sequence 0.
    #[must_use]
    pub fn scoped(&self, origin: u32) -> Spans {
        assert!(origin < u32::MAX, "origin out of range");
        Spans {
            log: Arc::clone(&self.log),
            disabled: Arc::clone(&self.disabled),
            origin: origin + 1,
            next_seq: Cell::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SpanLog> {
        self.log.lock().expect("span log lock poisoned")
    }

    /// Turn span recording on or off (shared across all clones).
    pub fn set_enabled(&self, enabled: bool) {
        self.disabled.store(!enabled, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        !self.disabled.load(Ordering::Relaxed)
    }

    /// Open a span.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &self,
        kind: SpanKind,
        parent: Option<SpanId>,
        site: SiteId,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
        start: SimTime,
        note: impl Into<String>,
    ) -> SpanId {
        if !self.enabled() {
            return SpanId::DISABLED;
        }
        let mut log = self.lock();
        if self.origin == 0 {
            log.start(kind, parent, site, rule, trigger, start, note)
        } else {
            let seq = self.next_seq.get();
            self.next_seq.set(seq + 1);
            let id = SpanId::packed(self.origin - 1, seq);
            log.start_as(id, kind, parent, site, rule, trigger, start, note.into());
            id
        }
    }

    /// Open a span with a lazily built note: the closure runs only
    /// when recording is enabled, so hot paths don't pay for `format!`
    /// labels nobody will read.
    #[allow(clippy::too_many_arguments)]
    pub fn start_with(
        &self,
        kind: SpanKind,
        parent: Option<SpanId>,
        site: SiteId,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
        start: SimTime,
        note: impl FnOnce() -> String,
    ) -> SpanId {
        if !self.enabled() {
            return SpanId::DISABLED;
        }
        self.start(kind, parent, site, rule, trigger, start, note())
    }

    /// Close a span.
    pub fn end(&self, id: SpanId, at: SimTime) {
        if id == SpanId::DISABLED {
            return;
        }
        self.lock().end(id, at);
    }

    /// Append to a span's note.
    pub fn annotate(&self, id: SpanId, note: &str) {
        if id == SpanId::DISABLED {
            return;
        }
        self.lock().annotate(id, note);
    }

    /// Restore canonical span order after a sharded run (no-op after
    /// serial runs).
    pub fn finalize_order(&self) {
        self.lock().finalize_order();
    }

    /// Read-only access to the log.
    pub fn with<R>(&self, f: impl FnOnce(&SpanLog) -> R) -> R {
        f(&self.lock())
    }
}

/// The provenance chain of one event: the event itself first, then its
/// trigger, its trigger's trigger, …, ending at the chain's last
/// reachable ancestor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalChain {
    /// Event ids from the queried event back to the last ancestor.
    pub ids: Vec<EventId>,
    /// Whether the last ancestor is a spontaneous event (no `rule`, no
    /// `trigger`) — a well-formed chain per Appendix property 5.
    pub rooted: bool,
    /// Why the walk stopped short, when it did.
    pub broken: Option<String>,
}

impl CausalChain {
    /// Chain length in events (≥ 1 for a recorded event).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the chain is empty (unknown starting event).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The spontaneous root, when the chain is rooted.
    #[must_use]
    pub fn root(&self) -> Option<EventId> {
        if self.rooted {
            self.ids.last().copied()
        } else {
            None
        }
    }
}

/// Walk an event's `trigger` links back to its spontaneous root.
///
/// The walk also re-checks the structural half of the rule-causality
/// property along the way: every trigger must exist in the trace and
/// must not be later than its consequence. A dangling trigger, an
/// out-of-order link, a cycle, or a non-spontaneous chain head leaves
/// `rooted == false` with the reason in `broken`.
#[must_use]
pub fn causal_chain(trace: &Trace, id: EventId) -> CausalChain {
    let mut ids = Vec::new();
    let mut broken = None;
    let mut cur = match trace.get(id) {
        Some(e) => e,
        None => {
            return CausalChain {
                ids,
                rooted: false,
                broken: Some(format!("unknown event {id}")),
            }
        }
    };
    ids.push(cur.id);
    // The trace is finite and triggers must strictly precede (same
    // time allowed), so a chain longer than the trace is a cycle.
    let cap = trace.len() + 1;
    while let Some(tid) = cur.trigger {
        if ids.len() >= cap {
            broken = Some("trigger cycle".to_string());
            break;
        }
        match trace.get(tid) {
            None => {
                broken = Some(format!("dangling trigger {tid}"));
                break;
            }
            Some(t) => {
                if t.time > cur.time {
                    broken = Some(format!(
                        "trigger {tid} at {} is later than its consequence at {}",
                        t.time, cur.time
                    ));
                    break;
                }
                ids.push(t.id);
                cur = t;
            }
        }
    }
    let rooted = broken.is_none() && cur.is_spontaneous();
    if !rooted && broken.is_none() {
        broken = Some(format!("chain head {} is not spontaneous", cur.id));
    }
    CausalChain {
        ids,
        rooted,
        broken,
    }
}

/// Render a chain for humans: one line per event, consequence first,
/// spontaneous root last.
#[must_use]
pub fn render_chain(trace: &Trace, chain: &CausalChain) -> String {
    let mut out = String::new();
    for (i, id) in chain.ids.iter().enumerate() {
        let prefix = if i == 0 { "  " } else { "  ⇐ caused by " };
        match trace.get(*id) {
            Some(e) => {
                out.push_str(prefix);
                out.push_str(&e.to_string());
                if i + 1 == chain.ids.len() && chain.rooted {
                    out.push_str("   [spontaneous root]");
                }
            }
            None => {
                out.push_str(prefix);
                out.push_str(&format!("{id} (missing)"));
            }
        }
        out.push('\n');
    }
    if let Some(b) = &chain.broken {
        out.push_str(&format!("  ✗ chain broken: {b}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::{EventDesc, ItemId, Value};

    fn ws(item: &str, v: i64) -> EventDesc {
        EventDesc::Ws {
            item: ItemId::plain(item),
            old: None,
            new: Value::Int(v),
        }
    }

    #[test]
    fn span_lifecycle_and_children() {
        let spans = Spans::new();
        let root = spans.start(
            SpanKind::Firing,
            None,
            SiteId::new(0),
            Some(RuleId(1)),
            Some(EventId(0)),
            SimTime::from_millis(10),
            "",
        );
        let step = spans.start(
            SpanKind::RhsStep(0),
            Some(root),
            SiteId::new(0),
            Some(RuleId(1)),
            Some(EventId(0)),
            SimTime::from_millis(10),
            "",
        );
        spans.end(step, SimTime::from_millis(12));
        spans.end(root, SimTime::from_millis(15));
        spans.with(|log| {
            assert_eq!(log.spans().len(), 2);
            assert_eq!(log.get(root).unwrap().end, Some(SimTime::from_millis(15)));
            let kids: Vec<_> = log.children(root).collect();
            assert_eq!(kids.len(), 1);
            assert_eq!(kids[0].kind, SpanKind::RhsStep(0));
        });
    }

    #[test]
    fn disabled_spans_record_nothing_and_reenable() {
        let spans = Spans::new();
        spans.set_enabled(false);
        assert!(!spans.enabled());
        let mut built = false;
        let id = spans.start_with(
            SpanKind::Firing,
            None,
            SiteId::new(0),
            None,
            None,
            SimTime::ZERO,
            || {
                built = true;
                "expensive".to_string()
            },
        );
        assert_eq!(id, SpanId::DISABLED);
        assert!(!built, "note closure must not run while disabled");
        spans.end(id, SimTime::from_millis(1));
        spans.annotate(id, "late");
        spans.with(|log| assert!(log.spans().is_empty()));
        spans.set_enabled(true);
        let id = spans.start(
            SpanKind::Firing,
            None,
            SiteId::new(0),
            None,
            None,
            SimTime::ZERO,
            "",
        );
        assert_ne!(id, SpanId::DISABLED);
        spans.with(|log| assert_eq!(log.spans().len(), 1));
    }

    #[test]
    fn scoped_handles_mint_stable_packed_ids_and_reorder() {
        use hcm_core::ordkey::{self, OrderKey};
        let spans = Spans::new();
        let a = spans.scoped(3);
        let b = spans.scoped(5);
        let key = |seq| OrderKey {
            time: 1,
            phase: 1,
            src: 0,
            seq,
            minor: 0,
            sub: 0,
        };
        // Arrival order b-then-a; canonical order a-then-b.
        ordkey::install(key(2));
        let sb = b.start(
            SpanKind::Firing,
            None,
            SiteId::new(1),
            None,
            None,
            SimTime::from_millis(1),
            "b",
        );
        ordkey::install(key(1));
        let sa = a.start(
            SpanKind::Firing,
            None,
            SiteId::new(0),
            None,
            None,
            SimTime::from_millis(1),
            "a",
        );
        ordkey::clear();
        assert_eq!(sa, SpanId::packed(3, 0));
        assert_eq!(sb, SpanId::packed(5, 0));
        assert_eq!(sa.to_string(), "s3.0");
        // End via packed id works regardless of position.
        spans.end(sb, SimTime::from_millis(2));
        spans.finalize_order();
        spans.with(|log| {
            let notes: Vec<_> = log.spans().iter().map(|s| s.note.clone()).collect();
            assert_eq!(notes, vec!["a", "b"]);
            assert_eq!(log.get(sb).unwrap().end, Some(SimTime::from_millis(2)));
            assert_eq!(log.get(sa).unwrap().end, None);
        });
    }

    #[test]
    fn chain_walks_to_spontaneous_root() {
        let mut tr = Trace::new();
        let root = tr.push(
            SimTime::from_millis(1),
            SiteId::new(0),
            ws("X", 1),
            None,
            None,
            None,
        );
        let mid = tr.push(
            SimTime::from_millis(5),
            SiteId::new(0),
            EventDesc::N {
                item: ItemId::plain("X"),
                value: Value::Int(1),
            },
            None,
            Some(RuleId(0)),
            Some(root),
        );
        let leaf = tr.push(
            SimTime::from_millis(9),
            SiteId::new(1),
            EventDesc::W {
                item: ItemId::plain("Y"),
                value: Value::Int(1),
            },
            None,
            Some(RuleId(1)),
            Some(mid),
        );
        let chain = causal_chain(&tr, leaf);
        assert!(chain.rooted, "{:?}", chain.broken);
        assert_eq!(chain.ids, vec![leaf, mid, root]);
        assert_eq!(chain.root(), Some(root));
        let rendered = render_chain(&tr, &chain);
        assert!(rendered.contains("spontaneous root"), "{rendered}");
    }

    #[test]
    fn non_spontaneous_head_is_flagged() {
        let mut tr = Trace::new();
        // An event claiming a rule but no trigger: not spontaneous, and
        // nothing to walk to.
        let odd = tr.push(
            SimTime::from_millis(1),
            SiteId::new(0),
            ws("X", 1),
            None,
            Some(RuleId(3)),
            None,
        );
        let chain = causal_chain(&tr, odd);
        assert!(!chain.rooted);
        assert!(chain.broken.unwrap().contains("not spontaneous"));
    }

    #[test]
    fn dangling_trigger_is_flagged() {
        let mut tr = Trace::new();
        let e = tr.push(
            SimTime::from_millis(4),
            SiteId::new(0),
            ws("X", 2),
            None,
            Some(RuleId(0)),
            Some(EventId(999)),
        );
        let chain = causal_chain(&tr, e);
        assert!(!chain.rooted);
        assert!(chain.broken.unwrap().contains("dangling"));
    }
}
