//! Causal spans for rule firings, and the provenance walker.
//!
//! A [`Span`] covers one stage of a rule-firing lifecycle: the
//! triggering event arriving at a CM-Shell, its condition evaluation,
//! each sequenced RHS step, the CMI request or `RemoteFire` it emits,
//! and completion. Parent links tie the stages to the firing's root
//! span, mirroring the provenance the six-tuple already carries in its
//! `rule`/`trigger` fields.
//!
//! [`causal_chain`] is the read side: starting from any recorded
//! event, walk the `trigger` links back to a *spontaneous* root (an
//! event with neither `rule` nor `trigger` — an application write or
//! a periodic tick). The checker's rule-causality property (Appendix
//! property 5) verifies each link is a legitimate rule consequence;
//! the walker reconstructs the chain those links form, and the two are
//! differentially tested against each other.

use hcm_core::{EventId, RuleId, SimTime, SiteId, Trace};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// Identifier of a span within one [`SpanLog`] (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Sentinel returned by [`Spans::start`] while recording is
    /// disabled. [`SpanLog::end`] and [`SpanLog::annotate`] on it are
    /// no-ops, so callers can hold it without checking.
    pub const DISABLED: SpanId = SpanId(u64::MAX);
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Which lifecycle stage a span covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole rule firing at a shell: trigger matched → RHS done.
    Firing,
    /// Condition evaluation of a firing (suppressed or passed).
    CondEval,
    /// One sequenced RHS step (zero-based index).
    RhsStep(usize),
    /// A CMI request to a translator, from send to response.
    Request,
    /// Shipping a matched rule to the RHS site for execution.
    RemoteFire,
    /// A heartbeat probe of an idle translator.
    Heartbeat,
    /// Anything else (protocol agents, experiments).
    Other(String),
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanKind::Firing => write!(f, "firing"),
            SpanKind::CondEval => write!(f, "cond"),
            SpanKind::RhsStep(i) => write!(f, "rhs[{i}]"),
            SpanKind::Request => write!(f, "request"),
            SpanKind::RemoteFire => write!(f, "remote-fire"),
            SpanKind::Heartbeat => write!(f, "heartbeat"),
            SpanKind::Other(s) => write!(f, "{s}"),
        }
    }
}

/// One recorded lifecycle stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// Enclosing span, if any (RHS steps point at their firing).
    pub parent: Option<SpanId>,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Site the stage ran at.
    pub site: SiteId,
    /// Strategy/interface rule involved, if any.
    pub rule: Option<RuleId>,
    /// The six-tuple trigger event the stage descends from, if any.
    pub trigger: Option<EventId>,
    /// When the stage began.
    pub start: SimTime,
    /// When it finished (`None` while open / for never-closed spans).
    pub end: Option<SimTime>,
    /// Free-form annotation ("suppressed", item written, …).
    pub note: String,
}

/// Append-only log of spans, in creation order (creation order is
/// simulation order, hence deterministic per seed).
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    spans: Vec<Span>,
}

impl SpanLog {
    /// Open a span; returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        kind: SpanKind,
        parent: Option<SpanId>,
        site: SiteId,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
        start: SimTime,
        note: impl Into<String>,
    ) -> SpanId {
        let id = SpanId(self.spans.len() as u64);
        self.spans.push(Span {
            id,
            parent,
            kind,
            site,
            rule,
            trigger,
            start,
            end: None,
            note: note.into(),
        });
        id
    }

    /// Close a span (idempotent; closing an unknown id is a no-op so
    /// callers need not track lifecycle corner cases).
    pub fn end(&mut self, id: SpanId, at: SimTime) {
        if let Some(s) = self.spans.get_mut(id.0 as usize) {
            s.end.get_or_insert(at);
        }
    }

    /// Append to a span's note.
    pub fn annotate(&mut self, id: SpanId, note: &str) {
        if let Some(s) = self.spans.get_mut(id.0 as usize) {
            if !s.note.is_empty() {
                s.note.push_str("; ");
            }
            s.note.push_str(note);
        }
    }

    /// Look a span up.
    #[must_use]
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.spans.get(id.0 as usize)
    }

    /// All spans in creation order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Direct children of a span.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }
}

/// Cheaply clonable handle to a shared [`SpanLog`].
///
/// Recording can be switched off ([`Spans::set_enabled`]) for
/// throughput-critical runs: `start` then returns
/// [`SpanId::DISABLED`] without touching the log, and `end`/`annotate`
/// on that sentinel are no-ops. The default is enabled — observability
/// snapshots stay byte-identical unless a scenario opts out.
#[derive(Debug, Clone, Default)]
pub struct Spans {
    log: Rc<RefCell<SpanLog>>,
    disabled: Rc<Cell<bool>>,
}

impl Spans {
    /// A fresh, empty log (recording enabled).
    #[must_use]
    pub fn new() -> Self {
        Spans::default()
    }

    /// Turn span recording on or off (shared across all clones).
    pub fn set_enabled(&self, enabled: bool) {
        self.disabled.set(!enabled);
    }

    /// Whether spans are currently being recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        !self.disabled.get()
    }

    /// Open a span.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &self,
        kind: SpanKind,
        parent: Option<SpanId>,
        site: SiteId,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
        start: SimTime,
        note: impl Into<String>,
    ) -> SpanId {
        if self.disabled.get() {
            return SpanId::DISABLED;
        }
        self.log
            .borrow_mut()
            .start(kind, parent, site, rule, trigger, start, note)
    }

    /// Open a span with a lazily built note: the closure runs only
    /// when recording is enabled, so hot paths don't pay for `format!`
    /// labels nobody will read.
    #[allow(clippy::too_many_arguments)]
    pub fn start_with(
        &self,
        kind: SpanKind,
        parent: Option<SpanId>,
        site: SiteId,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
        start: SimTime,
        note: impl FnOnce() -> String,
    ) -> SpanId {
        if self.disabled.get() {
            return SpanId::DISABLED;
        }
        self.log
            .borrow_mut()
            .start(kind, parent, site, rule, trigger, start, note())
    }

    /// Close a span.
    pub fn end(&self, id: SpanId, at: SimTime) {
        if id == SpanId::DISABLED {
            return;
        }
        self.log.borrow_mut().end(id, at);
    }

    /// Append to a span's note.
    pub fn annotate(&self, id: SpanId, note: &str) {
        if id == SpanId::DISABLED {
            return;
        }
        self.log.borrow_mut().annotate(id, note);
    }

    /// Read-only access to the log.
    pub fn with<R>(&self, f: impl FnOnce(&SpanLog) -> R) -> R {
        f(&self.log.borrow())
    }
}

/// The provenance chain of one event: the event itself first, then its
/// trigger, its trigger's trigger, …, ending at the chain's last
/// reachable ancestor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalChain {
    /// Event ids from the queried event back to the last ancestor.
    pub ids: Vec<EventId>,
    /// Whether the last ancestor is a spontaneous event (no `rule`, no
    /// `trigger`) — a well-formed chain per Appendix property 5.
    pub rooted: bool,
    /// Why the walk stopped short, when it did.
    pub broken: Option<String>,
}

impl CausalChain {
    /// Chain length in events (≥ 1 for a recorded event).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the chain is empty (unknown starting event).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The spontaneous root, when the chain is rooted.
    #[must_use]
    pub fn root(&self) -> Option<EventId> {
        if self.rooted {
            self.ids.last().copied()
        } else {
            None
        }
    }
}

/// Walk an event's `trigger` links back to its spontaneous root.
///
/// The walk also re-checks the structural half of the rule-causality
/// property along the way: every trigger must exist in the trace and
/// must not be later than its consequence. A dangling trigger, an
/// out-of-order link, a cycle, or a non-spontaneous chain head leaves
/// `rooted == false` with the reason in `broken`.
#[must_use]
pub fn causal_chain(trace: &Trace, id: EventId) -> CausalChain {
    let mut ids = Vec::new();
    let mut broken = None;
    let mut cur = match trace.get(id) {
        Some(e) => e,
        None => {
            return CausalChain {
                ids,
                rooted: false,
                broken: Some(format!("unknown event {id}")),
            }
        }
    };
    ids.push(cur.id);
    // The trace is finite and triggers must strictly precede (same
    // time allowed), so a chain longer than the trace is a cycle.
    let cap = trace.len() + 1;
    while let Some(tid) = cur.trigger {
        if ids.len() >= cap {
            broken = Some("trigger cycle".to_string());
            break;
        }
        match trace.get(tid) {
            None => {
                broken = Some(format!("dangling trigger {tid}"));
                break;
            }
            Some(t) => {
                if t.time > cur.time {
                    broken = Some(format!(
                        "trigger {tid} at {} is later than its consequence at {}",
                        t.time, cur.time
                    ));
                    break;
                }
                ids.push(t.id);
                cur = t;
            }
        }
    }
    let rooted = broken.is_none() && cur.is_spontaneous();
    if !rooted && broken.is_none() {
        broken = Some(format!("chain head {} is not spontaneous", cur.id));
    }
    CausalChain {
        ids,
        rooted,
        broken,
    }
}

/// Render a chain for humans: one line per event, consequence first,
/// spontaneous root last.
#[must_use]
pub fn render_chain(trace: &Trace, chain: &CausalChain) -> String {
    let mut out = String::new();
    for (i, id) in chain.ids.iter().enumerate() {
        let prefix = if i == 0 { "  " } else { "  ⇐ caused by " };
        match trace.get(*id) {
            Some(e) => {
                out.push_str(prefix);
                out.push_str(&e.to_string());
                if i + 1 == chain.ids.len() && chain.rooted {
                    out.push_str("   [spontaneous root]");
                }
            }
            None => {
                out.push_str(prefix);
                out.push_str(&format!("{id} (missing)"));
            }
        }
        out.push('\n');
    }
    if let Some(b) = &chain.broken {
        out.push_str(&format!("  ✗ chain broken: {b}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::{EventDesc, ItemId, Value};

    fn ws(item: &str, v: i64) -> EventDesc {
        EventDesc::Ws {
            item: ItemId::plain(item),
            old: None,
            new: Value::Int(v),
        }
    }

    #[test]
    fn span_lifecycle_and_children() {
        let spans = Spans::new();
        let root = spans.start(
            SpanKind::Firing,
            None,
            SiteId::new(0),
            Some(RuleId(1)),
            Some(EventId(0)),
            SimTime::from_millis(10),
            "",
        );
        let step = spans.start(
            SpanKind::RhsStep(0),
            Some(root),
            SiteId::new(0),
            Some(RuleId(1)),
            Some(EventId(0)),
            SimTime::from_millis(10),
            "",
        );
        spans.end(step, SimTime::from_millis(12));
        spans.end(root, SimTime::from_millis(15));
        spans.with(|log| {
            assert_eq!(log.spans().len(), 2);
            assert_eq!(log.get(root).unwrap().end, Some(SimTime::from_millis(15)));
            let kids: Vec<_> = log.children(root).collect();
            assert_eq!(kids.len(), 1);
            assert_eq!(kids[0].kind, SpanKind::RhsStep(0));
        });
    }

    #[test]
    fn disabled_spans_record_nothing_and_reenable() {
        let spans = Spans::new();
        spans.set_enabled(false);
        assert!(!spans.enabled());
        let mut built = false;
        let id = spans.start_with(
            SpanKind::Firing,
            None,
            SiteId::new(0),
            None,
            None,
            SimTime::ZERO,
            || {
                built = true;
                "expensive".to_string()
            },
        );
        assert_eq!(id, SpanId::DISABLED);
        assert!(!built, "note closure must not run while disabled");
        spans.end(id, SimTime::from_millis(1));
        spans.annotate(id, "late");
        spans.with(|log| assert!(log.spans().is_empty()));
        spans.set_enabled(true);
        let id = spans.start(
            SpanKind::Firing,
            None,
            SiteId::new(0),
            None,
            None,
            SimTime::ZERO,
            "",
        );
        assert_ne!(id, SpanId::DISABLED);
        spans.with(|log| assert_eq!(log.spans().len(), 1));
    }

    #[test]
    fn chain_walks_to_spontaneous_root() {
        let mut tr = Trace::new();
        let root = tr.push(
            SimTime::from_millis(1),
            SiteId::new(0),
            ws("X", 1),
            None,
            None,
            None,
        );
        let mid = tr.push(
            SimTime::from_millis(5),
            SiteId::new(0),
            EventDesc::N {
                item: ItemId::plain("X"),
                value: Value::Int(1),
            },
            None,
            Some(RuleId(0)),
            Some(root),
        );
        let leaf = tr.push(
            SimTime::from_millis(9),
            SiteId::new(1),
            EventDesc::W {
                item: ItemId::plain("Y"),
                value: Value::Int(1),
            },
            None,
            Some(RuleId(1)),
            Some(mid),
        );
        let chain = causal_chain(&tr, leaf);
        assert!(chain.rooted, "{:?}", chain.broken);
        assert_eq!(chain.ids, vec![leaf, mid, root]);
        assert_eq!(chain.root(), Some(root));
        let rendered = render_chain(&tr, &chain);
        assert!(rendered.contains("spontaneous root"), "{rendered}");
    }

    #[test]
    fn non_spontaneous_head_is_flagged() {
        let mut tr = Trace::new();
        // An event claiming a rule but no trigger: not spontaneous, and
        // nothing to walk to.
        let odd = tr.push(
            SimTime::from_millis(1),
            SiteId::new(0),
            ws("X", 1),
            None,
            Some(RuleId(3)),
            None,
        );
        let chain = causal_chain(&tr, odd);
        assert!(!chain.rooted);
        assert!(chain.broken.unwrap().contains("not spontaneous"));
    }

    #[test]
    fn dangling_trigger_is_flagged() {
        let mut tr = Trace::new();
        let e = tr.push(
            SimTime::from_millis(4),
            SiteId::new(0),
            ws("X", 2),
            None,
            Some(RuleId(0)),
            Some(EventId(999)),
        );
        let chain = causal_chain(&tr, e);
        assert!(!chain.rooted);
        assert!(chain.broken.unwrap().contains("dangling"));
    }
}
