//! # hcm-obs — deterministic sim-time observability
//!
//! Unified metrics, causal spans and snapshot exporters for the whole
//! toolkit stack. Three design rules make every artifact reproducible:
//!
//! 1. **Sim-time only.** Every timestamp is a [`hcm_core::SimTime`];
//!    nothing here ever reads a wall clock.
//! 2. **Ordered storage.** All metric storage is `BTreeMap`-keyed by
//!    `(scope, name)`, so iteration order — and therefore every
//!    exported snapshot — is independent of allocation or insertion
//!    order.
//! 3. **Hand-rolled exporters.** The JSON-lines and table exporters
//!    are plain string builders (no serde, per `DESIGN.md` §7), so a
//!    same-seed run produces a byte-identical snapshot.
//!
//! The crate has three layers:
//!
//! * [`metrics`] — [`MetricsRegistry`]: counters, gauges, fixed-bucket
//!   [`SimDuration`](hcm_core::SimDuration) histograms (p50/p90/p99/
//!   max), append-only series, and structured sim-time records, all
//!   behind the cheaply clonable [`Metrics`] handle.
//! * [`span`] — [`SpanLog`]: rule-firing lifecycle spans (trigger →
//!   condition → RHS steps → requests → completion) with parent
//!   links, plus the [`causality`](span::causal_chain) walker that
//!   reconstructs any event's provenance chain back to its
//!   spontaneous root from the six-tuple's `trigger` links.
//! * [`export`] — text table and JSON-lines snapshot writers.
//!
//! [`Obs`] bundles one [`Metrics`] and one [`Spans`] handle; the
//! simulation owns the bundle and every instrumented component clones
//! it.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod span;

pub use metrics::{Histogram, Metrics, MetricsRegistry, Record, Scope};
pub use span::{causal_chain, render_chain, CausalChain, Span, SpanId, SpanKind, SpanLog, Spans};

/// The observability bundle one simulation owns: a metrics registry
/// and a span log, both behind cheaply clonable handles.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Counters, gauges, histograms, series, structured records.
    pub metrics: Metrics,
    /// Rule-firing lifecycle spans.
    pub spans: Spans,
}

impl Obs {
    /// A fresh, empty bundle.
    #[must_use]
    pub fn new() -> Self {
        Obs::default()
    }

    /// Replay order-sensitive writes buffered during a sharded run in
    /// canonical serial order (no-op after serial runs).
    pub fn finalize_order(&self) {
        self.metrics.finalize_order();
        self.spans.finalize_order();
    }

    /// Render the metrics registry as a human-readable table.
    #[must_use]
    pub fn table(&self) -> String {
        self.metrics.with(export::render_table)
    }

    /// Export the metrics registry as deterministic JSON lines.
    #[must_use]
    pub fn snapshot_jsonl(&self) -> String {
        self.metrics.with(export::snapshot_jsonl)
    }
}
