//! Snapshot exporters: a human-readable table and deterministic JSON
//! lines.
//!
//! The JSON writer is hand-rolled (`DESIGN.md` §7 bans serde): plain
//! string building over the registry's `BTreeMap`-ordered iterators,
//! so two same-seed runs produce **byte-identical** snapshots — the
//! property the determinism regression test pins.

use crate::metrics::{Histogram, MetricsRegistry, Scope};
use std::fmt::Write as _;

/// Escape a string into a JSON string literal body (no surrounding
/// quotes).
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_kv_str(out: &mut String, key: &str, val: &str) {
    let _ = write!(out, "\"{key}\":\"");
    json_escape(val, out);
    out.push('"');
}

fn line_head(out: &mut String, kind: &str, scope: &Scope, name: &str) {
    out.push('{');
    push_kv_str(out, "kind", kind);
    out.push(',');
    push_kv_str(out, "scope", &scope.to_string());
    out.push(',');
    push_kv_str(out, "name", name);
}

fn hist_fields(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        ",\"count\":{},\"sum_ms\":{},\"p50_ms\":{},\"p90_ms\":{},\"p99_ms\":{},\"max_ms\":{},\"buckets\":[",
        h.count(),
        h.sum().as_millis(),
        h.p50().as_millis(),
        h.p90().as_millis(),
        h.p99().as_millis(),
        h.max().as_millis(),
    );
    for (i, c) in h.bucket_counts().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    out.push(']');
}

/// Export the registry as JSON lines: one object per metric, in a
/// fixed kind-then-key order. Counters first, then gauges, histograms,
/// series, and structured records.
#[must_use]
pub fn snapshot_jsonl(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (scope, name, v) in reg.counters() {
        line_head(&mut out, "counter", scope, name);
        let _ = writeln!(out, ",\"value\":{v}}}");
    }
    for (scope, name, v) in reg.gauges() {
        line_head(&mut out, "gauge", scope, name);
        let _ = writeln!(out, ",\"value\":{v}}}");
    }
    for (scope, name, h) in reg.histograms() {
        line_head(&mut out, "histogram", scope, name);
        hist_fields(&mut out, h);
        out.push_str("}\n");
    }
    for (scope, name, vs) in reg.all_series() {
        line_head(&mut out, "series", scope, name);
        out.push_str(",\"values\":[");
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]}\n");
    }
    for r in reg.records() {
        line_head(&mut out, "record", &r.scope, &r.name);
        let _ = write!(out, ",\"t_ms\":{}", r.time.as_millis());
        for (k, v) in &r.fields {
            out.push(',');
            let mut key = String::new();
            json_escape(k, &mut key);
            let _ = write!(out, "\"{key}\":\"");
            json_escape(v, &mut out);
            out.push('"');
        }
        out.push_str("}\n");
    }
    out
}

/// Render the registry as an aligned, human-readable table.
#[must_use]
pub fn render_table(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let counters: Vec<_> = reg.counters().collect();
    if !counters.is_empty() {
        out.push_str("counters\n");
        for (scope, name, v) in counters {
            let _ = writeln!(out, "  {:<18} {:<34} {:>10}", scope.to_string(), name, v);
        }
    }
    let gauges: Vec<_> = reg.gauges().collect();
    if !gauges.is_empty() {
        out.push_str("gauges\n");
        for (scope, name, v) in gauges {
            let _ = writeln!(out, "  {:<18} {:<34} {:>10}", scope.to_string(), name, v);
        }
    }
    let hists: Vec<_> = reg.histograms().collect();
    if !hists.is_empty() {
        out.push_str("histograms (ms)\n");
        let _ = writeln!(
            out,
            "  {:<18} {:<34} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "", "", "count", "p50", "p90", "p99", "max"
        );
        for (scope, name, h) in hists {
            let _ = writeln!(
                out,
                "  {:<18} {:<34} {:>7} {:>7} {:>7} {:>7} {:>7}",
                scope.to_string(),
                name,
                h.count(),
                h.p50().as_millis(),
                h.p90().as_millis(),
                h.p99().as_millis(),
                h.max().as_millis(),
            );
        }
    }
    let series: Vec<_> = reg.all_series().collect();
    if !series.is_empty() {
        out.push_str("series\n");
        for (scope, name, vs) in series {
            let sum: i64 = vs.iter().sum();
            let _ = writeln!(
                out,
                "  {:<18} {:<34} n={} sum={}",
                scope.to_string(),
                name,
                vs.len(),
                sum
            );
        }
    }
    if !reg.records().is_empty() {
        out.push_str("records\n");
        for r in reg.records() {
            let _ = write!(
                out,
                "  {:<12} {:<18} {:<24}",
                format!("t={}ms", r.time.as_millis()),
                r.scope.to_string(),
                r.name
            );
            for (k, v) in &r.fields {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use hcm_core::{SimDuration, SimTime};

    fn sample() -> Metrics {
        let m = Metrics::new();
        m.inc(Scope::Site(1), "shell.firings");
        m.add(Scope::Global, "sim.dispatches", 42);
        m.gauge_set(Scope::Global, "sim.queue_depth_max", 7);
        m.observe(
            Scope::Channel { from: 0, to: 1 },
            "net.delivery",
            SimDuration::from_millis(23),
        );
        m.series_push(Scope::Global, "tpc.latency_ms", 150);
        m.record(
            SimTime::from_millis(500),
            Scope::Actor(3),
            "sim.crash",
            [("lossy", "true")],
        );
        m
    }

    #[test]
    fn jsonl_is_deterministic_and_escaped() {
        let a = sample().with(snapshot_jsonl);
        let b = sample().with(snapshot_jsonl);
        assert_eq!(a, b);
        assert!(
            a.contains(r#"{"kind":"counter","scope":"global","name":"sim.dispatches","value":42}"#),
            "{a}"
        );
        assert!(a.contains(r#""t_ms":500"#));
        // Every line parses as a braces-balanced object.
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let mut s = String::new();
        json_escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, r#"a\"b\\c\nd"#);
    }

    #[test]
    fn table_mentions_every_kind() {
        let t = sample().with(render_table);
        for needle in [
            "counters",
            "gauges",
            "histograms",
            "series",
            "records",
            "sim.crash",
        ] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn ordering_is_by_scope_then_name() {
        let m = Metrics::new();
        m.inc(Scope::Site(2), "z");
        m.inc(Scope::Site(0), "a");
        m.inc(Scope::Global, "m");
        let s = m.with(snapshot_jsonl);
        let g = s.find("global").unwrap();
        let s0 = s.find("site:0").unwrap();
        let s2 = s.find("site:2").unwrap();
        assert!(g < s0 && s0 < s2, "{s}");
    }
}
