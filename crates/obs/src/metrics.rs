//! The metrics core: one registry per simulation, deterministic by
//! construction.
//!
//! Five metric kinds cover everything the stack reports:
//!
//! * **counters** — monotone `u64` (dispatch counts, firings, …);
//! * **gauges** — last-written / high-water `i64` (queue depth, …);
//! * **histograms** — fixed-bucket latency distributions over
//!   [`SimDuration`] with p50/p90/p99/max;
//! * **series** — append-only `i64` sequences in completion order
//!   (per-transaction latencies and the like);
//! * **records** — structured sim-time occurrences (crash, overload,
//!   failure-detection lifecycle transitions).
//!
//! Everything is keyed `(Scope, name)` inside `BTreeMap`s, so snapshot
//! iteration order never depends on allocation or insertion order.

use hcm_core::{ordkey, OrderKey, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// What a metric is about: the whole run, a site, an actor, or a
/// directed network channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// The simulation as a whole.
    Global,
    /// One site (toolkit deployments).
    Site(u32),
    /// One actor (raw simkit deployments).
    Actor(u32),
    /// A directed sender → receiver channel.
    Channel {
        /// Sending actor.
        from: u32,
        /// Receiving actor.
        to: u32,
    },
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Global => write!(f, "global"),
            Scope::Site(s) => write!(f, "site:{s}"),
            Scope::Actor(a) => write!(f, "actor:{a}"),
            Scope::Channel { from, to } => write!(f, "channel:{from}->{to}"),
        }
    }
}

type Key = (Scope, String);

/// Upper bucket bounds (milliseconds) of the latency histograms —
/// fixed so same-seed snapshots are byte-identical and cross-run
/// distributions are comparable. A final overflow bucket catches
/// everything beyond the last bound.
pub const BUCKET_BOUNDS_MS: [u64; 16] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000, 60_000, 120_000,
];

/// A fixed-bucket duration histogram: counts per bucket plus exact
/// count / sum / max, quantiles answered at bucket resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_BOUNDS_MS.len() + 1],
    count: u64,
    sum_ms: u64,
    max_ms: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS_MS.len() + 1],
            count: 0,
            sum_ms: 0,
            max_ms: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, d: SimDuration) {
        let ms = d.as_millis();
        let idx = BUCKET_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(BUCKET_BOUNDS_MS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    #[must_use]
    pub fn sum(&self) -> SimDuration {
        SimDuration::from_millis(self.sum_ms)
    }

    /// Exact maximum observation.
    #[must_use]
    pub fn max(&self) -> SimDuration {
        SimDuration::from_millis(self.max_ms)
    }

    /// Mean observation (zero when empty).
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        match self.sum_ms.checked_div(self.count) {
            Some(mean) => SimDuration::from_millis(mean),
            None => SimDuration::ZERO,
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) at bucket resolution: the upper
    /// bound of the bucket holding the ⌈q·n⌉-th smallest observation
    /// (the exact max for the overflow bucket).
    #[must_use]
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let ms = BUCKET_BOUNDS_MS.get(i).copied().unwrap_or(self.max_ms);
                return SimDuration::from_millis(ms.min(self.max_ms));
            }
        }
        self.max()
    }

    /// Median (bucket resolution).
    #[must_use]
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket resolution).
    #[must_use]
    pub fn p90(&self) -> SimDuration {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket resolution).
    #[must_use]
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    /// Per-bucket counts, in bound order (last entry is the overflow
    /// bucket).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// A structured occurrence at a sim-time instant — crash, overload,
/// recovery, failure-lifecycle transition — with ordered string
/// fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// When it happened.
    pub time: SimTime,
    /// What it is about.
    pub scope: Scope,
    /// Record kind, e.g. `"sim.crash"`.
    pub name: String,
    /// Ordered `(field, value)` pairs.
    pub fields: Vec<(String, String)>,
}

/// An order-sensitive write buffered during a sharded run, replayed in
/// canonical [`OrderKey`] order by [`MetricsRegistry::finalize_order`].
///
/// Only the non-commutative operations need buffering: `record` and
/// `series_push` append (insertion order is observable), `gauge_set`
/// overwrites (last writer wins). Counters, histograms, `gauge_add`
/// and `gauge_track_max` commute, so workers apply them directly.
#[derive(Debug, Clone)]
enum PendingOp {
    Record(Record),
    SeriesPush(Scope, String, i64),
    GaugeSet(Scope, String, i64),
}

/// The registry proper. Use through the [`Metrics`] handle; direct
/// access is for exporters and tests.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, i64>,
    histograms: BTreeMap<Key, Histogram>,
    series: BTreeMap<Key, Vec<i64>>,
    records: Vec<Record>,
    pending: Vec<(OrderKey, PendingOp)>,
}

impl MetricsRegistry {
    /// Add `n` to a counter (creating it at zero).
    pub fn add(&mut self, scope: Scope, name: &str, n: u64) {
        *self.counters.entry((scope, name.to_string())).or_insert(0) += n;
    }

    /// Current counter value (zero when never written).
    #[must_use]
    pub fn counter(&self, scope: Scope, name: &str) -> u64 {
        self.counters
            .get(&(scope, name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, scope: Scope, name: &str, v: i64) {
        self.gauges.insert((scope, name.to_string()), v);
    }

    /// Add `v` (possibly negative) to a gauge, creating it at zero.
    pub fn gauge_add(&mut self, scope: Scope, name: &str, v: i64) {
        *self.gauges.entry((scope, name.to_string())).or_insert(0) += v;
    }

    /// Raise a gauge to `v` if `v` exceeds its current value
    /// (high-water marks).
    pub fn gauge_track_max(&mut self, scope: Scope, name: &str, v: i64) {
        let g = self.gauges.entry((scope, name.to_string())).or_insert(v);
        *g = (*g).max(v);
    }

    /// Current gauge value, if ever written.
    #[must_use]
    pub fn gauge(&self, scope: Scope, name: &str) -> Option<i64> {
        self.gauges.get(&(scope, name.to_string())).copied()
    }

    /// Record a duration observation into a histogram.
    pub fn observe(&mut self, scope: Scope, name: &str, d: SimDuration) {
        self.histograms
            .entry((scope, name.to_string()))
            .or_default()
            .observe(d);
    }

    /// Read a histogram, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, scope: Scope, name: &str) -> Option<&Histogram> {
        self.histograms.get(&(scope, name.to_string()))
    }

    /// Append a value to a series.
    pub fn series_push(&mut self, scope: Scope, name: &str, v: i64) {
        self.series
            .entry((scope, name.to_string()))
            .or_default()
            .push(v);
    }

    /// Read a series (empty when never written).
    #[must_use]
    pub fn series(&self, scope: Scope, name: &str) -> &[i64] {
        self.series
            .get(&(scope, name.to_string()))
            .map_or(&[], |v| v.as_slice())
    }

    /// Append a structured record.
    pub fn record<I, K, V>(&mut self, time: SimTime, scope: Scope, name: &str, fields: I)
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        self.records.push(Record {
            time,
            scope,
            name: name.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        });
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&Scope, &str, u64)> {
        self.counters.iter().map(|((s, n), v)| (s, n.as_str(), *v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&Scope, &str, i64)> {
        self.gauges.iter().map(|((s, n), v)| (s, n.as_str(), *v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&Scope, &str, &Histogram)> {
        self.histograms.iter().map(|((s, n), h)| (s, n.as_str(), h))
    }

    /// All series in key order.
    pub fn all_series(&self) -> impl Iterator<Item = (&Scope, &str, &[i64])> {
        self.series
            .iter()
            .map(|((s, n), v)| (s, n.as_str(), v.as_slice()))
    }

    /// All structured records in insertion (sim-time) order.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    fn apply(&mut self, op: PendingOp) {
        match op {
            PendingOp::Record(r) => self.records.push(r),
            PendingOp::SeriesPush(scope, name, v) => {
                self.series.entry((scope, name)).or_default().push(v);
            }
            PendingOp::GaugeSet(scope, name, v) => {
                self.gauges.insert((scope, name), v);
            }
        }
    }

    /// Replay writes buffered during a sharded run in canonical order.
    /// Serial runs buffer nothing, so this is a no-op for them.
    pub fn finalize_order(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_by_key(|(k, _)| *k);
        for (_, op) in pending {
            self.apply(op);
        }
    }
}

/// The cheaply clonable handle every instrumented component holds.
///
/// Thread-safe: one registry is shared by every shard of a sharded run.
/// Commutative writes apply directly under the lock; order-sensitive
/// writes (`record`, `series_push`, `gauge_set`) are buffered with the
/// thread's ambient [`OrderKey`] when one is installed and replayed in
/// canonical order by [`Metrics::finalize_order`], so snapshots are
/// byte-identical to the serial execution.
#[derive(Debug, Clone, Default)]
pub struct Metrics(Arc<Mutex<MetricsRegistry>>);

impl Metrics {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    fn lock(&self) -> MutexGuard<'_, MetricsRegistry> {
        self.0.lock().expect("metrics registry lock poisoned")
    }

    /// Increment a counter by one.
    pub fn inc(&self, scope: Scope, name: &str) {
        self.lock().add(scope, name, 1);
    }

    /// Add `n` to a counter.
    pub fn add(&self, scope: Scope, name: &str, n: u64) {
        self.lock().add(scope, name, n);
    }

    /// Current counter value.
    #[must_use]
    pub fn counter(&self, scope: Scope, name: &str) -> u64 {
        self.lock().counter(scope, name)
    }

    /// Set a gauge.
    pub fn gauge_set(&self, scope: Scope, name: &str, v: i64) {
        let mut reg = self.lock();
        match ordkey::next() {
            Some(k) => reg
                .pending
                .push((k, PendingOp::GaugeSet(scope, name.to_string(), v))),
            None => reg.gauge_set(scope, name, v),
        }
    }

    /// Add `v` (possibly negative) to a gauge.
    pub fn gauge_add(&self, scope: Scope, name: &str, v: i64) {
        self.lock().gauge_add(scope, name, v);
    }

    /// Raise a high-water gauge.
    pub fn gauge_track_max(&self, scope: Scope, name: &str, v: i64) {
        self.lock().gauge_track_max(scope, name, v);
    }

    /// Current gauge value, if ever written.
    #[must_use]
    pub fn gauge(&self, scope: Scope, name: &str) -> Option<i64> {
        self.lock().gauge(scope, name)
    }

    /// Record a duration observation.
    pub fn observe(&self, scope: Scope, name: &str, d: SimDuration) {
        self.lock().observe(scope, name, d);
    }

    /// Append to a series.
    pub fn series_push(&self, scope: Scope, name: &str, v: i64) {
        let mut reg = self.lock();
        match ordkey::next() {
            Some(k) => reg
                .pending
                .push((k, PendingOp::SeriesPush(scope, name.to_string(), v))),
            None => reg.series_push(scope, name, v),
        }
    }

    /// Copy a series out.
    #[must_use]
    pub fn series(&self, scope: Scope, name: &str) -> Vec<i64> {
        self.lock().series(scope, name).to_vec()
    }

    /// Append a structured record.
    pub fn record<I, K, V>(&self, time: SimTime, scope: Scope, name: &str, fields: I)
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let mut reg = self.lock();
        match ordkey::next() {
            Some(k) => {
                let record = Record {
                    time,
                    scope,
                    name: name.to_string(),
                    fields: fields
                        .into_iter()
                        .map(|(k, v)| (k.into(), v.into()))
                        .collect(),
                };
                reg.pending.push((k, PendingOp::Record(record)));
            }
            None => reg.record(time, scope, name, fields),
        }
    }

    /// Replay order-sensitive writes buffered during a sharded run in
    /// canonical serial order. No-op after serial runs.
    pub fn finalize_order(&self) {
        self.lock().finalize_order();
    }

    /// Read-only access to the registry (exports, snapshot views).
    pub fn with<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> R {
        f(&self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_key() {
        let m = Metrics::new();
        m.inc(Scope::Site(0), "firings");
        m.inc(Scope::Site(0), "firings");
        m.inc(Scope::Site(1), "firings");
        assert_eq!(m.counter(Scope::Site(0), "firings"), 2);
        assert_eq!(m.counter(Scope::Site(1), "firings"), 1);
        assert_eq!(m.counter(Scope::Site(2), "firings"), 0);
    }

    #[test]
    fn gauge_high_water() {
        let m = Metrics::new();
        m.gauge_track_max(Scope::Global, "depth", 3);
        m.gauge_track_max(Scope::Global, "depth", 7);
        m.gauge_track_max(Scope::Global, "depth", 5);
        assert_eq!(m.gauge(Scope::Global, "depth"), Some(7));
        assert_eq!(m.gauge(Scope::Global, "other"), None);
    }

    #[test]
    fn histogram_quantiles_at_bucket_resolution() {
        let mut h = Histogram::default();
        for ms in [1u64, 3, 3, 8, 40, 900] {
            h.observe(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), SimDuration::from_millis(900));
        assert_eq!(h.sum(), SimDuration::from_millis(955));
        // p50: 3rd of 6 samples sits in the (2,5] bucket → bound 5 ms.
        assert_eq!(h.p50(), SimDuration::from_millis(5));
        // p99 → last sample's bucket (500,1000], clamped to max 900.
        assert_eq!(h.p99(), SimDuration::from_millis(900));
    }

    #[test]
    fn histogram_overflow_bucket_reports_exact_max() {
        let mut h = Histogram::default();
        h.observe(SimDuration::from_millis(500_000));
        assert_eq!(h.p50(), SimDuration::from_millis(500_000));
        assert_eq!(h.bucket_counts().last(), Some(&1));
    }

    #[test]
    fn tagged_writes_replay_in_canonical_order() {
        use hcm_core::ordkey::{self, OrderKey};
        let m = Metrics::new();
        let key = |seq| OrderKey {
            time: 4,
            phase: 1,
            src: 0,
            seq,
            minor: 0,
            sub: 0,
        };
        // Arrival order 2, 1 — canonical order is by seq.
        ordkey::install(key(2));
        m.series_push(Scope::Global, "lat", 20);
        m.gauge_set(Scope::Global, "g", 2);
        m.record(SimTime::from_millis(4), Scope::Global, "ev", [("n", "b")]);
        ordkey::install(key(1));
        m.series_push(Scope::Global, "lat", 10);
        m.gauge_set(Scope::Global, "g", 1);
        m.record(SimTime::from_millis(4), Scope::Global, "ev", [("n", "a")]);
        ordkey::clear();
        // Nothing applied yet.
        assert!(m.series(Scope::Global, "lat").is_empty());
        assert_eq!(m.gauge(Scope::Global, "g"), None);
        m.finalize_order();
        assert_eq!(m.series(Scope::Global, "lat"), vec![10, 20]);
        assert_eq!(m.gauge(Scope::Global, "g"), Some(2));
        m.with(|reg| {
            let names: Vec<_> = reg
                .records()
                .iter()
                .map(|r| r.fields[0].1.clone())
                .collect();
            assert_eq!(names, vec!["a", "b"]);
        });
    }

    #[test]
    fn untagged_writes_apply_immediately() {
        let m = Metrics::new();
        m.series_push(Scope::Global, "lat", 7);
        m.gauge_set(Scope::Global, "g", 7);
        assert_eq!(m.series(Scope::Global, "lat"), vec![7]);
        assert_eq!(m.gauge(Scope::Global, "g"), Some(7));
        m.finalize_order(); // no-op
        assert_eq!(m.series(Scope::Global, "lat"), vec![7]);
    }

    #[test]
    fn scope_ordering_is_stable() {
        let mut keys = vec![
            Scope::Channel { from: 1, to: 0 },
            Scope::Global,
            Scope::Actor(2),
            Scope::Site(1),
            Scope::Site(0),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                Scope::Global,
                Scope::Site(0),
                Scope::Site(1),
                Scope::Actor(2),
                Scope::Channel { from: 1, to: 0 },
            ]
        );
    }
}
