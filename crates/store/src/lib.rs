//! # hcm-store — durable state for shells and translators
//!
//! The paper's failure model (§5) turns on durability: "crashes can be
//! mapped to metric failures if the database … can remember messages".
//! This crate is the *remembering*: an append-only write-ahead log of
//! CM events, periodic checkpoints of component state, and a recovery
//! path that loads the latest valid checkpoint and replays the log
//! suffix. A CM-Shell or CM-Translator wired to a [`StateStore`] can
//! lose its entire in-memory state to a lossy crash and come back
//! holding exactly the registry, private data and pending obligations
//! it had logged — demoting what would have been a logical failure to
//! a metric one.
//!
//! Design rules (shared with the rest of the workspace):
//!
//! * **Dependency-free.** crates.io is unreachable in this
//!   environment, so the binary codec ([`codec`]), the CRC32
//!   checksums and the segment format are all hand-rolled on `std`.
//! * **Deterministic.** Encoding is fixed-width little-endian with
//!   length-prefixed strings; the same state always encodes to the
//!   same bytes, so recovery equivalence can be asserted
//!   byte-for-byte.
//! * **Torn tails are data loss, not corruption.** Every record
//!   carries a CRC32; recovery stops at the first record whose length
//!   or checksum does not verify, truncates the tail, and reports how
//!   much was dropped — it never panics on a half-written file.
//!
//! Two [`StateStore`] implementations are provided: [`MemStore`] (an
//! in-memory log for tests and simulations, durable across *simulated*
//! crashes because it lives outside the actor) and [`FileStore`]
//! (length-prefixed CRC-checked segment files with rotation,
//! checkpoint files, and tail truncation on recovery).

#![warn(missing_docs)]

pub mod codec;
pub mod record;
pub mod wal;

pub use codec::{crc32, CodecError, Decoder, Encoder};
pub use record::{
    FailureTag, LogRecord, PendingWrite, ShellSnapshot, StatusTag, TranslatorSnapshot,
};
pub use wal::{FileStore, MemStore, Recovery, StateStore, StoreConfig, StoreError};

use hcm_core::Shared;

/// A shared, interiorly mutable handle to a state store, as held by a
/// scenario and the actor it backs. The handle lives *outside* the
/// simulated actor, which is what makes the store survive a simulated
/// crash that wipes the actor's own state. `Send` so the actor holding
/// it can run on a sharded-execution worker thread.
pub type SharedStore = Shared<Box<dyn StateStore + Send>>;

/// Wrap a concrete store into a [`SharedStore`].
#[must_use]
pub fn shared(store: impl StateStore + Send + 'static) -> SharedStore {
    Shared::new(Box::new(store))
}
