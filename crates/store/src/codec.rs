//! Hand-rolled binary codec.
//!
//! Fixed-width little-endian integers, length-prefixed UTF-8 strings,
//! and tagged unions for the domain types the log records mention
//! ([`Value`], [`ItemId`], [`EventDesc`], times). The encoding is
//! deterministic — the same value always produces the same bytes — so
//! recovered state can be compared byte-for-byte against live state.
//!
//! A table-driven CRC32 (IEEE 802.3, reflected, polynomial
//! `0xEDB88320`) guards every log record and checkpoint payload; see
//! [`crc32`].

use hcm_core::{EventDesc, ItemId, SimDuration, SimTime, Sym, Value};
use std::fmt;

/// A decode failure. Encoding is infallible; decoding is not, because
/// the bytes may come from a torn or corrupted file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value did.
    Truncated,
    /// An unknown tag byte for the expected union type.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "codec: input truncated"),
            CodecError::BadTag(t) => write!(f, "codec: unknown tag {t}"),
            CodecError::BadUtf8 => write!(f, "codec: invalid utf-8 in string"),
        }
    }
}

impl std::error::Error for CodecError {}

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3, reflected) of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Append-only byte-buffer writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Write one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a [`SimTime`] (milliseconds).
    pub fn time(&mut self, t: SimTime) {
        self.u64(t.as_millis());
    }

    /// Write a [`SimDuration`] (milliseconds).
    pub fn duration(&mut self, d: SimDuration) {
        self.u64(d.as_millis());
    }

    /// Write a [`Value`] (tagged union).
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.bool(*b);
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(3);
                self.f64(*f);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
        }
    }

    /// Write an optional [`Value`].
    pub fn opt_value(&mut self, v: Option<&Value>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.value(v);
            }
        }
    }

    /// Write an [`ItemId`]: base name + parameter values.
    pub fn item(&mut self, item: &ItemId) {
        self.str(item.base.as_str());
        self.u32(item.params.len() as u32);
        for p in &item.params {
            self.value(p);
        }
    }

    /// Write an [`EventDesc`] (tagged union over the descriptor set).
    pub fn event_desc(&mut self, d: &EventDesc) {
        match d {
            EventDesc::Ws { item, old, new } => {
                self.u8(0);
                self.item(item);
                self.opt_value(old.as_ref());
                self.value(new);
            }
            EventDesc::W { item, value } => {
                self.u8(1);
                self.item(item);
                self.value(value);
            }
            EventDesc::Wr { item, value } => {
                self.u8(2);
                self.item(item);
                self.value(value);
            }
            EventDesc::Rr { item } => {
                self.u8(3);
                self.item(item);
            }
            EventDesc::R { item, value } => {
                self.u8(4);
                self.item(item);
                self.value(value);
            }
            EventDesc::N { item, value } => {
                self.u8(5);
                self.item(item);
                self.value(value);
            }
            EventDesc::P { period } => {
                self.u8(6);
                self.duration(*period);
            }
            EventDesc::Custom { name, args } => {
                self.u8(7);
                self.str(name);
                self.u32(args.len() as u32);
                for a in args {
                    self.value(a);
                }
            }
        }
    }
}

/// Cursor-based reader over encoded bytes.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, starting at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::BadTag(t)),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Read a [`SimTime`].
    pub fn time(&mut self) -> Result<SimTime, CodecError> {
        Ok(SimTime::from_millis(self.u64()?))
    }

    /// Read a [`SimDuration`].
    pub fn duration(&mut self) -> Result<SimDuration, CodecError> {
        Ok(SimDuration::from_millis(self.u64()?))
    }

    /// Read a [`Value`].
    pub fn value(&mut self) -> Result<Value, CodecError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.bool()?)),
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Float(self.f64()?)),
            4 => Ok(Value::Str(self.str()?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    /// Read an optional [`Value`].
    pub fn opt_value(&mut self) -> Result<Option<Value>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.value()?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    /// Read an [`ItemId`].
    pub fn item(&mut self) -> Result<ItemId, CodecError> {
        let base = Sym::intern(&self.str()?);
        let n = self.u32()? as usize;
        let mut params = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            params.push(self.value()?);
        }
        Ok(ItemId { base, params })
    }

    /// Read an [`EventDesc`].
    pub fn event_desc(&mut self) -> Result<EventDesc, CodecError> {
        match self.u8()? {
            0 => Ok(EventDesc::Ws {
                item: self.item()?,
                old: self.opt_value()?,
                new: self.value()?,
            }),
            1 => Ok(EventDesc::W {
                item: self.item()?,
                value: self.value()?,
            }),
            2 => Ok(EventDesc::Wr {
                item: self.item()?,
                value: self.value()?,
            }),
            3 => Ok(EventDesc::Rr { item: self.item()? }),
            4 => Ok(EventDesc::R {
                item: self.item()?,
                value: self.value()?,
            }),
            5 => Ok(EventDesc::N {
                item: self.item()?,
                value: self.value()?,
            }),
            6 => Ok(EventDesc::P {
                period: self.duration()?,
            }),
            7 => {
                let name = self.str()?;
                let n = self.u32()? as usize;
                let mut args = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    args.push(self.value()?);
                }
                Ok(EventDesc::Custom { name, args })
            }
            t => Err(CodecError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(1.5);
        e.str("héllo");
        e.time(SimTime::from_millis(123));
        e.duration(SimDuration::from_secs(9));
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 1.5);
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.time().unwrap(), SimTime::from_millis(123));
        assert_eq!(d.duration().unwrap(), SimDuration::from_secs(9));
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.str("hello");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..bytes.len() - 1]);
        assert_eq!(d.str(), Err(CodecError::Truncated));
        let mut d2 = Decoder::new(&[]);
        assert_eq!(d2.u64(), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_tags_rejected() {
        let mut d = Decoder::new(&[9]);
        assert_eq!(d.value(), Err(CodecError::BadTag(9)));
        let mut d2 = Decoder::new(&[2]);
        assert_eq!(d2.bool(), Err(CodecError::BadTag(2)));
    }

    #[test]
    fn item_round_trip() {
        let item = ItemId::with("salary1", [Value::from("e42"), Value::Int(3)]);
        let mut e = Encoder::new();
        e.item(&item);
        let bytes = e.finish();
        assert_eq!(Decoder::new(&bytes).item().unwrap(), item);
    }
}
