//! Append-only log, checkpoints, and recovery.
//!
//! A [`StateStore`] holds two things for one component: an ordered
//! sequence of opaque log-record payloads (appended one at a time) and
//! at most one checkpoint blob (replacing any earlier one). Recovery
//! returns the latest valid checkpoint plus every record appended
//! after it, in order.
//!
//! [`FileStore`] maps this onto a directory of files:
//!
//! ```text
//! wal-<k>.seg   = "HCMWAL1\n"  frame*          (append-only segment)
//! ckpt-<j>.bin  = "HCMCKPT\n"  frame           (one snapshot blob)
//! frame         = u32le payload_len  u32le crc32(payload)  payload
//! ```
//!
//! Indices `<k>`/`<j>` come from one monotone counter shared by both
//! file kinds, so "records after checkpoint `j`" is exactly "segments
//! with index greater than `j`". Segments rotate at
//! [`StoreConfig::segment_bytes`]; a checkpoint prunes every
//! lower-indexed file. A half-written tail (short frame or checksum
//! mismatch) is truncated on recovery and reported — torn tails are
//! data loss, never a panic.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::crc32;

/// Magic line opening every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"HCMWAL1\n";
/// Magic line opening every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"HCMCKPT\n";
/// Bytes of framing overhead per record (length + checksum).
pub const FRAME_OVERHEAD: u64 = 8;

/// Errors surfaced by a [`StateStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// A file was structurally invalid beyond tail truncation.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store i/o error: {m}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// Tunables for a file-backed store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Rotate the active segment once it would exceed this many bytes.
    pub segment_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 64 * 1024,
        }
    }
}

/// What recovery found: the newest valid checkpoint (if any) and every
/// record logged after it, oldest first.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Snapshot blob from the newest checkpoint whose checksum verified.
    pub checkpoint: Option<Vec<u8>>,
    /// Log-record payloads appended after that checkpoint, in order.
    pub records: Vec<Vec<u8>>,
    /// Torn or corrupt tails dropped (and, for files, truncated away).
    pub torn_truncations: u64,
    /// Total payload bytes scanned during recovery.
    pub bytes_read: u64,
}

/// Durable state for one component: an append-only record log plus a
/// replacing checkpoint blob.
pub trait StateStore {
    /// Append one record payload. Returns the number of bytes the
    /// store persisted for it (payload plus framing).
    fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError>;

    /// Install a checkpoint blob, superseding any earlier checkpoint
    /// and every record appended before this call. Returns the bytes
    /// persisted.
    fn checkpoint(&mut self, snapshot: &[u8]) -> Result<u64, StoreError>;

    /// Read back the newest valid checkpoint and the records appended
    /// after it. Idempotent; safe to call on an empty store.
    fn recover(&mut self) -> Result<Recovery, StoreError>;
}

/// In-memory [`StateStore`] for simulations and tests. Durability
/// across *simulated* crashes comes from the handle living outside the
/// simulated actor (see [`crate::SharedStore`]).
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    checkpoint: Option<Vec<u8>>,
    records: Vec<Vec<u8>>,
}

impl MemStore {
    /// An empty in-memory store.
    #[must_use]
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Number of records appended since the last checkpoint.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

impl StateStore for MemStore {
    fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        self.records.push(payload.to_vec());
        Ok(payload.len() as u64 + FRAME_OVERHEAD)
    }

    fn checkpoint(&mut self, snapshot: &[u8]) -> Result<u64, StoreError> {
        self.checkpoint = Some(snapshot.to_vec());
        self.records.clear();
        Ok(snapshot.len() as u64 + FRAME_OVERHEAD)
    }

    fn recover(&mut self) -> Result<Recovery, StoreError> {
        let bytes_read = self.checkpoint.as_ref().map_or(0, |c| c.len() as u64)
            + self.records.iter().map(|r| r.len() as u64).sum::<u64>();
        Ok(Recovery {
            checkpoint: self.checkpoint.clone(),
            records: self.records.clone(),
            torn_truncations: 0,
            bytes_read,
        })
    }
}

/// File-backed [`StateStore`]: CRC-checked segment files with
/// rotation, checkpoint files, pruning, and tail truncation.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    config: StoreConfig,
    /// Index of the active segment; ckpt and wal files share the counter.
    active_index: u64,
    active: fs::File,
    active_bytes: u64,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir`. Existing log
    /// and checkpoint files are left untouched until [`Self::recover`]
    /// or [`Self::checkpoint`] runs; a fresh active segment is started
    /// after the highest existing file index.
    pub fn open(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err)?;
        let next = scan(&dir)?.keys().next_back().map_or(0, |i| i + 1);
        let (active, active_bytes) = new_segment(&dir, next)?;
        Ok(FileStore {
            dir,
            config,
            active_index: next,
            active,
            active_bytes,
        })
    }

    /// The directory backing this store.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn rotate(&mut self) -> Result<(), StoreError> {
        self.active_index += 1;
        let (file, bytes) = new_segment(&self.dir, self.active_index)?;
        self.active = file;
        self.active_bytes = bytes;
        Ok(())
    }
}

impl StateStore for FileStore {
    fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let framed = payload.len() as u64 + FRAME_OVERHEAD;
        if self.active_bytes > WAL_MAGIC.len() as u64
            && self.active_bytes + framed > self.config.segment_bytes
        {
            self.rotate()?;
        }
        write_frame(&mut self.active, payload)?;
        self.active.flush().map_err(io_err)?;
        self.active_bytes += framed;
        Ok(framed)
    }

    fn checkpoint(&mut self, snapshot: &[u8]) -> Result<u64, StoreError> {
        self.active_index += 1;
        let ckpt_index = self.active_index;
        let path = self.dir.join(format!("ckpt-{ckpt_index}.bin"));
        let mut file = fs::File::create(&path).map_err(io_err)?;
        file.write_all(CKPT_MAGIC).map_err(io_err)?;
        write_frame(&mut file, snapshot)?;
        file.sync_all().map_err(io_err)?;
        // Everything below the checkpoint is superseded.
        for (index, entry) in scan(&self.dir)? {
            if index < ckpt_index {
                let _ = fs::remove_file(entry.path);
            }
        }
        self.rotate()?;
        Ok(snapshot.len() as u64 + FRAME_OVERHEAD + CKPT_MAGIC.len() as u64)
    }

    fn recover(&mut self) -> Result<Recovery, StoreError> {
        let mut out = Recovery::default();
        let files = scan(&self.dir)?;

        // Newest checkpoint whose magic and checksum verify; fall back
        // to older ones when the newest was half-written.
        let mut ckpt_index = None;
        for (&index, entry) in files.iter().rev() {
            if entry.kind != FileKind::Checkpoint {
                continue;
            }
            match read_checkpoint(&entry.path) {
                Ok(blob) => {
                    out.bytes_read += blob.len() as u64;
                    out.checkpoint = Some(blob);
                    ckpt_index = Some(index);
                    break;
                }
                Err(_) => out.torn_truncations += 1,
            }
        }

        // Replay every segment after the checkpoint, oldest first,
        // stopping for good at the first torn record: anything beyond
        // it post-dates the corruption and cannot be trusted.
        for (&index, entry) in &files {
            if entry.kind != FileKind::Segment || Some(index) <= ckpt_index {
                continue;
            }
            let buf = fs::read(&entry.path).map_err(io_err)?;
            if buf.len() < WAL_MAGIC.len() || &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
                out.torn_truncations += 1;
                break;
            }
            let (records, valid_end, torn) = parse_frames(&buf, WAL_MAGIC.len());
            for r in &records {
                out.bytes_read += r.len() as u64;
            }
            out.records.extend(records);
            if torn {
                out.torn_truncations += 1;
                truncate_file(&entry.path, valid_end as u64)?;
                if index == self.active_index {
                    self.active_bytes = valid_end as u64;
                }
                break;
            }
        }
        Ok(out)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    Segment,
    Checkpoint,
}

#[derive(Debug)]
struct DirEntry {
    kind: FileKind,
    path: PathBuf,
}

/// Index every `wal-<k>.seg` / `ckpt-<j>.bin` in `dir`.
fn scan(dir: &Path) -> Result<BTreeMap<u64, DirEntry>, StoreError> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).map_err(io_err)? {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let parsed = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".seg"))
            .map(|n| (FileKind::Segment, n))
            .or_else(|| {
                name.strip_prefix("ckpt-")
                    .and_then(|r| r.strip_suffix(".bin"))
                    .map(|n| (FileKind::Checkpoint, n))
            });
        if let Some((kind, digits)) = parsed {
            if let Ok(index) = digits.parse::<u64>() {
                out.insert(
                    index,
                    DirEntry {
                        kind,
                        path: entry.path(),
                    },
                );
            }
        }
    }
    Ok(out)
}

fn new_segment(dir: &Path, index: u64) -> Result<(fs::File, u64), StoreError> {
    let path = dir.join(format!("wal-{index}.seg"));
    let mut file = fs::File::create(&path).map_err(io_err)?;
    file.write_all(WAL_MAGIC).map_err(io_err)?;
    file.flush().map_err(io_err)?;
    Ok((file, WAL_MAGIC.len() as u64))
}

fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), StoreError> {
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    w.write_all(&crc32(payload).to_le_bytes()).map_err(io_err)?;
    w.write_all(payload).map_err(io_err)?;
    Ok(())
}

/// Parse `[len][crc][payload]` frames from `buf` starting at `start`.
/// Returns the valid payloads, the offset just past the last valid
/// frame, and whether a torn/corrupt tail was found after it.
fn parse_frames(buf: &[u8], start: usize) -> (Vec<Vec<u8>>, usize, bool) {
    let mut records = Vec::new();
    let mut pos = start;
    loop {
        if pos == buf.len() {
            return (records, pos, false);
        }
        if buf.len() - pos < FRAME_OVERHEAD as usize {
            return (records, pos, true);
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        let body = pos + FRAME_OVERHEAD as usize;
        if len > buf.len() - body {
            return (records, pos, true);
        }
        let payload = &buf[body..body + len];
        if crc32(payload) != crc {
            return (records, pos, true);
        }
        records.push(payload.to_vec());
        pos = body + len;
    }
}

fn read_checkpoint(path: &Path) -> Result<Vec<u8>, StoreError> {
    let buf = fs::read(path).map_err(io_err)?;
    if buf.len() < CKPT_MAGIC.len() || &buf[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(StoreError::Corrupt(format!("bad magic in {path:?}")));
    }
    let (mut frames, _, torn) = parse_frames(&buf, CKPT_MAGIC.len());
    if torn || frames.len() != 1 {
        return Err(StoreError::Corrupt(format!(
            "checkpoint {path:?} is torn or malformed"
        )));
    }
    Ok(frames.pop().unwrap())
}

fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(io_err)?
        .set_len(len)
        .map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hcm-store-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mem_store_round_trip() {
        let mut s = MemStore::new();
        s.append(b"a").unwrap();
        s.append(b"b").unwrap();
        s.checkpoint(b"snap").unwrap();
        s.append(b"c").unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.checkpoint.as_deref(), Some(&b"snap"[..]));
        assert_eq!(r.records, vec![b"c".to_vec()]);
        assert_eq!(r.torn_truncations, 0);
        // Idempotent.
        let again = s.recover().unwrap();
        assert_eq!(again.records, r.records);
    }

    #[test]
    fn file_store_round_trip_across_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
            s.append(b"one").unwrap();
            s.append(b"two").unwrap();
        }
        let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.checkpoint, None);
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(r.torn_truncations, 0);
    }

    #[test]
    fn rotation_and_checkpoint_prune() {
        let dir = tmpdir("rotate");
        let cfg = StoreConfig { segment_bytes: 32 };
        let mut s = FileStore::open(&dir, cfg).unwrap();
        for i in 0..10u8 {
            s.append(&[i; 10]).unwrap();
        }
        assert!(scan(&dir).unwrap().len() > 1, "should have rotated");
        s.checkpoint(b"snapshot").unwrap();
        s.append(b"after").unwrap();
        let files = scan(&dir).unwrap();
        assert_eq!(files.len(), 2, "checkpoint + fresh segment, rest pruned");
        let r = s.recover().unwrap();
        assert_eq!(r.checkpoint.as_deref(), Some(&b"snapshot"[..]));
        assert_eq!(r.records, vec![b"after".to_vec()]);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        let path;
        {
            let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
            s.append(b"good").unwrap();
            s.append(b"doomed").unwrap();
            path = dir.join("wal-0.seg");
        }
        // Chop mid-way through the last record's payload.
        let full = fs::metadata(&path).unwrap().len();
        truncate_file(&path, full - 3).unwrap();
        let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.records, vec![b"good".to_vec()]);
        assert_eq!(r.torn_truncations, 1);
        // The torn bytes are gone: a second recovery is clean.
        let r2 = s.recover().unwrap();
        assert_eq!(r2.records, vec![b"good".to_vec()]);
        assert_eq!(r2.torn_truncations, 0);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_older_one() {
        let dir = tmpdir("badckpt");
        let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
        s.append(b"r0").unwrap();
        s.checkpoint(b"old-snap").unwrap();
        s.append(b"r1").unwrap();
        s.checkpoint(b"new-snap").unwrap();
        s.append(b"r2").unwrap();
        // Corrupt the newest checkpoint's payload byte.
        let files = scan(&dir).unwrap();
        let newest_ckpt = files
            .iter()
            .filter(|(_, e)| e.kind == FileKind::Checkpoint)
            .map(|(i, e)| (*i, e.path.clone()))
            .next_back()
            .unwrap();
        let mut buf = fs::read(&newest_ckpt.1).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        fs::write(&newest_ckpt.1, &buf).unwrap();
        // Newest ckpt pruned the older one, so fallback finds nothing:
        // recovery degrades to "no checkpoint, replay what remains".
        let r = s.recover().unwrap();
        assert_eq!(r.checkpoint, None);
        assert_eq!(r.torn_truncations, 1);
        assert_eq!(r.records, vec![b"r2".to_vec()]);
    }
}
