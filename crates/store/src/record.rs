//! Logged records and checkpoint snapshots.
//!
//! [`LogRecord`] is the WAL vocabulary: every durable state mutation a
//! CM-Shell or CM-Translator performs is logged as one record *before*
//! (or atomically with) the in-memory mutation, so replaying the
//! records over the latest checkpoint reconstructs the component's
//! state at the moment of the crash.
//!
//! [`ShellSnapshot`] and [`TranslatorSnapshot`] are the checkpoint
//! payloads: a full copy of the durable subset of each component's
//! state (CM-private data + guarantee registry + outstanding requests
//! for a shell; armed periodic interfaces + accepted-but-unperformed
//! writes for a translator). A checkpoint lets recovery prune the log
//! prefix.

use crate::codec::{CodecError, Decoder, Encoder};
use hcm_core::{EventId, ItemId, RuleId, SimDuration, SimTime, SiteId, Value};

/// Failure classification carried in a log record (§5's two classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureTag {
    /// Time bounds missed; service eventually provided.
    Metric,
    /// Interface statements void.
    Logical,
}

impl FailureTag {
    fn encode(self) -> u8 {
        match self {
            FailureTag::Metric => 0,
            FailureTag::Logical => 1,
        }
    }

    fn decode(b: u8) -> Result<Self, CodecError> {
        match b {
            0 => Ok(FailureTag::Metric),
            1 => Ok(FailureTag::Logical),
            t => Err(CodecError::BadTag(t)),
        }
    }
}

/// Guarantee status as stored in a checkpoint (mirrors the toolkit's
/// `GuaranteeStatus` without depending on the toolkit crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusTag {
    /// The guarantee is in force.
    Valid,
    /// Suspended by a metric failure.
    SuspendedMetric,
    /// Suspended by a logical failure (needs reset).
    SuspendedLogical,
}

impl StatusTag {
    fn encode(self) -> u8 {
        match self {
            StatusTag::Valid => 0,
            StatusTag::SuspendedMetric => 1,
            StatusTag::SuspendedLogical => 2,
        }
    }

    fn decode(b: u8) -> Result<Self, CodecError> {
        match b {
            0 => Ok(StatusTag::Valid),
            1 => Ok(StatusTag::SuspendedMetric),
            2 => Ok(StatusTag::SuspendedLogical),
            t => Err(CodecError::BadTag(t)),
        }
    }
}

/// A write request a translator has accepted (scheduled against its
/// database) but not yet performed. Durable so that a crash between
/// acceptance and execution loses no writes — the §5 demotion of a
/// logical failure to a metric one.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingWrite {
    /// The shell's request id (to acknowledge on completion).
    pub req_id: u64,
    /// Actor id of the requesting shell.
    pub reply_to: u32,
    /// Item to write.
    pub item: ItemId,
    /// Value to write.
    pub value: Value,
    /// The write-interface rule servicing the request.
    pub rule: RuleId,
    /// The `WR` event that triggered the write (provenance).
    pub trigger: EventId,
}

impl PendingWrite {
    fn encode_into(&self, e: &mut Encoder) {
        e.u64(self.req_id);
        e.u32(self.reply_to);
        e.item(&self.item);
        e.value(&self.value);
        e.u32(self.rule.0);
        e.u64(self.trigger.0);
    }

    fn decode_from(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(PendingWrite {
            req_id: d.u64()?,
            reply_to: d.u32()?,
            item: d.item()?,
            value: d.value()?,
            rule: RuleId(d.u32()?),
            trigger: EventId(d.u64()?),
        })
    }
}

/// One durable log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A shell wrote CM-private data (`W` on a strategy RHS).
    PrivateWrite {
        /// When the write occurred.
        at: SimTime,
        /// The private item.
        item: ItemId,
        /// The value written.
        value: Value,
    },
    /// A failure of `site` was observed (detected locally or received
    /// as a `FailureNotice`).
    Failure {
        /// When the registry transition happened.
        at: SimTime,
        /// The failed site.
        site: SiteId,
        /// Metric or logical.
        kind: FailureTag,
    },
    /// A metric failure of `site` cleared (late response arrived).
    Clear {
        /// When the registry transition happened.
        at: SimTime,
        /// The recovered site.
        site: SiteId,
    },
    /// The system was reset (lifts logical suspensions, §5).
    Reset {
        /// When the reset happened.
        at: SimTime,
    },
    /// A shell issued a CMI request and armed its deadline.
    RequestSent {
        /// When the request was issued.
        at: SimTime,
        /// The request id.
        req_id: u64,
    },
    /// A shell's CMI request was answered (obligation discharged).
    RequestResolved {
        /// The request id.
        req_id: u64,
    },
    /// A translator accepted a write request and scheduled it.
    WriteAccepted(PendingWrite),
    /// A translator performed (or definitively rejected) an accepted
    /// write; the pending obligation is discharged.
    WritePerformed {
        /// The request id.
        req_id: u64,
    },
    /// A translator armed (or re-armed) a periodic-notify interface.
    PollArmed {
        /// Index of the interface statement within the CM-RID.
        idx: u64,
        /// Its polling period.
        period: SimDuration,
    },
    /// A periodic-notify interface passed its stop time and will not
    /// be re-armed.
    PollDisarmed {
        /// Index of the interface statement within the CM-RID.
        idx: u64,
    },
}

impl LogRecord {
    /// Encode the record to bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            LogRecord::PrivateWrite { at, item, value } => {
                e.u8(0);
                e.time(*at);
                e.item(item);
                e.value(value);
            }
            LogRecord::Failure { at, site, kind } => {
                e.u8(1);
                e.time(*at);
                e.u32(site.index());
                e.u8(kind.encode());
            }
            LogRecord::Clear { at, site } => {
                e.u8(2);
                e.time(*at);
                e.u32(site.index());
            }
            LogRecord::Reset { at } => {
                e.u8(3);
                e.time(*at);
            }
            LogRecord::RequestSent { at, req_id } => {
                e.u8(4);
                e.time(*at);
                e.u64(*req_id);
            }
            LogRecord::RequestResolved { req_id } => {
                e.u8(5);
                e.u64(*req_id);
            }
            LogRecord::WriteAccepted(pw) => {
                e.u8(6);
                pw.encode_into(&mut e);
            }
            LogRecord::WritePerformed { req_id } => {
                e.u8(7);
                e.u64(*req_id);
            }
            LogRecord::PollArmed { idx, period } => {
                e.u8(8);
                e.u64(*idx);
                e.duration(*period);
            }
            LogRecord::PollDisarmed { idx } => {
                e.u8(9);
                e.u64(*idx);
            }
        }
        e.finish()
    }

    /// Decode a record from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let rec = match d.u8()? {
            0 => LogRecord::PrivateWrite {
                at: d.time()?,
                item: d.item()?,
                value: d.value()?,
            },
            1 => LogRecord::Failure {
                at: d.time()?,
                site: SiteId::new(d.u32()?),
                kind: FailureTag::decode(d.u8()?)?,
            },
            2 => LogRecord::Clear {
                at: d.time()?,
                site: SiteId::new(d.u32()?),
            },
            3 => LogRecord::Reset { at: d.time()? },
            4 => LogRecord::RequestSent {
                at: d.time()?,
                req_id: d.u64()?,
            },
            5 => LogRecord::RequestResolved { req_id: d.u64()? },
            6 => LogRecord::WriteAccepted(PendingWrite::decode_from(&mut d)?),
            7 => LogRecord::WritePerformed { req_id: d.u64()? },
            8 => LogRecord::PollArmed {
                idx: d.u64()?,
                period: d.duration()?,
            },
            9 => LogRecord::PollDisarmed { idx: d.u64()? },
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(rec)
    }
}

/// Checkpoint payload for a CM-Shell: the durable subset of its state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShellSnapshot {
    /// CM-private data, sorted by item (BTreeMap iteration order).
    pub private: Vec<(ItemId, Value)>,
    /// Guarantee registry entries: `(name, status, since)`, name-sorted.
    pub registry: Vec<(String, StatusTag, SimTime)>,
    /// Next request id (kept monotone across crashes so stale replies
    /// cannot collide with new requests).
    pub next_req: u64,
    /// Outstanding CMI requests: `(req_id, sent_at, metric-flagged)`.
    pub outstanding: Vec<(u64, SimTime, bool)>,
}

impl ShellSnapshot {
    /// Encode the snapshot to bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.private.len() as u32);
        for (item, value) in &self.private {
            e.item(item);
            e.value(value);
        }
        e.u32(self.registry.len() as u32);
        for (name, status, since) in &self.registry {
            e.str(name);
            e.u8(status.encode());
            e.time(*since);
        }
        e.u64(self.next_req);
        e.u32(self.outstanding.len() as u32);
        for (req_id, sent_at, flagged) in &self.outstanding {
            e.u64(*req_id);
            e.time(*sent_at);
            e.bool(*flagged);
        }
        e.finish()
    }

    /// Decode a snapshot from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let n = d.u32()? as usize;
        let mut private = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            private.push((d.item()?, d.value()?));
        }
        let n = d.u32()? as usize;
        let mut registry = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            registry.push((d.str()?, StatusTag::decode(d.u8()?)?, d.time()?));
        }
        let next_req = d.u64()?;
        let n = d.u32()? as usize;
        let mut outstanding = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            outstanding.push((d.u64()?, d.time()?, d.bool()?));
        }
        Ok(ShellSnapshot {
            private,
            registry,
            next_req,
            outstanding,
        })
    }
}

/// Checkpoint payload for a CM-Translator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslatorSnapshot {
    /// Armed periodic-notify interfaces: `(iface idx, period)`.
    pub armed: Vec<(u64, SimDuration)>,
    /// Accepted-but-unperformed writes, in acceptance order.
    pub pending: Vec<PendingWrite>,
}

impl TranslatorSnapshot {
    /// Encode the snapshot to bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(self.armed.len() as u32);
        for (idx, period) in &self.armed {
            e.u64(*idx);
            e.duration(*period);
        }
        e.u32(self.pending.len() as u32);
        for pw in &self.pending {
            pw.encode_into(&mut e);
        }
        e.finish()
    }

    /// Decode a snapshot from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let n = d.u32()? as usize;
        let mut armed = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            armed.push((d.u64()?, d.duration()?));
        }
        let n = d.u32()? as usize;
        let mut pending = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            pending.push(PendingWrite::decode_from(&mut d)?);
        }
        Ok(TranslatorSnapshot { armed, pending })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_record_round_trip_spot_checks() {
        let records = vec![
            LogRecord::PrivateWrite {
                at: SimTime::from_secs(3),
                item: ItemId::with("Cx", [Value::Int(1)]),
                value: Value::Float(0.5),
            },
            LogRecord::Failure {
                at: SimTime::from_millis(17),
                site: SiteId::new(2),
                kind: FailureTag::Logical,
            },
            LogRecord::Clear {
                at: SimTime::ZERO,
                site: SiteId::new(0),
            },
            LogRecord::Reset {
                at: SimTime::from_secs(99),
            },
            LogRecord::RequestSent {
                at: SimTime::from_secs(1),
                req_id: 7,
            },
            LogRecord::RequestResolved { req_id: 7 },
            LogRecord::WriteAccepted(PendingWrite {
                req_id: 9,
                reply_to: 1,
                item: ItemId::plain("X"),
                value: Value::Str("v".into()),
                rule: RuleId(4),
                trigger: EventId(12),
            }),
            LogRecord::WritePerformed { req_id: 9 },
            LogRecord::PollArmed {
                idx: 2,
                period: SimDuration::from_secs(60),
            },
            LogRecord::PollDisarmed { idx: 2 },
        ];
        for r in records {
            assert_eq!(LogRecord::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn snapshots_round_trip() {
        let s = ShellSnapshot {
            private: vec![(ItemId::plain("Flag"), Value::Bool(true))],
            registry: vec![(
                "g".into(),
                StatusTag::SuspendedMetric,
                SimTime::from_secs(4),
            )],
            next_req: 11,
            outstanding: vec![(10, SimTime::from_secs(2), true)],
        };
        assert_eq!(ShellSnapshot::decode(&s.encode()).unwrap(), s);

        let t = TranslatorSnapshot {
            armed: vec![(0, SimDuration::from_secs(30))],
            pending: vec![PendingWrite {
                req_id: 3,
                reply_to: 0,
                item: ItemId::with("salary2", [Value::from("e1")]),
                value: Value::Int(95_000),
                rule: RuleId(1),
                trigger: EventId(5),
            }],
        };
        assert_eq!(TranslatorSnapshot::decode(&t.encode()).unwrap(), t);
        assert_eq!(
            TranslatorSnapshot::decode(&TranslatorSnapshot::default().encode()).unwrap(),
            TranslatorSnapshot::default()
        );
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(LogRecord::decode(&[]).is_err());
        assert!(LogRecord::decode(&[200]).is_err());
        assert!(ShellSnapshot::decode(&[1]).is_err());
    }
}
