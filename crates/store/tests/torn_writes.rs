//! Fault injection against the file-backed WAL.
//!
//! Simulates the half-written states a real crash leaves behind —
//! truncation inside the frame header, inside the payload, a flipped
//! payload bit, a flipped checksum bit, an absurd length field — and
//! asserts the invariant from the crate docs: recovery stops at the
//! last record whose checksum verifies, truncates the tail, reports
//! the loss, and never panics.

use std::fs;
use std::path::PathBuf;

use hcm_store::{FileStore, StateStore, StoreConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hcm-store-torn-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a store with three records in one segment, then mutilate the
/// segment file with `damage` and recover.
fn recover_after(tag: &str, damage: impl FnOnce(&PathBuf)) -> hcm_store::Recovery {
    let dir = tmpdir(tag);
    {
        let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
        s.append(b"alpha").unwrap();
        s.append(b"beta").unwrap();
        s.append(b"gamma").unwrap();
    }
    let seg = dir.join("wal-0.seg");
    damage(&seg);
    let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
    s.recover().unwrap()
}

fn set_len(path: &PathBuf, len: u64) {
    fs::OpenOptions::new()
        .write(true)
        .open(path)
        .unwrap()
        .set_len(len)
        .unwrap();
}

fn flip_byte(path: &PathBuf, offset_from_end: u64) {
    let mut buf = fs::read(path).unwrap();
    let i = buf.len() - 1 - offset_from_end as usize;
    buf[i] ^= 0x01;
    fs::write(path, &buf).unwrap();
}

#[test]
fn truncated_inside_last_payload() {
    let r = recover_after("payload", |seg| {
        let len = fs::metadata(seg).unwrap().len();
        set_len(seg, len - 2); // drop the last 2 bytes of "gamma"
    });
    assert_eq!(r.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    assert_eq!(r.torn_truncations, 1);
}

#[test]
fn truncated_inside_last_header() {
    let r = recover_after("header", |seg| {
        let len = fs::metadata(seg).unwrap().len();
        set_len(seg, len - 5 - 5); // "gamma" payload + 5 of its 8 header bytes
    });
    assert_eq!(r.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    assert_eq!(r.torn_truncations, 1);
}

#[test]
fn flipped_bit_in_last_payload() {
    let r = recover_after("bitflip", |seg| flip_byte(seg, 0));
    assert_eq!(r.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    assert_eq!(r.torn_truncations, 1);
}

#[test]
fn flipped_bit_in_last_checksum() {
    // "gamma" is 5 bytes; its CRC field sits 5+0..5+4 bytes from EOF.
    let r = recover_after("crcflip", |seg| flip_byte(seg, 6));
    assert_eq!(r.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    assert_eq!(r.torn_truncations, 1);
}

#[test]
fn corruption_mid_log_drops_everything_after_it() {
    // A flipped bit in "beta" invalidates beta AND gamma: records past
    // a corrupt one cannot be trusted (framing may be desynced).
    let r = recover_after("midlog", |seg| {
        // gamma frame = 8 + 5 = 13 bytes; beta's payload ends 13 bytes
        // from EOF, so its last byte is 13 from the end.
        flip_byte(seg, 13);
    });
    assert_eq!(r.records, vec![b"alpha".to_vec()]);
    assert_eq!(r.torn_truncations, 1);
}

#[test]
fn absurd_length_field_is_torn_not_alloc_bomb() {
    let r = recover_after("hugelen", |seg| {
        let mut buf = fs::read(seg).unwrap();
        // Overwrite gamma's length field (13 bytes from EOF) with u32::MAX.
        let at = buf.len() - 13;
        buf[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(seg, &buf).unwrap();
    });
    assert_eq!(r.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    assert_eq!(r.torn_truncations, 1);
}

#[test]
fn truncation_repairs_the_file_for_future_appends() {
    let dir = tmpdir("repair");
    {
        let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
        s.append(b"keep").unwrap();
        s.append(b"lose").unwrap();
    }
    let seg = dir.join("wal-0.seg");
    let len = fs::metadata(&seg).unwrap().len();
    set_len(&seg, len - 1);

    // First recovery truncates the torn tail in place.
    let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
    let r = s.recover().unwrap();
    assert_eq!(r.records, vec![b"keep".to_vec()]);
    assert_eq!(r.torn_truncations, 1);

    // New appends after the repair are recoverable alongside the
    // surviving prefix.
    s.append(b"fresh").unwrap();
    let r2 = s.recover().unwrap();
    assert_eq!(r2.records, vec![b"keep".to_vec(), b"fresh".to_vec()]);
    assert_eq!(r2.torn_truncations, 0);
}

#[test]
fn empty_and_magic_only_stores_recover_clean() {
    let dir = tmpdir("empty");
    let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
    let r = s.recover().unwrap();
    assert!(r.checkpoint.is_none());
    assert!(r.records.is_empty());
    assert_eq!(r.torn_truncations, 0);
}

#[test]
fn torn_checkpoint_truncated_mid_snapshot() {
    let dir = tmpdir("tornckpt");
    let mut s = FileStore::open(&dir, StoreConfig::default()).unwrap();
    s.append(b"pre").unwrap();
    s.checkpoint(b"a-reasonably-long-snapshot-blob").unwrap();
    s.append(b"post").unwrap();
    // Tear the checkpoint file itself.
    let files: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("ckpt-")
        })
        .collect();
    assert_eq!(files.len(), 1);
    let len = fs::metadata(&files[0]).unwrap().len();
    set_len(&files[0], len - 10);

    let r = s.recover().unwrap();
    // Checkpoint lost (and the pre-checkpoint log was pruned by the
    // checkpoint), but the post-checkpoint suffix survives and nothing
    // panics.
    assert!(r.checkpoint.is_none());
    assert_eq!(r.torn_truncations, 1);
    assert_eq!(r.records, vec![b"post".to_vec()]);
}
