//! Generator-driven round-trip tests for the store codec.
//!
//! A SplitMix64 generator (same pattern as cm-core's property tests —
//! deterministic, dependency-free) drives random instances of every
//! encodable type: [`Value`], [`ItemId`], [`EventDesc`], every
//! [`LogRecord`] variant, and both checkpoint snapshots. Each instance
//! must decode back to an equal value, and every strict prefix of its
//! encoding must fail with an error rather than panic.

use hcm_core::{EventDesc, EventId, ItemId, RuleId, SimDuration, SimTime, SiteId, Value};
use hcm_store::{
    Decoder, Encoder, FailureTag, LogRecord, PendingWrite, ShellSnapshot, StatusTag,
    TranslatorSnapshot,
};

/// SplitMix64: tiny, deterministic, well-distributed.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn string(&mut self) -> String {
        let len = self.below(12) as usize;
        (0..len)
            .map(|_| char::from(b'a' + (self.below(26) as u8)))
            .collect()
    }

    fn value(&mut self) -> Value {
        match self.below(5) {
            0 => Value::Null,
            1 => Value::Bool(self.below(2) == 1),
            2 => Value::Int(self.next() as i64),
            // Finite floats only: equality on round-trip is the point,
            // not NaN semantics (those are pinned in a separate test).
            3 => Value::Float((self.next() as i64 as f64) / 7.0),
            _ => Value::Str(self.string()),
        }
    }

    fn item(&mut self) -> ItemId {
        let base = format!("item{}", self.below(6));
        let n = self.below(4) as usize;
        ItemId::with(base, (0..n).map(|_| self.value()).collect::<Vec<_>>())
    }

    fn time(&mut self) -> SimTime {
        SimTime::from_millis(self.below(1 << 40))
    }

    fn duration(&mut self) -> SimDuration {
        SimDuration::from_millis(self.below(1 << 30))
    }

    fn event_desc(&mut self) -> EventDesc {
        match self.below(8) {
            0 => EventDesc::Ws {
                item: self.item(),
                old: if self.below(2) == 0 {
                    None
                } else {
                    Some(self.value())
                },
                new: self.value(),
            },
            1 => EventDesc::W {
                item: self.item(),
                value: self.value(),
            },
            2 => EventDesc::Wr {
                item: self.item(),
                value: self.value(),
            },
            3 => EventDesc::Rr { item: self.item() },
            4 => EventDesc::R {
                item: self.item(),
                value: self.value(),
            },
            5 => EventDesc::N {
                item: self.item(),
                value: self.value(),
            },
            6 => EventDesc::P {
                period: self.duration(),
            },
            _ => EventDesc::Custom {
                name: self.string(),
                args: (0..self.below(3)).map(|_| self.value()).collect(),
            },
        }
    }

    fn pending_write(&mut self) -> PendingWrite {
        PendingWrite {
            req_id: self.next(),
            reply_to: self.below(16) as u32,
            item: self.item(),
            value: self.value(),
            rule: RuleId(self.below(100) as u32),
            trigger: EventId(self.next()),
        }
    }

    fn log_record(&mut self) -> LogRecord {
        match self.below(10) {
            0 => LogRecord::PrivateWrite {
                at: self.time(),
                item: self.item(),
                value: self.value(),
            },
            1 => LogRecord::Failure {
                at: self.time(),
                site: SiteId::new(self.below(8) as u32),
                kind: if self.below(2) == 0 {
                    FailureTag::Metric
                } else {
                    FailureTag::Logical
                },
            },
            2 => LogRecord::Clear {
                at: self.time(),
                site: SiteId::new(self.below(8) as u32),
            },
            3 => LogRecord::Reset { at: self.time() },
            4 => LogRecord::RequestSent {
                at: self.time(),
                req_id: self.next(),
            },
            5 => LogRecord::RequestResolved {
                req_id: self.next(),
            },
            6 => LogRecord::WriteAccepted(self.pending_write()),
            7 => LogRecord::WritePerformed {
                req_id: self.next(),
            },
            8 => LogRecord::PollArmed {
                idx: self.below(16),
                period: self.duration(),
            },
            _ => LogRecord::PollDisarmed {
                idx: self.below(16),
            },
        }
    }

    fn status(&mut self) -> StatusTag {
        match self.below(3) {
            0 => StatusTag::Valid,
            1 => StatusTag::SuspendedMetric,
            _ => StatusTag::SuspendedLogical,
        }
    }

    fn shell_snapshot(&mut self) -> ShellSnapshot {
        ShellSnapshot {
            private: (0..self.below(5))
                .map(|_| (self.item(), self.value()))
                .collect(),
            registry: (0..self.below(5))
                .map(|_| (self.string(), self.status(), self.time()))
                .collect(),
            next_req: self.next(),
            outstanding: (0..self.below(4))
                .map(|_| (self.next(), self.time(), self.below(2) == 1))
                .collect(),
        }
    }

    fn translator_snapshot(&mut self) -> TranslatorSnapshot {
        TranslatorSnapshot {
            armed: (0..self.below(4))
                .map(|_| (self.below(8), self.duration()))
                .collect(),
            pending: (0..self.below(4)).map(|_| self.pending_write()).collect(),
        }
    }
}

/// Every strict prefix of `bytes` must make `decode` fail cleanly.
fn assert_prefixes_fail<T>(bytes: &[u8], decode: impl Fn(&[u8]) -> Option<T>) {
    for cut in 0..bytes.len() {
        assert!(
            decode(&bytes[..cut]).is_none(),
            "prefix of length {cut}/{} decoded successfully",
            bytes.len()
        );
    }
}

#[test]
fn values_and_items_round_trip() {
    let mut g = Gen::new(0xA11CE);
    for _ in 0..500 {
        let v = g.value();
        let mut e = Encoder::new();
        e.value(&v);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.value().unwrap(), v);
        assert!(d.is_empty());

        let item = g.item();
        let mut e = Encoder::new();
        e.item(&item);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.item().unwrap(), item);
        assert!(d.is_empty());
    }
}

#[test]
fn event_descs_round_trip() {
    let mut g = Gen::new(0xBEE);
    for _ in 0..400 {
        let desc = g.event_desc();
        let mut e = Encoder::new();
        e.event_desc(&desc);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.event_desc().unwrap(), desc);
        assert!(d.is_empty());
    }
}

#[test]
fn log_records_round_trip_and_reject_prefixes() {
    let mut g = Gen::new(0xC0FFEE);
    let mut seen = [false; 10];
    for _ in 0..600 {
        let rec = g.log_record();
        let bytes = rec.encode();
        seen[bytes[0] as usize] = true;
        assert_eq!(LogRecord::decode(&bytes).unwrap(), rec);
        assert_prefixes_fail(&bytes, |b| LogRecord::decode(b).ok());
    }
    assert!(
        seen.iter().all(|&s| s),
        "generator failed to cover every LogRecord variant: {seen:?}"
    );
}

#[test]
fn snapshots_round_trip_and_reject_prefixes() {
    let mut g = Gen::new(0xD1CE);
    for _ in 0..150 {
        let s = g.shell_snapshot();
        let bytes = s.encode();
        assert_eq!(ShellSnapshot::decode(&bytes).unwrap(), s);
        if !bytes.is_empty() {
            assert_prefixes_fail(&bytes, |b| ShellSnapshot::decode(b).ok());
        }

        let t = g.translator_snapshot();
        let bytes = t.encode();
        assert_eq!(TranslatorSnapshot::decode(&bytes).unwrap(), t);
    }
}

#[test]
fn float_edge_cases_round_trip_bitwise() {
    for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN] {
        let mut e = Encoder::new();
        e.value(&Value::Float(f));
        let bytes = e.finish();
        match Decoder::new(&bytes).value().unwrap() {
            Value::Float(back) => assert_eq!(back.to_bits(), f.to_bits()),
            other => panic!("decoded {other:?}"),
        }
    }
}

#[test]
fn encoding_is_deterministic() {
    let mut g = Gen::new(7);
    for _ in 0..100 {
        let rec = g.log_record();
        assert_eq!(rec.encode(), rec.encode());
    }
}
