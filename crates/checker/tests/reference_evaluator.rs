//! Differential validation of the guarantee evaluator.
//!
//! The production evaluator quantifies over the *salient grid* (event
//! times ± formula offsets ± 1 ms). This test builds a brute-force
//! reference that quantifies over **every** integer millisecond of a
//! small horizon — exact by construction on the integer clock — and
//! checks both agree on randomized traces and formulas. This is the
//! mechanical justification for the grid optimization claimed in the
//! crate docs.
//!
//! Formerly proptest-based; now driven by a local SplitMix64 generator
//! so the suite needs no external crates and stays deterministic.

use hcm_checker::guarantee::check_guarantee;
use hcm_core::{EventDesc, ItemId, SimTime, SiteId, Trace, Value};
use hcm_rulelang::{parse_guarantee, Guarantee};

const HORIZON_MS: u64 = 120;

/// Minimal deterministic generator (SplitMix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo) as u64 + 1;
        lo + (self.next() % span) as i64
    }
    /// Up to `max` (time, small value) writes within the horizon.
    fn writes(&mut self, max: usize, val_hi: i64) -> Vec<(u64, i64)> {
        let n = self.int_in(0, max as i64) as usize;
        (0..n)
            .map(|_| {
                (
                    self.int_in(0, HORIZON_MS as i64 - 1) as u64,
                    self.int_in(0, val_hi),
                )
            })
            .collect()
    }
}

/// Brute force: enumerate every (t1, t2) in [0, horizon]² of integer
/// milliseconds for two-variable implications of the shape used by the
/// copy guarantees. `lhs`/`rhs` are closures over the trace state.
fn brute_force_two_var(
    trace: &Trace,
    lhs: impl Fn(&Trace, SimTime) -> Option<Value>,
    rhs: impl Fn(&Trace, SimTime) -> Option<Value>,
    time_ok: impl Fn(u64, u64) -> bool,
) -> bool {
    for t1 in 0..=HORIZON_MS {
        let Some(y) = lhs(trace, SimTime::from_millis(t1)) else {
            continue;
        };
        let mut witnessed = false;
        for t2 in 0..=HORIZON_MS {
            if !time_ok(t1, t2) {
                continue;
            }
            if rhs(trace, SimTime::from_millis(t2)).as_ref() == Some(&y) {
                witnessed = true;
                break;
            }
        }
        if !witnessed {
            return false;
        }
    }
    true
}

fn x() -> ItemId {
    ItemId::plain("X")
}
fn y() -> ItemId {
    ItemId::plain("Y")
}

fn build_trace(x_writes: &[(u64, i64)], y_writes: &[(u64, i64)], x0: i64, y0: i64) -> Trace {
    let mut all: Vec<(u64, bool, i64)> = x_writes
        .iter()
        .map(|&(t, v)| (t, true, v))
        .chain(y_writes.iter().map(|&(t, v)| (t, false, v)))
        .collect();
    all.sort();
    let mut tr = Trace::new();
    tr.set_initial(x(), Value::Int(x0));
    tr.set_initial(y(), Value::Int(y0));
    for (t, is_x, v) in all {
        let item = if is_x { x() } else { y() };
        let old = tr.value_at(&item, SimTime::from_millis(t));
        tr.push(
            SimTime::from_millis(t),
            SiteId::new(0),
            EventDesc::Ws {
                item,
                old: old.clone(),
                new: Value::Int(v),
            },
            old,
            None,
            None,
        );
    }
    // Pin the horizon so the evaluator and the reference agree on it.
    tr.push(
        SimTime::from_millis(HORIZON_MS),
        SiteId::new(0),
        EventDesc::Ws {
            item: ItemId::plain("Pad"),
            old: None,
            new: Value::Int(0),
        },
        None,
        None,
        None,
    );
    tr
}

fn follows() -> Guarantee {
    parse_guarantee("follows", "(Y = y) @ t1 => (X = y) @ t2 and t2 <= t1").unwrap()
}

fn leads() -> Guarantee {
    parse_guarantee("leads", "(X = v) @ t1 => (Y = v) @ t2 and t2 >= t1").unwrap()
}

fn metric(kappa_ms: u64) -> Guarantee {
    parse_guarantee(
        "metric",
        &format!("(Y = y) @ t1 => (X = y) @ t2 and t1 - {kappa_ms}ms < t2 and t2 <= t1"),
    )
    .unwrap()
}

/// Grid evaluator ≡ exhaustive evaluator for "follows".
#[test]
fn follows_agrees_with_brute_force() {
    let mut g = Gen::new(0xC4EC_0001);
    for _ in 0..64 {
        let tr = build_trace(
            &g.writes(5, 3),
            &g.writes(5, 3),
            g.int_in(0, 3),
            g.int_in(0, 3),
        );
        let fast = check_guarantee(&tr, &follows(), None).holds;
        let slow = brute_force_two_var(
            &tr,
            |t, at| t.value_at(&y(), at),
            |t, at| t.value_at(&x(), at),
            |t1, t2| t2 <= t1,
        );
        assert_eq!(fast, slow, "trace:\n{tr}");
    }
}

/// Grid evaluator ≡ exhaustive evaluator for "leads".
#[test]
fn leads_agrees_with_brute_force() {
    let mut g = Gen::new(0xC4EC_0002);
    for _ in 0..64 {
        let tr = build_trace(
            &g.writes(5, 3),
            &g.writes(5, 3),
            g.int_in(0, 3),
            g.int_in(0, 3),
        );
        let fast = check_guarantee(&tr, &leads(), None).holds;
        let slow = brute_force_two_var(
            &tr,
            |t, at| t.value_at(&x(), at),
            |t, at| t.value_at(&y(), at),
            |t1, t2| t2 >= t1,
        );
        assert_eq!(fast, slow, "trace:\n{tr}");
    }
}

/// Grid evaluator ≡ exhaustive evaluator for the metric bound, the case
/// that exercises offset-shifted candidates.
#[test]
fn metric_agrees_with_brute_force() {
    let mut g = Gen::new(0xC4EC_0003);
    for _ in 0..64 {
        let tr = build_trace(
            &g.writes(5, 3),
            &g.writes(5, 3),
            g.int_in(0, 3),
            g.int_in(0, 3),
        );
        let kappa = g.int_in(1, HORIZON_MS as i64 - 1) as u64;
        let fast = check_guarantee(&tr, &metric(kappa), None).holds;
        let slow = brute_force_two_var(
            &tr,
            |t, at| t.value_at(&y(), at),
            |t, at| t.value_at(&x(), at),
            |t1, t2| (t1 as i64 - kappa as i64) < t2 as i64 && t2 <= t1,
        );
        assert_eq!(fast, slow, "kappa={kappa}ms trace:\n{tr}");
    }
}

/// Throughout atoms: `(X = Y) @@ [a, b]` against per-millisecond
/// enumeration.
#[test]
fn throughout_agrees_with_brute_force() {
    let mut g = Gen::new(0xC4EC_0004);
    for _ in 0..64 {
        let a = g.int_in(0, HORIZON_MS as i64 - 1) as u64;
        let len = g.int_in(0, HORIZON_MS as i64 - 1) as u64;
        let b = (a + len).min(HORIZON_MS);
        let tr = build_trace(&g.writes(4, 2), &g.writes(4, 2), 0, 0);
        let guar = parse_guarantee("inv", &format!("(X = Y) @@ [{a}ms, {b}ms]")).unwrap();
        let fast = check_guarantee(&tr, &guar, None).holds;
        let slow = (a..=b).all(|t| {
            tr.value_at(&x(), SimTime::from_millis(t)) == tr.value_at(&y(), SimTime::from_millis(t))
        });
        assert_eq!(fast, slow, "[{a}ms,{b}ms] trace:\n{tr}");
    }
}
