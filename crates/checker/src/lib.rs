//! # hcm-checker — mechanical verification over recorded executions
//!
//! The paper proves guarantees by hand from interface and strategy
//! specifications using proof rules \[CGMW94\]. This crate is the
//! reproduction's *mechanical* counterpart: executions recorded by the
//! simulated toolkit are **checked**, exactly, against
//!
//! * the seven **valid-execution properties** of Appendix A.2
//!   ([`validity`]) — time ordering, write semantics, the frame axiom,
//!   spontaneity, rule causality, rule obligations, and in-order
//!   processing of related rules;
//! * arbitrary **guarantee formulas** of the §3.3 language
//!   ([`guarantee`]) — metric and non-metric, point (`@`), throughout
//!   (`@@`) and sometime (`@?`) forms, with the paper's quantification
//!   convention (left of `⇒` universal, right existential).
//!
//! ## Finite-trace semantics
//!
//! Guarantees quantify over continuous time; a recorded trace is
//! finite. Item values change only at event instants, so every formula
//! is piecewise-constant in each time variable with breakpoints at the
//! *salient grid*: event times, shifted by each constant offset in the
//! formula, plus ±1 ms neighbours (the clock is integer milliseconds).
//! Quantifying over this grid is exact for the formula class of the
//! paper. Liveness-flavoured guarantees ("X leads Y") are evaluated up
//! to a *quiescence horizon*: run the workload, drain the system, then
//! check — `EXPERIMENTS.md` records the horizon per experiment.

#![warn(missing_docs)]

pub mod guarantee;
pub mod ruleset;
pub mod state;
pub mod validity;

pub use guarantee::{GuaranteeOutcome, GuaranteeReport};
pub use ruleset::RuleSet;
pub use state::StateIndex;
pub use validity::{check_validity, ValidityReport, Violation};
