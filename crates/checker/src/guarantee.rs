//! Guarantee evaluation over finite traces.
//!
//! Implements the §3.3 semantics: variables on the left of `⇒` are
//! universally quantified, variables appearing only on the right are
//! existentially quantified; data variables are bound by equality
//! conditions (`(Y = y) @ t1` binds `y` to Y's value at `t1`);
//! parameterized data names quantify over the item instances present
//! in the trace.
//!
//! Quantification over continuous time is reduced to the *salient
//! grid* (see the crate docs): item-change instants, shifted by the
//! formula's constant offsets, with ±1 ms neighbours. On the integer
//! millisecond clock this is exact for the paper's formula class.

use crate::state::StateIndex;
use hcm_core::{ItemId, SimTime, Sym, Term, Trace, Value};
use hcm_rulelang::{CmpOp, Cond, CondEnv, Expr, GAtom, Guarantee, TimeExpr};
use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;

/// Why (or that) a guarantee failed, for one universal instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuaranteeViolation {
    /// Human-readable description of the failing instantiation.
    pub instantiation: String,
}

impl fmt::Display for GuaranteeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no witness for {}", self.instantiation)
    }
}

/// Result of evaluating one guarantee.
#[derive(Debug, Clone)]
pub struct GuaranteeReport {
    /// Guarantee name.
    pub name: String,
    /// Whether every universal instantiation had an existential
    /// witness.
    pub holds: bool,
    /// Number of LHS instantiations checked.
    pub instantiations: usize,
    /// Violations found (capped).
    pub violations: Vec<GuaranteeViolation>,
}

/// Compact outcome used by experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuaranteeOutcome {
    /// Holds on the trace.
    Holds,
    /// Violated on the trace.
    Violated,
    /// Vacuously true (no LHS instantiation).
    Vacuous,
}

impl GuaranteeReport {
    /// Collapse to the three-way outcome.
    #[must_use]
    pub fn outcome(&self) -> GuaranteeOutcome {
        if !self.holds {
            GuaranteeOutcome::Violated
        } else if self.instantiations == 0 {
            GuaranteeOutcome::Vacuous
        } else {
            GuaranteeOutcome::Holds
        }
    }
}

const MAX_VIOLATIONS: usize = 8;

/// One (partial) assignment: data-variable bindings + time-variable
/// assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Env {
    vars: BTreeMap<String, Value>,
    times: BTreeMap<String, SimTime>,
}

impl Env {
    fn new() -> Self {
        Env {
            vars: BTreeMap::new(),
            times: BTreeMap::new(),
        }
    }

    fn describe(&self) -> String {
        let vs: Vec<String> = self.vars.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let ts: Vec<String> = self.times.iter().map(|(k, t)| format!("{k}={t}")).collect();
        format!("[{} ; {}]", vs.join(", "), ts.join(", "))
    }
}

/// Condition environment for a fixed instant.
struct AtTime<'a> {
    idx: &'a StateIndex,
    t: SimTime,
    env: &'a Env,
}

impl CondEnv for AtTime<'_> {
    fn item(&self, item: &ItemId) -> Option<Value> {
        self.idx.value_at(item, self.t).cloned()
    }
    fn var(&self, name: &str) -> Option<Value> {
        self.env.vars.get(name).cloned()
    }
}

/// Evaluation counters, exposed for observability and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Condition probes answered from the memo table.
    pub probe_hits: u64,
    /// Condition probes evaluated and recorded.
    pub probe_misses: u64,
    /// `@`-atom expansions answered from the satisfying-candidate
    /// cache.
    pub atom_hits: u64,
    /// `@`-atom expansions swept over the static grid and recorded.
    pub atom_misses: u64,
    /// Total static grid points across all time variables (after
    /// component pruning).
    pub grid_points: u64,
}

#[derive(Default)]
struct EvalCounters {
    probe_hits: Cell<u64>,
    probe_misses: Cell<u64>,
    atom_hits: Cell<u64>,
    atom_misses: Cell<u64>,
    grid_points: Cell<u64>,
}

/// Memo key for a pure condition probe: condition node address,
/// instant, and the condition's variable bindings in a fixed order.
type ProbeKey = (usize, SimTime, Vec<Option<Value>>);

/// Memo key for a single-variable `@` atom: condition node address,
/// the occurrence's time offset, and the condition's variable
/// bindings. The value is the ascending list of satisfying static
/// candidates with their push counts.
type AtKey = (usize, i64, Vec<Option<Value>>);
type AtSat = Rc<Vec<(SimTime, u32)>>;

/// The evaluator.
pub struct Evaluator<'a> {
    idx: Cow<'a, StateIndex>,
    horizon: SimTime,
    /// Pure-probe memo: number of satisfying pushes (all of which are
    /// clones of the probed env — see [`Evaluator::probe_memoized`]).
    probe_memo: RefCell<HashMap<ProbeKey, u32>>,
    /// Per-atom satisfying-candidate cache (see
    /// [`Evaluator::at_sat_cached`]).
    at_memo: RefCell<HashMap<AtKey, AtSat>>,
    /// Condition node address → its variable names, sorted.
    cond_vars_cache: RefCell<HashMap<usize, Rc<[String]>>>,
    counters: EvalCounters,
}

impl<'a> Evaluator<'a> {
    /// Build an evaluator over `trace`, with the quantification horizon
    /// defaulting to the trace's end time.
    #[must_use]
    pub fn new(trace: &Trace, horizon: Option<SimTime>) -> Evaluator<'static> {
        let horizon = horizon.unwrap_or_else(|| trace.end_time());
        Evaluator {
            idx: Cow::Owned(StateIndex::build(trace)),
            horizon,
            probe_memo: RefCell::new(HashMap::new()),
            at_memo: RefCell::new(HashMap::new()),
            cond_vars_cache: RefCell::new(HashMap::new()),
            counters: EvalCounters::default(),
        }
    }

    /// Build an evaluator over a prebuilt [`StateIndex`] (shared across
    /// workers by the parallel driver), with the horizon defaulting to
    /// the index's end time.
    #[must_use]
    pub fn with_index(idx: &'a StateIndex, horizon: Option<SimTime>) -> Self {
        Evaluator {
            horizon: horizon.unwrap_or_else(|| idx.end_time()),
            idx: Cow::Borrowed(idx),
            probe_memo: RefCell::new(HashMap::new()),
            at_memo: RefCell::new(HashMap::new()),
            cond_vars_cache: RefCell::new(HashMap::new()),
            counters: EvalCounters::default(),
        }
    }

    /// Counters accumulated by every `check` on this evaluator.
    #[must_use]
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            probe_hits: self.counters.probe_hits.get(),
            probe_misses: self.counters.probe_misses.get(),
            atom_hits: self.counters.atom_hits.get(),
            atom_misses: self.counters.atom_misses.get(),
            grid_points: self.counters.grid_points.get(),
        }
    }

    /// Evaluate a guarantee.
    #[must_use]
    pub fn check(&self, g: &Guarantee) -> GuaranteeReport {
        // Both caches key on condition node addresses, which are only
        // stable within one guarantee's lifetime.
        self.probe_memo.borrow_mut().clear();
        self.at_memo.borrow_mut().clear();
        self.cond_vars_cache.borrow_mut().clear();
        let static_cands = self.static_candidates(g);
        let param_vars = collect_param_vars(g);
        let param_cands = self.param_candidates(g, &param_vars);

        // Outer enumeration of parameter variables (they are item
        // selectors: `salary1(n)` quantifies over the employees in the
        // databases).
        let mut param_envs = vec![Env::new()];
        for pv in &param_vars {
            let cands = param_cands.get(pv).cloned().unwrap_or_default();
            let mut next = Vec::new();
            for env in &param_envs {
                for c in &cands {
                    let mut e = env.clone();
                    e.vars.insert(pv.clone(), c.clone());
                    next.push(e);
                }
            }
            param_envs = next;
        }

        // The RHS only reads the variables its atoms mention; LHS
        // instantiations that agree on those are equivalent for the
        // existential search. Memoizing on the projected environment
        // collapses the (often large) multiplicity of universal time
        // assignments.
        type MemoKey = (Vec<(String, Value)>, Vec<(String, SimTime)>);
        let rhs_vars = atoms_vars(&g.rhs);
        let mut memo: std::collections::HashMap<MemoKey, bool> = std::collections::HashMap::new();

        let mut instantiations = 0;
        let mut violations = Vec::new();
        for base_env in param_envs {
            // All LHS-satisfying assignments (universal side).
            let lhs_envs = self.solve(&g.lhs, vec![base_env], &static_cands, true);
            for env in lhs_envs {
                instantiations += 1;
                let projected = Env {
                    vars: env
                        .vars
                        .iter()
                        .filter(|(k, _)| rhs_vars.contains(k.as_str()))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                    times: env
                        .times
                        .iter()
                        .filter(|(k, _)| rhs_vars.contains(k.as_str()))
                        .map(|(k, v)| (k.clone(), *v))
                        .collect(),
                };
                let key = (
                    projected
                        .vars
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                    projected
                        .times
                        .iter()
                        .map(|(k, v)| (k.clone(), *v))
                        .collect(),
                );
                let holds = *memo.entry(key).or_insert_with(|| {
                    !self
                        .solve(&g.rhs, vec![projected], &static_cands, false)
                        .is_empty()
                });
                if !holds && violations.len() < MAX_VIOLATIONS {
                    violations.push(GuaranteeViolation {
                        instantiation: env.describe(),
                    });
                }
            }
        }
        GuaranteeReport {
            name: g.name.clone(),
            holds: violations.is_empty(),
            instantiations,
            violations,
        }
    }

    /// Solve a conjunction of atoms: extend each env through every
    /// atom, enumerating unassigned time variables from the candidate
    /// grid. When `exhaustive` (LHS), all satisfying envs are returned;
    /// otherwise the search runs depth-first and stops at the first
    /// full witness — callers only need emptiness.
    fn solve(
        &self,
        atoms: &[GAtom],
        envs: Vec<Env>,
        cands: &BTreeMap<String, Vec<SimTime>>,
        exhaustive: bool,
    ) -> Vec<Env> {
        if !exhaustive {
            for mut env in envs {
                if self.witness_search(atoms, atoms, &mut env, cands) {
                    return vec![env];
                }
            }
            return Vec::new();
        }
        let mut current = envs;
        for atom in atoms {
            let mut next = Vec::new();
            for mut env in current {
                self.expand_atom(atom, atoms, &mut env, cands, &mut next);
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Depth-first witness search over `remaining`, early-exiting on
    /// the first environment that satisfies the whole conjunction.
    /// `all` is the full conjunction (dynamic candidate derivation in
    /// [`Evaluator::expand_atom`] looks at every atom, not just the
    /// one being expanded).
    fn witness_search(
        &self,
        remaining: &[GAtom],
        all: &[GAtom],
        env: &mut Env,
        cands: &BTreeMap<String, Vec<SimTime>>,
    ) -> bool {
        let Some((first, rest)) = remaining.split_first() else {
            return true;
        };
        let mut exts = Vec::new();
        self.expand_atom(first, all, env, cands, &mut exts);
        exts.into_iter()
            .any(|mut e| self.witness_search(rest, all, &mut e, cands))
    }

    /// All extensions of `env` satisfying `atom`. `all_atoms` is the
    /// surrounding conjunction: candidates for a fresh time variable
    /// are derived from *every* atom relating it to already-assigned
    /// variables, not just the one being evaluated (e.g. `t2` first
    /// appears in `(X = y) @ t2` but is constrained by `t1 - κ < t2`
    /// later in the conjunction).
    fn expand_atom(
        &self,
        atom: &GAtom,
        all_atoms: &[GAtom],
        env: &mut Env,
        cands: &BTreeMap<String, Vec<SimTime>>,
        out: &mut Vec<Env>,
    ) {
        // Assign any unassigned time variables of this atom first. A
        // variable already carrying a data binding is *not* free: the
        // §6.3 monitor guarantee binds `s` from the auxiliary item `Tb`
        // and then uses it as a time (timestamps stored in CM data).
        let unassigned: Vec<&str> = atom
            .time_vars()
            .into_iter()
            .filter(|v| !env.times.contains_key(*v) && !env.vars.contains_key(*v))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        if let Some(v) = unassigned.first() {
            let statics: &[SimTime] = cands.get(*v).map_or(&[], Vec::as_slice);
            // Candidates derived from already-assigned variables that
            // any TimeCmp atom of the conjunction relates `v` to
            // (e.g. `t2 ≤ t1` / `t1 − κ < t2` with `t1` fixed): the
            // other side's value, corrected for `v`'s own offset, with
            // ±1 ms for strictness.
            let mut dynamic: BTreeSet<SimTime> = BTreeSet::new();
            for other in all_atoms {
                let GAtom::TimeCmp(a, _, b) = other else {
                    continue;
                };
                let sides = [(a, b), (b, a)];
                for (mine, theirs) in sides {
                    let my_shift = match mine {
                        TimeExpr::Var(name) if name == *v => 0i64,
                        TimeExpr::Offset(name, off) if name == *v => *off,
                        _ => continue,
                    };
                    let their_val = match theirs {
                        TimeExpr::Const(t) => Some(t.as_millis() as i64),
                        TimeExpr::Var(u) => env
                            .times
                            .get(u)
                            .map(|t| t.as_millis() as i64)
                            .or_else(|| env.vars.get(u).and_then(Value::as_int)),
                        TimeExpr::Offset(u, off) => env
                            .times
                            .get(u)
                            .map(|t| t.as_millis() as i64)
                            .or_else(|| env.vars.get(u).and_then(Value::as_int))
                            .map(|t| t + off),
                    };
                    if let Some(o) = their_val {
                        for delta in [-1i64, 0, 1] {
                            let ms = o - my_shift + delta;
                            if ms >= 0 && ms as u64 <= self.horizon.as_millis() {
                                dynamic.insert(SimTime::from_millis(ms as u64));
                            }
                        }
                    }
                }
            }

            // Fast path: a single-variable `@` atom over a fully-bound
            // condition. Its satisfying static candidates depend only
            // on (condition, bindings), so they are cached and
            // replayed; only the env-dependent dynamic candidates are
            // probed individually. Interleaving keeps the output order
            // identical to the generic union enumeration below.
            if let GAtom::At(cond, te) = atom {
                let (off, applies) = match te {
                    TimeExpr::Var(name) => (0i64, name == *v),
                    TimeExpr::Offset(name, off) => (*off, name == *v),
                    TimeExpr::Const(_) => (0, false),
                };
                let cvars = self.cond_vars_of(cond);
                if applies && cvars.iter().all(|cv| env.vars.contains_key(cv)) {
                    let sat = self.at_sat_cached(cond, off, statics, env, &cvars);
                    let vkey = (*v).to_owned();
                    env.times.insert(vkey.clone(), SimTime::ZERO);
                    let mut si = sat.iter().peekable();
                    let mut di = dynamic
                        .iter()
                        .filter(|d| statics.binary_search(d).is_err())
                        .peekable();
                    loop {
                        let take_static = match (si.peek(), di.peek()) {
                            (Some(&&(ts, _)), Some(&&td)) => ts < td,
                            (Some(_), None) => true,
                            (None, Some(_)) => false,
                            (None, None) => break,
                        };
                        if take_static {
                            let &(ts, n) = si.next().expect("peeked");
                            *env.times.get_mut(&vkey).expect("just inserted") = ts;
                            for _ in 0..n {
                                out.push(env.clone());
                            }
                        } else {
                            let &td = di.next().expect("peeked");
                            *env.times.get_mut(&vkey).expect("just inserted") = td;
                            self.expand_atom(atom, all_atoms, env, cands, out);
                        }
                    }
                    env.times.remove(&vkey);
                    return;
                }
            }

            // Assign in place and undo afterwards: candidate counts
            // run into the millions on dense traces, and cloning the
            // whole env per candidate dominated evaluation time.
            let mut candidates: BTreeSet<SimTime> = statics.iter().copied().collect();
            candidates.extend(&dynamic);
            let vkey = (*v).to_owned();
            env.times.insert(vkey.clone(), SimTime::ZERO);
            for c in candidates {
                *env.times.get_mut(&vkey).expect("just inserted") = c;
                self.expand_atom(atom, all_atoms, env, cands, out);
            }
            env.times.remove(&vkey);
            return;
        }

        // Fully time-assigned: evaluate. Time variables resolve from
        // the time assignment first, then from data bindings holding an
        // integer (timestamps stored in auxiliary items, as in the §6.3
        // monitor guarantee). Offsets are computed *signed*: `t − 30s`
        // near the start of the trace is a legitimate (empty-interval /
        // always-satisfied-bound) case, not an error.
        let lookup = |env: &Env, v: &str| -> Option<i64> {
            env.times
                .get(v)
                .map(|t| t.as_millis() as i64)
                .or_else(|| env.vars.get(v).and_then(Value::as_int))
        };
        let resolve_signed = |te: &TimeExpr, env: &Env| -> Option<i64> {
            match te {
                TimeExpr::Const(t) => Some(t.as_millis() as i64),
                TimeExpr::Var(v) => lookup(env, v),
                TimeExpr::Offset(v, off) => Some(lookup(env, v)? + off),
            }
        };
        match atom {
            GAtom::TimeCmp(a, op, b) => {
                if let (Some(ta), Some(tb)) = (resolve_signed(a, env), resolve_signed(b, env)) {
                    let cmp_ok = match op {
                        CmpOp::Eq => ta == tb,
                        CmpOp::Ne => ta != tb,
                        CmpOp::Lt => ta < tb,
                        CmpOp::Le => ta <= tb,
                        CmpOp::Gt => ta > tb,
                        CmpOp::Ge => ta >= tb,
                    };
                    if cmp_ok {
                        out.push(env.clone());
                    }
                }
            }
            GAtom::At(cond, te) => {
                if let Some(ms) = resolve_signed(te, env) {
                    if ms >= 0 && ms as u64 <= self.horizon.as_millis() {
                        self.eval_cond(cond, SimTime::from_millis(ms as u64), env, true, out);
                    }
                }
            }
            GAtom::Throughout(cond, a, b) => {
                let (Some(ta), Some(tb)) = (resolve_signed(a, env), resolve_signed(b, env)) else {
                    return;
                };
                if ta > tb {
                    out.push(env.clone()); // empty interval: vacuous
                    return;
                }
                let ta = SimTime::from_millis(ta.max(0) as u64);
                let tb = SimTime::from_millis(tb.max(0) as u64);
                let grid = self.interval_grid(cond, ta, tb);
                let ok = grid.iter().all(|&t| {
                    let mut probe = Vec::new();
                    self.eval_cond(cond, t, env, false, &mut probe);
                    !probe.is_empty()
                });
                if ok {
                    out.push(env.clone());
                }
            }
            GAtom::Sometime(cond, a, b) => {
                let (Some(ta), Some(tb)) = (resolve_signed(a, env), resolve_signed(b, env)) else {
                    return;
                };
                if ta > tb || tb < 0 {
                    return;
                }
                let ta = SimTime::from_millis(ta.max(0) as u64);
                let tb = SimTime::from_millis(tb.max(0) as u64);
                let grid = self.interval_grid(cond, ta, tb);
                let ok = grid.iter().any(|&t| {
                    let mut probe = Vec::new();
                    self.eval_cond(cond, t, env, false, &mut probe);
                    !probe.is_empty()
                });
                if ok {
                    out.push(env.clone());
                }
            }
        }
    }

    /// Evaluate a condition at instant `t`, pushing each satisfying
    /// binding extension. With `allow_bind`, an `item = var` comparison
    /// against an unbound variable binds it (the paper's implicit data
    /// binding); `@@`/`@?` evaluation forbids it because a binding
    /// valid at one instant must not leak to others.
    ///
    /// Pure evaluations (those that cannot bind) are memoized — see
    /// [`Evaluator::probe_memoized`].
    fn eval_cond(&self, cond: &Cond, t: SimTime, env: &Env, allow_bind: bool, out: &mut Vec<Env>) {
        if let Some(n) = self.probe_memoized(cond, t, env, allow_bind) {
            for _ in 0..n {
                out.push(env.clone());
            }
            return;
        }
        self.eval_cond_raw(cond, t, env, allow_bind, out);
    }

    /// Memoized condition probe. A *pure* evaluation — one that cannot
    /// bind new variables — pushes only clones of `env`, and how many
    /// is a function of (condition node, instant, the bindings of the
    /// condition's own variables). So the memo stores the push *count*
    /// (a count, not a boolean: `Or` pushes one env per satisfied
    /// branch and replay must preserve that multiplicity). With
    /// `allow_bind` the evaluation is pure exactly when every
    /// condition variable is already bound; without it, always.
    /// Returns `None` when not memoizable.
    fn probe_memoized(&self, cond: &Cond, t: SimTime, env: &Env, allow_bind: bool) -> Option<u32> {
        let vars = self.cond_vars_of(cond);
        if allow_bind && !vars.iter().all(|v| env.vars.contains_key(v)) {
            return None;
        }
        let key = (
            cond as *const Cond as usize,
            t,
            vars.iter()
                .map(|v| env.vars.get(v).cloned())
                .collect::<Vec<_>>(),
        );
        if let Some(&n) = self.probe_memo.borrow().get(&key) {
            self.counters
                .probe_hits
                .set(self.counters.probe_hits.get() + 1);
            return Some(n);
        }
        let mut probe = Vec::new();
        self.eval_cond_raw(cond, t, env, allow_bind, &mut probe);
        let n = u32::try_from(probe.len()).expect("probe count overflow");
        self.probe_memo.borrow_mut().insert(key, n);
        self.counters
            .probe_misses
            .set(self.counters.probe_misses.get() + 1);
        Some(n)
    }

    /// Satisfying static candidates for a single-variable `@` atom
    /// over a fully-bound condition: `(candidate, push count)` pairs,
    /// ascending, cached per (condition node, occurrence offset,
    /// bindings). `off` is the occurrence's own offset (`cond @ v +
    /// off` probes at `candidate + off`); out-of-horizon probes yield
    /// nothing, exactly as in the ground evaluation.
    fn at_sat_cached(
        &self,
        cond: &Cond,
        off: i64,
        statics: &[SimTime],
        env: &Env,
        cvars: &[String],
    ) -> AtSat {
        let key = (
            cond as *const Cond as usize,
            off,
            cvars
                .iter()
                .map(|v| env.vars.get(v).cloned())
                .collect::<Vec<_>>(),
        );
        if let Some(sat) = self.at_memo.borrow().get(&key) {
            self.counters
                .atom_hits
                .set(self.counters.atom_hits.get() + 1);
            return Rc::clone(sat);
        }
        let horizon_ms = self.horizon.as_millis() as i64;
        let mut sat = Vec::new();
        for &c in statics {
            let ms = c.as_millis() as i64 + off;
            if !(0..=horizon_ms).contains(&ms) {
                continue;
            }
            let mut probe = Vec::new();
            self.eval_cond_raw(cond, SimTime::from_millis(ms as u64), env, true, &mut probe);
            if !probe.is_empty() {
                sat.push((c, u32::try_from(probe.len()).expect("probe count overflow")));
            }
        }
        let sat: AtSat = Rc::new(sat);
        self.at_memo.borrow_mut().insert(key, Rc::clone(&sat));
        self.counters
            .atom_misses
            .set(self.counters.atom_misses.get() + 1);
        sat
    }

    /// The (sorted) variable names of a condition, cached per node.
    fn cond_vars_of(&self, cond: &Cond) -> Rc<[String]> {
        let key = cond as *const Cond as usize;
        if let Some(vs) = self.cond_vars_cache.borrow().get(&key) {
            return Rc::clone(vs);
        }
        let mut set = BTreeSet::new();
        cond_vars(cond, &mut set);
        let vs: Rc<[String]> = set.into_iter().collect();
        self.cond_vars_cache
            .borrow_mut()
            .insert(key, Rc::clone(&vs));
        vs
    }

    fn eval_cond_raw(
        &self,
        cond: &Cond,
        t: SimTime,
        env: &Env,
        allow_bind: bool,
        out: &mut Vec<Env>,
    ) {
        match cond {
            Cond::True => out.push(env.clone()),
            Cond::And(a, b) => {
                let mut mid = Vec::new();
                self.eval_cond(a, t, env, allow_bind, &mut mid);
                for e in mid {
                    self.eval_cond(b, t, &e, allow_bind, out);
                }
            }
            Cond::Or(a, b) => {
                self.eval_cond(a, t, env, allow_bind, out);
                self.eval_cond(b, t, env, allow_bind, out);
            }
            Cond::Not(inner) => {
                // Strict: the negated condition must be fully ground.
                let mut probe = Vec::new();
                self.eval_cond(inner, t, env, false, &mut probe);
                if probe.is_empty() {
                    out.push(env.clone());
                }
            }
            Cond::Exists(pattern) => {
                let at = AtTime {
                    idx: &self.idx,
                    t,
                    env,
                };
                if Expr::Item(pattern.clone())
                    .eval(&at)
                    .is_some_and(|v| v.exists())
                {
                    out.push(env.clone());
                }
            }
            Cond::Cmp(a, op, b) => {
                let at = AtTime {
                    idx: &self.idx,
                    t,
                    env,
                };
                let va = a.eval(&at);
                let vb = b.eval(&at);
                match (va, vb) {
                    (Some(va), Some(vb)) if op.apply(&va, &vb).unwrap_or(false) => {
                        out.push(env.clone());
                    }
                    (Some(v), None) if allow_bind && *op == CmpOp::Eq => {
                        if let Expr::Var(name) = b {
                            let mut e = env.clone();
                            e.vars.insert(name.clone(), v);
                            out.push(e);
                        }
                    }
                    (None, Some(v)) if allow_bind && *op == CmpOp::Eq => {
                        if let Expr::Var(name) = a {
                            let mut e = env.clone();
                            e.vars.insert(name.clone(), v);
                            out.push(e);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Evaluation grid inside `[a, b]` for an interval atom: the
    /// endpoints plus every change point of the mentioned items in
    /// range (values are constant in between, so this is exact).
    fn interval_grid(&self, cond: &Cond, a: SimTime, b: SimTime) -> Vec<SimTime> {
        let mut grid: BTreeSet<SimTime> = [a, b].into_iter().collect();
        for base in cond_bases(cond) {
            for &t in self.idx.breakpoints_by_base(base) {
                if t >= a && t <= b {
                    grid.insert(t);
                }
            }
        }
        grid.into_iter().collect()
    }

    /// Static per-variable time candidates: the salient grid.
    ///
    /// A variable's grid must include, for every atom that can *reach*
    /// it through shared atoms, the instants where that atom's truth
    /// can change — a universal `t1` fails exactly when `t1 - κ`
    /// crosses a change point of the *witness* item, so per-atom grids
    /// are not sound. But a single global set (every variable sees
    /// every atom's breakpoints and every offset) over-approximates:
    /// variables in disjoint linkage components never interact — no
    /// atom mentions both, so satisfying assignments factorize — and
    /// each component can be gridded from its own atoms alone. We take
    /// connected components of the "shares an atom" relation (each
    /// atom's time-variable set is a clique) and give every component
    /// its own base-instant and offset sets.
    fn static_candidates(&self, g: &Guarantee) -> BTreeMap<String, Vec<SimTime>> {
        let horizon_ms = self.horizon.as_millis() as i64;
        let atoms: Vec<&GAtom> = g.lhs.iter().chain(&g.rhs).collect();

        // Union-find over time variables; each atom unions its set.
        let mut var_ix: BTreeMap<String, usize> = BTreeMap::new();
        for atom in &atoms {
            for v in atom.time_vars() {
                let n = var_ix.len();
                var_ix.entry(v.to_owned()).or_insert(n);
            }
        }
        let mut parent: Vec<usize> = (0..var_ix.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for atom in &atoms {
            let mut ids = atom.time_vars().into_iter().map(|v| var_ix[v]);
            if let Some(first) = ids.next() {
                let root = find(&mut parent, first);
                for i in ids {
                    let r = find(&mut parent, i);
                    parent[r] = root;
                }
            }
        }

        // Per-component facts: instants where any member atom's truth
        // can change (condition-item breakpoints; absolute comparison
        // bounds like `t >= 62100s`, which candidates must straddle),
        // plus member offsets. Offsets are symmetrized — comparisons
        // can order the variables either way, so an offset shifts
        // grids in both directions.
        struct Comp {
            base_ts: BTreeSet<SimTime>,
            offsets: BTreeSet<i64>,
        }
        let mut comps: BTreeMap<usize, Comp> = BTreeMap::new();
        for atom in &atoms {
            let Some(&first) = atom.time_vars().first().map(|v| &var_ix[*v]) else {
                continue;
            };
            let root = find(&mut parent, first);
            let comp = comps.entry(root).or_insert_with(|| Comp {
                base_ts: [SimTime::ZERO, self.horizon].into_iter().collect(),
                offsets: [0].into_iter().collect(),
            });
            match atom {
                GAtom::At(c, _) | GAtom::Throughout(c, _, _) | GAtom::Sometime(c, _, _) => {
                    for base in cond_bases(c) {
                        comp.base_ts.extend(self.idx.breakpoints_by_base(base));
                    }
                }
                GAtom::TimeCmp(a, _, b) => {
                    for te in [a, b] {
                        if let TimeExpr::Const(c) = te {
                            comp.base_ts.insert(*c);
                        }
                    }
                }
            }
            for te in atom_time_exprs(atom) {
                if let TimeExpr::Offset(_, off) = te {
                    comp.offsets.insert(*off);
                    comp.offsets.insert(-*off);
                }
            }
        }

        let mut per_var: BTreeMap<String, BTreeSet<SimTime>> = BTreeMap::new();
        for atom in &atoms {
            for te in atom_time_exprs(atom) {
                let (var, shift) = match te {
                    TimeExpr::Var(v) => (v, 0i64),
                    TimeExpr::Offset(v, off) => (v, *off),
                    TimeExpr::Const(_) => continue,
                };
                let root = find(&mut parent, var_ix[var.as_str()]);
                let Some(comp) = comps.get(&root) else {
                    continue;
                };
                let entry = per_var.entry(var.clone()).or_default();
                for &bt in &comp.base_ts {
                    for &off in &comp.offsets {
                        for delta in [-1i64, 0, 1] {
                            // Candidate v such that v + shift lands near
                            // a breakpoint (possibly offset-shifted).
                            let ms = bt.as_millis() as i64 - shift + off + delta;
                            if (0..=horizon_ms).contains(&ms) {
                                entry.insert(SimTime::from_millis(ms as u64));
                            }
                        }
                    }
                }
            }
        }
        let grid: BTreeMap<String, Vec<SimTime>> = per_var
            .into_iter()
            .map(|(k, v)| (k, v.into_iter().collect()))
            .collect();
        let points: u64 = grid.values().map(|v| v.len() as u64).sum();
        self.counters
            .grid_points
            .set(self.counters.grid_points.get() + points);
        grid
    }

    /// Candidate values for parameter variables: the values appearing
    /// at the variable's position among the trace's items of that base.
    fn param_candidates(
        &self,
        g: &Guarantee,
        param_vars: &[String],
    ) -> BTreeMap<String, Vec<Value>> {
        let mut out: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
        let mut visit_cond = |c: &Cond| {
            for (base, pos, var) in cond_param_positions(c) {
                if !param_vars.contains(&var) {
                    continue;
                }
                let entry = out.entry(var).or_default();
                for item in self.idx.items_with_base(base) {
                    if let Some(v) = item.params.get(pos) {
                        entry.insert(v.clone());
                    }
                }
            }
        };
        for atom in g.lhs.iter().chain(&g.rhs) {
            match atom {
                GAtom::At(c, _) | GAtom::Throughout(c, _, _) | GAtom::Sometime(c, _, _) => {
                    visit_cond(c)
                }
                GAtom::TimeCmp(..) => {}
            }
        }
        out.into_iter()
            .map(|(k, v)| (k, v.into_iter().collect()))
            .collect()
    }
}

/// Check a guarantee over a trace (convenience wrapper).
#[must_use]
pub fn check_guarantee(trace: &Trace, g: &Guarantee, horizon: Option<SimTime>) -> GuaranteeReport {
    Evaluator::new(trace, horizon).check(g)
}

/// Check a guarantee and return the evaluator's counters alongside.
#[must_use]
pub fn check_guarantee_with_stats(
    trace: &Trace,
    g: &Guarantee,
    horizon: Option<SimTime>,
) -> (GuaranteeReport, EvalStats) {
    let ev = Evaluator::new(trace, horizon);
    let report = ev.check(g);
    let stats = ev.stats();
    (report, stats)
}

/// Check several guarantees against one trace concurrently: one worker
/// per guarantee over a shared [`StateIndex`], `std::thread::scope` so
/// nothing outlives the call. Guarantees are independent (each `check`
/// touches only its own evaluator state), and results are joined in
/// input order, so the output is identical to checking serially —
/// regardless of scheduling.
#[must_use]
pub fn check_guarantees_parallel(
    trace: &Trace,
    gs: &[Guarantee],
    horizon: Option<SimTime>,
) -> Vec<GuaranteeReport> {
    check_guarantees_parallel_stats(trace, gs, horizon)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// [`check_guarantees_parallel`], also returning each worker's
/// evaluation counters (for observability wiring).
#[must_use]
pub fn check_guarantees_parallel_stats(
    trace: &Trace,
    gs: &[Guarantee],
    horizon: Option<SimTime>,
) -> Vec<(GuaranteeReport, EvalStats)> {
    let idx = StateIndex::build(trace);
    let horizon = horizon.unwrap_or_else(|| trace.end_time());
    std::thread::scope(|scope| {
        let handles: Vec<_> = gs
            .iter()
            .map(|g| {
                let idx = &idx;
                scope.spawn(move || {
                    let ev = Evaluator::with_index(idx, Some(horizon));
                    let report = ev.check(g);
                    let stats = ev.stats();
                    (report, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("guarantee worker panicked"))
            .collect()
    })
}

/// The time expressions a single atom mentions.
fn atom_time_exprs(atom: &GAtom) -> Vec<&TimeExpr> {
    match atom {
        GAtom::At(_, t) => vec![t],
        GAtom::Throughout(_, a, b) | GAtom::Sometime(_, a, b) | GAtom::TimeCmp(a, _, b) => {
            vec![a, b]
        }
    }
}

/// Item base names a condition mentions.
fn cond_bases(c: &Cond) -> Vec<Sym> {
    fn expr(e: &Expr, out: &mut Vec<Sym>) {
        match e {
            Expr::Item(p) => out.push(p.base),
            Expr::Neg(a) | Expr::Abs(a) => expr(a, out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            _ => {}
        }
    }
    fn cond(c: &Cond, out: &mut Vec<Sym>) {
        match c {
            Cond::Cmp(a, _, b) => {
                expr(a, out);
                expr(b, out);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                cond(a, out);
                cond(b, out);
            }
            Cond::Not(a) => cond(a, out),
            Cond::Exists(p) => out.push(p.base),
            Cond::True => {}
        }
    }
    let mut out = Vec::new();
    cond(c, &mut out);
    out.sort();
    out.dedup();
    out
}

/// `(base, position, var)` for each variable used as an item parameter.
fn cond_param_positions(c: &Cond) -> Vec<(Sym, usize, String)> {
    fn expr(e: &Expr, out: &mut Vec<(Sym, usize, String)>) {
        match e {
            Expr::Item(p) => {
                for (i, t) in p.params.iter().enumerate() {
                    if let Term::Var(v) = t {
                        out.push((p.base, i, v.clone()));
                    }
                }
            }
            Expr::Neg(a) | Expr::Abs(a) => expr(a, out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            _ => {}
        }
    }
    fn cond(c: &Cond, out: &mut Vec<(Sym, usize, String)>) {
        match c {
            Cond::Cmp(a, _, b) => {
                expr(a, out);
                expr(b, out);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                cond(a, out);
                cond(b, out);
            }
            Cond::Not(a) => cond(a, out),
            Cond::Exists(p) => {
                for (i, t) in p.params.iter().enumerate() {
                    if let Term::Var(v) = t {
                        out.push((p.base, i, v.clone()));
                    }
                }
            }
            Cond::True => {}
        }
    }
    let mut out = Vec::new();
    cond(c, &mut out);
    out
}

/// Variable names an expression mentions.
fn expr_vars(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Var(v) => {
            out.insert(v.clone());
        }
        Expr::Item(p) => {
            for t in &p.params {
                if let Term::Var(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        Expr::Neg(a) | Expr::Abs(a) => expr_vars(a, out),
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Expr::Lit(_) => {}
    }
}

/// Variable names a condition mentions (data and item-parameter).
fn cond_vars(c: &Cond, out: &mut BTreeSet<String>) {
    match c {
        Cond::Cmp(a, _, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            cond_vars(a, out);
            cond_vars(b, out);
        }
        Cond::Not(a) => cond_vars(a, out),
        Cond::Exists(p) => {
            for t in &p.params {
                if let Term::Var(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        Cond::True => {}
    }
}

/// Every variable name (data or time) a group of atoms mentions.
fn atoms_vars(atoms: &[GAtom]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for a in atoms {
        for v in a.time_vars() {
            out.insert(v.to_owned());
        }
        match a {
            GAtom::At(c, _) | GAtom::Throughout(c, _, _) | GAtom::Sometime(c, _, _) => {
                cond_vars(c, &mut out)
            }
            GAtom::TimeCmp(..) => {}
        }
    }
    out
}

/// Variables used in item-parameter position anywhere in the formula.
fn collect_param_vars(g: &Guarantee) -> Vec<String> {
    let mut out = Vec::new();
    for atom in g.lhs.iter().chain(&g.rhs) {
        match atom {
            GAtom::At(c, _) | GAtom::Throughout(c, _, _) | GAtom::Sometime(c, _, _) => {
                for (_, _, v) in cond_param_positions(c) {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            GAtom::TimeCmp(..) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::{EventDesc, SiteId};
    use hcm_rulelang::parse_guarantee;

    fn write(tr: &mut Trace, t: u64, base: &str, v: i64) {
        let item = ItemId::plain(base);
        let old = tr.value_at(&item, SimTime::from_secs(t));
        tr.push(
            SimTime::from_secs(t),
            SiteId::new(0),
            EventDesc::Ws {
                item,
                old: old.clone(),
                new: Value::Int(v),
            },
            old,
            None,
            None,
        );
    }

    /// X takes 1@10, 2@20; Y copies with 2s lag.
    fn copy_trace() -> Trace {
        let mut tr = Trace::new();
        tr.set_initial(ItemId::plain("X"), Value::Int(0));
        tr.set_initial(ItemId::plain("Y"), Value::Int(0));
        write(&mut tr, 10, "X", 1);
        write(&mut tr, 12, "Y", 1);
        write(&mut tr, 20, "X", 2);
        write(&mut tr, 22, "Y", 2);
        // Quiescence padding so `leads` has room after the last write.
        write(&mut tr, 60, "Pad", 0);
        tr
    }

    #[test]
    fn y_follows_x_holds_on_copy_trace() {
        let tr = copy_trace();
        let g = parse_guarantee("f", "(Y = y) @ t1 => (X = y) @ t2 and t2 <= t1").unwrap();
        let r = check_guarantee(&tr, &g, None);
        assert!(r.holds, "{:?}", r.violations);
        assert!(r.instantiations > 0);
        assert_eq!(r.outcome(), GuaranteeOutcome::Holds);
    }

    #[test]
    fn y_follows_x_fails_when_y_invents_a_value() {
        let mut tr = copy_trace();
        write(&mut tr, 70, "Y", 99); // X never held 99
        let g = parse_guarantee("f", "(Y = y) @ t1 => (X = y) @ t2 and t2 <= t1").unwrap();
        let r = check_guarantee(&tr, &g, None);
        assert!(!r.holds);
        assert_eq!(r.outcome(), GuaranteeOutcome::Violated);
        assert!(!r.violations.is_empty());
    }

    #[test]
    fn x_leads_y_holds_and_fails() {
        let g = parse_guarantee("l", "(X = x) @ t1 => (Y = x) @ t2 and t2 >= t1").unwrap();
        let r = check_guarantee(&copy_trace(), &g, None);
        assert!(r.holds, "{:?}", r.violations);

        // Missed update: X takes 5 but Y never does.
        let mut tr = copy_trace();
        write(&mut tr, 30, "X", 5);
        write(&mut tr, 32, "X", 6);
        write(&mut tr, 34, "Y", 6);
        write(&mut tr, 80, "Pad", 1);
        let r = check_guarantee(&tr, &g, None);
        assert!(!r.holds, "value 5 was skipped by Y");
    }

    #[test]
    fn strictly_follows_detects_reordering() {
        let g = parse_guarantee(
            "sf",
            "(Y = y1) @ t1 and (Y = y2) @ t2 and t1 < t2 and y1 != y2 => \
             (X = y1) @ t3 and (X = y2) @ t4 and t3 < t4",
        )
        .unwrap();
        assert!(check_guarantee(&copy_trace(), &g, None).holds);

        // Y sees the values in the opposite order.
        let mut tr = Trace::new();
        tr.set_initial(ItemId::plain("X"), Value::Int(0));
        tr.set_initial(ItemId::plain("Y"), Value::Int(0));
        write(&mut tr, 10, "X", 1);
        write(&mut tr, 20, "X", 2);
        write(&mut tr, 30, "Y", 2);
        write(&mut tr, 40, "Y", 1);
        let r = check_guarantee(&tr, &g, None);
        assert!(!r.holds, "reordered propagation must violate (3)");
    }

    #[test]
    fn metric_follows_depends_on_kappa() {
        // Y lags X by 2s.
        let tr = copy_trace();
        let wide = parse_guarantee(
            "m",
            "(Y = y) @ t1 => (X = y) @ t2 and t1 - 30s < t2 and t2 <= t1",
        )
        .unwrap();
        assert!(check_guarantee(&tr, &wide, None).holds);
        // κ = 1s: at t1 = 12s, X=1 started at 10s which is ≥ 1s earlier…
        // but X still holds 1 at t1 itself, so (X = y)@t2 with t2 = t1
        // satisfies the bound. Make X move on so the old value expires.
        let mut tr2 = Trace::new();
        tr2.set_initial(ItemId::plain("X"), Value::Int(0));
        tr2.set_initial(ItemId::plain("Y"), Value::Int(0));
        write(&mut tr2, 10, "X", 1);
        write(&mut tr2, 11, "X", 2); // X=1 held only 1s
        write(&mut tr2, 20, "Y", 1); // Y reflects it 9s later
        let narrow = parse_guarantee(
            "m",
            "(Y = y) @ t1 => (X = y) @ t2 and t1 - 5s < t2 and t2 <= t1",
        )
        .unwrap();
        let r = check_guarantee(&tr2, &narrow, None);
        assert!(
            !r.holds,
            "Y holds a value X last had 9s ago; κ = 5s must fail"
        );
        let wide2 = parse_guarantee(
            "m",
            "(Y = y) @ t1 => (X = y) @ t2 and t1 - 60s < t2 and t2 <= t1",
        )
        .unwrap();
        assert!(check_guarantee(&tr2, &wide2, None).holds);
    }

    #[test]
    fn monitor_guarantee_with_aux_timestamp() {
        // Flag=true and Tb=s (ms) ⇒ X = Y throughout [s, t-2s].
        let mut tr = Trace::new();
        tr.set_initial(ItemId::plain("X"), Value::Int(7));
        tr.set_initial(ItemId::plain("Y"), Value::Int(7));
        tr.set_initial(ItemId::plain("Flag"), Value::Bool(true));
        tr.set_initial(ItemId::plain("Tb"), Value::Int(0));
        write(&mut tr, 50, "Pad", 0);
        let g = parse_guarantee(
            "mon",
            "(Flag = true and Tb = s) @ t => (X = Y) @@ [s, t - 2s]",
        )
        .unwrap();
        let r = check_guarantee(&tr, &g, None);
        assert!(r.holds, "{:?}", r.violations);

        // Now X diverges while Flag stays true: violated.
        let mut tr2 = tr.clone();
        write(&mut tr2, 20, "X", 9);
        write(&mut tr2, 60, "Pad", 1);
        let r2 = check_guarantee(&tr2, &g, None);
        assert!(
            !r2.holds,
            "Flag=true while X≠Y must violate the monitor guarantee"
        );
    }

    #[test]
    fn monitor_guarantee_flag_false_is_vacuous() {
        let mut tr = Trace::new();
        tr.set_initial(ItemId::plain("X"), Value::Int(1));
        tr.set_initial(ItemId::plain("Y"), Value::Int(2));
        tr.set_initial(ItemId::plain("Flag"), Value::Bool(false));
        tr.set_initial(ItemId::plain("Tb"), Value::Int(0));
        write(&mut tr, 50, "Pad", 0);
        let g = parse_guarantee(
            "mon",
            "(Flag = true and Tb = s) @ t => (X = Y) @@ [s, t - 2s]",
        )
        .unwrap();
        let r = check_guarantee(&tr, &g, None);
        assert_eq!(r.outcome(), GuaranteeOutcome::Vacuous);
    }

    #[test]
    fn refint_sometime_window() {
        // project(i) appears; salary(i) appears 10s later — within the
        // 24h window.
        let mut tr = Trace::new();
        let proj = ItemId::with("project", [Value::from("e1")]);
        let sal = ItemId::with("salary", [Value::from("e1")]);
        tr.push(
            SimTime::from_secs(100),
            SiteId::new(0),
            EventDesc::Ws {
                item: proj.clone(),
                old: None,
                new: Value::Int(1),
            },
            None,
            None,
            None,
        );
        tr.push(
            SimTime::from_secs(110),
            SiteId::new(1),
            EventDesc::Ws {
                item: sal.clone(),
                old: None,
                new: Value::Int(50),
            },
            None,
            None,
            None,
        );
        let g = parse_guarantee(
            "ri",
            "exists(project(i)) @ t => exists(salary(i)) @? [t, t + 86400s]",
        )
        .unwrap();
        let r = check_guarantee(&tr, &g, None);
        assert!(r.holds, "{:?}", r.violations);

        // A dangling project record with a *short* window fails.
        let mut tr2 = Trace::new();
        tr2.push(
            SimTime::from_secs(100),
            SiteId::new(0),
            EventDesc::Ws {
                item: ItemId::with("project", [Value::from("e2")]),
                old: None,
                new: Value::Int(1),
            },
            None,
            None,
            None,
        );
        // pad the horizon far past the window
        tr2.push(
            SimTime::from_secs(400),
            SiteId::new(0),
            EventDesc::Ws {
                item: ItemId::plain("Pad"),
                old: None,
                new: Value::Int(0),
            },
            None,
            None,
            None,
        );
        let g2 = parse_guarantee(
            "ri",
            "exists(project(i)) @ t => exists(salary(i)) @? [t, t + 60s]",
        )
        .unwrap();
        let r2 = check_guarantee(&tr2, &g2, None);
        assert!(!r2.holds);
    }

    #[test]
    fn parameterized_copy_guarantee_over_employees() {
        let mut tr = Trace::new();
        for (t, base, id, v) in [
            (10u64, "salary1", "e1", 100i64),
            (12, "salary2", "e1", 100),
            (20, "salary1", "e2", 200),
            (22, "salary2", "e2", 200),
        ] {
            let item = ItemId::with(base, [Value::from(id)]);
            let old = tr.value_at(&item, SimTime::from_secs(t));
            tr.push(
                SimTime::from_secs(t),
                SiteId::new(0),
                EventDesc::Ws {
                    item,
                    old: old.clone(),
                    new: Value::Int(v),
                },
                old,
                None,
                None,
            );
        }
        let g = parse_guarantee(
            "pf",
            "(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 <= t1",
        )
        .unwrap();
        let r = check_guarantee(&tr, &g, None);
        assert!(r.holds, "{:?}", r.violations);

        // Cross-employee leak: salary2(e1) takes salary1(e2)'s value.
        let mut tr2 = tr.clone();
        let item = ItemId::with("salary2", [Value::from("e1")]);
        let old = tr2.value_at(&item, SimTime::from_secs(30));
        tr2.push(
            SimTime::from_secs(30),
            SiteId::new(0),
            EventDesc::Ws {
                item,
                old: old.clone(),
                new: Value::Int(200),
            },
            old,
            None,
            None,
        );
        let r2 = check_guarantee(&tr2, &g, None);
        assert!(
            !r2.holds,
            "salary2(e1)=200 was never a value of salary1(e1)"
        );
    }

    #[test]
    fn unconditional_invariant() {
        let mut tr = Trace::new();
        tr.set_initial(ItemId::plain("X"), Value::Int(1));
        tr.set_initial(ItemId::plain("Y"), Value::Int(5));
        write(&mut tr, 10, "X", 3);
        let g = parse_guarantee("inv", "(X <= Y) @ t").unwrap();
        // No LHS: the RHS must be satisfiable (∃t). It is.
        let r = check_guarantee(&tr, &g, None);
        assert!(r.holds);
    }

    #[test]
    fn empty_trace_is_vacuous() {
        let tr = Trace::new();
        let g = parse_guarantee("f", "(Y = y) @ t1 => (X = y) @ t2 and t2 <= t1").unwrap();
        let r = check_guarantee(&tr, &g, None);
        assert_eq!(r.outcome(), GuaranteeOutcome::Vacuous);
    }
}
