//! The valid-execution checker — Appendix A.2, properties 1–7.
//!
//! Given a recorded [`Trace`] and the [`RuleSet`] in force, verify:
//!
//! 1. **Time order** — events sorted by nondecreasing time.
//! 2. **Write semantics** — a write's recorded old value matches the
//!    state just before it (the `new = old − {X=a} ∪ {X=b}` clause).
//! 3. **Frame axiom** — only writes change state (holds by
//!    construction of our event encoding; re-derived via replay).
//! 4. **Spontaneity** — spontaneous-kind events (`Ws`, `P`) carry no
//!    rule/trigger; all others carry both.
//! 5. **Causality** — a generated event's trigger exists, precedes it,
//!    matches its rule's LHS (with some matching interpretation that
//!    extends to the RHS template), the LHS condition held at the
//!    trigger, and the event lies within the rule's time bound.
//! 6. **Obligation** — whenever an event matches a rule's LHS (at the
//!    rule's site, condition satisfied), each RHS step's event occurs
//!    within the bound, unless the step condition was false throughout
//!    the window, the RHS is `𝓕` (a prohibition — then the *trigger
//!    itself* is the violation), or the database refused the write and
//!    recorded `WriteRejected` (the conditional-write discharge used by
//!    the demarcation protocol).
//! 7. **In-order related rules** — firings of related rules (same LHS
//!    site, same RHS site) are processed in trigger order: strict
//!    inversions `t1 < t3` but `t4 < t2` are violations.
//!
//! Deviations from the appendix, documented in `DESIGN.md`: sequenced
//! RHS steps may share an instant (the engine executes them in one
//! handler), so step ordering is checked by trace order rather than
//! strict time; condition checks are evaluated against reconstructed
//! global state, which includes CM-private items because the engine
//! records their writes.

use crate::ruleset::RuleSet;
use crate::state::StateIndex;
use hcm_core::{Bindings, Event, EventDesc, ItemId, SimTime, TemplateDesc, Trace, Value};
use hcm_rulelang::{Cond, CondEnv, Expr};
use std::collections::HashMap;
use std::fmt;

/// One violation of a validity property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which appendix property (1–7).
    pub property: u8,
    /// Index of the offending event in the trace (when applicable).
    pub event: Option<u64>,
    /// Description.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "property {}: {}", self.property, self.msg)?;
        if let Some(e) = self.event {
            write!(f, " (event e{e})")?;
        }
        Ok(())
    }
}

/// The checker's verdict.
#[derive(Debug, Clone, Default)]
pub struct ValidityReport {
    /// All violations found.
    pub violations: Vec<Violation>,
    /// Number of rule obligations checked (property 6 instantiations).
    pub obligations_checked: usize,
}

impl ValidityReport {
    /// `true` when the execution satisfies all seven properties.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one property.
    #[must_use]
    pub fn of_property(&self, p: u8) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.property == p).collect()
    }
}

struct StateEnv<'a> {
    idx: &'a StateIndex,
    t: SimTime,
    bindings: &'a Bindings,
}

impl CondEnv for StateEnv<'_> {
    fn item(&self, item: &ItemId) -> Option<Value> {
        self.idx.value_at(item, self.t).cloned()
    }
    fn var(&self, name: &str) -> Option<Value> {
        self.bindings.get(name).cloned()
    }
}

fn eval_cond(cond: &Cond, idx: &StateIndex, t: SimTime, bindings: &Bindings) -> bool {
    cond.eval(&StateEnv { idx, t, bindings })
}

/// Bind any value variables the condition determines (e.g. the read
/// interface's `X = b` binds `b` to the current value so the RHS
/// template `R(X, b)` can be checked). Only simple `item = var` /
/// `var = item` equalities extend bindings, matching the engine.
fn bind_from_cond(cond: &Cond, idx: &StateIndex, t: SimTime, bindings: &mut Bindings) {
    match cond {
        Cond::And(a, b) => {
            bind_from_cond(a, idx, t, bindings);
            bind_from_cond(b, idx, t, bindings);
        }
        Cond::Cmp(Expr::Item(p), hcm_rulelang::CmpOp::Eq, Expr::Var(v))
        | Cond::Cmp(Expr::Var(v), hcm_rulelang::CmpOp::Eq, Expr::Item(p))
            if bindings.get(v).is_none() =>
        {
            if let Some(item) = p.instantiate(bindings) {
                if let Some(val) = idx.value_at(&item, t) {
                    bindings.bind(v.clone(), val.clone());
                }
            }
        }
        _ => {}
    }
}

/// Run the seven-property check.
#[must_use]
pub fn check_validity(trace: &Trace, rules: &RuleSet) -> ValidityReport {
    let mut report = ValidityReport::default();
    let idx = StateIndex::build(trace);
    let events = trace.events();

    // ---- Property 1: time ordering -------------------------------------
    for w in events.windows(2) {
        if w[1].time < w[0].time {
            report.violations.push(Violation {
                property: 1,
                event: Some(w[1].id.0),
                msg: format!("event at {} after event at {}", w[1].time, w[0].time),
            });
        }
    }

    // ---- Properties 2 & 3: write semantics + frame axiom ----------------
    // Replay: running state must match each write's recorded old value.
    let mut state: HashMap<ItemId, Value> = HashMap::new();
    for item in trace.items() {
        if let Some(v) = trace.initial(item) {
            state.insert(item.clone(), v.clone());
        }
    }
    for e in events {
        if let Some((item, new)) = e.desc.write_effect() {
            let current = state.get(item);
            if let Some(recorded_old) = &e.old_value {
                if let Some(current) = current {
                    if current != recorded_old {
                        report.violations.push(Violation {
                            property: 2,
                            event: Some(e.id.0),
                            msg: format!(
                                "write of {item} records old={recorded_old} but state was {current}"
                            ),
                        });
                    }
                }
            }
            state.insert(item.clone(), new.clone());
        }
    }

    // ---- Property 4: spontaneity ----------------------------------------
    for e in events {
        if e.desc.is_spontaneous_kind() {
            if e.rule.is_some() || e.trigger.is_some() {
                report.violations.push(Violation {
                    property: 4,
                    event: Some(e.id.0),
                    msg: format!("spontaneous event {} carries rule/trigger", e.desc),
                });
            }
        } else if !matches!(e.desc, EventDesc::Custom { .. })
            && (e.rule.is_none() || e.trigger.is_none())
        {
            // Custom events may be injected by protocol drivers
            // (spontaneous from the CM's standpoint); all core
            // generated kinds must carry provenance.
            report.violations.push(Violation {
                property: 4,
                event: Some(e.id.0),
                msg: format!("generated event {} lacks rule/trigger", e.desc),
            });
        }
    }

    // ---- Property 5: causality -------------------------------------------
    for e in events {
        let (Some(rule_id), Some(trigger_id)) = (e.rule, e.trigger) else {
            continue;
        };
        let Some(rule) = rules.get(rule_id) else {
            report.violations.push(Violation {
                property: 5,
                event: Some(e.id.0),
                msg: format!("unknown rule {rule_id}"),
            });
            continue;
        };
        let Some(trigger) = trace.get(trigger_id) else {
            report.violations.push(Violation {
                property: 5,
                event: Some(e.id.0),
                msg: format!("missing trigger {trigger_id}"),
            });
            continue;
        };
        // Compare trace positions, not raw id values: scoped
        // recorders mint ids from per-actor namespaces, so magnitude
        // no longer reflects recording order.
        if trace.index_of(trigger.id) >= trace.index_of(e.id) {
            report.violations.push(Violation {
                property: 5,
                event: Some(e.id.0),
                msg: "trigger does not precede event".into(),
            });
            continue;
        }
        // The trigger must match the rule's LHS.
        let mut bindings = Bindings::new();
        if !rule.lhs.match_desc(&trigger.desc, &mut bindings) {
            report.violations.push(Violation {
                property: 5,
                event: Some(e.id.0),
                msg: format!("trigger {} does not match LHS of {rule_id}", trigger.desc),
            });
            continue;
        }
        // The event must be an instance of some RHS step template under
        // an *extension* of the matching interpretation (appendix: "I
        // can be extended to an interpretation I′ such that substituting
        // using I′ in a RHS event template gives E"), and under that
        // extension the LHS condition must have held at the trigger —
        // parameterized periodic interfaces (`P(p) ∧ wphone(n) = b →
        // N(wphone(n), b)`) bind `n` and `b` only through the generated
        // event.
        let refusal = matches!(&e.desc, EventDesc::Custom { name, .. } if name == "WriteRejected");
        let mut template_matched = refusal;
        let mut explained = refusal;
        for step in &rule.steps {
            let mut b = bindings.clone();
            if !step.event.match_desc(&e.desc, &mut b) {
                continue;
            }
            template_matched = true;
            bind_from_cond(&rule.cond, &idx, trigger.time, &mut b);
            if eval_cond(&rule.cond, &idx, trigger.time, &b) {
                explained = true;
                break;
            }
        }
        if !template_matched {
            report.violations.push(Violation {
                property: 5,
                event: Some(e.id.0),
                msg: format!(
                    "event {} is not an instance of any RHS template of {rule_id}",
                    e.desc
                ),
            });
        } else if !explained {
            report.violations.push(Violation {
                property: 5,
                event: Some(e.id.0),
                msg: format!("LHS condition of {rule_id} false at trigger time"),
            });
        }
        // Metric part: within the bound.
        if e.time > trigger.time + rule.bound {
            report.violations.push(Violation {
                property: 5,
                event: Some(e.id.0),
                msg: format!(
                    "event at {} exceeds bound {} after trigger at {}",
                    e.time, rule.bound, trigger.time
                ),
            });
        }
    }

    // ---- Property 6: obligations ------------------------------------------
    for rule in rules.rules() {
        for (trigger_pos, trigger) in events.iter().enumerate() {
            if trigger.site != rule.lhs_site {
                continue;
            }
            let mut bindings = Bindings::new();
            if !rule.lhs.match_desc(&trigger.desc, &mut bindings) {
                continue;
            }
            bind_from_cond(&rule.cond, &idx, trigger.time, &mut bindings);
            if !eval_cond(&rule.cond, &idx, trigger.time, &bindings) {
                continue;
            }
            report.obligations_checked += 1;
            let window_end = trigger.time + rule.bound;
            for step in &rule.steps {
                if step.event == TemplateDesc::False {
                    // Prohibition: the trigger itself violates it.
                    report.violations.push(Violation {
                        property: 6,
                        event: Some(trigger.id.0),
                        msg: format!(
                            "prohibited event {} occurred (rule {})",
                            trigger.desc, rule.id
                        ),
                    });
                    continue;
                }
                // Discharged when a matching generated event exists in
                // the window…
                let fulfilled = events[trigger_pos + 1..].iter().any(|e| {
                    if e.time > window_end {
                        return false;
                    }
                    if e.rule != Some(rule.id) || e.trigger != Some(trigger.id) {
                        return false;
                    }
                    let mut b = bindings.clone();
                    e.desc.match_kind_of(&step.event) && step.event.match_desc(&e.desc, &mut b)
                });
                if fulfilled {
                    continue;
                }
                // …or the step condition was false when the engine
                // evaluated it (we accept "false at every instant of
                // the window" as the checkable approximation)…
                if step.cond != Cond::True {
                    let mut any_true = false;
                    let mut t = trigger.time;
                    loop {
                        if eval_cond(&step.cond, &idx, t, &bindings) {
                            any_true = true;
                            break;
                        }
                        if t >= window_end {
                            break;
                        }
                        t = SimTime::from_millis((t.as_millis() + 1).min(window_end.as_millis()));
                        // Jump between salient instants would be an
                        // optimization; windows are short.
                    }
                    if !any_true {
                        continue;
                    }
                }
                // …or the database refused the write (conditional-write
                // discharge).
                let refused = events[trigger_pos + 1..].iter().any(|e| {
                    e.time <= window_end
                        && e.rule.is_some()
                        && matches!(&e.desc, EventDesc::Custom { name, .. } if name == "WriteRejected")
                        && related_refusal(trace, e, trigger.id.0)
                });
                if refused {
                    continue;
                }
                report.violations.push(Violation {
                    property: 6,
                    event: Some(trigger.id.0),
                    msg: format!(
                        "rule {} fired by {} at {}: step `{}` unfulfilled by {}",
                        rule.id, trigger.desc, trigger.time, step.event, window_end
                    ),
                });
            }
        }
    }

    // ---- Property 7: in-order related rules --------------------------------
    let related = rules.related_pairs();
    for (ra, rb) in related {
        let fa: Vec<&Event> = events
            .iter()
            .filter(|e| e.rule == Some(ra) && e.trigger.is_some())
            .collect();
        let fb: Vec<&Event> = events
            .iter()
            .filter(|e| e.rule == Some(rb) && e.trigger.is_some())
            .collect();
        for e2 in &fa {
            let t1 = trace.get(e2.trigger.expect("filtered")).map(|t| t.time);
            for e4 in &fb {
                if e2.id == e4.id {
                    continue;
                }
                let t3 = trace.get(e4.trigger.expect("filtered")).map(|t| t.time);
                if let (Some(t1), Some(t3)) = (t1, t3) {
                    if t1 < t3 && e4.time < e2.time {
                        report.violations.push(Violation {
                            property: 7,
                            event: Some(e4.id.0),
                            msg: format!(
                                "related rules {ra}/{rb} processed out of order: \
                                 triggers at {t1} < {t3} but effects at {} > {}",
                                e2.time, e4.time
                            ),
                        });
                    }
                }
            }
        }
    }

    report
}

/// Is this `WriteRejected` event causally downstream of `trigger_id`?
/// (Directly triggered by it, or by an event it triggered.)
fn related_refusal(trace: &Trace, e: &Event, trigger_id: u64) -> bool {
    let mut cur = e.trigger;
    for _ in 0..8 {
        match cur {
            None => return false,
            Some(id) if id.0 == trigger_id => return true,
            Some(id) => cur = trace.get(id).and_then(|t| t.trigger),
        }
    }
    false
}

/// Cheap kind check so property 6 does not cross-match templates of
/// different descriptors.
trait KindMatch {
    fn match_kind_of(&self, t: &TemplateDesc) -> bool;
}

impl KindMatch for EventDesc {
    fn match_kind_of(&self, t: &TemplateDesc) -> bool {
        matches!(
            (self, t),
            (EventDesc::Ws { .. }, TemplateDesc::Ws { .. })
                | (EventDesc::W { .. }, TemplateDesc::W { .. })
                | (EventDesc::Wr { .. }, TemplateDesc::Wr { .. })
                | (EventDesc::Rr { .. }, TemplateDesc::Rr { .. })
                | (EventDesc::R { .. }, TemplateDesc::R { .. })
                | (EventDesc::N { .. }, TemplateDesc::N { .. })
                | (EventDesc::P { .. }, TemplateDesc::P { .. })
                | (EventDesc::Custom { .. }, TemplateDesc::Custom { .. })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::{EventId, RuleId, SiteId};
    use hcm_rulelang::{parse_interface, parse_strategy_rule};

    const A: SiteId = SiteId::new(0);
    const B: SiteId = SiteId::new(1);

    /// Rule set of the §4.2 salary scenario, unparameterized:
    /// r0: notify interface at A, r1: write interface at B,
    /// r2: propagation strategy A→B.
    fn salary_rules() -> RuleSet {
        let mut rs = RuleSet::new();
        rs.add_interface(
            RuleId(0),
            A,
            &parse_interface("Ws(X, b) -> N(X, b) within 2s").unwrap(),
        );
        rs.add_interface(
            RuleId(1),
            B,
            &parse_interface("WR(Y, b) -> W(Y, b) within 1s").unwrap(),
        );
        rs.add_strategy(
            RuleId(2),
            A,
            B,
            &parse_strategy_rule("N(X, b) -> WR(Y, b) within 5s").unwrap(),
        );
        rs
    }

    fn x() -> ItemId {
        ItemId::plain("X")
    }
    fn y() -> ItemId {
        ItemId::plain("Y")
    }

    /// A fully valid propagation chain.
    fn valid_trace() -> Trace {
        let mut tr = Trace::new();
        tr.set_initial(x(), Value::Int(0));
        tr.set_initial(y(), Value::Int(0));
        let ws = tr.push(
            SimTime::from_secs(10),
            A,
            EventDesc::Ws {
                item: x(),
                old: Some(Value::Int(0)),
                new: Value::Int(5),
            },
            Some(Value::Int(0)),
            None,
            None,
        );
        let n = tr.push(
            SimTime::from_millis(10_500),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(5),
            },
            None,
            Some(RuleId(0)),
            Some(ws),
        );
        let wr = tr.push(
            SimTime::from_millis(11_000),
            B,
            EventDesc::Wr {
                item: y(),
                value: Value::Int(5),
            },
            None,
            Some(RuleId(2)),
            Some(n),
        );
        tr.push(
            SimTime::from_millis(11_300),
            B,
            EventDesc::W {
                item: y(),
                value: Value::Int(5),
            },
            Some(Value::Int(0)),
            Some(RuleId(1)),
            Some(wr),
        );
        tr
    }

    #[test]
    fn valid_chain_passes_all_properties() {
        let report = check_validity(&valid_trace(), &salary_rules());
        assert!(report.is_valid(), "{:#?}", report.violations);
        assert!(report.obligations_checked >= 3);
    }

    #[test]
    fn p1_time_order_violation() {
        let mut tr = valid_trace();
        tr.push(
            SimTime::from_secs(1), // earlier than the last event
            A,
            EventDesc::Ws {
                item: x(),
                old: None,
                new: Value::Int(9),
            },
            None,
            None,
            None,
        );
        let report = check_validity(&tr, &salary_rules());
        assert!(!report.of_property(1).is_empty());
    }

    #[test]
    fn p2_wrong_old_value() {
        let mut tr = valid_trace();
        // Claims X was 42 before, but it was 5.
        tr.push(
            SimTime::from_secs(20),
            A,
            EventDesc::Ws {
                item: x(),
                old: Some(Value::Int(42)),
                new: Value::Int(6),
            },
            Some(Value::Int(42)),
            None,
            None,
        );
        let report = check_validity(&tr, &salary_rules());
        assert!(!report.of_property(2).is_empty());
    }

    #[test]
    fn p4_spontaneous_with_rule() {
        let mut tr = Trace::new();
        tr.push(
            SimTime::from_secs(1),
            A,
            EventDesc::Ws {
                item: x(),
                old: None,
                new: Value::Int(1),
            },
            None,
            Some(RuleId(0)), // spontaneous events must not carry a rule
            None,
        );
        let report = check_validity(&tr, &salary_rules());
        assert!(!report.of_property(4).is_empty());
    }

    #[test]
    fn p4_generated_without_provenance() {
        let mut tr = Trace::new();
        tr.push(
            SimTime::from_secs(1),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(1),
            },
            None,
            None,
            None,
        );
        let report = check_validity(&tr, &salary_rules());
        // The orphan N violates both spontaneity (4) and, because it is
        // unexplained, shows up nowhere else.
        assert!(!report.of_property(4).is_empty());
    }

    #[test]
    fn p5_bound_exceeded() {
        let mut tr = Trace::new();
        tr.set_initial(x(), Value::Int(0));
        let ws = tr.push(
            SimTime::from_secs(10),
            A,
            EventDesc::Ws {
                item: x(),
                old: Some(Value::Int(0)),
                new: Value::Int(5),
            },
            Some(Value::Int(0)),
            None,
            None,
        );
        // Notification 7s later: the 2s notify bound is blown.
        tr.push(
            SimTime::from_secs(17),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(5),
            },
            None,
            Some(RuleId(0)),
            Some(ws),
        );
        let report = check_validity(&tr, &salary_rules());
        assert!(report
            .of_property(5)
            .iter()
            .any(|v| v.msg.contains("exceeds bound")));
        // The late event *also* leaves the obligation formally
        // unfulfilled inside the window.
        assert!(!report.of_property(6).is_empty());
    }

    #[test]
    fn p5_trigger_mismatch() {
        let mut tr = Trace::new();
        let ws = tr.push(
            SimTime::from_secs(10),
            A,
            EventDesc::Ws {
                item: x(),
                old: None,
                new: Value::Int(5),
            },
            None,
            None,
            None,
        );
        // N reports value 7, but the trigger wrote 5 — not an instance
        // of the rule's RHS under the matching interpretation.
        tr.push(
            SimTime::from_millis(10_500),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(7),
            },
            None,
            Some(RuleId(0)),
            Some(ws),
        );
        let report = check_validity(&tr, &salary_rules());
        assert!(report
            .of_property(5)
            .iter()
            .any(|v| v.msg.contains("not an instance")));
    }

    #[test]
    fn p5_dangling_and_future_trigger() {
        let mut tr = Trace::new();
        tr.push(
            SimTime::from_secs(1),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(1),
            },
            None,
            Some(RuleId(0)),
            Some(EventId(99)),
        );
        let report = check_validity(&tr, &salary_rules());
        assert!(report
            .of_property(5)
            .iter()
            .any(|v| v.msg.contains("missing trigger")));
    }

    #[test]
    fn p6_missing_notification() {
        let mut tr = Trace::new();
        tr.set_initial(x(), Value::Int(0));
        tr.push(
            SimTime::from_secs(10),
            A,
            EventDesc::Ws {
                item: x(),
                old: Some(Value::Int(0)),
                new: Value::Int(5),
            },
            Some(Value::Int(0)),
            None,
            None,
        );
        // No N follows: the notify interface's obligation is broken.
        let report = check_validity(&tr, &salary_rules());
        assert!(report
            .of_property(6)
            .iter()
            .any(|v| v.msg.contains("unfulfilled")));
    }

    #[test]
    fn p6_prohibition() {
        let mut rs = salary_rules();
        rs.add_interface(RuleId(3), B, &parse_interface("Ws(Y, b) -> false").unwrap());
        let mut tr = Trace::new();
        tr.push(
            SimTime::from_secs(5),
            B,
            EventDesc::Ws {
                item: y(),
                old: None,
                new: Value::Int(1),
            },
            None,
            None,
            None,
        );
        let report = check_validity(&tr, &rs);
        assert!(report
            .of_property(6)
            .iter()
            .any(|v| v.msg.contains("prohibited")));
    }

    #[test]
    fn p6_step_condition_false_discharges() {
        // Cached propagation: Cx = b already, so the WR step is
        // legitimately skipped.
        let mut rs = RuleSet::new();
        rs.add_strategy(
            RuleId(0),
            A,
            A,
            &parse_strategy_rule("N(X, b) -> if Cx != b then WR(X, b) within 5s").unwrap(),
        );
        let mut tr = Trace::new();
        tr.set_initial(ItemId::plain("Cx"), Value::Int(5));
        let ws = tr.push(
            SimTime::from_secs(1),
            A,
            EventDesc::Ws {
                item: x(),
                old: None,
                new: Value::Int(5),
            },
            None,
            None,
            None,
        );
        tr.push(
            SimTime::from_secs(2),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(5),
            },
            None,
            None,
            None,
        );
        let _ = ws;
        let report = check_validity(&tr, &rs);
        // The hand-built N lacks provenance (property 4 flags it, by
        // design of the minimal trace); what matters here is that the
        // skipped step raises no obligation violation.
        assert!(report.of_property(6).is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn p6_write_rejected_discharges() {
        let mut tr = Trace::new();
        tr.set_initial(y(), Value::Int(0));
        let wr = tr.push(
            SimTime::from_secs(10),
            B,
            EventDesc::Wr {
                item: y(),
                value: Value::Int(5),
            },
            None,
            None,
            None,
        );
        tr.push(
            SimTime::from_millis(10_200),
            B,
            EventDesc::Custom {
                name: "WriteRejected".into(),
                args: vec![Value::Str("Y".into()), Value::Int(5)],
            },
            None,
            Some(RuleId(1)),
            Some(wr),
        );
        let report = check_validity(&tr, &salary_rules());
        // Minimal trace: the WR lacks provenance (property 4), but the
        // refused write must discharge the write-interface obligation.
        assert!(report.of_property(6).is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn p7_inversion_detected() {
        let mut rs = RuleSet::new();
        rs.add_strategy(
            RuleId(0),
            A,
            B,
            &parse_strategy_rule("N(X, b) -> WR(Y, b) within 60s").unwrap(),
        );
        let mut tr = Trace::new();
        // Two firings of the same rule, effects inverted.
        let n1 = tr.push(
            SimTime::from_secs(1),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(1),
            },
            None,
            None,
            None,
        );
        let n2 = tr.push(
            SimTime::from_secs(2),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(2),
            },
            None,
            None,
            None,
        );
        // Effect of n2 lands before effect of n1.
        tr.push(
            SimTime::from_secs(3),
            B,
            EventDesc::Wr {
                item: y(),
                value: Value::Int(2),
            },
            None,
            Some(RuleId(0)),
            Some(n2),
        );
        tr.push(
            SimTime::from_secs(4),
            B,
            EventDesc::Wr {
                item: y(),
                value: Value::Int(1),
            },
            None,
            Some(RuleId(0)),
            Some(n1),
        );
        let report = check_validity(&tr, &rs);
        assert!(!report.of_property(7).is_empty());
    }

    #[test]
    fn p7_in_order_passes() {
        let mut rs = RuleSet::new();
        rs.add_strategy(
            RuleId(0),
            A,
            B,
            &parse_strategy_rule("N(X, b) -> WR(Y, b) within 60s").unwrap(),
        );
        let mut tr = Trace::new();
        let n1 = tr.push(
            SimTime::from_secs(1),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(1),
            },
            None,
            None,
            None,
        );
        let n2 = tr.push(
            SimTime::from_secs(2),
            A,
            EventDesc::N {
                item: x(),
                value: Value::Int(2),
            },
            None,
            None,
            None,
        );
        tr.push(
            SimTime::from_secs(3),
            B,
            EventDesc::Wr {
                item: y(),
                value: Value::Int(1),
            },
            None,
            Some(RuleId(0)),
            Some(n1),
        );
        tr.push(
            SimTime::from_secs(4),
            B,
            EventDesc::Wr {
                item: y(),
                value: Value::Int(2),
            },
            None,
            Some(RuleId(0)),
            Some(n2),
        );
        let report = check_validity(&tr, &rs);
        assert!(report.of_property(7).is_empty());
    }
}
