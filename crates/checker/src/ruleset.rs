//! The rule set a validity check runs against.
//!
//! The appendix's valid-execution properties refer to "rules" — both
//! interface statements and strategy rules. [`RuleSet`] carries them
//! together with their sites (interface statements belong to the site
//! of the database offering them; strategy rules carry the LHS/RHS
//! site placement computed at initialization).

use hcm_core::SimDuration;
use hcm_core::{RuleId, SiteId, TemplateDesc};
use hcm_rulelang::{Cond, InterfaceStmt, RhsStep, StrategyRule};

/// A uniform view of one rule for the checker: LHS template +
/// condition, sequenced RHS, bound, and site placement.
#[derive(Debug, Clone)]
pub struct CheckedRule {
    /// The rule's id (matches `Event::rule` provenance).
    pub id: RuleId,
    /// LHS event template.
    pub lhs: TemplateDesc,
    /// LHS condition.
    pub cond: Cond,
    /// RHS steps in order (an interface statement has exactly one).
    pub steps: Vec<RhsStep>,
    /// Time bound δ.
    pub bound: SimDuration,
    /// Site of the LHS event.
    pub lhs_site: SiteId,
    /// Site of the RHS events.
    pub rhs_site: SiteId,
    /// Whether this is an interface statement (database promise) or a
    /// strategy rule (CM behaviour).
    pub is_interface: bool,
}

/// The rules in force during an execution.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<CheckedRule>,
}

impl RuleSet {
    /// An empty rule set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an interface statement offered by the database at `site`.
    pub fn add_interface(&mut self, id: RuleId, site: SiteId, stmt: &InterfaceStmt) {
        self.rules.push(CheckedRule {
            id,
            lhs: stmt.lhs.clone(),
            cond: stmt.cond.clone(),
            steps: vec![RhsStep {
                cond: Cond::True,
                event: stmt.rhs.clone(),
            }],
            bound: stmt.bound,
            lhs_site: site,
            rhs_site: site,
            is_interface: true,
        });
    }

    /// Add a strategy rule with its placement.
    pub fn add_strategy(
        &mut self,
        id: RuleId,
        lhs_site: SiteId,
        rhs_site: SiteId,
        rule: &StrategyRule,
    ) {
        self.rules.push(CheckedRule {
            id,
            lhs: rule.lhs.clone(),
            cond: rule.cond.clone(),
            steps: rule.steps.clone(),
            bound: rule.bound,
            lhs_site,
            rhs_site,
            is_interface: false,
        });
    }

    /// Look up a rule by id.
    #[must_use]
    pub fn get(&self, id: RuleId) -> Option<&CheckedRule> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// All rules.
    #[must_use]
    pub fn rules(&self) -> &[CheckedRule] {
        &self.rules
    }

    /// Pairs of *related* rules (appendix property 7): same LHS site
    /// and same RHS site.
    #[must_use]
    pub fn related_pairs(&self) -> Vec<(RuleId, RuleId)> {
        let mut out = Vec::new();
        for (i, a) in self.rules.iter().enumerate() {
            for b in &self.rules[i..] {
                if a.lhs_site == b.lhs_site && a.rhs_site == b.rhs_site {
                    out.push((a.id, b.id));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_rulelang::{parse_interface, parse_strategy_rule};

    #[test]
    fn construction_and_lookup() {
        let mut rs = RuleSet::new();
        let w = parse_interface("WR(X, b) -> W(X, b) within 1s").unwrap();
        rs.add_interface(RuleId(0), SiteId::new(1), &w);
        let s = parse_strategy_rule("N(X, b) -> WR(Y, b) within 5s").unwrap();
        rs.add_strategy(RuleId(1), SiteId::new(0), SiteId::new(1), &s);
        assert_eq!(rs.rules().len(), 2);
        assert!(rs.get(RuleId(0)).unwrap().is_interface);
        assert!(!rs.get(RuleId(1)).unwrap().is_interface);
        assert!(rs.get(RuleId(9)).is_none());
        assert_eq!(rs.get(RuleId(1)).unwrap().steps.len(), 1);
    }

    #[test]
    fn related_pairs_by_sites() {
        let mut rs = RuleSet::new();
        let s1 = parse_strategy_rule("N(X, b) -> WR(Y, b) within 5s").unwrap();
        let s2 = parse_strategy_rule("N(X2, b) -> WR(Y2, b) within 5s").unwrap();
        let s3 = parse_strategy_rule("N(Z, b) -> WR(Q, b) within 5s").unwrap();
        rs.add_strategy(RuleId(0), SiteId::new(0), SiteId::new(1), &s1);
        rs.add_strategy(RuleId(1), SiteId::new(0), SiteId::new(1), &s2);
        rs.add_strategy(RuleId(2), SiteId::new(2), SiteId::new(1), &s3);
        let pairs = rs.related_pairs();
        // (0,0), (0,1), (1,1), (2,2) share both sites.
        assert!(pairs.contains(&(RuleId(0), RuleId(1))));
        assert!(!pairs.contains(&(RuleId(0), RuleId(2))));
        assert!(!pairs.contains(&(RuleId(1), RuleId(2))));
    }
}
