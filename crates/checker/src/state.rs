//! Fast state reconstruction from a trace.
//!
//! The appendix's `old`/`new` interpretations are reconstructed here:
//! [`StateIndex`] holds, per item, the sorted list of `(time, index,
//! value)` change points, supporting O(log n) point queries and the
//! breakpoint enumeration the guarantee evaluator's salient grid needs.
//! Per-item and per-base breakpoint lists and per-base item lists are
//! precomputed once in [`StateIndex::build`] and handed out as slices,
//! so grid construction never allocates per query.

use hcm_core::{ItemId, SimTime, Sym, Trace, Value};
use std::collections::HashMap;

/// Per-item change history with binary-search lookups.
#[derive(Debug, Clone)]
pub struct StateIndex {
    /// item → changes as (time, trace index, value), time-ordered.
    /// Initial values sit at `(SimTime::ZERO, usize::MAX as sentinel)`.
    changes: HashMap<ItemId, Vec<(SimTime, usize, Value)>>,
    /// item → deduped change times (insertion order = time order).
    item_bps: HashMap<ItemId, Vec<SimTime>>,
    /// base → sorted deduped change times over every item of the base.
    base_bps: HashMap<Sym, Vec<SimTime>>,
    /// base → items of that base, sorted.
    base_items: HashMap<Sym, Vec<ItemId>>,
    end: SimTime,
}

impl StateIndex {
    /// Build the index from a trace.
    #[must_use]
    pub fn build(trace: &Trace) -> Self {
        let mut changes: HashMap<ItemId, Vec<(SimTime, usize, Value)>> = HashMap::new();
        for item in trace.items() {
            if let Some(v) = trace.initial(item) {
                changes.entry(item.clone()).or_default().push((
                    SimTime::ZERO,
                    usize::MAX,
                    v.clone(),
                ));
            }
        }
        for (i, e) in trace.events().iter().enumerate() {
            if let Some((item, v)) = e.desc.write_effect() {
                changes
                    .entry(item.clone())
                    .or_default()
                    .push((e.time, i, v.clone()));
            }
        }
        let mut item_bps: HashMap<ItemId, Vec<SimTime>> = HashMap::with_capacity(changes.len());
        let mut base_bps: HashMap<Sym, Vec<SimTime>> = HashMap::new();
        let mut base_items: HashMap<Sym, Vec<ItemId>> = HashMap::new();
        for (item, ch) in &changes {
            let mut ts: Vec<SimTime> = ch.iter().map(|(t, _, _)| *t).collect();
            ts.dedup();
            base_bps.entry(item.base).or_default().extend(ts.iter());
            base_items.entry(item.base).or_default().push(item.clone());
            item_bps.insert(item.clone(), ts);
        }
        for ts in base_bps.values_mut() {
            ts.sort();
            ts.dedup();
        }
        for items in base_items.values_mut() {
            items.sort();
        }
        StateIndex {
            changes,
            item_bps,
            base_bps,
            base_items,
            end: trace.end_time(),
        }
    }

    /// The value of `item` at `t` (`None` when underspecified).
    /// Same-instant writes resolve to the latest by trace order,
    /// consistent with `Trace::value_at`.
    #[must_use]
    pub fn value_at(&self, item: &ItemId, t: SimTime) -> Option<&Value> {
        let ch = self.changes.get(item)?;
        // Initial entries use sentinel index MAX but sit at time ZERO
        // first; ordering within equal times follows insertion, which
        // is trace order for events. partition_point finds the first
        // entry with time > t.
        let idx = ch.partition_point(|(time, _, _)| *time <= t);
        if idx == 0 {
            None
        } else {
            Some(&ch[idx - 1].2)
        }
    }

    /// The change times of `item` (including the initial instant when
    /// specified). Precomputed; no allocation.
    #[must_use]
    pub fn breakpoints(&self, item: &ItemId) -> &[SimTime] {
        self.item_bps.get(item).map_or(&[], Vec::as_slice)
    }

    /// Breakpoints of every item whose base name is `base`, sorted and
    /// deduplicated. Precomputed; no allocation.
    #[must_use]
    pub fn breakpoints_by_base(&self, base: impl Into<Sym>) -> &[SimTime] {
        self.base_bps.get(&base.into()).map_or(&[], Vec::as_slice)
    }

    /// All items with a given base name, sorted. Precomputed.
    #[must_use]
    pub fn items_with_base(&self, base: impl Into<Sym>) -> &[ItemId] {
        self.base_items.get(&base.into()).map_or(&[], Vec::as_slice)
    }

    /// The time of the last recorded event.
    #[must_use]
    pub fn end_time(&self) -> SimTime {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::{EventDesc, SiteId, Trace};

    fn mk_trace() -> Trace {
        let mut tr = Trace::new();
        let x = ItemId::plain("X");
        tr.set_initial(x.clone(), Value::Int(0));
        for (t, v) in [(10u64, 1i64), (20, 2), (20, 3), (30, 4)] {
            tr.push(
                SimTime::from_secs(t),
                SiteId::new(0),
                EventDesc::Ws {
                    item: x.clone(),
                    old: None,
                    new: Value::Int(v),
                },
                None,
                None,
                None,
            );
        }
        tr
    }

    #[test]
    fn point_queries_match_trace() {
        let tr = mk_trace();
        let idx = StateIndex::build(&tr);
        let x = ItemId::plain("X");
        for t in [0u64, 5, 10, 15, 20, 25, 30, 99] {
            assert_eq!(
                idx.value_at(&x, SimTime::from_secs(t)).cloned(),
                tr.value_at(&x, SimTime::from_secs(t)),
                "mismatch at t={t}"
            );
        }
        assert_eq!(
            idx.value_at(&x, SimTime::from_secs(20)),
            Some(&Value::Int(3))
        );
        assert_eq!(idx.value_at(&ItemId::plain("Z"), SimTime::ZERO), None);
    }

    #[test]
    fn breakpoints_and_bases() {
        let tr = mk_trace();
        let idx = StateIndex::build(&tr);
        let x = ItemId::plain("X");
        assert_eq!(
            idx.breakpoints(&x),
            &[
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                SimTime::from_secs(30)
            ]
        );
        assert_eq!(idx.breakpoints_by_base("X").len(), 4);
        assert_eq!(idx.items_with_base("X").len(), 1);
        assert!(idx.items_with_base("Q").is_empty());
        assert_eq!(idx.end_time(), SimTime::from_secs(30));
    }

    #[test]
    fn per_base_breakpoints_union_items() {
        let mut tr = Trace::new();
        for (name, t) in [("e1", 10u64), ("e2", 25)] {
            tr.push(
                SimTime::from_secs(t),
                SiteId::new(0),
                EventDesc::Ws {
                    item: ItemId::with("salary", [Value::from(name)]),
                    old: None,
                    new: Value::Int(1),
                },
                None,
                None,
                None,
            );
        }
        let idx = StateIndex::build(&tr);
        assert_eq!(
            idx.breakpoints_by_base("salary"),
            &[SimTime::from_secs(10), SimTime::from_secs(25)]
        );
        assert_eq!(idx.items_with_base("salary").len(), 2);
    }
}
