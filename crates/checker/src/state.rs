//! Fast state reconstruction from a trace.
//!
//! The appendix's `old`/`new` interpretations are reconstructed here:
//! [`StateIndex`] holds, per item, the sorted list of `(time, index,
//! value)` change points, supporting O(log n) point queries and the
//! breakpoint enumeration the guarantee evaluator's salient grid needs.

use hcm_core::{ItemId, SimTime, Trace, Value};
use std::collections::HashMap;

/// Per-item change history with binary-search lookups.
#[derive(Debug, Clone)]
pub struct StateIndex {
    /// item → changes as (time, trace index, value), time-ordered.
    /// Initial values sit at `(SimTime::ZERO, usize::MAX as sentinel)`.
    changes: HashMap<ItemId, Vec<(SimTime, usize, Value)>>,
    end: SimTime,
}

impl StateIndex {
    /// Build the index from a trace.
    #[must_use]
    pub fn build(trace: &Trace) -> Self {
        let mut changes: HashMap<ItemId, Vec<(SimTime, usize, Value)>> = HashMap::new();
        for item in trace.items() {
            if let Some(v) = trace.initial(&item) {
                changes.entry(item.clone()).or_default().push((
                    SimTime::ZERO,
                    usize::MAX,
                    v.clone(),
                ));
            }
        }
        for (i, e) in trace.events().iter().enumerate() {
            if let Some((item, v)) = e.desc.write_effect() {
                changes
                    .entry(item.clone())
                    .or_default()
                    .push((e.time, i, v.clone()));
            }
        }
        StateIndex {
            changes,
            end: trace.end_time(),
        }
    }

    /// The value of `item` at `t` (`None` when underspecified).
    /// Same-instant writes resolve to the latest by trace order,
    /// consistent with `Trace::value_at`.
    #[must_use]
    pub fn value_at(&self, item: &ItemId, t: SimTime) -> Option<&Value> {
        let ch = self.changes.get(item)?;
        // Initial entries use sentinel index MAX but sit at time ZERO
        // first; ordering within equal times follows insertion, which
        // is trace order for events. partition_point finds the first
        // entry with time > t.
        let idx = ch.partition_point(|(time, _, _)| *time <= t);
        if idx == 0 {
            None
        } else {
            Some(&ch[idx - 1].2)
        }
    }

    /// The change times of `item` (including the initial instant when
    /// specified).
    #[must_use]
    pub fn breakpoints(&self, item: &ItemId) -> Vec<SimTime> {
        let mut ts: Vec<SimTime> = self
            .changes
            .get(item)
            .map(|ch| ch.iter().map(|(t, _, _)| *t).collect())
            .unwrap_or_default();
        ts.dedup();
        ts
    }

    /// Breakpoints of every item whose base name is `base`.
    #[must_use]
    pub fn breakpoints_by_base(&self, base: &str) -> Vec<SimTime> {
        let mut ts: Vec<SimTime> = self
            .changes
            .iter()
            .filter(|(item, _)| item.base == base)
            .flat_map(|(_, ch)| ch.iter().map(|(t, _, _)| *t))
            .collect();
        ts.sort();
        ts.dedup();
        ts
    }

    /// All items with a given base name.
    #[must_use]
    pub fn items_with_base(&self, base: &str) -> Vec<&ItemId> {
        let mut v: Vec<&ItemId> = self
            .changes
            .keys()
            .filter(|item| item.base == base)
            .collect();
        v.sort();
        v
    }

    /// The time of the last recorded event.
    #[must_use]
    pub fn end_time(&self) -> SimTime {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::{EventDesc, SiteId, Trace};

    fn mk_trace() -> Trace {
        let mut tr = Trace::new();
        let x = ItemId::plain("X");
        tr.set_initial(x.clone(), Value::Int(0));
        for (t, v) in [(10u64, 1i64), (20, 2), (20, 3), (30, 4)] {
            tr.push(
                SimTime::from_secs(t),
                SiteId::new(0),
                EventDesc::Ws {
                    item: x.clone(),
                    old: None,
                    new: Value::Int(v),
                },
                None,
                None,
                None,
            );
        }
        tr
    }

    #[test]
    fn point_queries_match_trace() {
        let tr = mk_trace();
        let idx = StateIndex::build(&tr);
        let x = ItemId::plain("X");
        for t in [0u64, 5, 10, 15, 20, 25, 30, 99] {
            assert_eq!(
                idx.value_at(&x, SimTime::from_secs(t)).cloned(),
                tr.value_at(&x, SimTime::from_secs(t)),
                "mismatch at t={t}"
            );
        }
        assert_eq!(
            idx.value_at(&x, SimTime::from_secs(20)),
            Some(&Value::Int(3))
        );
        assert_eq!(idx.value_at(&ItemId::plain("Z"), SimTime::ZERO), None);
    }

    #[test]
    fn breakpoints_and_bases() {
        let tr = mk_trace();
        let idx = StateIndex::build(&tr);
        let x = ItemId::plain("X");
        let bps = idx.breakpoints(&x);
        assert_eq!(
            bps,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                SimTime::from_secs(20),
                SimTime::from_secs(30)
            ]
            .into_iter()
            .collect::<Vec<_>>()
            .into_iter()
            .fold(Vec::new(), |mut acc, t| {
                if acc.last() != Some(&t) {
                    acc.push(t);
                }
                acc
            })
        );
        assert_eq!(idx.breakpoints_by_base("X").len(), 4);
        assert_eq!(idx.items_with_base("X").len(), 1);
        assert!(idx.items_with_base("Q").is_empty());
        assert_eq!(idx.end_time(), SimTime::from_secs(30));
    }
}
