//! Lexer for the rule language.

use hcm_core::SimDuration;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped).
    Str(String),
    /// Duration literal: a number with an `s` or `ms` suffix, e.g.
    /// `5s`, `300ms`, `2.5s`. Normalized to milliseconds.
    Duration(SimDuration),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `*` — wild-card in templates, multiplication in expressions.
    Star,
    /// `->`
    Arrow,
    /// `=>`
    Implies,
    /// `@`
    At,
    /// `@@`
    AtAll,
    /// `@?`
    AtSome,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Duration(d) => write!(f, "{}ms", d.as_millis()),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Star => write!(f, "*"),
            Tok::Arrow => write!(f, "->"),
            Tok::Implies => write!(f, "=>"),
            Tok::At => write!(f, "@"),
            Tok::AtAll => write!(f, "@@"),
            Tok::AtSome => write!(f, "@?"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Slash => write!(f, "/"),
        }
    }
}

/// A lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`. Comments run from `#` to end of line.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    toks.push(Tok::Minus);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Implies);
                    i += 2;
                } else {
                    toks.push(Tok::Eq);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        msg: "expected `!=`".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '@' => match bytes.get(i + 1) {
                Some(b'@') => {
                    toks.push(Tok::AtAll);
                    i += 2;
                }
                Some(b'?') => {
                    toks.push(Tok::AtSome);
                    i += 2;
                }
                _ => {
                    toks.push(Tok::At);
                    i += 1;
                }
            },
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        pos: i,
                        msg: "unterminated string".into(),
                    });
                }
                toks.push(Tok::Str(src[start..j].to_owned()));
                i = j + 1;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let num = &src[start..i];
                // Unit suffix: `s` or `ms`, attached without whitespace.
                let suffix_start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphabetic() {
                    i += 1;
                }
                let suffix = &src[suffix_start..i];
                match suffix {
                    "" => {
                        if is_float {
                            let v = num.parse::<f64>().map_err(|e| LexError {
                                pos: start,
                                msg: format!("bad float: {e}"),
                            })?;
                            toks.push(Tok::Float(v));
                        } else {
                            let v = num.parse::<i64>().map_err(|e| LexError {
                                pos: start,
                                msg: format!("bad integer: {e}"),
                            })?;
                            toks.push(Tok::Int(v));
                        }
                    }
                    "s" => {
                        let secs = num.parse::<f64>().map_err(|e| LexError {
                            pos: start,
                            msg: format!("bad duration: {e}"),
                        })?;
                        toks.push(Tok::Duration(SimDuration::from_millis(
                            (secs * 1000.0).round() as u64,
                        )));
                    }
                    "ms" => {
                        let ms = num.parse::<f64>().map_err(|e| LexError {
                            pos: start,
                            msg: format!("bad duration: {e}"),
                        })?;
                        toks.push(Tok::Duration(SimDuration::from_millis(ms.round() as u64)));
                    }
                    other => {
                        return Err(LexError {
                            pos: suffix_start,
                            msg: format!("unknown number suffix `{other}` (use `s` or `ms`)"),
                        })
                    }
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(src[start..i].to_owned()));
            }
            other => {
                return Err(LexError {
                    pos: i,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_interface_statement() {
        let toks = lex("WR(X, b) -> W(X, b) within 1s").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("WR".into()),
                Tok::LParen,
                Tok::Ident("X".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("W".into()),
                Tok::LParen,
                Tok::Ident("X".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::RParen,
                Tok::Ident("within".into()),
                Tok::Duration(SimDuration::from_secs(1)),
            ]
        );
    }

    #[test]
    fn durations() {
        assert_eq!(
            lex("500ms").unwrap(),
            vec![Tok::Duration(SimDuration::from_millis(500))]
        );
        assert_eq!(
            lex("2.5s").unwrap(),
            vec![Tok::Duration(SimDuration::from_millis(2500))]
        );
        assert!(lex("5kg").is_err());
    }

    #[test]
    fn at_operators() {
        assert_eq!(
            lex("@ @@ @?").unwrap(),
            vec![Tok::At, Tok::AtAll, Tok::AtSome]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex("= != < <= > >= => ->").unwrap(),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Implies,
                Tok::Arrow
            ]
        );
    }

    #[test]
    fn strings_and_numbers() {
        assert_eq!(
            lex("\"e42\" 17 2.5 -3").unwrap(),
            vec![
                Tok::Str("e42".into()),
                Tok::Int(17),
                Tok::Float(2.5),
                Tok::Minus,
                Tok::Int(3)
            ]
        );
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            lex("X # the item\n= 5").unwrap(),
            vec![Tok::Ident("X".into()), Tok::Eq, Tok::Int(5)]
        );
    }

    #[test]
    fn unexpected_char() {
        let err = lex("X $ Y").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
        assert!(lex("a ! b").is_err());
    }
}
