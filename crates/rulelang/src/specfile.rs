//! The toolkit's bespoke specification-file format.
//!
//! Section 4.1 of the paper describes two configuration artifacts:
//!
//! * the **CM-RID** (CM-Raw Interface Description), which "configures
//!   standard CM-Translators to the particular underlying data source"
//!   — interface statements offered, plus RIS-specific details such as
//!   the SQL command template to issue for a write;
//! * the **Strategy Specification**, read by every CM-Shell, which
//!   carries the strategy rules and "also indicates where objects are
//!   located" (§4.2.2).
//!
//! Both use the same simple sectioned text format parsed here:
//!
//! ```text
//! # comment
//! key = value                      # top-level properties
//!
//! [section arg1 arg2]
//! free-form body lines…
//! ```
//!
//! Interpretation of section kinds is up to the consumer (`hcm-toolkit`).

use std::collections::BTreeMap;
use std::fmt;

/// One `[header …]` section with its body lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Header words: kind first, then arguments.
    pub header: Vec<String>,
    /// Non-empty, non-comment body lines, trimmed.
    pub lines: Vec<String>,
}

impl Section {
    /// The section kind (first header word).
    #[must_use]
    pub fn kind(&self) -> &str {
        self.header.first().map_or("", String::as_str)
    }

    /// The header arguments (words after the kind).
    #[must_use]
    pub fn args(&self) -> &[String] {
        self.header.get(1..).unwrap_or(&[])
    }

    /// Parse the body as `key = value` pairs; lines without `=` are
    /// errors.
    pub fn as_pairs(&self) -> Result<BTreeMap<String, String>, SpecError> {
        let mut m = BTreeMap::new();
        for l in &self.lines {
            let (k, v) = l.split_once('=').ok_or_else(|| SpecError {
                msg: format!(
                    "expected `key = value` in section [{}], got `{l}`",
                    self.kind()
                ),
            })?;
            m.insert(k.trim().to_owned(), v.trim().to_owned());
        }
        Ok(m)
    }
}

/// A parsed specification file: top-level properties plus sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecFile {
    /// Top-level `key = value` properties (before the first section).
    pub props: BTreeMap<String, String>,
    /// Sections in file order.
    pub sections: Vec<Section>,
}

/// A spec-file syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: {}", self.msg)
    }
}

impl std::error::Error for SpecError {}

impl SpecFile {
    /// Parse a specification file.
    pub fn parse(src: &str) -> Result<SpecFile, SpecError> {
        let mut spec = SpecFile::default();
        let mut current: Option<Section> = None;
        for (lineno, raw) in src.lines().enumerate() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let inner = rest.strip_suffix(']').ok_or_else(|| SpecError {
                    msg: format!("line {}: unterminated section header", lineno + 1),
                })?;
                let header: Vec<String> = inner.split_whitespace().map(str::to_owned).collect();
                if header.is_empty() {
                    return Err(SpecError {
                        msg: format!("line {}: empty section header", lineno + 1),
                    });
                }
                if let Some(s) = current.take() {
                    spec.sections.push(s);
                }
                current = Some(Section {
                    header,
                    lines: Vec::new(),
                });
            } else {
                match &mut current {
                    Some(s) => s.lines.push(line.to_owned()),
                    None => {
                        let (k, v) = line.split_once('=').ok_or_else(|| SpecError {
                            msg: format!(
                                "line {}: expected `key = value` before first section",
                                lineno + 1
                            ),
                        })?;
                        spec.props.insert(k.trim().to_owned(), v.trim().to_owned());
                    }
                }
            }
        }
        if let Some(s) = current.take() {
            spec.sections.push(s);
        }
        Ok(spec)
    }

    /// All sections of a given kind.
    pub fn sections_of<'a>(&'a self, kind: &str) -> impl Iterator<Item = &'a Section> + 'a {
        let kind = kind.to_owned();
        self.sections.iter().filter(move |s| s.kind() == kind)
    }

    /// The single section of a kind; error if absent or duplicated.
    pub fn unique_section(&self, kind: &str) -> Result<&Section, SpecError> {
        let mut it = self.sections_of(kind);
        let first = it.next().ok_or_else(|| SpecError {
            msg: format!("missing required section [{kind}]"),
        })?;
        if it.next().is_some() {
            return Err(SpecError {
                msg: format!("duplicate section [{kind}]"),
            });
        }
        Ok(first)
    }

    /// A required top-level property.
    pub fn require(&self, key: &str) -> Result<&str, SpecError> {
        self.props
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| SpecError {
                msg: format!("missing required property `{key}`"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# CM-RID for site A
ris = relational
site = A            # trailing comment

[interface notify]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s

[command write salary2(n)]
update employees set salary = $b where empid = $n

[options]
poll = 60s
retry = 3
"#;

    #[test]
    fn parses_props_and_sections() {
        let spec = SpecFile::parse(SAMPLE).unwrap();
        assert_eq!(
            spec.props.get("ris").map(String::as_str),
            Some("relational")
        );
        assert_eq!(spec.require("site").unwrap(), "A");
        assert_eq!(spec.sections.len(), 3);
        let cmd = spec.sections_of("command").next().unwrap();
        assert_eq!(cmd.args(), ["write".to_string(), "salary2(n)".to_string()]);
        assert_eq!(cmd.lines.len(), 1);
        assert!(cmd.lines[0].starts_with("update employees"));
    }

    #[test]
    fn pairs_helper() {
        let spec = SpecFile::parse(SAMPLE).unwrap();
        let opts = spec.unique_section("options").unwrap().as_pairs().unwrap();
        assert_eq!(opts.get("poll").map(String::as_str), Some("60s"));
        assert_eq!(opts.get("retry").map(String::as_str), Some("3"));
    }

    #[test]
    fn unique_section_errors() {
        let spec = SpecFile::parse("[a]\nx = 1\n[a]\ny = 2\n").unwrap();
        assert!(spec.unique_section("a").is_err());
        assert!(spec.unique_section("zzz").is_err());
    }

    #[test]
    fn require_missing_prop() {
        let spec = SpecFile::parse("").unwrap();
        assert!(spec.require("site").is_err());
    }

    #[test]
    fn syntax_errors() {
        assert!(SpecFile::parse("[oops\nx=1").is_err());
        assert!(SpecFile::parse("stray line without equals").is_err());
        assert!(SpecFile::parse("[]").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec = SpecFile::parse("# only comments\n\n  \n").unwrap();
        assert!(spec.props.is_empty());
        assert!(spec.sections.is_empty());
    }

    #[test]
    fn body_lines_keep_interior_content() {
        let spec = SpecFile::parse("[sql]\nselect * from t where a = \"x\"\n").unwrap();
        assert_eq!(spec.sections[0].lines[0], "select * from t where a = \"x\"");
        // as_pairs on a non-kv section errors cleanly.
        let s = SpecFile::parse("[x]\nno equals here\n").unwrap();
        assert!(s.sections[0].as_pairs().is_err());
    }
}
