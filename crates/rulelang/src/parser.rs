//! Recursive-descent parser for interface statements, strategy rules,
//! conditions, and guarantee formulas.

use crate::ast::{
    CmpOp, Cond, Expr, GAtom, Guarantee, InterfaceStmt, RhsStep, StrategyRule, TimeExpr,
};
use crate::token::{lex, Tok};
use hcm_core::{ItemPattern, SimDuration, SimTime, TemplateDesc, Term, Value};
use std::fmt;

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description, including approximate token position.
    pub msg: String,
}

impl ParseError {
    fn new(msg: impl Into<String>) -> Self {
        ParseError { msg: msg.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let toks = lex(src).map_err(|e| ParseError::new(e.to_string()))?;
        Ok(Parser { toks, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected `{t}` at token {} (found {})",
                self.pos,
                self.peek()
                    .map_or("end of input".to_string(), |x| format!("`{x}`"))
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected keyword `{kw}` at token {}",
                self.pos
            )))
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "unexpected trailing input starting at token {} (`{}`)",
                self.pos,
                self.peek().expect("not at end")
            )))
        }
    }

    // ---- literals and terms -------------------------------------------------

    fn literal_from_ident(name: &str) -> Option<Value> {
        match name {
            "true" => Some(Value::Bool(true)),
            "false" => Some(Value::Bool(false)),
            "null" => Some(Value::Null),
            _ => None,
        }
    }

    /// `term := IDENT | literal | '*' | '-' number`
    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Star) => Ok(Term::Wild),
            Some(Tok::Int(i)) => Ok(Term::Const(Value::Int(i))),
            Some(Tok::Float(x)) => Ok(Term::Const(Value::Float(x))),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::Str(s))),
            Some(Tok::Minus) => match self.next() {
                Some(Tok::Int(i)) => Ok(Term::Const(Value::Int(-i))),
                Some(Tok::Float(x)) => Ok(Term::Const(Value::Float(-x))),
                _ => Err(ParseError::new("expected number after unary `-` in term")),
            },
            Some(Tok::Ident(name)) => {
                if let Some(v) = Self::literal_from_ident(&name) {
                    Ok(Term::Const(v))
                } else {
                    Ok(Term::Var(name))
                }
            }
            other => Err(ParseError::new(format!("expected term, found {other:?}"))),
        }
    }

    /// `item := IDENT [ '(' term (',' term)* ')' ]` — caller has already
    /// consumed the base identifier.
    fn finish_item(&mut self, base: String) -> Result<ItemPattern, ParseError> {
        let mut params = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                params.push(self.parse_term()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(ItemPattern {
            base: base.into(),
            params,
        })
    }

    fn parse_item(&mut self) -> Result<ItemPattern, ParseError> {
        match self.next() {
            Some(Tok::Ident(base)) => self.finish_item(base),
            other => Err(ParseError::new(format!(
                "expected data-item name, found {other:?}"
            ))),
        }
    }

    // ---- event templates ----------------------------------------------------

    /// `template := 'false' | KIND '(' … ')'`
    fn parse_template(&mut self) -> Result<TemplateDesc, ParseError> {
        let name = match self.next() {
            Some(Tok::Ident(n)) => n,
            other => {
                return Err(ParseError::new(format!(
                    "expected event template, found {other:?}"
                )))
            }
        };
        if name == "false" {
            return Ok(TemplateDesc::False);
        }
        self.expect(&Tok::LParen)?;
        let out = match name.as_str() {
            "Ws" => {
                let item = self.parse_item()?;
                self.expect(&Tok::Comma)?;
                let first = self.parse_term()?;
                if self.eat(&Tok::Comma) {
                    let new = self.parse_term()?;
                    TemplateDesc::Ws {
                        item,
                        old: Some(first),
                        new,
                    }
                } else {
                    TemplateDesc::Ws {
                        item,
                        old: None,
                        new: first,
                    }
                }
            }
            "W" => {
                let item = self.parse_item()?;
                self.expect(&Tok::Comma)?;
                let value = self.parse_term()?;
                TemplateDesc::W { item, value }
            }
            "WR" => {
                let item = self.parse_item()?;
                self.expect(&Tok::Comma)?;
                let value = self.parse_term()?;
                TemplateDesc::Wr { item, value }
            }
            "RR" => TemplateDesc::Rr {
                item: self.parse_item()?,
            },
            "R" => {
                let item = self.parse_item()?;
                self.expect(&Tok::Comma)?;
                let value = self.parse_term()?;
                TemplateDesc::R { item, value }
            }
            "N" => {
                let item = self.parse_item()?;
                self.expect(&Tok::Comma)?;
                let value = self.parse_term()?;
                TemplateDesc::N { item, value }
            }
            "P" => {
                let period = match self.peek() {
                    Some(Tok::Duration(d)) => {
                        let t = Term::Const(Value::Int(d.as_millis() as i64));
                        self.pos += 1;
                        t
                    }
                    _ => self.parse_term()?,
                };
                TemplateDesc::P { period }
            }
            _ => {
                // Custom descriptor.
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(self.parse_term()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                return Ok(TemplateDesc::Custom { name, args });
            }
        };
        self.expect(&Tok::RParen)?;
        Ok(out)
    }

    // ---- expressions and conditions ------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_muldiv()?;
        loop {
            if self.eat(&Tok::Plus) {
                let rhs = self.parse_muldiv()?;
                lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Minus) {
                let rhs = self.parse_muldiv()?;
                lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_muldiv(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            if self.eat(&Tok::Star) {
                let rhs = self.parse_unary()?;
                lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Tok::Slash) {
                let rhs = self.parse_unary()?;
                lhs = Expr::Div(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            // Fold negative literals so `-1` round-trips as a constant.
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Lit(Value::Int(i)) => Expr::Lit(Value::Int(-i)),
                Expr::Lit(Value::Float(x)) => Expr::Lit(Value::Float(-x)),
                other => Expr::Neg(Box::new(other)),
            });
        }
        if self.eat_keyword("abs") {
            self.expect(&Tok::LParen)?;
            let e = self.parse_expr()?;
            self.expect(&Tok::RParen)?;
            return Ok(Expr::Abs(Box::new(e)));
        }
        match self.next() {
            Some(Tok::Int(i)) => Ok(Expr::Lit(Value::Int(i))),
            Some(Tok::Float(x)) => Ok(Expr::Lit(Value::Float(x))),
            Some(Tok::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if let Some(v) = Self::literal_from_ident(&name) {
                    return Ok(Expr::Lit(v));
                }
                // `name(...)` is always a (parameterized) data item;
                // bare names follow the paper's case convention.
                if self.peek() == Some(&Tok::LParen) {
                    return Ok(Expr::Item(self.finish_item(name)?));
                }
                if name.chars().next().is_some_and(char::is_uppercase) {
                    Ok(Expr::Item(ItemPattern::plain(name)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError::new(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn parse_cond(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.parse_cond_and()?;
        while self.eat_keyword("or") {
            let rhs = self.parse_cond_and()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cond_and(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.parse_cond_not()?;
        while self.eat_keyword("and") {
            let rhs = self.parse_cond_not()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cond_not(&mut self) -> Result<Cond, ParseError> {
        if self.eat_keyword("not") {
            return Ok(Cond::Not(Box::new(self.parse_cond_not()?)));
        }
        self.parse_cond_primary()
    }

    fn parse_cond_primary(&mut self) -> Result<Cond, ParseError> {
        if self.eat_keyword("exists") {
            self.expect(&Tok::LParen)?;
            let item = self.parse_item()?;
            self.expect(&Tok::RParen)?;
            return Ok(Cond::Exists(item));
        }
        // `(` may open a nested condition or a parenthesized arithmetic
        // expression; try the condition reading first and backtrack.
        if self.peek() == Some(&Tok::LParen) {
            let checkpoint = self.pos;
            self.pos += 1;
            if let Ok(c) = self.parse_cond() {
                if self.eat(&Tok::RParen) {
                    return Ok(c);
                }
            }
            self.pos = checkpoint;
        }
        let lhs = self.parse_expr()?;
        let op = self.parse_cmp_op()?;
        let rhs = self.parse_expr()?;
        Ok(Cond::Cmp(lhs, op, rhs))
    }

    fn parse_cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            other => {
                return Err(ParseError::new(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        self.pos += 1;
        Ok(op)
    }

    // ---- rule forms -----------------------------------------------------------

    fn parse_within(&mut self) -> Result<SimDuration, ParseError> {
        self.expect_keyword("within")?;
        match self.next() {
            Some(Tok::Duration(d)) => Ok(d),
            other => Err(ParseError::new(format!(
                "expected duration (e.g. `5s`, `300ms`) after `within`, found {other:?}"
            ))),
        }
    }

    fn parse_interface_stmt(&mut self) -> Result<InterfaceStmt, ParseError> {
        let lhs = self.parse_template()?;
        let cond = if self.eat_keyword("when") {
            self.parse_cond()?
        } else {
            Cond::True
        };
        self.expect(&Tok::Arrow)?;
        let rhs = self.parse_template()?;
        let bound = if rhs == TemplateDesc::False {
            SimDuration::ZERO
        } else {
            self.parse_within()?
        };
        self.expect_end()?;
        Ok(InterfaceStmt {
            lhs,
            cond,
            rhs,
            bound,
        })
    }

    fn parse_strategy(&mut self) -> Result<StrategyRule, ParseError> {
        let lhs = self.parse_template()?;
        let cond = if self.eat_keyword("when") {
            self.parse_cond()?
        } else {
            Cond::True
        };
        self.expect(&Tok::Arrow)?;
        let mut steps = Vec::new();
        loop {
            let step_cond = if self.eat_keyword("if") {
                let c = self.parse_cond()?;
                self.expect_keyword("then")?;
                c
            } else {
                Cond::True
            };
            let event = self.parse_template()?;
            steps.push(RhsStep {
                cond: step_cond,
                event,
            });
            if !self.eat(&Tok::Semi) {
                break;
            }
        }
        let bound = self.parse_within()?;
        self.expect_end()?;
        Ok(StrategyRule {
            lhs,
            cond,
            steps,
            bound,
        })
    }

    // ---- guarantees -------------------------------------------------------------

    fn parse_time_expr(&mut self) -> Result<TimeExpr, ParseError> {
        match self.next() {
            Some(Tok::Duration(d)) => Ok(TimeExpr::Const(SimTime::from_millis(d.as_millis()))),
            Some(Tok::Ident(v)) => {
                if self.eat(&Tok::Plus) {
                    match self.next() {
                        Some(Tok::Duration(d)) => Ok(TimeExpr::Offset(v, d.as_millis() as i64)),
                        other => Err(ParseError::new(format!(
                            "expected duration after `+` in time expression, found {other:?}"
                        ))),
                    }
                } else if self.eat(&Tok::Minus) {
                    match self.next() {
                        Some(Tok::Duration(d)) => Ok(TimeExpr::Offset(v, -(d.as_millis() as i64))),
                        other => Err(ParseError::new(format!(
                            "expected duration after `-` in time expression, found {other:?}"
                        ))),
                    }
                } else {
                    Ok(TimeExpr::Var(v))
                }
            }
            other => Err(ParseError::new(format!(
                "expected time expression, found {other:?}"
            ))),
        }
    }

    fn parse_gatom(&mut self) -> Result<GAtom, ParseError> {
        // Condition-anchored atoms start with `(` or `exists`; anything
        // else is a time comparison.
        let cond = if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            let c = self.parse_cond()?;
            self.expect(&Tok::RParen)?;
            Some(c)
        } else if self.eat_keyword("exists") {
            self.expect(&Tok::LParen)?;
            let item = self.parse_item()?;
            self.expect(&Tok::RParen)?;
            Some(Cond::Exists(item))
        } else {
            None
        };
        match cond {
            Some(c) => match self.next() {
                Some(Tok::At) => Ok(GAtom::At(c, self.parse_time_expr()?)),
                Some(Tok::AtAll) => {
                    self.expect(&Tok::LBracket)?;
                    let a = self.parse_time_expr()?;
                    self.expect(&Tok::Comma)?;
                    let b = self.parse_time_expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(GAtom::Throughout(c, a, b))
                }
                Some(Tok::AtSome) => {
                    self.expect(&Tok::LBracket)?;
                    let a = self.parse_time_expr()?;
                    self.expect(&Tok::Comma)?;
                    let b = self.parse_time_expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(GAtom::Sometime(c, a, b))
                }
                other => Err(ParseError::new(format!(
                    "expected `@`, `@@` or `@?` after condition, found {other:?}"
                ))),
            },
            None => {
                let a = self.parse_time_expr()?;
                let op = self.parse_cmp_op()?;
                let b = self.parse_time_expr()?;
                Ok(GAtom::TimeCmp(a, op, b))
            }
        }
    }

    fn parse_gatoms(&mut self) -> Result<Vec<GAtom>, ParseError> {
        let mut atoms = vec![self.parse_gatom()?];
        while self.eat_keyword("and") {
            atoms.push(self.parse_gatom()?);
        }
        Ok(atoms)
    }

    fn parse_guarantee_body(&mut self, name: &str) -> Result<Guarantee, ParseError> {
        let first = self.parse_gatoms()?;
        let g = if self.eat(&Tok::Implies) {
            let rhs = self.parse_gatoms()?;
            Guarantee {
                name: name.to_owned(),
                lhs: first,
                rhs,
            }
        } else {
            Guarantee {
                name: name.to_owned(),
                lhs: Vec::new(),
                rhs: first,
            }
        };
        self.expect_end()?;
        Ok(g)
    }
}

/// Parse a single event template, e.g. `N(salary1(n), b)`.
pub fn parse_template(src: &str) -> Result<TemplateDesc, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.parse_template()?;
    p.expect_end()?;
    Ok(t)
}

/// Parse a condition, e.g. `abs(b - a) > 0.1 * a`.
pub fn parse_cond(src: &str) -> Result<Cond, ParseError> {
    let mut p = Parser::new(src)?;
    let c = p.parse_cond()?;
    p.expect_end()?;
    Ok(c)
}

/// Parse an interface statement, e.g. `WR(X, b) -> W(X, b) within 1s`.
pub fn parse_interface(src: &str) -> Result<InterfaceStmt, ParseError> {
    Parser::new(src)?.parse_interface_stmt()
}

/// Parse a strategy rule, e.g.
/// `N(X, b) -> if Cx != b then WR(Y, b) ; W(Cx, b) within 5s`.
pub fn parse_strategy_rule(src: &str) -> Result<StrategyRule, ParseError> {
    Parser::new(src)?.parse_strategy()
}

/// Parse a guarantee formula, e.g.
/// `(Y = y) @ t1 => (X = y) @ t2 and t2 < t1`.
pub fn parse_guarantee(name: &str, src: &str) -> Result<Guarantee, ParseError> {
    Parser::new(src)?.parse_guarantee_body(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_write_interface() {
        let s = parse_interface("WR(X, b) -> W(X, b) within 1s").unwrap();
        assert_eq!(s.bound, SimDuration::from_secs(1));
        assert_eq!(s.cond, Cond::True);
        assert!(matches!(s.lhs, TemplateDesc::Wr { .. }));
        assert!(matches!(s.rhs, TemplateDesc::W { .. }));
    }

    #[test]
    fn parses_no_spontaneous_write() {
        let s = parse_interface("Ws(X, b) -> false").unwrap();
        assert_eq!(s.rhs, TemplateDesc::False);
        assert_eq!(s.bound, SimDuration::ZERO);
    }

    #[test]
    fn parses_conditional_notify() {
        let s =
            parse_interface("Ws(X, a, b) when abs(b - a) > 0.1 * a -> N(X, b) within 2s").unwrap();
        match &s.lhs {
            TemplateDesc::Ws {
                old: Some(Term::Var(o)),
                new: Term::Var(n),
                ..
            } => {
                assert_eq!(o, "a");
                assert_eq!(n, "b");
            }
            other => panic!("unexpected lhs {other:?}"),
        }
        assert!(matches!(s.cond, Cond::Cmp(..)));
    }

    #[test]
    fn parses_periodic_notify() {
        let s = parse_interface("P(300s) when X = b -> N(X, b) within 500ms").unwrap();
        match &s.lhs {
            TemplateDesc::P {
                period: Term::Const(Value::Int(ms)),
            } => assert_eq!(*ms, 300_000),
            other => panic!("unexpected lhs {other:?}"),
        }
        assert_eq!(s.bound, SimDuration::from_millis(500));
    }

    #[test]
    fn parses_read_interface() {
        let s = parse_interface("RR(X) when X = b -> R(X, b) within 1s").unwrap();
        assert!(matches!(s.lhs, TemplateDesc::Rr { .. }));
        assert!(matches!(s.rhs, TemplateDesc::R { .. }));
    }

    #[test]
    fn parses_parameterized_strategy() {
        let r = parse_strategy_rule("N(salary1(n), b) -> WR(salary2(n), b) within 5s").unwrap();
        assert_eq!(r.steps.len(), 1);
        assert_eq!(r.bound, SimDuration::from_secs(5));
        assert_eq!(
            r.to_string(),
            "N(salary1(n), b) -> WR(salary2(n), b) within 5.000s"
        );
    }

    #[test]
    fn parses_sequenced_rhs_with_step_conditions() {
        let r = parse_strategy_rule("N(X, b) -> if Cx != b then WR(Y, b) ; W(Cx, b) within 5s")
            .unwrap();
        assert_eq!(r.steps.len(), 2);
        assert!(matches!(r.steps[0].cond, Cond::Cmp(..)));
        assert_eq!(r.steps[1].cond, Cond::True);
        assert!(matches!(r.steps[1].event, TemplateDesc::W { .. }));
    }

    #[test]
    fn parses_lhs_condition_on_strategy() {
        let r = parse_strategy_rule("N(X, b) when b > 100 -> WR(Y, b) within 1s").unwrap();
        assert!(matches!(r.cond, Cond::Cmp(..)));
    }

    #[test]
    fn parses_custom_template() {
        let t = parse_template("LimitReq(amt, \"from_x\")").unwrap();
        match t {
            TemplateDesc::Custom { name, args } => {
                assert_eq!(name, "LimitReq");
                assert_eq!(args.len(), 2);
                assert_eq!(args[1], Term::Const(Value::Str("from_x".into())));
            }
            other => panic!("unexpected {other:?}"),
        }
        let t0 = parse_template("Reset()").unwrap();
        assert!(matches!(t0, TemplateDesc::Custom { ref args, .. } if args.is_empty()));
    }

    #[test]
    fn parses_guarantee_y_follows_x() {
        let g = parse_guarantee("g1", "(Y = y) @ t1 => (X = y) @ t2 and t2 < t1").unwrap();
        assert_eq!(g.lhs.len(), 1);
        assert_eq!(g.rhs.len(), 2);
        assert!(matches!(g.rhs[1], GAtom::TimeCmp(..)));
    }

    #[test]
    fn parses_metric_guarantee() {
        let g = parse_guarantee(
            "g4",
            "(Y = y) @ t1 => (X = y) @ t2 and t1 - 30s < t2 and t2 < t1",
        )
        .unwrap();
        match &g.rhs[1] {
            GAtom::TimeCmp(TimeExpr::Offset(v, off), CmpOp::Lt, TimeExpr::Var(w)) => {
                assert_eq!(v, "t1");
                assert_eq!(*off, -30_000);
                assert_eq!(w, "t2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_monitor_guarantee() {
        let g = parse_guarantee(
            "monitor",
            "(Flag = true and Tb = s) @ t => (X = Y) @@ [s, t - 10s]",
        )
        .unwrap();
        assert!(matches!(g.rhs[0], GAtom::Throughout(..)));
    }

    #[test]
    fn parses_refint_guarantee() {
        let g = parse_guarantee(
            "refint",
            "exists(project(i)) @ t => exists(salary(i)) @? [t, t + 86400s]",
        )
        .unwrap();
        assert!(matches!(g.lhs[0], GAtom::At(Cond::Exists(_), _)));
        assert!(matches!(g.rhs[0], GAtom::Sometime(Cond::Exists(_), _, _)));
    }

    #[test]
    fn parses_unconditional_guarantee() {
        let g = parse_guarantee("inv", "(X <= Y) @ t").unwrap();
        assert!(g.lhs.is_empty());
        assert_eq!(g.rhs.len(), 1);
    }

    #[test]
    fn parses_strictly_follows() {
        let g = parse_guarantee(
            "g3",
            "(Y = y1) @ t1 and (Y = y2) @ t2 and t1 < t2 => \
             (X = y1) @ t3 and (X = y2) @ t4 and t3 < t4",
        )
        .unwrap();
        assert_eq!(g.lhs.len(), 3);
        assert_eq!(g.rhs.len(), 3);
    }

    #[test]
    fn condition_paren_backtracking() {
        // Parenthesized arithmetic, not a nested condition.
        let c = parse_cond("(b - a) > 5").unwrap();
        assert!(matches!(c, Cond::Cmp(Expr::Sub(..), CmpOp::Gt, _)));
        // Nested condition with or.
        let c2 = parse_cond("(X = 1 or Y = 2) and not Z = 3").unwrap();
        assert!(matches!(c2, Cond::And(..)));
    }

    #[test]
    fn case_convention() {
        let c = parse_cond("Cx != b").unwrap();
        match c {
            Cond::Cmp(Expr::Item(item), CmpOp::Ne, Expr::Var(v)) => {
                assert_eq!(item.base, "Cx");
                assert_eq!(v, "b");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Parenthesized application is an item regardless of case.
        let c2 = parse_cond("salary1(n) = b").unwrap();
        assert!(matches!(c2, Cond::Cmp(Expr::Item(_), _, _)));
    }

    #[test]
    fn error_cases() {
        assert!(parse_interface("WR(X, b) -> W(X, b)").is_err()); // missing within
        assert!(parse_interface("WR(X, b) W(X, b) within 1s").is_err()); // missing arrow
        assert!(parse_strategy_rule("-> WR(Y, b) within 1s").is_err());
        assert!(parse_guarantee("g", "(X = 1)").is_err()); // missing @
        assert!(parse_template("N(X)").is_err()); // N needs a value
        assert!(parse_cond("X =").is_err());
        assert!(parse_interface("WR(X, b) -> W(X, b) within 1s extra").is_err());
    }

    #[test]
    fn negative_constants_in_terms() {
        let t = parse_template("N(X, -5)").unwrap();
        match t {
            TemplateDesc::N {
                value: Term::Const(Value::Int(v)),
                ..
            } => assert_eq!(v, -5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trip_display_reparse() {
        let srcs = [
            "WR(X, b) -> W(X, b) within 1s",
            "Ws(X, b) -> false",
            "RR(X) when X = b -> R(X, b) within 1s",
        ];
        for s in srcs {
            let a = parse_interface(s).unwrap();
            let b = parse_interface(&a.to_string()).unwrap();
            assert_eq!(a, b, "round trip failed for {s}");
        }
    }
}
