//! AST and evaluation for the rule language.
//!
//! Conditions (`C` in `E₁ ∧ C →δ E₂`) are evaluated against a
//! [`CondEnv`]: rule-parameter bindings come from the matching
//! interpretation of the LHS event, and data-item reads come from
//! whatever local state the evaluating component can see — "the
//! condition `C` can refer to data at the site of the right-hand side
//! event only" (§3.2).

use hcm_core::{Bindings, ItemId, ItemPattern, SimDuration, SimTime, TemplateDesc, Value};
use std::fmt;

/// Comparison operators of the condition and guarantee languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to two values; `None` when incomparable.
    #[must_use]
    pub fn apply(self, a: &Value, b: &Value) -> Option<bool> {
        match self {
            CmpOp::Eq => Some(a == b),
            CmpOp::Ne => Some(a != b),
            _ => {
                let ord = a.compare(b)?;
                Some(match self {
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                    CmpOp::Eq | CmpOp::Ne => unreachable!(),
                })
            }
        }
    }

    /// Apply to two time points.
    #[must_use]
    pub fn apply_time(self, a: SimTime, b: SimTime) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A value-level expression in a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A (possibly parameterized) local data item, e.g. `Cx` or
    /// `salary1(n)`.
    Item(ItemPattern),
    /// A rule parameter bound by the matching interpretation.
    Var(String),
    /// A literal.
    Lit(Value),
    /// Unary negation.
    Neg(Box<Expr>),
    /// `abs(e)`.
    Abs(Box<Expr>),
    /// `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`.
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// `a / b`.
    Div(Box<Expr>, Box<Expr>),
}

/// Where conditions get their inputs: parameter bindings and local
/// data-item state.
pub trait CondEnv {
    /// The value of a local data item, `None` if unknown/unreadable.
    fn item(&self, item: &ItemId) -> Option<Value>;
    /// The value of a rule parameter, `None` if unbound.
    fn var(&self, name: &str) -> Option<Value>;
}

/// A [`CondEnv`] over a [`Bindings`] plus a state-lookup closure —
/// the common case in the CM-Shell.
pub struct BindingsEnv<'a, F: Fn(&ItemId) -> Option<Value>> {
    /// Parameter bindings from the matching interpretation.
    pub bindings: &'a Bindings,
    /// Local state lookup.
    pub lookup: F,
}

impl<F: Fn(&ItemId) -> Option<Value>> CondEnv for BindingsEnv<'_, F> {
    fn item(&self, item: &ItemId) -> Option<Value> {
        (self.lookup)(item)
    }
    fn var(&self, name: &str) -> Option<Value> {
        self.bindings.get(name).cloned()
    }
}

impl Expr {
    /// Evaluate the expression; `None` when some input is missing or an
    /// operation is undefined (non-numeric arithmetic, division by
    /// zero). A condition whose expression fails evaluates to false —
    /// conservative for enforcement.
    pub fn eval(&self, env: &dyn CondEnv) -> Option<Value> {
        match self {
            Expr::Lit(v) => Some(v.clone()),
            Expr::Var(name) => env.var(name),
            Expr::Item(pat) => {
                // Parameter terms inside the item pattern resolve
                // through the same environment.
                let mut params = Vec::with_capacity(pat.params.len());
                for t in &pat.params {
                    let v = match t {
                        hcm_core::Term::Const(c) => c.clone(),
                        hcm_core::Term::Var(n) => env.var(n)?,
                        hcm_core::Term::Wild => return None,
                    };
                    params.push(v);
                }
                env.item(&ItemId {
                    base: pat.base,
                    params,
                })
            }
            Expr::Neg(e) => Value::Int(0).sub(&e.eval(env)?),
            Expr::Abs(e) => e.eval(env)?.abs(),
            Expr::Add(a, b) => a.eval(env)?.add(&b.eval(env)?),
            Expr::Sub(a, b) => a.eval(env)?.sub(&b.eval(env)?),
            Expr::Mul(a, b) => a.eval(env)?.mul(&b.eval(env)?),
            Expr::Div(a, b) => {
                let bv = b.eval(env)?.as_f64()?;
                if bv == 0.0 {
                    None
                } else {
                    Some(Value::Float(a.eval(env)?.as_f64()? / bv))
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Item(p) => write!(f, "{p}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::Abs(e) => write!(f, "abs({e})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// A boolean condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Always true (omitted condition).
    True,
    /// Comparison between two expressions.
    Cmp(Expr, CmpOp, Expr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
    /// The paper's exists-predicate `E(X)` (§6.2): the item is present
    /// (non-null) in its database.
    Exists(ItemPattern),
}

impl Cond {
    /// Evaluate under `env`. Missing inputs make comparisons false (not
    /// errors): an unreadable item cannot justify firing a rule.
    pub fn eval(&self, env: &dyn CondEnv) -> bool {
        match self {
            Cond::True => true,
            Cond::Cmp(a, op, b) => match (a.eval(env), b.eval(env)) {
                (Some(va), Some(vb)) => op.apply(&va, &vb).unwrap_or(false),
                _ => false,
            },
            Cond::And(a, b) => a.eval(env) && b.eval(env),
            Cond::Or(a, b) => a.eval(env) || b.eval(env),
            Cond::Not(c) => !c.eval(env),
            Cond::Exists(pat) => Expr::Item(pat.clone())
                .eval(env)
                .is_some_and(|v| v.exists()),
        }
    }

    /// Conjoin two conditions, simplifying `True`.
    #[must_use]
    pub fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::True, c) | (c, Cond::True) => c,
            (a, b) => Cond::And(Box::new(a), Box::new(b)),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "true"),
            Cond::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Cond::And(a, b) => write!(f, "{a} and {b}"),
            Cond::Or(a, b) => write!(f, "({a} or {b})"),
            Cond::Not(c) => write!(f, "not ({c})"),
            Cond::Exists(p) => write!(f, "exists({p})"),
        }
    }
}

/// An interface statement `E₁ ∧ C →δ E₂` (§3.1): if an event matching
/// `lhs` occurs at `t` and `cond` holds at `t`, the database guarantees
/// an event matching `rhs` within `[t, t + bound]`.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceStmt {
    /// Triggering event template.
    pub lhs: TemplateDesc,
    /// Condition evaluated when the LHS event occurs (`Cond::True` if
    /// omitted).
    pub cond: Cond,
    /// Promised event template (`TemplateDesc::False` for prohibition
    /// interfaces).
    pub rhs: TemplateDesc,
    /// The time bound δ. Meaningless (zero) when `rhs` is `False`.
    pub bound: SimDuration,
}

impl fmt::Display for InterfaceStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lhs)?;
        if self.cond != Cond::True {
            write!(f, " when {}", self.cond)?;
        }
        write!(f, " -> {}", self.rhs)?;
        if self.rhs != TemplateDesc::False {
            write!(f, " within {}", self.bound)?;
        }
        Ok(())
    }
}

/// One step of a strategy rule's sequenced right-hand side: `Cᵢ?Eᵢ`.
#[derive(Debug, Clone, PartialEq)]
pub struct RhsStep {
    /// Condition evaluated at the step's firing time, at the RHS site
    /// (`Cond::True` if omitted). If false, the step's event does not
    /// occur, but later steps still execute.
    pub cond: Cond,
    /// The event to generate.
    pub event: TemplateDesc,
}

/// A strategy rule `E₀ ∧ C₀ →δ C₁?E₁; …; Cₖ?Eₖ` (§3.2, Appendix A.1).
/// All RHS events are at the same site (the paper's footnote 7); steps
/// execute in order within the bound.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyRule {
    /// Triggering event template.
    pub lhs: TemplateDesc,
    /// LHS condition, evaluated at the trigger's site and time.
    pub cond: Cond,
    /// Sequenced right-hand side.
    pub steps: Vec<RhsStep>,
    /// The overall bound δ for completing all steps.
    pub bound: SimDuration,
}

impl fmt::Display for StrategyRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lhs)?;
        if self.cond != Cond::True {
            write!(f, " when {}", self.cond)?;
        }
        write!(f, " -> ")?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            if s.cond != Cond::True {
                write!(f, "if {} then {}", s.cond, s.event)?;
            } else {
                write!(f, "{}", s.event)?;
            }
        }
        write!(f, " within {}", self.bound)
    }
}

/// A time expression in a guarantee: a variable, an absolute constant,
/// or a variable offset by a constant (`t - 10s`).
#[derive(Debug, Clone, PartialEq)]
pub enum TimeExpr {
    /// A universally/existentially quantified time variable.
    Var(String),
    /// An absolute instant.
    Const(SimTime),
    /// `var + offset_ms` (offset may be negative).
    Offset(String, i64),
}

impl TimeExpr {
    /// Resolve under an assignment of time variables.
    #[must_use]
    pub fn resolve(&self, lookup: &dyn Fn(&str) -> Option<SimTime>) -> Option<SimTime> {
        match self {
            TimeExpr::Const(t) => Some(*t),
            TimeExpr::Var(v) => lookup(v),
            TimeExpr::Offset(v, off) => {
                let base = lookup(v)?.as_millis() as i64;
                let ms = base + off;
                (ms >= 0).then(|| SimTime::from_millis(ms as u64))
            }
        }
    }

    /// Time variables mentioned.
    #[must_use]
    pub fn vars(&self) -> Vec<&str> {
        match self {
            TimeExpr::Const(_) => vec![],
            TimeExpr::Var(v) | TimeExpr::Offset(v, _) => vec![v.as_str()],
        }
    }
}

impl fmt::Display for TimeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeExpr::Var(v) => write!(f, "{v}"),
            TimeExpr::Const(t) => write!(f, "{}ms", t.as_millis()),
            TimeExpr::Offset(v, off) => {
                if *off >= 0 {
                    write!(f, "{v} + {off}ms")
                } else {
                    write!(f, "{v} - {}ms", -off)
                }
            }
        }
    }
}

/// An atomic guarantee clause.
#[derive(Debug, Clone, PartialEq)]
pub enum GAtom {
    /// `(cond) @ t` — the state condition holds at instant `t`.
    At(Cond, TimeExpr),
    /// `(cond) @@ [a, b]` — holds at *every* instant of `[a, b]`
    /// (the paper's `@@` in the §6.3 monitor guarantee).
    Throughout(Cond, TimeExpr, TimeExpr),
    /// `(cond) @? [a, b]` — holds at *some* instant of `[a, b]`
    /// (the §6.2 "within 24 hours" referential-integrity form).
    Sometime(Cond, TimeExpr, TimeExpr),
    /// Comparison between time expressions, e.g. `t2 < t1`.
    TimeCmp(TimeExpr, CmpOp, TimeExpr),
}

impl GAtom {
    /// Time variables mentioned by this atom.
    #[must_use]
    pub fn time_vars(&self) -> Vec<&str> {
        match self {
            GAtom::At(_, t) => t.vars(),
            GAtom::Throughout(_, a, b) | GAtom::Sometime(_, a, b) => {
                let mut v = a.vars();
                v.extend(b.vars());
                v
            }
            GAtom::TimeCmp(a, _, b) => {
                let mut v = a.vars();
                v.extend(b.vars());
                v
            }
        }
    }
}

impl fmt::Display for GAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GAtom::At(c, t) => write!(f, "({c}) @ {t}"),
            GAtom::Throughout(c, a, b) => write!(f, "({c}) @@ [{a}, {b}]"),
            GAtom::Sometime(c, a, b) => write!(f, "({c}) @? [{a}, {b}]"),
            GAtom::TimeCmp(a, op, b) => write!(f, "{a} {op} {b}"),
        }
    }
}

/// A guarantee `LHS ⇒ RHS` (§3.3): variables on the left of `⇒` are
/// universally quantified, those appearing only on the right are
/// existentially quantified. An empty LHS means the RHS must hold
/// unconditionally.
#[derive(Debug, Clone, PartialEq)]
pub struct Guarantee {
    /// Name used in reports.
    pub name: String,
    /// Antecedent atoms (conjoined).
    pub lhs: Vec<GAtom>,
    /// Consequent atoms (conjoined).
    pub rhs: Vec<GAtom>,
}

impl fmt::Display for Guarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, a) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{a}")?;
        }
        if !self.lhs.is_empty() {
            write!(f, " => ")?;
        }
        for (i, a) in self.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::Term;

    fn env(pairs: &[(&str, Value)], items: &[(&str, Value)]) -> impl CondEnv {
        struct E {
            vars: Vec<(String, Value)>,
            items: Vec<(String, Value)>,
        }
        impl CondEnv for E {
            fn item(&self, item: &ItemId) -> Option<Value> {
                self.items
                    .iter()
                    .find(|(n, _)| *n == item.to_string())
                    .map(|(_, v)| v.clone())
            }
            fn var(&self, name: &str) -> Option<Value> {
                self.vars
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| v.clone())
            }
        }
        E {
            vars: pairs
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
            items: items
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        }
    }

    #[test]
    fn expr_arithmetic() {
        let e = Expr::Add(
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Mul(
                Box::new(Expr::Lit(Value::Int(2))),
                Box::new(Expr::Var("b".into())),
            )),
        );
        let env = env(&[("a", Value::Int(1)), ("b", Value::Int(3))], &[]);
        assert_eq!(e.eval(&env), Some(Value::Int(7)));
    }

    #[test]
    fn expr_abs_neg_div() {
        let env = env(&[("a", Value::Int(-4))], &[]);
        assert_eq!(
            Expr::Abs(Box::new(Expr::Var("a".into()))).eval(&env),
            Some(Value::Int(4))
        );
        assert_eq!(
            Expr::Neg(Box::new(Expr::Var("a".into()))).eval(&env),
            Some(Value::Int(4))
        );
        assert_eq!(
            Expr::Div(
                Box::new(Expr::Lit(Value::Int(1))),
                Box::new(Expr::Lit(Value::Int(0)))
            )
            .eval(&env),
            None
        );
    }

    #[test]
    fn item_lookup_with_params() {
        let pat = ItemPattern::with("salary1", [Term::var("n")]);
        let env = env(
            &[("n", Value::from("e1"))],
            &[("salary1(\"e1\")", Value::Int(90))],
        );
        assert_eq!(Expr::Item(pat).eval(&env), Some(Value::Int(90)));
    }

    #[test]
    fn cond_eval_basics() {
        let env = env(&[("b", Value::Int(5))], &[("Cx", Value::Int(4))]);
        let c = Cond::Cmp(
            Expr::Item(ItemPattern::plain("Cx")),
            CmpOp::Ne,
            Expr::Var("b".into()),
        );
        assert!(c.eval(&env));
        let c_eq = Cond::Cmp(
            Expr::Item(ItemPattern::plain("Cx")),
            CmpOp::Eq,
            Expr::Lit(Value::Int(4)),
        );
        assert!(c_eq.eval(&env));
        assert!(!Cond::Not(Box::new(Cond::True)).eval(&env));
        assert!(Cond::True.and(c_eq.clone()) == c_eq);
    }

    #[test]
    fn missing_inputs_make_comparisons_false() {
        let env = env(&[], &[]);
        let c = Cond::Cmp(Expr::Var("zz".into()), CmpOp::Eq, Expr::Lit(Value::Int(1)));
        assert!(!c.eval(&env));
        // …and Not flips that, by design: Not(unknown=1) is true.
        assert!(Cond::Not(Box::new(c)).eval(&env));
    }

    #[test]
    fn exists_predicate() {
        let env = env(&[], &[("P", Value::Int(1)), ("Q", Value::Null)]);
        assert!(Cond::Exists(ItemPattern::plain("P")).eval(&env));
        assert!(!Cond::Exists(ItemPattern::plain("Q")).eval(&env));
        assert!(!Cond::Exists(ItemPattern::plain("R")).eval(&env));
    }

    #[test]
    fn cmp_op_apply() {
        assert_eq!(CmpOp::Le.apply(&Value::Int(2), &Value::Int(2)), Some(true));
        assert_eq!(
            CmpOp::Gt.apply(&Value::Str("b".into()), &Value::Str("a".into())),
            Some(true)
        );
        assert_eq!(
            CmpOp::Lt.apply(&Value::Str("b".into()), &Value::Int(1)),
            None
        );
        assert_eq!(CmpOp::Ne.apply(&Value::Int(1), &Value::Int(2)), Some(true));
        assert!(CmpOp::Lt.apply_time(SimTime::from_secs(1), SimTime::from_secs(2)));
    }

    #[test]
    fn time_expr_resolution() {
        let lookup = |n: &str| (n == "t").then(|| SimTime::from_secs(100));
        assert_eq!(
            TimeExpr::Var("t".into()).resolve(&lookup),
            Some(SimTime::from_secs(100))
        );
        assert_eq!(
            TimeExpr::Offset("t".into(), -10_000).resolve(&lookup),
            Some(SimTime::from_secs(90))
        );
        assert_eq!(
            TimeExpr::Offset("t".into(), 5_000).resolve(&lookup),
            Some(SimTime::from_secs(105))
        );
        // Negative absolute time: unresolvable.
        let early = |_: &str| Some(SimTime::from_secs(1));
        assert_eq!(TimeExpr::Offset("t".into(), -10_000).resolve(&early), None);
        assert_eq!(TimeExpr::Var("u".into()).resolve(&lookup), None);
        assert_eq!(
            TimeExpr::Const(SimTime::from_secs(5)).resolve(&lookup),
            Some(SimTime::from_secs(5))
        );
    }

    #[test]
    fn displays() {
        let stmt = InterfaceStmt {
            lhs: TemplateDesc::Wr {
                item: ItemPattern::plain("X"),
                value: Term::var("b"),
            },
            cond: Cond::True,
            rhs: TemplateDesc::W {
                item: ItemPattern::plain("X"),
                value: Term::var("b"),
            },
            bound: SimDuration::from_secs(1),
        };
        assert_eq!(stmt.to_string(), "WR(X, b) -> W(X, b) within 1.000s");
        let g = Guarantee {
            name: "y_follows_x".into(),
            lhs: vec![GAtom::At(
                Cond::Cmp(
                    Expr::Item(ItemPattern::plain("Y")),
                    CmpOp::Eq,
                    Expr::Var("y".into()),
                ),
                TimeExpr::Var("t1".into()),
            )],
            rhs: vec![
                GAtom::At(
                    Cond::Cmp(
                        Expr::Item(ItemPattern::plain("X")),
                        CmpOp::Eq,
                        Expr::Var("y".into()),
                    ),
                    TimeExpr::Var("t2".into()),
                ),
                GAtom::TimeCmp(
                    TimeExpr::Var("t2".into()),
                    CmpOp::Lt,
                    TimeExpr::Var("t1".into()),
                ),
            ],
        };
        assert_eq!(
            g.to_string(),
            "y_follows_x: (Y = y) @ t1 => (X = y) @ t2 and t2 < t1"
        );
    }

    #[test]
    fn gatom_time_vars() {
        let a = GAtom::Throughout(
            Cond::True,
            TimeExpr::Var("s".into()),
            TimeExpr::Offset("t".into(), -5),
        );
        assert_eq!(a.time_vars(), vec!["s", "t"]);
    }
}
