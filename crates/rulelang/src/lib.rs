//! # hcm-rulelang — the paper's rule language, concretely
//!
//! Section 3 and Appendix A of the paper define a rule-based notation
//! for three kinds of specification. This crate gives that notation a
//! concrete ASCII syntax, an AST, a parser, and an evaluator for the
//! condition sub-language:
//!
//! * **Interface statements** `E₁ ∧ C →δ E₂` —
//!   ```text
//!   WR(X, b) -> W(X, b) within 1s
//!   Ws(X, b) -> false
//!   Ws(X, a, b) when abs(b - a) > 0.1 * a -> N(X, b) within 2s
//!   P(300s) when X = b -> N(X, b) within 500ms
//!   ```
//! * **Strategy rules** `E₀ ∧ C₀ →δ C₁?E₁; …; Cₖ?Eₖ` with the paper's
//!   *sequenced* right-hand side (Appendix A.1) —
//!   ```text
//!   N(X, b) -> if Cx != b then WR(Y, b) ; W(Cx, b) within 5s
//!   ```
//! * **Guarantees** — metric and non-metric temporal formulas —
//!   ```text
//!   (Y = y) @ t1 => (X = y) @ t2 and t2 < t1
//!   (Flag = true and Tb = s) @ t => (X = Y) @@ [s, t - 10s]
//!   exists(project(i)) @ t => exists(salary(i)) @? [t, t + 86400s]
//!   ```
//!
//! Following the paper's convention (§3.1.1), identifiers in conditions
//! starting with an **upper-case letter denote local data items** and
//! those starting with a lower-case letter denote **rule parameters**;
//! any identifier applied to parentheses (`salary1(n)`) is a
//! parameterized data item.
//!
//! The [`specfile`] module implements the toolkit's two bespoke file
//! formats, the *CM-RID* and the *Strategy Specification* of §4.1.

#![warn(missing_docs)]

pub mod ast;
pub mod parser;
pub mod specfile;
pub mod token;

pub use ast::{
    CmpOp, Cond, CondEnv, Expr, GAtom, Guarantee, InterfaceStmt, RhsStep, StrategyRule, TimeExpr,
};
pub use parser::{
    parse_cond, parse_guarantee, parse_interface, parse_strategy_rule, parse_template, ParseError,
};
pub use specfile::{Section, SpecFile};
