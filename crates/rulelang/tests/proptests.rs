//! Property-based tests for the rule language: printed forms of
//! generated ASTs re-parse to the same AST (display/parse round trip),
//! and the lexer never panics on arbitrary input.

use hcm_core::{ItemPattern, SimDuration, TemplateDesc, Term, Value};
use hcm_rulelang::{
    parse_interface, parse_strategy_rule, Cond, CmpOp, Expr, InterfaceStmt, RhsStep, StrategyRule,
};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Lower-case start: rule variables / parameterized item bases.
    "[a-z][a-z0-9]{0,6}".prop_map(|s| s)
}

fn arb_item_base() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,6}".prop_map(|s| s)
}

fn arb_const() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-10_000i64..10_000).prop_map(Value::Int),
        "[a-z]{1,6}".prop_map(Value::from),
        Just(Value::Bool(true)),
        Just(Value::Null),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_ident().prop_map(Term::Var),
        arb_const().prop_map(Term::Const),
        Just(Term::Wild),
    ]
}

fn arb_item_pattern() -> impl Strategy<Value = ItemPattern> {
    (arb_item_base(), prop::collection::vec(arb_term(), 0..3))
        .prop_map(|(base, params)| ItemPattern { base, params })
}

fn arb_duration() -> impl Strategy<Value = SimDuration> {
    (1u64..100_000).prop_map(SimDuration::from_millis)
}

fn arb_template() -> impl Strategy<Value = TemplateDesc> {
    prop_oneof![
        (arb_item_pattern(), arb_term()).prop_map(|(item, value)| TemplateDesc::N { item, value }),
        (arb_item_pattern(), arb_term())
            .prop_map(|(item, value)| TemplateDesc::Wr { item, value }),
        (arb_item_pattern(), arb_term()).prop_map(|(item, value)| TemplateDesc::W { item, value }),
        arb_item_pattern().prop_map(|item| TemplateDesc::Rr { item }),
        (arb_item_pattern(), proptest::option::of(arb_term()), arb_term())
            .prop_map(|(item, old, new)| TemplateDesc::Ws { item, old, new }),
        (1i64..1_000_000).prop_map(|ms| TemplateDesc::P {
            period: Term::Const(Value::Int(ms))
        }),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_simple_cond() -> impl Strategy<Value = Cond> {
    // A conjunction of comparisons between items/vars/ints — the shape
    // real interface conditions take.
    let operand = prop_oneof![
        arb_item_pattern().prop_map(Expr::Item),
        arb_ident().prop_map(Expr::Var),
        (-10_000i64..10_000).prop_map(|i| Expr::Lit(Value::Int(i))),
    ];
    prop::collection::vec((operand.clone(), arb_cmp(), operand), 1..3).prop_map(|cmps| {
        cmps.into_iter()
            .map(|(a, op, b)| Cond::Cmp(a, op, b))
            .reduce(|acc, c| Cond::And(Box::new(acc), Box::new(c)))
            .expect("non-empty")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → parse is the identity on interface statements.
    #[test]
    fn interface_roundtrip(
        lhs in arb_template(),
        cond in proptest::option::of(arb_simple_cond()),
        rhs in arb_template(),
        bound in arb_duration(),
    ) {
        let stmt = InterfaceStmt {
            lhs,
            cond: cond.unwrap_or(Cond::True),
            rhs,
            bound,
        };
        let printed = stmt.to_string();
        let reparsed = parse_interface(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(stmt, reparsed, "round trip through `{}`", printed);
    }

    /// Display → parse is the identity on strategy rules with sequenced
    /// right-hand sides.
    #[test]
    fn strategy_roundtrip(
        lhs in arb_template(),
        cond in proptest::option::of(arb_simple_cond()),
        steps in prop::collection::vec(
            (proptest::option::of(arb_simple_cond()), arb_template()),
            1..4
        ),
        bound in arb_duration(),
    ) {
        let rule = StrategyRule {
            lhs,
            cond: cond.unwrap_or(Cond::True),
            steps: steps
                .into_iter()
                .map(|(c, event)| RhsStep { cond: c.unwrap_or(Cond::True), event })
                .collect(),
            bound,
        };
        let printed = rule.to_string();
        let reparsed = parse_strategy_rule(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(rule, reparsed, "round trip through `{}`", printed);
    }

    /// The lexer and parsers never panic on arbitrary input (errors are
    /// returned, not thrown).
    #[test]
    fn parser_total_on_garbage(src in "\\PC{0,60}") {
        let _ = parse_interface(&src);
        let _ = parse_strategy_rule(&src);
        let _ = hcm_rulelang::parse_cond(&src);
        let _ = hcm_rulelang::parse_template(&src);
        let _ = hcm_rulelang::parse_guarantee("g", &src);
        let _ = hcm_rulelang::SpecFile::parse(&src);
    }
}
