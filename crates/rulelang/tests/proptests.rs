//! Randomized tests for the rule language: printed forms of generated
//! ASTs re-parse to the same AST (display/parse round trip), and the
//! parsers never panic on arbitrary input.
//!
//! Formerly proptest-based; now driven by a local SplitMix64 generator
//! so the suite needs no external crates and stays deterministic.

use hcm_core::{ItemPattern, SimDuration, TemplateDesc, Term, Value};
use hcm_rulelang::{
    parse_interface, parse_strategy_rule, CmpOp, Cond, Expr, InterfaceStmt, RhsStep, StrategyRule,
};

/// Minimal deterministic generator (SplitMix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo) as u64 + 1;
        lo + (self.next() % span) as i64
    }
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.int_in(lo as i64, hi as i64) as usize
    }

    /// Lower-case start identifier: rule variables / parameterized item
    /// bases. `[a-z][a-z0-9]{0,6}`.
    fn ident(&mut self) -> String {
        let mut s = String::new();
        s.push((b'a' + (self.next() % 26) as u8) as char);
        for _ in 0..self.usize_in(0, 6) {
            let c = self.next() % 36;
            s.push(if c < 26 {
                (b'a' + c as u8) as char
            } else {
                (b'0' + (c - 26) as u8) as char
            });
        }
        s
    }

    /// Item base: `[A-Z][a-z0-9]{0,6}`.
    fn item_base(&mut self) -> String {
        let mut s = String::new();
        s.push((b'A' + (self.next() % 26) as u8) as char);
        for _ in 0..self.usize_in(0, 6) {
            let c = self.next() % 36;
            s.push(if c < 26 {
                (b'a' + c as u8) as char
            } else {
                (b'0' + (c - 26) as u8) as char
            });
        }
        s
    }

    fn lc_string(&mut self, lo: usize, hi: usize) -> String {
        let n = self.usize_in(lo, hi);
        (0..n)
            .map(|_| (b'a' + (self.next() % 26) as u8) as char)
            .collect()
    }

    fn constant(&mut self) -> Value {
        match self.next() % 4 {
            0 => Value::Int(self.int_in(-10_000, 9_999)),
            1 => Value::from(self.lc_string(1, 6)),
            2 => Value::Bool(true),
            _ => Value::Null,
        }
    }

    fn term(&mut self) -> Term {
        match self.next() % 3 {
            0 => Term::Var(self.ident()),
            1 => Term::Const(self.constant()),
            _ => Term::Wild,
        }
    }

    fn item_pattern(&mut self) -> ItemPattern {
        let base = self.item_base();
        let params = (0..self.usize_in(0, 2)).map(|_| self.term()).collect();
        ItemPattern {
            base: base.into(),
            params,
        }
    }

    fn duration(&mut self) -> SimDuration {
        SimDuration::from_millis(self.int_in(1, 99_999) as u64)
    }

    fn template(&mut self) -> TemplateDesc {
        match self.next() % 6 {
            0 => TemplateDesc::N {
                item: self.item_pattern(),
                value: self.term(),
            },
            1 => TemplateDesc::Wr {
                item: self.item_pattern(),
                value: self.term(),
            },
            2 => TemplateDesc::W {
                item: self.item_pattern(),
                value: self.term(),
            },
            3 => TemplateDesc::Rr {
                item: self.item_pattern(),
            },
            4 => {
                let old = if self.next().is_multiple_of(2) {
                    Some(self.term())
                } else {
                    None
                };
                TemplateDesc::Ws {
                    item: self.item_pattern(),
                    old,
                    new: self.term(),
                }
            }
            _ => TemplateDesc::P {
                period: Term::Const(Value::Int(self.int_in(1, 999_999))),
            },
        }
    }

    fn cmp(&mut self) -> CmpOp {
        match self.next() % 6 {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        }
    }

    fn operand(&mut self) -> Expr {
        match self.next() % 3 {
            0 => Expr::Item(self.item_pattern()),
            1 => Expr::Var(self.ident()),
            _ => Expr::Lit(Value::Int(self.int_in(-10_000, 9_999))),
        }
    }

    /// A conjunction of comparisons between items/vars/ints — the shape
    /// real interface conditions take.
    fn simple_cond(&mut self) -> Cond {
        (0..self.usize_in(1, 2))
            .map(|_| {
                let a = self.operand();
                let op = self.cmp();
                let b = self.operand();
                Cond::Cmp(a, op, b)
            })
            .reduce(|acc, c| Cond::And(Box::new(acc), Box::new(c)))
            .expect("non-empty")
    }

    fn maybe_cond(&mut self) -> Cond {
        if self.next().is_multiple_of(2) {
            self.simple_cond()
        } else {
            Cond::True
        }
    }

    /// Arbitrary printable-ish garbage (ASCII plus some multibyte).
    fn garbage(&mut self, max_len: usize) -> String {
        let n = self.usize_in(0, max_len);
        (0..n)
            .map(|_| match self.next() % 8 {
                0..=5 => char::from_u32(0x20 + (self.next() % 0x5f) as u32).unwrap(),
                6 => char::from_u32(0xA1 + (self.next() % 0x100) as u32).unwrap_or('¿'),
                _ => ['→', 'δ', 'κ', '∧', '∨', '…'][(self.next() % 6) as usize],
            })
            .collect()
    }
}

/// Display → parse is the identity on interface statements.
#[test]
fn interface_roundtrip() {
    let mut g = Gen::new(0x51DE_0001);
    for case in 0..500 {
        let stmt = InterfaceStmt {
            lhs: g.template(),
            cond: g.maybe_cond(),
            rhs: g.template(),
            bound: g.duration(),
        };
        let printed = stmt.to_string();
        let reparsed = parse_interface(&printed)
            .unwrap_or_else(|e| panic!("case {case}: reparse of `{printed}` failed: {e}"));
        assert_eq!(
            stmt, reparsed,
            "case {case}: round trip through `{printed}`"
        );
    }
}

/// Display → parse is the identity on strategy rules with sequenced
/// right-hand sides.
#[test]
fn strategy_roundtrip() {
    let mut g = Gen::new(0x51DE_0002);
    for case in 0..500 {
        let rule = StrategyRule {
            lhs: g.template(),
            cond: g.maybe_cond(),
            steps: (0..g.usize_in(1, 3))
                .map(|_| RhsStep {
                    cond: g.maybe_cond(),
                    event: g.template(),
                })
                .collect(),
            bound: g.duration(),
        };
        let printed = rule.to_string();
        let reparsed = parse_strategy_rule(&printed)
            .unwrap_or_else(|e| panic!("case {case}: reparse of `{printed}` failed: {e}"));
        assert_eq!(
            rule, reparsed,
            "case {case}: round trip through `{printed}`"
        );
    }
}

/// The lexer and parsers never panic on arbitrary input (errors are
/// returned, not thrown).
#[test]
fn parser_total_on_garbage() {
    let mut g = Gen::new(0x51DE_0003);
    for _ in 0..1000 {
        let src = g.garbage(60);
        let _ = parse_interface(&src);
        let _ = parse_strategy_rule(&src);
        let _ = hcm_rulelang::parse_cond(&src);
        let _ = hcm_rulelang::parse_template(&src);
        let _ = hcm_rulelang::parse_guarantee("g", &src);
        let _ = hcm_rulelang::SpecFile::parse(&src);
    }
}
