//! Randomized-but-deterministic tests for the simulation substrate:
//! per-channel FIFO delivery under arbitrary jitter, and bit-for-bit
//! determinism of whole runs.
//!
//! Formerly proptest-based; now driven by seeded [`SimRng`] loops so
//! the suite needs no external crates and every failure reproduces
//! from its printed seed.

use hcm_core::Shared;
use hcm_core::{SimDuration, SimTime};
use hcm_simkit::{Actor, ActorId, Ctx, DelayModel, Network, Sim, SimRng};

type Log = Shared<Vec<(SimTime, u32, u64)>>;

/// Sender: emits `n` sequenced messages to the receiver at given times.
struct Sender {
    to: ActorId,
}

/// Receiver: records (arrival time, sender, sequence number).
struct Receiver {
    log: Log,
}

#[derive(Clone, Debug)]
enum Msg {
    Emit { seq: u64 },
    Deliver { from: u32, seq: u64 },
}

impl Actor<Msg> for Sender {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Emit { seq } = msg {
            let from = ctx.me().0;
            ctx.send(self.to, Msg::Deliver { from, seq });
        }
    }
}

impl Actor<Msg> for Receiver {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Deliver { from, seq } = msg {
            self.log.borrow_mut().push((ctx.now(), from, seq));
        }
    }
}

fn run(seed: u64, jitter_ms: u64, emissions: &[(u8, u16)]) -> Vec<(SimTime, u32, u64)> {
    let net = Network::new(DelayModel {
        base: SimDuration::from_millis(5),
        jitter: SimDuration::from_millis(jitter_ms),
    });
    let mut sim: Sim<Msg> = Sim::with_network(seed, net);
    let log: Log = Shared::new(Vec::new());
    let receiver = sim.add_actor(Box::new(Receiver { log: log.clone() }));
    let s1 = sim.add_actor(Box::new(Sender { to: receiver }));
    let s2 = sim.add_actor(Box::new(Sender { to: receiver }));
    for (i, (which, at)) in emissions.iter().enumerate() {
        let to = if *which % 2 == 0 { s1 } else { s2 };
        sim.inject_at(
            SimTime::from_millis(u64::from(*at)),
            to,
            Msg::Emit { seq: i as u64 },
        );
    }
    sim.run_to_quiescence();
    let out = log.borrow().clone();
    out
}

/// One random case: a seed, a jitter, and a sorted emission schedule.
fn random_case(gen: &mut SimRng, max_emissions: i64) -> (u64, u64, Vec<(u8, u16)>) {
    let seed = gen.int_in(0, 999) as u64;
    let jitter = gen.int_in(0, 4999) as u64;
    let n = gen.int_in(1, max_emissions);
    let mut emissions: Vec<(u8, u16)> = (0..n)
        .map(|_| (gen.int_in(0, 1) as u8, gen.int_in(0, 1999) as u16))
        .collect();
    emissions.sort_by_key(|(_, at)| *at);
    (seed, jitter, emissions)
}

/// Messages on one (sender, receiver) channel are delivered in the
/// order they were sent, for any jitter.
#[test]
fn per_channel_fifo() {
    let mut gen = SimRng::seeded(0xF1F0);
    for case in 0..60 {
        let (seed, jitter, emissions) = random_case(&mut gen, 40);
        let log = run(seed, jitter, &emissions);
        assert_eq!(log.len(), emissions.len(), "case {case}: lost messages");
        // Per sender, sequence numbers arrive in increasing order.
        for sender in [1u32, 2] {
            let seqs: Vec<u64> = log
                .iter()
                .filter(|(_, s, _)| *s == sender)
                .map(|(_, _, q)| *q)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted, "case {case}: sender {sender} reordered");
        }
        // Arrival times are nondecreasing in delivery order.
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: time went backwards");
        }
    }
}

/// Whole runs are bit-for-bit deterministic per seed.
#[test]
fn runs_are_deterministic() {
    let mut gen = SimRng::seeded(0xDE7E);
    for case in 0..40 {
        let (seed, jitter, emissions) = random_case(&mut gen, 30);
        let a = run(seed, jitter, &emissions);
        let b = run(seed, jitter, &emissions);
        assert_eq!(a, b, "case {case}: same seed diverged");
    }
}
