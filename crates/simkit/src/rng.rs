//! Seeded randomness for workloads and network jitter.
//!
//! All stochastic behaviour in an experiment — spontaneous-update
//! arrival times, value choices, network jitter — flows through one
//! [`SimRng`] owned by the simulation, so a `(scenario, seed)` pair
//! fully determines the trace.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna)
//! seeded through SplitMix64, so the stream is identical on every
//! platform and build — no external crates, no global state, no
//! OS entropy.

use hcm_core::SimDuration;

/// SplitMix64 step — used only to expand the one-word seed into the
/// generator's 256-bit state (the seeding procedure the xoshiro
/// authors recommend).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic random source: xoshiro256++ with the handful of
/// distributions the experiments need.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Construct from a seed. The same seed always produces the same
    /// stream.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Construct stream `stream` of the family keyed by `master` — the
    /// per-actor RNG streams of a simulation. Each actor draws from its
    /// own stream, so draw order is independent of how actor
    /// executions interleave (the property the sharded executor needs),
    /// while the whole family is still fully determined by one seed.
    #[must_use]
    pub fn derived(master: u64, stream: u64) -> Self {
        let mut sm = master ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        // One splitmix step decorrelates adjacent stream indexes before
        // the normal seeding expansion.
        SimRng::seeded(splitmix64(&mut sm))
    }

    /// The raw 64-bit generator step.
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "int_in: empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        // Lemire's multiply-shift: maps the 64-bit draw onto the span
        // with bias < 2⁻⁶⁴ per value — irrelevant at simulation scale.
        let scaled = (u128::from(self.next_u64()) * span) >> 64;
        (lo as i128 + scaled as i128) as i64
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform duration in `[lo, hi]` (inclusive, millisecond
    /// granularity). Used for network jitter.
    pub fn duration_in(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        let ms = self.int_in(lo.as_millis() as i64, hi.as_millis() as i64);
        SimDuration::from_millis(ms as u64)
    }

    /// Exponentially distributed duration with the given mean —
    /// inter-arrival times of a Poisson update workload. Clamped to at
    /// least 1 ms so events always advance the clock.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        // 1 − unit() is in (0, 1], so the log is finite.
        let u = 1.0 - self.unit();
        let ms = (-u.ln() * mean.as_millis() as f64).round() as u64;
        SimDuration::from_millis(ms.max(1))
    }

    /// Choose an element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.int_in(0, xs.len() as i64 - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.int_in(0, 1000), b.int_in(0, 1000));
        }
    }

    #[test]
    fn different_seed_diverges() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let va: Vec<i64> = (0..20).map(|_| a.int_in(0, 1_000_000)).collect();
        let vb: Vec<i64> = (0..20).map(|_| b.int_in(0, 1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SimRng::seeded(7);
        for _ in 0..1000 {
            let v = r.int_in(-5, 5);
            assert!((-5..=5).contains(&v));
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let d = r.duration_in(SimDuration::from_millis(10), SimDuration::from_millis(20));
            assert!(d >= SimDuration::from_millis(10) && d <= SimDuration::from_millis(20));
        }
    }

    #[test]
    fn exp_duration_positive_and_mean_close() {
        let mut r = SimRng::seeded(9);
        let mean = SimDuration::from_secs(10);
        let n = 5000;
        let total: u64 = (0..n).map(|_| r.exp_duration(mean).as_millis()).sum();
        let avg = total as f64 / n as f64;
        // Within 10% of the nominal mean for this sample size.
        assert!((avg - 10_000.0).abs() < 1_000.0, "avg={avg}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn choose_in_bounds() {
        let mut r = SimRng::seeded(5);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }

    #[test]
    fn stream_is_stable_across_builds() {
        // Pin the concrete stream: a change here silently reshuffles
        // every seeded experiment in the repo.
        let mut r = SimRng::seeded(2024);
        let draws: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = SimRng::seeded(2024);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(draws, again);
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }
}
