//! Seeded randomness for workloads and network jitter.
//!
//! All stochastic behaviour in an experiment — spontaneous-update
//! arrival times, value choices, network jitter — flows through one
//! [`SimRng`] owned by the simulation, so a `(scenario, seed)` pair
//! fully determines the trace.

use hcm_core::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random source. A thin wrapper over [`StdRng`] with the
/// handful of distributions the experiments need.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Construct from a seed. The same seed always produces the same
    /// stream.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SimRng { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// Uniform duration in `[lo, hi]` (inclusive, millisecond
    /// granularity). Used for network jitter.
    pub fn duration_in(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        let ms = self.rng.gen_range(lo.as_millis()..=hi.as_millis());
        SimDuration::from_millis(ms)
    }

    /// Exponentially distributed duration with the given mean —
    /// inter-arrival times of a Poisson update workload. Clamped to at
    /// least 1 ms so events always advance the clock.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let ms = (-u.ln() * mean.as_millis() as f64).round() as u64;
        SimDuration::from_millis(ms.max(1))
    }

    /// Choose an element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.rng.gen_range(0..xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.int_in(0, 1000), b.int_in(0, 1000));
        }
    }

    #[test]
    fn different_seed_diverges() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let va: Vec<i64> = (0..20).map(|_| a.int_in(0, 1_000_000)).collect();
        let vb: Vec<i64> = (0..20).map(|_| b.int_in(0, 1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SimRng::seeded(7);
        for _ in 0..1000 {
            let v = r.int_in(-5, 5);
            assert!((-5..=5).contains(&v));
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            let d = r.duration_in(SimDuration::from_millis(10), SimDuration::from_millis(20));
            assert!(d >= SimDuration::from_millis(10) && d <= SimDuration::from_millis(20));
        }
    }

    #[test]
    fn exp_duration_positive_and_mean_close() {
        let mut r = SimRng::seeded(9);
        let mean = SimDuration::from_secs(10);
        let n = 5000;
        let total: u64 = (0..n).map(|_| r.exp_duration(mean).as_millis()).sum();
        let avg = total as f64 / n as f64;
        // Within 10% of the nominal mean for this sample size.
        assert!((avg - 10_000.0).abs() < 1_000.0, "avg={avg}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn choose_in_bounds() {
        let mut r = SimRng::seeded(5);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }
}
