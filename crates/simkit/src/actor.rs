//! Actors and the per-delivery context.
//!
//! Every simulated component — CM-Shells, CM-Translators, workload
//! generators, protocol coordinators — is an [`Actor`]. Actors interact
//! only through messages; the simulation delivers each message at its
//! scheduled virtual time, giving the actor a [`Ctx`] through which it
//! can read the clock, send further messages, schedule timers on
//! itself, and draw randomness.

use crate::net::SendKind;
use crate::rng::SimRng;
use hcm_core::{SimDuration, SimTime};
use std::fmt;

/// Identifier of an actor within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// Distinguished sender id for messages injected from outside the
    /// simulation (workload drivers, test harnesses). No registered
    /// actor ever gets this id, so attribution can tell external
    /// traffic from actor-to-actor sends instead of blaming the
    /// recipient for its own workload.
    pub const EXTERNAL: ActorId = ActorId(u32::MAX);
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor{}", self.0)
    }
}

/// A simulated component.
///
/// `M` is the scenario's message type (an enum in practice). Handlers
/// must not block; long-running behaviour is expressed by scheduling
/// future messages to oneself.
pub trait Actor<M> {
    /// Handle one delivered message at the current virtual time.
    fn on_message(&mut self, msg: M, ctx: &mut Ctx<'_, M>);

    /// Called once when the simulation starts, before any message is
    /// delivered. Default: nothing. Use it to arm initial timers.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when the simulation crashes this actor. `lossy` mirrors
    /// the crash control: a lossy crash destroys in-flight messages
    /// *and*, for durable-state actors, their volatile state — the
    /// hook is where such an actor wipes itself. Sends made from this
    /// hook are discarded (the actor is already down). Default:
    /// nothing.
    fn on_crash(&mut self, lossy: bool, ctx: &mut Ctx<'_, M>) {
        let _ = (lossy, ctx);
    }

    /// Called when the simulation recovers this actor, *before* any
    /// held message is redelivered. A durable-state actor reloads its
    /// checkpoint + log here and re-arms its timers. Default: nothing.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }
}

/// Context handed to an actor for the duration of one delivery.
///
/// Sends are *collected* and enqueued by the simulation after the
/// handler returns, in call order, preserving determinism and FIFO
/// channel semantics.
pub struct Ctx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) me: ActorId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) outbox: &'a mut Vec<(ActorId, M, SendKind)>,
    pub(crate) halted: &'a mut bool,
}

impl<M> Ctx<'_, M> {
    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    #[must_use]
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// The simulation's random source.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Send a message over the network: it arrives after the channel's
    /// delay model (plus jitter), in FIFO order with respect to earlier
    /// sends on the same (sender, receiver) channel, and subject to the
    /// receiver's failure status.
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.outbox.push((to, msg, SendKind::Network));
    }

    /// Deliver a message to `to` after exactly `delay`, bypassing the
    /// network's delay model but still subject to the receiver's
    /// failure status. Used for intra-site interactions (shell ↔
    /// translator on the same machine) where the paper assumes
    /// negligible, bounded local cost.
    pub fn send_local(&mut self, to: ActorId, msg: M, delay: SimDuration) {
        self.outbox.push((to, msg, SendKind::Local(delay)));
    }

    /// Schedule a message to oneself after `delay` — a timer. Timers
    /// fire even while the actor is overloaded (an overloaded database
    /// still runs; it is merely slow), but not while it is crashed.
    pub fn schedule_self(&mut self, delay: SimDuration, msg: M) {
        self.outbox.push((self.me, msg, SendKind::Timer(delay)));
    }

    /// Ask the simulation to stop after this handler returns. Used by
    /// scenario drivers when their stop condition is met.
    pub fn halt(&mut self) {
        *self.halted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_id_display() {
        assert_eq!(ActorId(4).to_string(), "actor4");
    }

    #[test]
    fn ctx_collects_sends_in_order() {
        let mut rng = SimRng::seeded(1);
        let mut outbox = Vec::new();
        let mut halted = false;
        let mut ctx: Ctx<'_, &str> = Ctx {
            now: SimTime::from_secs(5),
            me: ActorId(1),
            rng: &mut rng,
            outbox: &mut outbox,
            halted: &mut halted,
        };
        assert_eq!(ctx.now(), SimTime::from_secs(5));
        assert_eq!(ctx.me(), ActorId(1));
        ctx.send(ActorId(2), "a");
        ctx.send_local(ActorId(3), "b", SimDuration::from_millis(10));
        ctx.schedule_self(SimDuration::from_secs(1), "tick");
        ctx.halt();
        assert!(halted);
        assert_eq!(outbox.len(), 3);
        assert_eq!(outbox[0].0, ActorId(2));
        assert!(matches!(outbox[1].2, SendKind::Local(d) if d == SimDuration::from_millis(10)));
        assert!(matches!(outbox[2].2, SendKind::Timer(_)));
        assert_eq!(outbox[2].0, ActorId(1));
    }
}
