//! Deterministic sharded execution: conservative parallel DES.
//!
//! [`run_sharded`] partitions the simulation's actors across worker
//! threads according to [`crate::sim::Sim::set_shard_map`] and runs
//! them in **lock-step epochs** bounded by the network's global
//! lookahead `L = Network::min_network_delay()`:
//!
//! 1. the coordinator computes the earliest pending event time `T`
//!    across all shards and opens the window `[T, T + L)`;
//! 2. every worker processes *its own* queue entries with `at < T + L`
//!    in key order — any message it sends to a co-located actor lands
//!    back in its own queue, while sends to remote actors are buffered;
//! 3. at the epoch barrier the buffered cross-shard messages are
//!    exchanged and the next window opens.
//!
//! Conservativeness: a network send submitted at `u ≥ T` arrives no
//! earlier than `u + L ≥ T + L` (jitter, overload extras and the FIFO
//! clamp only add delay), so no cross-shard message can land inside
//! the window that produced it — each worker always has every entry
//! of its window before the window opens.
//!
//! Determinism (byte-identity with serial mode) rests on four pieces:
//!
//! * **Key-order dispatch.** Serial pop order equals the total order on
//!   `(time, src, seq, minor)` keys; each worker processes its entries
//!   in that same key order, and entries of different shards commute
//!   because they touch disjoint actors.
//! * **Per-actor RNG streams.** Every actor draws from its own
//!   [`SimRng`] stream (also used for the jitter of its outgoing
//!   sends), so draw sequences do not depend on the interleave.
//! * **Sender-owned channel state.** The FIFO clamp and traffic counts
//!   of channel `(a, b)` are only ever advanced by `a`'s shard, in
//!   `a`'s dispatch order — exactly the serial update sequence.
//! * **Ambient order keys.** Writes to the shared sinks (trace, span
//!   log, metrics registry) are tagged with the dispatch key through
//!   `hcm_core::ordkey` and stably re-sorted into canonical serial
//!   order when the run finishes.
//!
//! The one signal a worker cannot know locally is a *remote* actor's
//! failure status at send time (overload extras are added at send
//! time). Controls are only schedulable between runs, so each worker
//! gets a pre-computed per-actor **status timeline** and looks up the
//! status a serial run would have observed at its dispatch key.
//!
//! Documented divergences from serial mode (none observable in the
//! trace/metrics/span artifacts of a normal run): [`Ctx::halt`] and
//! the step budget act at epoch granularity, and a cross-shard
//! `SendKind::Local` send with a delay below the lookahead panics —
//! co-locate such actors on one shard instead.

use crate::actor::{Actor, ActorId, Ctx};
use crate::net::{ActorStatus, Network, SendKind};
use crate::rng::SimRng;
use crate::sim::{Control, Entry, RunOutcome, Scheduled, Sim};
use hcm_core::{ordkey, OrderKey, SimTime};
use hcm_obs::{Obs, Scope};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{Receiver, Sender};

/// One pre-scheduled failure-status transition of an actor: the
/// control's `(time, external-seq)` key and the status it installs.
type Transition = (SimTime, u64, ActorStatus);

enum Cmd<M> {
    /// Run the `on_start` hooks of the shard's actors.
    Start,
    /// Process all local entries with `at < window_end`.
    Epoch {
        window_end: SimTime,
        incoming: Vec<Scheduled<M>>,
    },
    /// Tear down and return all owned state.
    Finish,
}

struct Reply<M> {
    outgoing: Vec<Scheduled<M>>,
    next_at: Option<SimTime>,
    steps: u64,
    max_queue: i64,
    max_dispatched: SimTime,
    halted: bool,
}

struct Done<M> {
    actors: Vec<(u32, Box<dyn Actor<M> + Send>)>,
    rngs: Vec<(u32, SimRng)>,
    seqs: Vec<(u32, u64)>,
    net: Network,
    held: Vec<(ActorId, ActorId, M)>,
    remaining: Vec<Scheduled<M>>,
}

enum WMsg<M> {
    Reply(Reply<M>),
    Done(Box<Done<M>>),
}

struct Worker<M> {
    shard: u32,
    shard_of: Vec<u32>,
    /// Full-length actor table; `Some` only for this shard's actors.
    actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
    /// Full-length copies; authoritative only for this shard's actors.
    rngs: Vec<SimRng>,
    send_seqs: Vec<u64>,
    /// Private network copy; authoritative for this shard's actors'
    /// status and for channels whose *sender* lives on this shard.
    net: Network,
    /// Pre-computed status timelines (all actors, from the pre-run
    /// control schedule), for remote-receiver status at send time.
    timelines: Vec<Vec<Transition>>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    held: Vec<(ActorId, ActorId, M)>,
    obs: Obs,
    now: SimTime,
    max_dispatched: SimTime,
    halted: bool,
}

impl<M: Send> Worker<M> {
    fn run(mut self, cmd_rx: Receiver<Cmd<M>>, rep_tx: Sender<WMsg<M>>) {
        while let Ok(cmd) = cmd_rx.recv() {
            match cmd {
                Cmd::Start => {
                    let rep = self.start_phase();
                    let _ = rep_tx.send(WMsg::Reply(rep));
                }
                Cmd::Epoch {
                    window_end,
                    incoming,
                } => {
                    let rep = self.epoch(window_end, incoming);
                    let _ = rep_tx.send(WMsg::Reply(rep));
                }
                Cmd::Finish => {
                    let _ = rep_tx.send(WMsg::Done(Box::new(self.into_done())));
                    return;
                }
            }
        }
    }

    /// The status a serial run would observe for `to` when dispatching
    /// the entry keyed `(d_at, d_src, d_seq, …)`: the latest
    /// pre-scheduled control transition strictly before that key.
    /// Controls sort as `(at, EXTERNAL, seq)`, and EXTERNAL is the
    /// largest sender id, so a control at the same instant precedes the
    /// dispatch only when the dispatch itself is external with a later
    /// sequence number.
    fn remote_status(&self, to: ActorId, d_at: SimTime, d_src: u32, d_seq: u64) -> ActorStatus {
        let tl = &self.timelines[to.0 as usize];
        let idx = tl.partition_point(|&(at, seq, _)| {
            at < d_at || (at == d_at && d_src == ActorId::EXTERNAL.0 && seq < d_seq)
        });
        if idx == 0 {
            // Baseline: the worker's copy of a remote actor's status is
            // never mutated locally, so it still holds the run-start
            // value.
            self.net.status(to)
        } else {
            tl[idx - 1].2
        }
    }

    /// Enqueue an actor's collected sends: delivery times from the
    /// sender's RNG stream and channel state, local targets back into
    /// the shard queue, remote targets into the epoch's outgoing
    /// buffer. `dkey` is the dispatch key of the producing entry (for
    /// timeline lookups); `min_cross` the current window end every
    /// cross-shard arrival must clear.
    fn flush(
        &mut self,
        from: ActorId,
        dkey: (SimTime, u32, u64),
        outbox: Vec<(ActorId, M, SendKind)>,
        min_cross: SimTime,
        outgoing: &mut Vec<Scheduled<M>>,
    ) {
        for (to, msg, kind) in outbox {
            let local = self.shard_of[to.0 as usize] == self.shard;
            let to_status = if local {
                self.net.status(to)
            } else {
                self.remote_status(to, dkey.0, dkey.1, dkey.2)
            };
            let at = self.net.delivery_time_with_status(
                self.now,
                from,
                to,
                kind,
                to_status,
                &mut self.rngs[from.0 as usize],
            );
            // Canonical-order reconstruction requires that every send
            // arrives strictly after the dispatch that produced it:
            // only then is serial pop order identical to the total
            // order on `(time, src, seq, minor)` keys.
            assert!(
                at > self.now,
                "sharded mode requires positive send delays: {from} -> {to} at {at} \
                 was submitted at {now}",
                now = self.now
            );
            if matches!(kind, SendKind::Network) {
                self.obs.metrics.observe(
                    Scope::Channel {
                        from: from.0,
                        to: to.0,
                    },
                    "net.delivery_latency",
                    at.saturating_since(self.now),
                );
            }
            let seq = self.send_seqs[from.0 as usize];
            self.send_seqs[from.0 as usize] += 1;
            let sched = Scheduled {
                at,
                src: from.0,
                seq,
                minor: 0,
                entry: Entry::Deliver { to, from, msg },
            };
            if local {
                self.queue.push(Reverse(sched));
            } else {
                assert!(
                    at >= min_cross,
                    "cross-shard send {from} -> {to} would arrive at {at}, inside the \
                     current epoch (window end {min_cross}); co-locate the actors on one \
                     shard or use a delay of at least the network's minimum delay"
                );
                outgoing.push(sched);
            }
        }
    }

    fn start_phase(&mut self) -> Reply<M> {
        let mut outgoing = Vec::new();
        for i in 0..self.actors.len() {
            if self.shard_of[i] != self.shard {
                continue;
            }
            let id = ActorId(i as u32);
            ordkey::install(OrderKey {
                time: self.now.as_millis(),
                phase: 0,
                src: id.0,
                seq: 0,
                minor: 0,
                sub: 0,
            });
            let mut outbox = Vec::new();
            let mut halted = false;
            {
                let mut ctx = Ctx {
                    now: self.now,
                    me: id,
                    rng: &mut self.rngs[i],
                    outbox: &mut outbox,
                    halted: &mut halted,
                };
                self.actors[i]
                    .as_mut()
                    .expect("own actor present")
                    .on_start(&mut ctx);
            }
            // Start-phase cross-shard sends are exchanged before the
            // first epoch opens, so the window constraint is just
            // "after now".
            self.flush(id, (self.now, id.0, 0), outbox, self.now, &mut outgoing);
            if halted {
                self.halted = true;
            }
        }
        ordkey::clear();
        self.reply(outgoing, 0, 0)
    }

    fn epoch(&mut self, window_end: SimTime, incoming: Vec<Scheduled<M>>) -> Reply<M> {
        for e in incoming {
            self.queue.push(Reverse(e));
        }
        let mut outgoing = Vec::new();
        let mut steps = 0u64;
        let mut max_queue = self.queue.len() as i64;
        while !self.halted {
            match self.queue.peek() {
                Some(Reverse(head)) if head.at < window_end => {}
                _ => break,
            }
            max_queue = max_queue.max(self.queue.len() as i64);
            let Reverse(sched) = self.queue.pop().expect("peeked");
            self.now = sched.at;
            self.max_dispatched = self.max_dispatched.max(sched.at);
            ordkey::install(OrderKey {
                time: sched.at.as_millis(),
                phase: 1,
                src: sched.src,
                seq: sched.seq,
                minor: sched.minor,
                sub: 0,
            });
            let dkey = (sched.at, sched.src, sched.seq);
            match sched.entry {
                Entry::Control(c) => {
                    self.apply_control(c, sched.seq, window_end, &mut outgoing);
                }
                Entry::Deliver { to, from, msg } => {
                    steps += 1;
                    self.obs.metrics.inc(Scope::Global, "sim.dispatches");
                    self.obs.metrics.inc(Scope::Actor(to.0), "sim.dispatches");
                    match self.net.status(to) {
                        ActorStatus::Crashed { lossy: true } => {
                            self.net.count_drop();
                            self.obs
                                .metrics
                                .inc(Scope::Actor(to.0), "sim.dropped_while_crashed");
                        }
                        ActorStatus::Crashed { lossy: false } => {
                            self.held.push((to, from, msg));
                            self.obs
                                .metrics
                                .inc(Scope::Actor(to.0), "sim.held_while_crashed");
                        }
                        _ => {
                            let mut outbox = Vec::new();
                            let mut halted = false;
                            {
                                let mut ctx = Ctx {
                                    now: self.now,
                                    me: to,
                                    rng: &mut self.rngs[to.0 as usize],
                                    outbox: &mut outbox,
                                    halted: &mut halted,
                                };
                                self.actors[to.0 as usize]
                                    .as_mut()
                                    .expect("delivery routed to owning shard")
                                    .on_message(msg, &mut ctx);
                            }
                            self.flush(to, dkey, outbox, window_end, &mut outgoing);
                            if halted {
                                self.halted = true;
                            }
                        }
                    }
                }
            }
        }
        ordkey::clear();
        self.reply(outgoing, steps, max_queue)
    }

    /// Mirror of the serial control application, operating on the
    /// worker's private state (controls are always routed to the shard
    /// owning the actor they manipulate).
    fn apply_control(
        &mut self,
        c: Control,
        ctl_seq: u64,
        window_end: SimTime,
        outgoing: &mut Vec<Scheduled<M>>,
    ) {
        match c {
            Control::Crash { who, lossy } => {
                self.net.set_status(who, ActorStatus::Crashed { lossy });
                self.obs.metrics.record(
                    self.now,
                    Scope::Actor(who.0),
                    "sim.crash",
                    [("lossy", lossy.to_string())],
                );
                let mut discard = Vec::new();
                let mut halted = false;
                let mut ctx = Ctx {
                    now: self.now,
                    me: who,
                    rng: &mut self.rngs[who.0 as usize],
                    outbox: &mut discard,
                    halted: &mut halted,
                };
                self.actors[who.0 as usize]
                    .as_mut()
                    .expect("control routed to owning shard")
                    .on_crash(lossy, &mut ctx);
            }
            Control::Recover { who } => {
                self.net.set_status(who, ActorStatus::Up);
                self.obs.metrics.record(
                    self.now,
                    Scope::Actor(who.0),
                    "sim.recover",
                    std::iter::empty::<(&str, String)>(),
                );
                let mut outbox = Vec::new();
                let mut halted = false;
                {
                    let mut ctx = Ctx {
                        now: self.now,
                        me: who,
                        rng: &mut self.rngs[who.0 as usize],
                        outbox: &mut outbox,
                        halted: &mut halted,
                    };
                    self.actors[who.0 as usize]
                        .as_mut()
                        .expect("control routed to owning shard")
                        .on_recover(&mut ctx);
                }
                self.flush(
                    who,
                    (self.now, ActorId::EXTERNAL.0, ctl_seq),
                    outbox,
                    window_end,
                    outgoing,
                );
                let (replay, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.held)
                    .into_iter()
                    .partition(|(to, ..)| *to == who);
                self.held = keep;
                for (k, (to, from, msg)) in replay.into_iter().enumerate() {
                    self.queue.push(Reverse(Scheduled {
                        at: self.now,
                        src: ActorId::EXTERNAL.0,
                        seq: ctl_seq,
                        minor: k as u32 + 1,
                        entry: Entry::Deliver { to, from, msg },
                    }));
                }
            }
            Control::Overload { who, extra } => {
                self.net.set_status(who, ActorStatus::Overloaded { extra });
                self.obs.metrics.record(
                    self.now,
                    Scope::Actor(who.0),
                    "sim.overload",
                    [("extra_ms", extra.as_millis().to_string())],
                );
            }
            Control::EndOverload { who } => {
                self.net.set_status(who, ActorStatus::Up);
                self.obs.metrics.record(
                    self.now,
                    Scope::Actor(who.0),
                    "sim.end_overload",
                    std::iter::empty::<(&str, String)>(),
                );
            }
        }
    }

    fn reply(&mut self, outgoing: Vec<Scheduled<M>>, steps: u64, max_queue: i64) -> Reply<M> {
        Reply {
            outgoing,
            next_at: self.queue.peek().map(|Reverse(s)| s.at),
            steps,
            max_queue,
            max_dispatched: self.max_dispatched,
            halted: self.halted,
        }
    }

    fn into_done(self) -> Done<M> {
        let shard = self.shard;
        let shard_of = self.shard_of;
        let own = |i: &usize| shard_of[*i] == shard;
        Done {
            actors: self
                .actors
                .into_iter()
                .enumerate()
                .filter_map(|(i, a)| a.map(|a| (i as u32, a)))
                .collect(),
            rngs: self
                .rngs
                .into_iter()
                .enumerate()
                .filter(|(i, _)| own(i))
                .map(|(i, r)| (i as u32, r))
                .collect(),
            seqs: self
                .send_seqs
                .into_iter()
                .enumerate()
                .filter(|(i, _)| own(i))
                .map(|(i, s)| (i as u32, s))
                .collect(),
            net: self.net,
            held: self.held,
            remaining: self.queue.into_iter().map(|Reverse(s)| s).collect(),
        }
    }
}

/// Execute `sim` on one worker thread per shard. See the module docs
/// for the epoch protocol and the determinism argument.
pub(crate) fn run_sharded<M: Send>(sim: &mut Sim<M>, horizon: Option<SimTime>) -> RunOutcome {
    let lookahead = sim.net.min_network_delay();
    let n = sim.shard_count() as usize;
    let actor_count = sim.actors.len();
    let shard_of = sim.shard_of.clone();
    let baseline_dropped = sim.net.total_dropped();

    // Drain the pre-scheduled queue, derive the status timelines from
    // its controls, and route every entry to its target's shard.
    let mut entries: Vec<Scheduled<M>> = std::mem::take(&mut sim.queue)
        .into_iter()
        .map(|Reverse(s)| s)
        .collect();
    entries.sort_by_key(Scheduled::key);
    let mut timelines: Vec<Vec<Transition>> = vec![Vec::new(); actor_count];
    for e in &entries {
        if let Entry::Control(c) = &e.entry {
            let (who, status) = match c {
                Control::Crash { who, lossy } => (*who, ActorStatus::Crashed { lossy: *lossy }),
                Control::Recover { who } => (*who, ActorStatus::Up),
                Control::Overload { who, extra } => {
                    (*who, ActorStatus::Overloaded { extra: *extra })
                }
                Control::EndOverload { who } => (*who, ActorStatus::Up),
            };
            timelines[who.0 as usize].push((e.at, e.seq, status));
        }
    }
    let mut initial: Vec<Vec<Scheduled<M>>> = (0..n).map(|_| Vec::new()).collect();
    for e in entries {
        initial[shard_of[e.entry.target().0 as usize] as usize].push(e);
    }
    let mut held_parts: Vec<Vec<(ActorId, ActorId, M)>> = (0..n).map(|_| Vec::new()).collect();
    for h in std::mem::take(&mut sim.held) {
        held_parts[shard_of[h.0 .0 as usize] as usize].push(h);
    }
    let mut actors_in: Vec<Option<Box<dyn Actor<M> + Send>>> = std::mem::take(&mut sim.actors)
        .into_iter()
        .map(Some)
        .collect();
    let need_start = !sim.take_started();
    let now0 = sim.now;

    // Coordinator bookkeeping (mutably borrowed by the scope below).
    let mut next_ats: Vec<Option<SimTime>> = initial
        .iter()
        .map(|v| v.iter().map(|e| e.at).min())
        .collect();
    let mut pending_in: Vec<Vec<Scheduled<M>>> = (0..n).map(|_| Vec::new()).collect();
    let mut epochs = 0u64;
    let mut cross_msgs = 0u64;
    let mut shard_steps = vec![0u64; n];
    let mut shard_qmax = vec![0i64; n];
    let mut steps_total = sim.steps;
    let max_steps = sim.max_steps;
    let mut max_dispatched = now0;

    let (outcome, dones) = std::thread::scope(|scope| {
        let mut cmd_txs: Vec<Sender<Cmd<M>>> = Vec::with_capacity(n);
        let mut rep_rxs: Vec<Receiver<WMsg<M>>> = Vec::with_capacity(n);
        for w in 0..n {
            let (cmd_tx, cmd_rx) = std::sync::mpsc::channel::<Cmd<M>>();
            let (rep_tx, rep_rx) = std::sync::mpsc::channel::<WMsg<M>>();
            let mut queue = BinaryHeap::new();
            for e in std::mem::take(&mut initial[w]) {
                queue.push(Reverse(e));
            }
            let worker = Worker {
                shard: w as u32,
                shard_of: shard_of.clone(),
                actors: (0..actor_count)
                    .map(|i| {
                        if shard_of[i] == w as u32 {
                            actors_in[i].take()
                        } else {
                            None
                        }
                    })
                    .collect(),
                rngs: sim.rngs.clone(),
                send_seqs: sim.send_seqs.clone(),
                net: sim.net.clone(),
                timelines: timelines.clone(),
                queue,
                held: std::mem::take(&mut held_parts[w]),
                obs: sim.obs.clone(),
                now: now0,
                max_dispatched: now0,
                halted: false,
            };
            scope.spawn(move || worker.run(cmd_rx, rep_tx));
            cmd_txs.push(cmd_tx);
            rep_rxs.push(rep_rx);
        }

        let recv_reply = |rx: &Receiver<WMsg<M>>| -> Reply<M> {
            match rx.recv().expect("worker alive") {
                WMsg::Reply(r) => r,
                WMsg::Done(_) => unreachable!("Done before Finish"),
            }
        };

        let mut halted = false;
        // Absorb one round of worker replies into the coordinator state.
        macro_rules! absorb {
            ($count_steps:expr) => {
                for (w, rx) in rep_rxs.iter().enumerate() {
                    let rep = recv_reply(rx);
                    next_ats[w] = rep.next_at;
                    if $count_steps {
                        steps_total += rep.steps;
                        shard_steps[w] += rep.steps;
                    }
                    shard_qmax[w] = shard_qmax[w].max(rep.max_queue);
                    max_dispatched = max_dispatched.max(rep.max_dispatched);
                    halted |= rep.halted;
                    for out in rep.outgoing {
                        cross_msgs += 1;
                        let tgt = shard_of[out.entry.target().0 as usize] as usize;
                        pending_in[tgt].push(out);
                    }
                }
            };
        }

        if need_start {
            for tx in &cmd_txs {
                tx.send(Cmd::Start).expect("worker alive");
            }
            absorb!(false);
        }

        let outcome = loop {
            if halted {
                break RunOutcome::Halted;
            }
            // Earliest pending event across all shards (worker queues
            // plus cross-shard messages awaiting routing).
            let mut t: Option<SimTime> = None;
            for w in 0..n {
                let local = next_ats[w]
                    .into_iter()
                    .chain(pending_in[w].iter().map(|e| e.at))
                    .min();
                t = match (t, local) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let Some(t) = t else {
                break RunOutcome::Quiescent;
            };
            if let Some(h) = horizon {
                if t > h {
                    break RunOutcome::HorizonReached;
                }
            }
            if steps_total >= max_steps {
                break RunOutcome::StepBudget;
            }
            let mut w_end = t + lookahead;
            if let Some(h) = horizon {
                // Events exactly at the horizon still run; the window
                // never needs to extend past it.
                w_end = w_end.min(SimTime::from_millis(h.as_millis() + 1));
            }
            epochs += 1;
            for (w, tx) in cmd_txs.iter().enumerate() {
                tx.send(Cmd::Epoch {
                    window_end: w_end,
                    incoming: std::mem::take(&mut pending_in[w]),
                })
                .expect("worker alive");
            }
            absorb!(true);
        };

        for tx in &cmd_txs {
            tx.send(Cmd::Finish).expect("worker alive");
        }
        let dones: Vec<Done<M>> = rep_rxs
            .iter()
            .map(|rx| match rx.recv().expect("worker alive") {
                WMsg::Done(d) => *d,
                WMsg::Reply(_) => unreachable!("Reply after Finish"),
            })
            .collect();
        (outcome, dones)
    });

    // Reassemble the simulation from the workers' returned state.
    let mut actors_back: Vec<Option<Box<dyn Actor<M> + Send>>> =
        (0..actor_count).map(|_| None).collect();
    for (w, d) in dones.into_iter().enumerate() {
        let w = w as u32;
        for (i, a) in d.actors {
            actors_back[i as usize] = Some(a);
        }
        for (i, r) in d.rngs {
            sim.rngs[i as usize] = r;
        }
        for (i, s) in d.seqs {
            sim.send_seqs[i as usize] = s;
        }
        // Network merge: each worker is authoritative for its own
        // actors' status and for channels whose sender it owns; drops
        // are counted where the (crashed) receiver lives.
        for (a, st) in &d.net.status {
            if (a.0 as usize) < actor_count && shard_of[a.0 as usize] == w {
                sim.net.set_status(*a, *st);
            }
        }
        for (&(f, t), &at) in &d.net.last_delivery {
            if (f.0 as usize) < actor_count && shard_of[f.0 as usize] == w {
                sim.net.last_delivery.insert((f, t), at);
            }
        }
        for (&(f, t), &c) in &d.net.sent {
            if (f.0 as usize) < actor_count && shard_of[f.0 as usize] == w {
                sim.net.sent.insert((f, t), c);
            }
        }
        sim.net.dropped += d.net.dropped - baseline_dropped;
        sim.held.extend(d.held);
        for e in d.remaining {
            sim.queue.push(Reverse(e));
        }
    }
    sim.actors = actors_back
        .into_iter()
        .map(|a| a.expect("every actor returned by its shard"))
        .collect();
    for v in pending_in {
        for e in v {
            sim.queue.push(Reverse(e));
        }
    }
    sim.steps = steps_total;
    sim.now = match (outcome, horizon) {
        (RunOutcome::HorizonReached, Some(h)) => h,
        _ => max_dispatched,
    };

    // Engine-side execution metrics (kept out of the observability
    // snapshot, which must be identical across execution modes).
    sim.engine.add(Scope::Global, "sim.epochs", epochs);
    sim.engine
        .add(Scope::Global, "sim.cross_shard_msgs", cross_msgs);
    let total_run: u64 = shard_steps.iter().sum();
    for w in 0..n {
        sim.engine.add(
            Scope::Actor(w as u32),
            "sim.shard_dispatches",
            shard_steps[w],
        );
        sim.engine
            .gauge_track_max(Scope::Actor(w as u32), "sim.queue_depth_max", shard_qmax[w]);
        let pct = (shard_steps[w] * 100)
            .checked_div(total_run)
            .unwrap_or_default() as i64;
        sim.engine
            .gauge_set(Scope::Actor(w as u32), "sim.shard_utilization_pct", pct);
    }

    sim.finish_sharded_run();
    outcome
}
