//! Network model and failure status.
//!
//! The paper assumes a reliable network ("network failures can be viewed
//! as the failure of the sites sending the affected message", §5 fn. 4)
//! with in-order delivery between sites (Appendix property 7). The
//! [`Network`] therefore provides **reliable FIFO channels** with a
//! configurable delay model, and failures are modeled at the *receiving
//! actor*:
//!
//! * [`ActorStatus::Overloaded`] — deliveries incur extra latency, the
//!   database misses its interface time bounds ⇒ the paper's **metric
//!   failure**;
//! * [`ActorStatus::Crashed`] — deliveries are held (a database "with
//!   some basic recovery facilities" that replays on recovery) or
//!   dropped (`lossy`), the interface statements are void ⇒ the paper's
//!   **logical failure**.

use crate::actor::ActorId;
use crate::rng::SimRng;
use hcm_core::{SimDuration, SimTime};
use std::collections::HashMap;

/// How a message was submitted (see `Ctx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendKind {
    /// Over the network: channel delay model + FIFO clamp.
    Network,
    /// Local interaction with an explicit delay; no channel jitter.
    Local(SimDuration),
    /// Timer to self; fires even when overloaded.
    Timer(SimDuration),
}

/// Delay model for network sends.
#[derive(Debug, Clone, Copy)]
pub struct DelayModel {
    /// Minimum one-way latency.
    pub base: SimDuration,
    /// Additional uniform jitter in `[0, jitter]`.
    pub jitter: SimDuration,
}

impl DelayModel {
    /// A fixed-latency model with no jitter.
    #[must_use]
    pub const fn fixed(d: SimDuration) -> Self {
        DelayModel {
            base: d,
            jitter: SimDuration::ZERO,
        }
    }

    /// Sample a one-way delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        if self.jitter == SimDuration::ZERO {
            self.base
        } else {
            self.base + rng.duration_in(SimDuration::ZERO, self.jitter)
        }
    }
}

impl Default for DelayModel {
    /// 20 ms ± 10 ms — a campus network, in the spirit of the paper's
    /// Stanford deployment.
    fn default() -> Self {
        DelayModel {
            base: SimDuration::from_millis(20),
            jitter: SimDuration::from_millis(10),
        }
    }
}

/// Failure status of an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActorStatus {
    /// Normal operation.
    #[default]
    Up,
    /// Metric-failure mode: every delivery is delayed by the extra
    /// duration. Timers still fire (the site is slow, not dead).
    Overloaded {
        /// Additional processing delay per delivery.
        extra: SimDuration,
    },
    /// Logical-failure mode: the actor processes nothing. If `lossy`,
    /// messages that arrive while crashed are lost; otherwise they are
    /// queued and replayed at recovery time in arrival order.
    Crashed {
        /// Whether in-flight messages are dropped instead of held.
        lossy: bool,
    },
}

/// Per-pair FIFO bookkeeping, delay sampling, and failure status.
///
/// Clonable so the sharded executor can hand each worker a private
/// copy; `hcm-simkit`'s shard module merges the per-worker copies back
/// (each channel's FIFO/traffic state is only ever advanced by the
/// sender's shard, each actor's status only by its owning shard).
#[derive(Debug, Clone)]
pub struct Network {
    pub(crate) default_delay: DelayModel,
    pub(crate) per_channel: HashMap<(ActorId, ActorId), DelayModel>,
    /// Latest delivery time already scheduled per channel (FIFO clamp).
    pub(crate) last_delivery: HashMap<(ActorId, ActorId), SimTime>,
    pub(crate) status: HashMap<ActorId, ActorStatus>,
    /// Messages sent over a channel, for the traffic-reduction
    /// experiments (E8/E9).
    pub(crate) sent: HashMap<(ActorId, ActorId), u64>,
    pub(crate) dropped: u64,
    /// In-order delivery per channel (the paper's Appendix property 7
    /// assumption). Disable ONLY for the ablation experiment that shows
    /// the assumption is load-bearing.
    pub(crate) fifo: bool,
}

impl Default for Network {
    fn default() -> Self {
        Network {
            default_delay: DelayModel::default(),
            per_channel: HashMap::new(),
            last_delivery: HashMap::new(),
            status: HashMap::new(),
            sent: HashMap::new(),
            dropped: 0,
            fifo: true,
        }
    }
}

impl Network {
    /// A network with the given delay model and FIFO channels.
    #[must_use]
    pub fn new(default_delay: DelayModel) -> Self {
        Network {
            default_delay,
            ..Default::default()
        }
    }

    /// Disable per-channel in-order delivery — messages race freely.
    /// This violates the assumption under which the paper's guarantees
    /// are proven; the E14 ablation uses it to show the checker catches
    /// the resulting property-7 and guarantee-(3) violations.
    pub fn set_fifo(&mut self, fifo: bool) {
        self.fifo = fifo;
    }

    /// Override the delay model of one directed channel.
    pub fn set_channel(&mut self, from: ActorId, to: ActorId, model: DelayModel) {
        self.per_channel.insert((from, to), model);
    }

    /// Current failure status of an actor.
    #[must_use]
    pub fn status(&self, a: ActorId) -> ActorStatus {
        self.status.get(&a).copied().unwrap_or_default()
    }

    /// Set the failure status of an actor (used by the simulation's
    /// failure-injection schedule).
    pub fn set_status(&mut self, a: ActorId, s: ActorStatus) {
        self.status.insert(a, s);
    }

    /// The smallest possible one-way latency of any network send — the
    /// conservative lookahead bound the sharded executor's epochs use:
    /// a message sent at time `t` can never arrive before
    /// `t + min_network_delay()`.
    #[must_use]
    pub fn min_network_delay(&self) -> SimDuration {
        self.per_channel
            .values()
            .map(|m| m.base)
            .fold(self.default_delay.base, SimDuration::min)
    }

    /// Compute the delivery time for a message submitted `now` on
    /// `(from, to)` with the given send kind, maintaining the FIFO
    /// invariant: delivery times on one channel never decrease.
    /// Overload extra delay is added for network and local sends.
    pub fn delivery_time(
        &mut self,
        now: SimTime,
        from: ActorId,
        to: ActorId,
        kind: SendKind,
        rng: &mut SimRng,
    ) -> SimTime {
        let to_status = self.status(to);
        self.delivery_time_with_status(now, from, to, kind, to_status, rng)
    }

    /// [`Network::delivery_time`] with the receiver's status supplied
    /// by the caller. The sharded executor uses this: a worker knows
    /// the live status only of its own actors and derives remote
    /// receivers' status from the pre-scheduled control timeline.
    pub fn delivery_time_with_status(
        &mut self,
        now: SimTime,
        from: ActorId,
        to: ActorId,
        kind: SendKind,
        to_status: ActorStatus,
        rng: &mut SimRng,
    ) -> SimTime {
        let base = match kind {
            SendKind::Network => {
                let model = self
                    .per_channel
                    .get(&(from, to))
                    .unwrap_or(&self.default_delay);
                model.sample(rng)
            }
            SendKind::Local(d) | SendKind::Timer(d) => d,
        };
        let mut at = now + base;
        if !matches!(kind, SendKind::Timer(_)) {
            if let ActorStatus::Overloaded { extra } = to_status {
                at += extra;
            }
            *self.sent.entry((from, to)).or_insert(0) += 1;
            if self.fifo {
                let last = self.last_delivery.entry((from, to)).or_insert(at);
                if *last > at {
                    at = *last; // FIFO clamp
                } else {
                    *last = at;
                }
            }
        }
        at
    }

    /// Record a message lost to a lossy crash.
    pub fn count_drop(&mut self) {
        self.dropped += 1;
    }

    /// Messages sent on a directed channel so far.
    #[must_use]
    pub fn sent_on(&self, from: ActorId, to: ActorId) -> u64 {
        self.sent.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Total messages sent over all channels.
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total messages dropped by lossy crashes.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> ActorId {
        ActorId(n)
    }

    #[test]
    fn fixed_delay_applies() {
        let mut net = Network::new(DelayModel::fixed(SimDuration::from_millis(50)));
        let mut rng = SimRng::seeded(1);
        let at = net.delivery_time(SimTime::ZERO, a(0), a(1), SendKind::Network, &mut rng);
        assert_eq!(at, SimTime::from_millis(50));
    }

    #[test]
    fn fifo_clamp_preserves_order() {
        // Jittery channel: a later send may sample a smaller delay, but
        // its delivery must not precede the earlier send's.
        let mut net = Network::new(DelayModel {
            base: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(100),
        });
        let mut rng = SimRng::seeded(2);
        let mut last = SimTime::ZERO;
        for i in 0..200u64 {
            let now = SimTime::from_millis(i);
            let at = net.delivery_time(now, a(0), a(1), SendKind::Network, &mut rng);
            assert!(at >= last, "FIFO violated: {at} < {last}");
            last = at;
        }
    }

    #[test]
    fn channels_are_independent() {
        let mut net = Network::new(DelayModel::fixed(SimDuration::from_millis(10)));
        net.set_channel(a(0), a(2), DelayModel::fixed(SimDuration::from_millis(500)));
        let mut rng = SimRng::seeded(3);
        let t1 = net.delivery_time(SimTime::ZERO, a(0), a(2), SendKind::Network, &mut rng);
        let t2 = net.delivery_time(SimTime::ZERO, a(0), a(1), SendKind::Network, &mut rng);
        assert_eq!(t1, SimTime::from_millis(500));
        assert_eq!(t2, SimTime::from_millis(10)); // not clamped by other channel
    }

    #[test]
    fn overload_adds_delay_but_not_to_timers() {
        let mut net = Network::new(DelayModel::fixed(SimDuration::from_millis(10)));
        net.set_status(
            a(1),
            ActorStatus::Overloaded {
                extra: SimDuration::from_secs(5),
            },
        );
        let mut rng = SimRng::seeded(4);
        let at = net.delivery_time(SimTime::ZERO, a(0), a(1), SendKind::Network, &mut rng);
        assert_eq!(at, SimTime::from_millis(5010));
        let timer = net.delivery_time(
            SimTime::ZERO,
            a(1),
            a(1),
            SendKind::Timer(SimDuration::from_millis(100)),
            &mut rng,
        );
        assert_eq!(timer, SimTime::from_millis(100));
    }

    #[test]
    fn local_send_uses_explicit_delay() {
        let mut net = Network::new(DelayModel::default());
        let mut rng = SimRng::seeded(5);
        let at = net.delivery_time(
            SimTime::from_secs(1),
            a(0),
            a(1),
            SendKind::Local(SimDuration::from_millis(3)),
            &mut rng,
        );
        assert_eq!(at, SimTime::from_millis(1003));
    }

    #[test]
    fn traffic_counters() {
        let mut net = Network::new(DelayModel::fixed(SimDuration::ZERO));
        let mut rng = SimRng::seeded(6);
        for _ in 0..3 {
            net.delivery_time(SimTime::ZERO, a(0), a(1), SendKind::Network, &mut rng);
        }
        net.count_drop();
        assert_eq!(net.sent_on(a(0), a(1)), 3);
        assert_eq!(net.total_sent(), 3);
        assert_eq!(net.total_dropped(), 1);
    }

    #[test]
    fn status_default_is_up() {
        let net = Network::default();
        assert_eq!(net.status(a(9)), ActorStatus::Up);
    }
}
