//! The simulation driver.
//!
//! [`Sim`] owns the actors, the clock, the message queue, the network
//! model and the RNG streams, and runs the classic discrete-event loop:
//! pop the earliest entry, advance the clock, dispatch. Determinism
//! comes from the total order on `(time, sender, sender-sequence,
//! minor)` — ties at one instant are broken by sender id, then by the
//! order that sender submitted its messages. External injections and
//! controls share the distinguished [`ActorId::EXTERNAL`] sender and
//! one submission counter, so they sort after actor traffic at the
//! same instant, in schedule order.
//!
//! That key is the backbone of the **sharded execution mode**
//! ([`Sim::set_shard_map`]): serial pop order equals key order, so
//! per-shard executors can process disjoint key-ordered streams in
//! parallel and every shared sink can reconstruct the exact serial
//! order from the keys (see `hcm_core::ordkey` and [`crate::shard`]).
//!
//! Failure injection is scheduled through the same queue
//! ([`Sim::crash_at`], [`Sim::recover_at`], [`Sim::overload_between`])
//! so that an experiment's failure schedule composes deterministically
//! with its workload.

use crate::actor::{Actor, ActorId, Ctx};
use crate::net::{ActorStatus, DelayModel, Network, SendKind};
use crate::rng::SimRng;
use hcm_core::{SimDuration, SimTime};
use hcm_obs::{Metrics, Obs, Scope};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub(crate) enum Entry<M> {
    Deliver { to: ActorId, from: ActorId, msg: M },
    Control(Control),
}

impl<M> Entry<M> {
    /// The actor this entry is processed at (deliveries at the
    /// receiver, controls at the actor they manipulate) — the shard
    /// routing key.
    pub(crate) fn target(&self) -> ActorId {
        match self {
            Entry::Deliver { to, .. } => *to,
            Entry::Control(c) => match c {
                Control::Crash { who, .. }
                | Control::Recover { who }
                | Control::Overload { who, .. }
                | Control::EndOverload { who } => *who,
            },
        }
    }
}

pub(crate) enum Control {
    Crash { who: ActorId, lossy: bool },
    Recover { who: ActorId },
    Overload { who: ActorId, extra: SimDuration },
    EndOverload { who: ActorId },
}

pub(crate) struct Scheduled<M> {
    pub(crate) at: SimTime,
    /// Sending actor (`ActorId::EXTERNAL.0` for injections/controls).
    pub(crate) src: u32,
    /// The sender's submission sequence number.
    pub(crate) seq: u64,
    /// Tie-breaker for entries materialized *by* a dispatch (held
    /// messages replayed by a recovery control); 0 for normal sends.
    pub(crate) minor: u32,
    pub(crate) entry: Entry<M>,
}

impl<M> Scheduled<M> {
    pub(crate) fn key(&self) -> (SimTime, u32, u64, u32) {
        (self.at, self.src, self.seq, self.minor)
    }
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained: no actor has anything left to do. This is the
    /// *quiescence* used as the finite-trace horizon for
    /// liveness-flavoured guarantees.
    Quiescent,
    /// The time horizon was reached with work still pending.
    HorizonReached,
    /// An actor called [`Ctx::halt`].
    Halted,
    /// The step budget was exhausted (runaway protection).
    StepBudget,
}

/// A deterministic discrete-event simulation over message type `M`.
pub struct Sim<M> {
    pub(crate) actors: Vec<Box<dyn Actor<M> + Send>>,
    pub(crate) queue: BinaryHeap<Reverse<Scheduled<M>>>,
    /// Messages held for crashed (non-lossy) actors, replayed on
    /// recovery in arrival order: `(to, from, msg)`.
    pub(crate) held: Vec<(ActorId, ActorId, M)>,
    pub(crate) now: SimTime,
    /// Submission counter for external entries (injections, controls).
    ext_seq: u64,
    /// Per-actor deterministic RNG streams, derived from the master
    /// seed and the actor id — identical in serial and sharded mode.
    pub(crate) rngs: Vec<SimRng>,
    /// Per-actor submission counters (the `seq` half of the order key).
    pub(crate) send_seqs: Vec<u64>,
    seed: u64,
    pub(crate) net: Network,
    pub(crate) obs: Obs,
    /// Engine-internal metrics (queue depths, epochs, shard traffic):
    /// execution-strategy-dependent by nature, so they live outside the
    /// snapshot registry that must stay byte-identical across modes.
    pub(crate) engine: Metrics,
    started: bool,
    pub(crate) steps: u64,
    pub(crate) max_steps: u64,
    /// Shard assignment per actor; all zeros (single shard) by default.
    pub(crate) shard_of: Vec<u32>,
    n_shards: u32,
    /// Callbacks run after a sharded run so external order-tagged sinks
    /// (the toolkit trace) can restore canonical order.
    order_sinks: Vec<Box<dyn Fn()>>,
}

impl<M> Sim<M> {
    /// A simulation with the given RNG seed and default network delays.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_network(seed, Network::new(DelayModel::default()))
    }

    /// A simulation with an explicit network model.
    #[must_use]
    pub fn with_network(seed: u64, net: Network) -> Self {
        Sim {
            actors: Vec::new(),
            queue: BinaryHeap::with_capacity(1024),
            held: Vec::new(),
            now: SimTime::ZERO,
            ext_seq: 0,
            rngs: Vec::new(),
            send_seqs: Vec::new(),
            seed,
            net,
            obs: Obs::new(),
            engine: Metrics::new(),
            started: false,
            steps: 0,
            max_steps: u64::MAX,
            shard_of: Vec::new(),
            n_shards: 1,
            order_sinks: Vec::new(),
        }
    }

    /// Cap the number of deliveries (protection against accidental
    /// infinite loops in scenario code). In sharded mode the budget is
    /// enforced at epoch granularity.
    pub fn set_step_budget(&mut self, max_steps: u64) {
        self.max_steps = max_steps;
    }

    /// Register an actor, returning its id. The actor gets its own
    /// RNG stream derived from the simulation seed and this id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M> + Send>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(actor);
        self.rngs.push(SimRng::derived(self.seed, u64::from(id.0)));
        self.send_seqs.push(0);
        self.shard_of.push(0);
        id
    }

    /// Assign every actor to a shard for parallel execution. `map[i]`
    /// is actor `i`'s shard; shard ids must be dense from 0. With more
    /// than one distinct shard (and a network with nonzero minimum
    /// delay), [`Sim::run`] executes shards on worker threads in
    /// conservative lock-step epochs; observable results are identical
    /// to serial mode. Pass all-zeros (or never call this) for serial.
    ///
    /// # Panics
    /// Panics if `map.len()` differs from the number of actors.
    pub fn set_shard_map(&mut self, map: Vec<u32>) {
        assert_eq!(
            map.len(),
            self.actors.len(),
            "shard map must cover every actor"
        );
        self.n_shards = map.iter().copied().max().map_or(1, |m| m + 1);
        self.shard_of = map;
    }

    /// The current shard assignment (one entry per actor).
    #[must_use]
    pub fn shard_map(&self) -> &[u32] {
        &self.shard_of
    }

    /// Assign one actor to a shard (actors added after
    /// [`Sim::set_shard_map`] default to shard 0).
    pub fn assign_shard(&mut self, id: ActorId, shard: u32) {
        self.shard_of[id.0 as usize] = shard;
        self.n_shards = self.n_shards.max(shard + 1);
    }

    /// Number of shards the current assignment uses (1 = serial).
    #[must_use]
    pub fn shard_count(&self) -> u32 {
        self.n_shards
    }

    /// Register a callback run after each sharded run completes, so
    /// order-tagged sinks outside the simulation (the toolkit's trace)
    /// can restore canonical order. Serial runs never invoke these.
    pub fn add_order_sink(&mut self, sink: Box<dyn Fn()>) {
        self.order_sinks.push(sink);
    }

    /// Number of registered actors.
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The network model (for channel configuration and traffic stats).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read-only network access.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// A clone of the simulation's observability bundle — the metrics
    /// registry and span log every instrumented component writes to.
    #[must_use]
    pub fn obs(&self) -> Obs {
        self.obs.clone()
    }

    /// The engine-internal metrics registry: queue depths, epoch and
    /// cross-shard-traffic counters, per-shard utilization. Kept apart
    /// from [`Sim::obs`] because these depend on the execution strategy
    /// (serial vs sharded) while the observability snapshot must not.
    #[must_use]
    pub fn engine_metrics(&self) -> Metrics {
        self.engine.clone()
    }

    /// Direct access to a registered actor (used by scenario drivers to
    /// inspect component state between runs; not available during a
    /// delivery).
    #[must_use]
    pub fn actor(&self, id: ActorId) -> &dyn Actor<M> {
        self.actors[id.0 as usize].as_ref()
    }

    /// Mutable access to a registered actor between runs.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor<M> {
        self.actors[id.0 as usize].as_mut()
    }

    /// Inject a message from "outside" (workload drivers, test
    /// harnesses) for delivery to `to` at absolute time `at`. The
    /// sender is recorded as [`ActorId::EXTERNAL`], not the recipient.
    pub fn inject_at(&mut self, at: SimTime, to: ActorId, msg: M) {
        let seq = self.bump_ext_seq();
        self.queue.push(Reverse(Scheduled {
            at,
            src: ActorId::EXTERNAL.0,
            seq,
            minor: 0,
            entry: Entry::Deliver {
                to,
                from: ActorId::EXTERNAL,
                msg,
            },
        }));
    }

    /// Batched injection: reserve queue capacity for the whole batch
    /// up front, then inject each `(at, to, msg)` with consecutive
    /// sequence numbers — semantically identical to calling
    /// [`Sim::inject_at`] per message, without per-push reallocation.
    pub fn inject_many(&mut self, msgs: impl IntoIterator<Item = (SimTime, ActorId, M)>) {
        let msgs = msgs.into_iter();
        let (lo, hi) = msgs.size_hint();
        self.queue.reserve(hi.unwrap_or(lo));
        for (at, to, msg) in msgs {
            self.inject_at(at, to, msg);
        }
    }

    /// Schedule a crash. `lossy` controls whether messages arriving
    /// while down are dropped (silent data loss) or held and replayed
    /// at recovery — the paper's "crashes can be mapped to metric
    /// failures if the database … can remember messages" (§5).
    pub fn crash_at(&mut self, who: ActorId, at: SimTime, lossy: bool) {
        let seq = self.bump_ext_seq();
        self.queue.push(Reverse(Scheduled {
            at,
            src: ActorId::EXTERNAL.0,
            seq,
            minor: 0,
            entry: Entry::Control(Control::Crash { who, lossy }),
        }));
    }

    /// Schedule a recovery.
    pub fn recover_at(&mut self, who: ActorId, at: SimTime) {
        let seq = self.bump_ext_seq();
        self.queue.push(Reverse(Scheduled {
            at,
            src: ActorId::EXTERNAL.0,
            seq,
            minor: 0,
            entry: Entry::Control(Control::Recover { who }),
        }));
    }

    /// Schedule an overload window `[from, to)` during which every
    /// delivery to `who` takes `extra` additional time.
    pub fn overload_between(
        &mut self,
        who: ActorId,
        from: SimTime,
        to: SimTime,
        extra: SimDuration,
    ) {
        let seq = self.bump_ext_seq();
        self.queue.push(Reverse(Scheduled {
            at: from,
            src: ActorId::EXTERNAL.0,
            seq,
            minor: 0,
            entry: Entry::Control(Control::Overload { who, extra }),
        }));
        let seq = self.bump_ext_seq();
        self.queue.push(Reverse(Scheduled {
            at: to,
            src: ActorId::EXTERNAL.0,
            seq,
            minor: 0,
            entry: Entry::Control(Control::EndOverload { who }),
        }));
    }

    fn bump_ext_seq(&mut self) -> u64 {
        let s = self.ext_seq;
        self.ext_seq += 1;
        s
    }

    fn flush_outbox(&mut self, from: ActorId, outbox: Vec<(ActorId, M, SendKind)>) {
        for (to, msg, kind) in outbox {
            let at =
                self.net
                    .delivery_time(self.now, from, to, kind, &mut self.rngs[from.0 as usize]);
            if matches!(kind, SendKind::Network) {
                self.obs.metrics.observe(
                    Scope::Channel {
                        from: from.0,
                        to: to.0,
                    },
                    "net.delivery_latency",
                    at.saturating_since(self.now),
                );
            }
            let seq = self.send_seqs[from.0 as usize];
            self.send_seqs[from.0 as usize] += 1;
            self.queue.push(Reverse(Scheduled {
                at,
                src: from.0,
                seq,
                minor: 0,
                entry: Entry::Deliver { to, from, msg },
            }));
        }
    }

    pub(crate) fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let id = ActorId(i as u32);
            let mut outbox = Vec::new();
            let mut halted = false;
            {
                let mut ctx = Ctx {
                    now: self.now,
                    me: id,
                    rng: &mut self.rngs[i],
                    outbox: &mut outbox,
                    halted: &mut halted,
                };
                self.actors[i].on_start(&mut ctx);
            }
            self.flush_outbox(id, outbox);
        }
    }

    pub(crate) fn take_started(&mut self) -> bool {
        let was = self.started;
        self.started = true;
        was
    }

    /// Run until the queue drains, an actor halts, the step budget is
    /// exhausted, or (if given) the horizon is passed. Events scheduled
    /// *at* the horizon still run; the clock never exceeds it.
    ///
    /// With a multi-shard assignment ([`Sim::set_shard_map`]) and a
    /// network whose minimum delay is positive, the run executes on
    /// one worker thread per shard in conservative lock-step epochs;
    /// all observable results (trace, metrics snapshot, span log,
    /// actor state) are byte-identical to the serial execution. Halt
    /// and the step budget then act at epoch granularity.
    pub fn run(&mut self, horizon: Option<SimTime>) -> RunOutcome
    where
        M: Send,
    {
        if self.n_shards > 1 && self.net.min_network_delay() > SimDuration::ZERO {
            crate::shard::run_sharded(self, horizon)
        } else {
            self.run_serial(horizon)
        }
    }

    fn run_serial(&mut self, horizon: Option<SimTime>) -> RunOutcome {
        self.start_if_needed();
        loop {
            let Some(Reverse(head)) = self.queue.peek() else {
                return RunOutcome::Quiescent;
            };
            if let Some(h) = horizon {
                if head.at > h {
                    self.now = h;
                    return RunOutcome::HorizonReached;
                }
            }
            if self.steps >= self.max_steps {
                return RunOutcome::StepBudget;
            }
            self.engine.gauge_track_max(
                Scope::Global,
                "sim.queue_depth_max",
                self.queue.len() as i64,
            );
            let Reverse(sched) = self.queue.pop().expect("peeked");
            self.now = sched.at;
            match sched.entry {
                Entry::Control(c) => self.apply_control(c, sched.seq),
                Entry::Deliver { to, from, msg } => {
                    self.steps += 1;
                    self.obs.metrics.inc(Scope::Global, "sim.dispatches");
                    self.obs.metrics.inc(Scope::Actor(to.0), "sim.dispatches");
                    match self.net.status(to) {
                        ActorStatus::Crashed { lossy: true } => {
                            self.net.count_drop();
                            self.obs
                                .metrics
                                .inc(Scope::Actor(to.0), "sim.dropped_while_crashed");
                        }
                        ActorStatus::Crashed { lossy: false } => {
                            self.held.push((to, from, msg));
                            self.obs
                                .metrics
                                .inc(Scope::Actor(to.0), "sim.held_while_crashed");
                        }
                        _ => {
                            let mut outbox = Vec::new();
                            let mut halted = false;
                            {
                                let mut ctx = Ctx {
                                    now: self.now,
                                    me: to,
                                    rng: &mut self.rngs[to.0 as usize],
                                    outbox: &mut outbox,
                                    halted: &mut halted,
                                };
                                self.actors[to.0 as usize].on_message(msg, &mut ctx);
                            }
                            self.flush_outbox(to, outbox);
                            if halted {
                                return RunOutcome::Halted;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Run to quiescence with no horizon.
    pub fn run_to_quiescence(&mut self) -> RunOutcome
    where
        M: Send,
    {
        self.run(None)
    }

    pub(crate) fn finish_sharded_run(&mut self) {
        self.obs.finalize_order();
        for sink in &self.order_sinks {
            sink();
        }
    }

    fn apply_control(&mut self, c: Control, ctl_seq: u64) {
        match c {
            Control::Crash { who, lossy } => {
                self.net.set_status(who, ActorStatus::Crashed { lossy });
                self.obs.metrics.record(
                    self.now,
                    Scope::Actor(who.0),
                    "sim.crash",
                    [("lossy", lossy.to_string())],
                );
                // Let the actor model the crash (a lossy crash wipes a
                // durable actor's volatile state). Anything it tries to
                // send is discarded — it is down.
                let mut discard = Vec::new();
                let mut halted = false;
                let mut ctx = Ctx {
                    now: self.now,
                    me: who,
                    rng: &mut self.rngs[who.0 as usize],
                    outbox: &mut discard,
                    halted: &mut halted,
                };
                self.actors[who.0 as usize].on_crash(lossy, &mut ctx);
            }
            Control::Recover { who } => {
                self.net.set_status(who, ActorStatus::Up);
                self.obs.metrics.record(
                    self.now,
                    Scope::Actor(who.0),
                    "sim.recover",
                    std::iter::empty::<(&str, String)>(),
                );
                // Give the actor first crack at recovery (reload durable
                // state, re-arm timers) before held traffic lands. Its
                // sends are real and flushed normally.
                let mut outbox = Vec::new();
                let mut halted = false;
                {
                    let mut ctx = Ctx {
                        now: self.now,
                        me: who,
                        rng: &mut self.rngs[who.0 as usize],
                        outbox: &mut outbox,
                        halted: &mut halted,
                    };
                    self.actors[who.0 as usize].on_recover(&mut ctx);
                }
                self.flush_outbox(who, outbox);
                // Replay messages held during the outage, at recovery
                // time, preserving their original arrival order. The
                // replayed entries take this control's key with a
                // nonzero `minor`, so they sort directly after the
                // recovery hook's processing in canonical order.
                let (replay, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.held)
                    .into_iter()
                    .partition(|(to, ..)| *to == who);
                self.held = keep;
                for (k, (to, from, msg)) in replay.into_iter().enumerate() {
                    self.queue.push(Reverse(Scheduled {
                        at: self.now,
                        src: ActorId::EXTERNAL.0,
                        seq: ctl_seq,
                        minor: k as u32 + 1,
                        entry: Entry::Deliver { to, from, msg },
                    }));
                }
            }
            Control::Overload { who, extra } => {
                self.net.set_status(who, ActorStatus::Overloaded { extra });
                self.obs.metrics.record(
                    self.now,
                    Scope::Actor(who.0),
                    "sim.overload",
                    [("extra_ms", extra.as_millis().to_string())],
                );
            }
            Control::EndOverload { who } => {
                self.net.set_status(who, ActorStatus::Up);
                self.obs.metrics.record(
                    self.now,
                    Scope::Actor(who.0),
                    "sim.end_overload",
                    std::iter::empty::<(&str, String)>(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::Shared;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Tick,
        Stop,
    }

    /// Records (time, payload) of everything it receives; replies to
    /// Ping by sending Ping(n-1) back until n == 0.
    struct Echo {
        peer: Option<ActorId>,
        log: Shared<Vec<(SimTime, Msg)>>,
        ticks: u32,
    }

    impl Actor<Msg> for Echo {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            self.log.borrow_mut().push((ctx.now(), msg.clone()));
            match msg {
                Msg::Ping(0) => {}
                Msg::Ping(n) => {
                    if let Some(p) = self.peer {
                        ctx.send(p, Msg::Ping(n - 1));
                    }
                }
                Msg::Tick => {
                    self.ticks += 1;
                    if self.ticks < 3 {
                        ctx.schedule_self(SimDuration::from_secs(1), Msg::Tick);
                    }
                }
                Msg::Stop => ctx.halt(),
            }
        }
    }

    fn fixed_sim(ms: u64) -> Sim<Msg> {
        Sim::with_network(
            7,
            Network::new(DelayModel::fixed(SimDuration::from_millis(ms))),
        )
    }

    #[test]
    fn ping_pong_runs_to_quiescence() {
        let log = Shared::new(Vec::new());
        let mut sim = fixed_sim(100);
        let a = sim.add_actor(Box::new(Echo {
            peer: None,
            log: log.clone(),
            ticks: 0,
        }));
        let b = sim.add_actor(Box::new(Echo {
            peer: Some(a),
            log: log.clone(),
            ticks: 0,
        }));
        // Make a's peer b after registration? peers fixed at build; wire a -> b.
        // a has no peer so it just logs the final ping.
        sim.inject_at(SimTime::ZERO, b, Msg::Ping(3));
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        let log = log.borrow();
        // b received Ping(3) at t=0, a received Ping(2) at 100ms, b Ping(1) at 200ms...
        // but a has peer None: chain stops after a logs Ping(2).
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], (SimTime::ZERO, Msg::Ping(3)));
        assert_eq!(log[1], (SimTime::from_millis(100), Msg::Ping(2)));
    }

    #[test]
    fn timers_and_horizon() {
        let log = Shared::new(Vec::new());
        let mut sim = fixed_sim(10);
        let a = sim.add_actor(Box::new(Echo {
            peer: None,
            log: log.clone(),
            ticks: 0,
        }));
        sim.inject_at(SimTime::ZERO, a, Msg::Tick);
        let out = sim.run(Some(SimTime::from_millis(1500)));
        // Tick at 0 and 1000 executed; 2000 beyond horizon.
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(log.borrow().len(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(1500));
        // Resume to quiescence: third tick fires at t=2000.
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(sim.now(), SimTime::from_millis(2000));
    }

    #[test]
    fn halt_stops_immediately() {
        let log = Shared::new(Vec::new());
        let mut sim = fixed_sim(10);
        let a = sim.add_actor(Box::new(Echo {
            peer: None,
            log: log.clone(),
            ticks: 0,
        }));
        sim.inject_at(SimTime::from_secs(1), a, Msg::Stop);
        sim.inject_at(SimTime::from_secs(2), a, Msg::Ping(0));
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Halted);
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    fn crash_holds_messages_until_recovery() {
        let log = Shared::new(Vec::new());
        let mut sim = fixed_sim(0);
        let a = sim.add_actor(Box::new(Echo {
            peer: None,
            log: log.clone(),
            ticks: 0,
        }));
        sim.crash_at(a, SimTime::from_secs(1), false);
        sim.inject_at(SimTime::from_secs(2), a, Msg::Ping(0));
        sim.inject_at(SimTime::from_secs(3), a, Msg::Tick);
        sim.recover_at(a, SimTime::from_secs(10));
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        let log = log.borrow();
        // Both messages replayed at recovery time, original order.
        assert_eq!(log[0], (SimTime::from_secs(10), Msg::Ping(0)));
        assert_eq!(log[1], (SimTime::from_secs(10), Msg::Tick));
    }

    #[test]
    fn lossy_crash_drops_messages() {
        let log = Shared::new(Vec::new());
        let mut sim = fixed_sim(0);
        let a = sim.add_actor(Box::new(Echo {
            peer: None,
            log: log.clone(),
            ticks: 0,
        }));
        sim.crash_at(a, SimTime::from_secs(1), true);
        sim.inject_at(SimTime::from_secs(2), a, Msg::Ping(0));
        sim.recover_at(a, SimTime::from_secs(10));
        sim.inject_at(SimTime::from_secs(11), a, Msg::Tick);
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        assert_eq!(log.borrow().len(), 3); // Tick at 11s, 12s, 13s; Ping lost
        assert_eq!(sim.network().total_dropped(), 1);
    }

    #[test]
    fn overload_window_delays_deliveries() {
        let log = Shared::new(Vec::new());
        let mut sim = fixed_sim(0);
        let a = sim.add_actor(Box::new(Echo {
            peer: None,
            log: log.clone(),
            ticks: 0,
        }));
        let b = sim.add_actor(Box::new(Echo {
            peer: Some(a),
            log: log.clone(),
            ticks: 0,
        }));
        sim.overload_between(
            a,
            SimTime::from_secs(1),
            SimTime::from_secs(5),
            SimDuration::from_secs(60),
        );
        // b forwards Ping to a during the overload window.
        sim.inject_at(SimTime::from_secs(2), b, Msg::Ping(1));
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        let log = log.borrow();
        assert_eq!(log[0], (SimTime::from_secs(2), Msg::Ping(1)));
        // a's delivery delayed by 60s.
        assert_eq!(log[1], (SimTime::from_secs(62), Msg::Ping(0)));
    }

    #[test]
    fn step_budget_stops_runaway() {
        struct Looper;
        impl Actor<Msg> for Looper {
            fn on_message(&mut self, _m: Msg, ctx: &mut Ctx<'_, Msg>) {
                ctx.schedule_self(SimDuration::from_millis(1), Msg::Tick);
            }
        }
        let mut sim: Sim<Msg> = fixed_sim(0);
        let a = sim.add_actor(Box::new(Looper));
        sim.set_step_budget(100);
        sim.inject_at(SimTime::ZERO, a, Msg::Tick);
        assert_eq!(sim.run_to_quiescence(), RunOutcome::StepBudget);
    }

    #[test]
    fn on_start_hook_runs_once() {
        struct Starter {
            fired: Shared<u32>,
        }
        impl Actor<Msg> for Starter {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                *self.fired.borrow_mut() += 1;
                ctx.schedule_self(SimDuration::from_secs(1), Msg::Ping(0));
            }
            fn on_message(&mut self, _m: Msg, _ctx: &mut Ctx<'_, Msg>) {}
        }
        let fired = Shared::new(0);
        let mut sim: Sim<Msg> = fixed_sim(0);
        sim.add_actor(Box::new(Starter {
            fired: fired.clone(),
        }));
        sim.run_to_quiescence();
        sim.run_to_quiescence();
        assert_eq!(*fired.borrow(), 1);
        assert_eq!(sim.actor_count(), 1);
    }

    #[test]
    fn crash_and_recover_hooks_fire_in_order() {
        /// Logs lifecycle events; tries to send from on_crash (must be
        /// discarded) and schedules a timer from on_recover.
        struct Durable {
            log: Shared<Vec<String>>,
            peer: ActorId,
        }
        impl Actor<Msg> for Durable {
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                self.log
                    .borrow_mut()
                    .push(format!("msg {:?} at {}", msg, ctx.now().as_millis()));
            }
            fn on_crash(&mut self, lossy: bool, ctx: &mut Ctx<'_, Msg>) {
                self.log.borrow_mut().push(format!("crash lossy={lossy}"));
                ctx.send(self.peer, Msg::Ping(0)); // must be discarded
            }
            fn on_recover(&mut self, ctx: &mut Ctx<'_, Msg>) {
                self.log
                    .borrow_mut()
                    .push(format!("recover at {}", ctx.now().as_millis()));
                ctx.schedule_self(SimDuration::from_millis(5), Msg::Tick);
            }
        }
        let log = Shared::new(Vec::new());
        let peer_log = Shared::new(Vec::new());
        let mut sim = fixed_sim(0);
        let a = sim.add_actor(Box::new(Durable {
            log: log.clone(),
            peer: ActorId(1),
        }));
        let _peer = sim.add_actor(Box::new(Echo {
            peer: None,
            log: peer_log.clone(),
            ticks: 0,
        }));
        sim.crash_at(a, SimTime::from_secs(1), false);
        sim.inject_at(SimTime::from_secs(2), a, Msg::Ping(7)); // held
        sim.recover_at(a, SimTime::from_secs(3));
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        assert_eq!(
            *log.borrow(),
            vec![
                "crash lossy=false".to_string(),
                "recover at 3000".to_string(),
                "msg Ping(7) at 3000".to_string(), // held replay after the hook
                "msg Tick at 3005".to_string(),    // timer armed by on_recover
            ]
        );
        // The send attempted from on_crash never reached the peer.
        assert!(peer_log.borrow().is_empty());
    }

    #[test]
    fn inject_many_matches_repeated_inject_at() {
        fn run(batched: bool) -> Vec<(SimTime, Msg)> {
            let log = Shared::new(Vec::new());
            let mut sim = fixed_sim(0);
            let a = sim.add_actor(Box::new(Echo {
                peer: None,
                log: log.clone(),
                ticks: 0,
            }));
            let msgs: Vec<_> = (0..5u64)
                .map(|i| (SimTime::from_millis(i * 3), a, Msg::Ping(0)))
                .collect();
            if batched {
                sim.inject_many(msgs);
            } else {
                for (at, to, m) in msgs {
                    sim.inject_at(at, to, m);
                }
            }
            sim.run_to_quiescence();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(run(true), run(false));
        assert_eq!(run(true).len(), 5);
    }

    #[test]
    fn external_sender_id_collides_with_no_actor() {
        let mut sim = fixed_sim(0);
        for _ in 0..4 {
            let id = sim.add_actor(Box::new(Echo {
                peer: None,
                log: Shared::new(Vec::new()),
                ticks: 0,
            }));
            assert_ne!(id, ActorId::EXTERNAL);
        }
    }

    /// Relays `Ping(n)` to its peer as `Ping(n-1)`, logging every
    /// receipt to its own (unshared) log.
    struct Relay {
        peer: ActorId,
        log: Shared<Vec<(SimTime, u32)>>,
    }

    impl Actor<Msg> for Relay {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Ping(n) = msg {
                self.log.borrow_mut().push((ctx.now(), n));
                if n > 0 {
                    ctx.send(self.peer, Msg::Ping(n - 1));
                }
            }
        }
    }

    /// Per-actor message logs plus final time, traffic count, and
    /// metrics snapshot.
    type RelayArtifacts = (Vec<Vec<(SimTime, u32)>>, SimTime, u64, String);

    /// Build a 6-actor relay ring over a jittery network with a
    /// crash/recovery and an overload window, run it, and collect
    /// every observable artifact.
    fn relay_artifacts(shards: Option<Vec<u32>>) -> RelayArtifacts {
        let mut sim = Sim::with_network(
            42,
            Network::new(DelayModel {
                base: SimDuration::from_millis(5),
                jitter: SimDuration::from_millis(9),
            }),
        );
        let n = 6u32;
        let logs: Vec<Shared<Vec<(SimTime, u32)>>> =
            (0..n).map(|_| Shared::new(Vec::new())).collect();
        for i in 0..n {
            sim.add_actor(Box::new(Relay {
                peer: ActorId((i + 1) % n),
                log: logs[i as usize].clone(),
            }));
        }
        if let Some(map) = shards {
            sim.set_shard_map(map);
        }
        for i in 0..4u64 {
            sim.inject_at(
                SimTime::from_millis(i * 3),
                ActorId(i as u32 % n),
                Msg::Ping(12),
            );
        }
        sim.crash_at(ActorId(2), SimTime::from_millis(40), false);
        sim.recover_at(ActorId(2), SimTime::from_millis(120));
        sim.overload_between(
            ActorId(4),
            SimTime::from_millis(20),
            SimTime::from_millis(90),
            SimDuration::from_millis(30),
        );
        assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
        let out = logs.iter().map(|l| l.borrow().clone()).collect();
        (
            out,
            sim.now(),
            sim.network().total_sent(),
            sim.obs().snapshot_jsonl(),
        )
    }

    #[test]
    fn sharded_run_matches_serial_exactly() {
        let serial = relay_artifacts(None);
        for map in [
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 1, 2, 0, 1, 2],
            vec![0, 1, 2, 3, 4, 5],
        ] {
            let sharded = relay_artifacts(Some(map.clone()));
            assert_eq!(serial.0, sharded.0, "actor logs differ for {map:?}");
            assert_eq!(serial.1, sharded.1, "final time differs for {map:?}");
            assert_eq!(serial.2, sharded.2, "traffic differs for {map:?}");
            assert_eq!(serial.3, sharded.3, "metrics snapshot differs for {map:?}");
        }
    }

    #[test]
    fn sharded_engine_metrics_report_epochs() {
        let mut sim = Sim::with_network(
            7,
            Network::new(DelayModel::fixed(SimDuration::from_millis(10))),
        );
        let log = Shared::new(Vec::new());
        let a = sim.add_actor(Box::new(Relay {
            peer: ActorId(1),
            log: log.clone(),
        }));
        sim.add_actor(Box::new(Relay {
            peer: ActorId(0),
            log: Shared::new(Vec::new()),
        }));
        sim.set_shard_map(vec![0, 1]);
        sim.inject_at(SimTime::ZERO, a, Msg::Ping(6));
        sim.run_to_quiescence();
        let engine = sim.engine_metrics().with(hcm_obs::export::snapshot_jsonl);
        assert!(engine.contains("sim.epochs"), "engine metrics: {engine}");
        assert!(
            engine.contains("sim.cross_shard_msgs"),
            "engine metrics: {engine}"
        );
        assert_eq!(log.borrow().len(), 4); // Ping(6), 4, 2, 0 at actor 0
    }

    #[test]
    fn sharded_run_resumes_across_horizons() {
        type Logs = (Vec<(SimTime, u32)>, Vec<(SimTime, u32)>, SimTime);
        fn run(map: Option<Vec<u32>>) -> Logs {
            let mut sim = Sim::with_network(
                11,
                Network::new(DelayModel {
                    base: SimDuration::from_millis(8),
                    jitter: SimDuration::from_millis(4),
                }),
            );
            let la = Shared::new(Vec::new());
            let lb = Shared::new(Vec::new());
            sim.add_actor(Box::new(Relay {
                peer: ActorId(1),
                log: la.clone(),
            }));
            sim.add_actor(Box::new(Relay {
                peer: ActorId(0),
                log: lb.clone(),
            }));
            if let Some(m) = map {
                sim.set_shard_map(m);
            }
            sim.inject_at(SimTime::ZERO, ActorId(0), Msg::Ping(20));
            assert_eq!(
                sim.run(Some(SimTime::from_millis(60))),
                RunOutcome::HorizonReached
            );
            assert_eq!(sim.now(), SimTime::from_millis(60));
            assert_eq!(sim.run_to_quiescence(), RunOutcome::Quiescent);
            let a = la.borrow().clone();
            let b = lb.borrow().clone();
            (a, b, sim.now())
        }
        assert_eq!(run(None), run(Some(vec![0, 1])));
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        fn run_once(seed: u64) -> Vec<(SimTime, Msg)> {
            let log = Shared::new(Vec::new());
            let mut sim = Sim::with_network(
                seed,
                Network::new(DelayModel {
                    base: SimDuration::from_millis(5),
                    jitter: SimDuration::from_millis(50),
                }),
            );
            let a = sim.add_actor(Box::new(Echo {
                peer: None,
                log: log.clone(),
                ticks: 0,
            }));
            let b = sim.add_actor(Box::new(Echo {
                peer: Some(a),
                log: log.clone(),
                ticks: 0,
            }));
            for i in 0..10 {
                sim.inject_at(SimTime::from_millis(i * 7), b, Msg::Ping(2));
            }
            sim.run_to_quiescence();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(run_once(99), run_once(99));
        assert_ne!(run_once(99), run_once(100));
    }
}
