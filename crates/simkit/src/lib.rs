//! # hcm-simkit — deterministic discrete-event simulation substrate
//!
//! The paper's toolkit ran over real networks, Sybase servers and Unix
//! file systems at Stanford. This crate is the substitution documented in
//! `DESIGN.md`: a deterministic discrete-event simulation providing
//! exactly the environment the paper's formal framework assumes —
//!
//! * a **global virtual clock** ([`hcm_core::SimTime`]) against which
//!   metric interface bounds (`→δ`) and metric guarantees (κ) can be
//!   checked *exactly* rather than statistically;
//! * **in-order message delivery** between any pair of actors (the
//!   paper's Appendix property 7 assumes "in-order message delivery
//!   between sites and in-order processing at each site");
//! * **failure injection** — crashes (logical failures), overload
//!   windows (metric failures), message-dropping variants — driving the
//!   §5 experiments;
//! * **seeded randomness** so every experiment is reproducible.
//!
//! The programming model is an actor loop: components implement
//! [`Actor`] and exchange a user-chosen message type through [`Sim`].
//!
//! Execution is serial by default. With [`Sim::set_shard_map`], the
//! run is partitioned across one worker thread per shard in
//! conservative lock-step epochs (see [`shard`]), producing results
//! byte-identical to the serial execution.

#![warn(missing_docs)]

pub mod actor;
pub mod net;
pub mod rng;
mod shard;
pub mod sim;

pub use actor::{Actor, ActorId, Ctx};
pub use hcm_obs::{Obs, Scope};
pub use net::{ActorStatus, DelayModel, Network, SendKind};
pub use rng::SimRng;
pub use sim::{RunOutcome, Sim};
