//! Strategy compilation — the toolkit's initialization step (§4.1).
//!
//! "Once a strategy is specified, the CM distributes the rules of the
//! strategy to CM-Shells based on the site of the event on the
//! left-hand side of the rule. … Based on this distribution of rules,
//! the CM also determines, for each event template in each rule, the
//! CM-Shells and/or the CM-Translators to which an event matching that
//! template must be forwarded."
//!
//! A *Strategy Specification* file looks like:
//!
//! ```text
//! [locate]            # where objects are located (§4.2.2)
//! salary1 = A
//! salary2 = B
//!
//! [private]           # CM-private data, stored in a shell (§3.2)
//! Cx = A
//!
//! [strategy]
//! N(salary1(n), b) -> WR(salary2(n), b) within 5s
//!
//! [guarantee y_follows_x]
//! (salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 < t1
//! ```

use crate::registry::mentioned_bases;
use hcm_core::{RuleId, RuleRegistry, SiteId, Sym, TemplateDesc};
use hcm_rulelang::{parse_guarantee, parse_strategy_rule, Guarantee, SpecFile, StrategyRule};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A strategy-compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "strategy compilation error: {}", self.msg)
    }
}

impl std::error::Error for CompileError {}

fn err(msg: impl Into<String>) -> CompileError {
    CompileError { msg: msg.into() }
}

/// Where objects are located: item/event base name → site, plus which
/// bases are CM-private. Keyed by interned [`Sym`]s so routing lookups
/// hash a `u32` symbol instead of walking string keys; `&str` callers
/// go through the interner (cold paths only — hot callers hold a `Sym`
/// already).
#[derive(Debug, Clone, Default)]
pub struct Locator {
    base_to_site: HashMap<Sym, SiteId>,
    private: HashSet<Sym>,
}

impl Locator {
    /// An empty locator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Locate a database item base at a site.
    pub fn locate(&mut self, base: impl Into<Sym>, site: SiteId) {
        self.base_to_site.insert(base.into(), site);
    }

    /// Locate a CM-private item base at a site's shell.
    pub fn locate_private(&mut self, base: impl Into<Sym>, site: SiteId) {
        let base = base.into();
        self.private.insert(base);
        self.base_to_site.insert(base, site);
    }

    /// The site of a base name.
    #[must_use]
    pub fn site_of(&self, base: impl Into<Sym>) -> Option<SiteId> {
        self.base_to_site.get(&base.into()).copied()
    }

    /// Whether a base names CM-private (shell-resident) data.
    #[must_use]
    pub fn is_private(&self, base: impl Into<Sym>) -> bool {
        self.private.contains(&base.into())
    }

    /// The site a template's event occurs at, if determined by its
    /// name (`P` templates have no inherent site).
    #[must_use]
    pub fn template_site(&self, t: &TemplateDesc) -> Option<SiteId> {
        match t {
            TemplateDesc::P { .. } | TemplateDesc::False => None,
            TemplateDesc::Custom { name, .. } => self.site_of(name),
            other => other.item_pattern().and_then(|p| self.site_of(p.base)),
        }
    }
}

/// One strategy rule with its placement.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// Registered id (shared numbering with interface rules).
    pub id: RuleId,
    /// The rule itself.
    pub rule: StrategyRule,
    /// Site of the LHS event — the shell that evaluates the LHS
    /// ("each rule is executed in the CM-Shell handling the site at
    /// which the left-hand side event occurs").
    pub lhs_site: SiteId,
    /// Common site of every RHS event (paper fn. 7: "all the events on
    /// the RHS of a rule must have the same site").
    pub rhs_site: SiteId,
}

/// A compiled strategy: placed rules, the locator, interest patterns,
/// and the declared guarantees.
///
/// The rule arena and the locator live behind `Arc`: every shell of a
/// deployment shares one copy instead of deep-cloning `sites ×
/// total_rules` rules (and as many locator entries) at construction.
#[derive(Debug, Clone, Default)]
pub struct CompiledStrategy {
    /// Rules in specification order (shared arena).
    pub rules: Arc<Vec<CompiledRule>>,
    /// Object placement (shared).
    pub locator: Arc<Locator>,
    /// Declared guarantees.
    pub guarantees: Vec<Guarantee>,
    /// Rule id → position in `rules`, built once and shared by every
    /// shell for remote-fire lookups.
    lookup: Arc<HashMap<RuleId, usize>>,
}

impl CompiledStrategy {
    /// Compile a strategy-specification file. `site_ids` maps the site
    /// names used in the file to simulation sites; `registry` assigns
    /// rule ids (shared with interface statements so event provenance
    /// is unambiguous).
    pub fn from_spec(
        src: &str,
        site_ids: &BTreeMap<String, SiteId>,
        registry: &mut RuleRegistry,
    ) -> Result<CompiledStrategy, CompileError> {
        let spec = SpecFile::parse(src).map_err(|e| err(e.to_string()))?;
        let mut locator = Locator::new();

        for sect in spec.sections_of("locate") {
            for (base, site_name) in sect.as_pairs().map_err(|e| err(e.to_string()))? {
                let site = *site_ids
                    .get(&site_name)
                    .ok_or_else(|| err(format!("[locate]: unknown site `{site_name}`")))?;
                locator.locate(base, site);
            }
        }
        for sect in spec.sections_of("private") {
            for (base, site_name) in sect.as_pairs().map_err(|e| err(e.to_string()))? {
                let site = *site_ids
                    .get(&site_name)
                    .ok_or_else(|| err(format!("[private]: unknown site `{site_name}`")))?;
                locator.locate_private(base, site);
            }
        }

        let mut rules = Vec::new();
        for sect in spec.sections_of("strategy") {
            for line in &sect.lines {
                let rule = parse_strategy_rule(line).map_err(|e| err(e.to_string()))?;
                let compiled = place_rule(rule, &locator, registry)?;
                rules.push(compiled);
            }
        }

        let mut guarantees = Vec::new();
        for sect in spec.sections_of("guarantee") {
            let [name] = sect.args() else {
                return Err(err("[guarantee] needs exactly one name argument"));
            };
            let body = sect.lines.join(" ");
            let g = parse_guarantee(name, &body).map_err(|e| err(e.to_string()))?;
            guarantees.push(g);
        }

        let lookup = rules.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
        Ok(CompiledStrategy {
            rules: Arc::new(rules),
            locator: Arc::new(locator),
            guarantees,
            lookup: Arc::new(lookup),
        })
    }

    /// The shared rule-id → arena-position lookup.
    #[must_use]
    pub fn rule_lookup(&self) -> Arc<HashMap<RuleId, usize>> {
        Arc::clone(&self.lookup)
    }

    /// Rules whose LHS the given site's shell evaluates, excluding
    /// periodic (`P`-headed) rules.
    pub fn rules_at(&self, site: SiteId) -> impl Iterator<Item = &CompiledRule> {
        self.rules
            .iter()
            .filter(move |r| r.lhs_site == site && !matches!(r.rule.lhs, TemplateDesc::P { .. }))
    }

    /// Periodic rules the given site's shell must arm timers for.
    pub fn periodic_rules_at(&self, site: SiteId) -> impl Iterator<Item = &CompiledRule> {
        self.rules
            .iter()
            .filter(move |r| r.lhs_site == site && matches!(r.rule.lhs, TemplateDesc::P { .. }))
    }

    /// Interest patterns for a site's translator: LHS templates of
    /// database-side event kinds (`Ws`, `W`, `WR`, `RR`) that some rule
    /// at this site watches. The translator forwards matching events to
    /// its shell; everything else stays local to the database.
    #[must_use]
    pub fn interest_patterns(&self, site: SiteId) -> Vec<TemplateDesc> {
        self.rules
            .iter()
            .filter(|r| r.lhs_site == site)
            .filter(|r| {
                matches!(
                    r.rule.lhs,
                    TemplateDesc::Ws { .. }
                        | TemplateDesc::W { .. }
                        | TemplateDesc::Wr { .. }
                        | TemplateDesc::Rr { .. }
                )
            })
            .map(|r| r.rule.lhs.clone())
            .collect()
    }

    /// The sites a guarantee involves, derived from the item bases its
    /// formula mentions.
    #[must_use]
    pub fn guarantee_sites(&self, g: &Guarantee) -> Vec<SiteId> {
        let mut sites: Vec<SiteId> = mentioned_bases(g)
            .iter()
            .filter_map(|b| self.locator.site_of(b))
            .collect();
        sites.sort();
        sites.dedup();
        sites
    }

    /// Look up a compiled rule by id.
    #[must_use]
    pub fn rule(&self, id: RuleId) -> Option<&CompiledRule> {
        self.lookup.get(&id).map(|&i| &self.rules[i])
    }
}

fn place_rule(
    rule: StrategyRule,
    locator: &Locator,
    registry: &mut RuleRegistry,
) -> Result<CompiledRule, CompileError> {
    // RHS site: every step with a determinable site must agree.
    let mut rhs_site: Option<SiteId> = None;
    for step in &rule.steps {
        if let Some(s) = locator.template_site(&step.event) {
            match rhs_site {
                None => rhs_site = Some(s),
                Some(prev) if prev != s => {
                    return Err(err(format!(
                        "RHS events of `{rule}` span sites {prev} and {s}; \
                         the rule language requires a single RHS site"
                    )))
                }
                Some(_) => {}
            }
        }
    }
    let lhs_site = locator.template_site(&rule.lhs);
    let (lhs_site, rhs_site) = match (lhs_site, rhs_site) {
        (Some(l), Some(r)) => (l, r),
        // P-headed rule: runs at its RHS site (the polling example of
        // §4.2.3 runs at the site being polled).
        (None, Some(r)) => (r, r),
        (Some(l), None) => (l, l),
        (None, None) => {
            return Err(err(format!(
                "cannot place rule `{rule}`: no located item or event on either side"
            )))
        }
    };
    let id = registry.register(rule.to_string());
    Ok(CompiledRule {
        id,
        rule,
        lhs_site,
        rhs_site,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites() -> BTreeMap<String, SiteId> {
        [
            ("A".to_string(), SiteId::new(0)),
            ("B".to_string(), SiteId::new(1)),
        ]
        .into_iter()
        .collect()
    }

    const SPEC: &str = r#"
[locate]
salary1 = A
salary2 = B

[private]
Cx = A

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s
P(60s) -> RR(salary1(n)) within 1s

[guarantee y_follows_x]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 < t1
"#;

    #[test]
    fn compiles_and_places() {
        let mut reg = RuleRegistry::new();
        let cs = CompiledStrategy::from_spec(SPEC, &sites(), &mut reg).unwrap();
        assert_eq!(cs.rules.len(), 2);
        // Propagation rule: LHS N(salary1) at A, RHS WR(salary2) at B.
        assert_eq!(cs.rules[0].lhs_site, SiteId::new(0));
        assert_eq!(cs.rules[0].rhs_site, SiteId::new(1));
        // Polling rule: P-headed, placed at RR(salary1)'s site A.
        assert_eq!(cs.rules[1].lhs_site, SiteId::new(0));
        assert_eq!(cs.rules[1].rhs_site, SiteId::new(0));
        assert_eq!(reg.len(), 2);
        assert_eq!(cs.guarantees.len(), 1);
        assert_eq!(
            cs.guarantee_sites(&cs.guarantees[0]),
            vec![SiteId::new(0), SiteId::new(1)]
        );
        assert!(cs.rule(cs.rules[0].id).is_some());
        assert!(cs.rule(RuleId(99)).is_none());
    }

    #[test]
    fn rule_distribution_by_lhs_site() {
        let mut reg = RuleRegistry::new();
        let cs = CompiledStrategy::from_spec(SPEC, &sites(), &mut reg).unwrap();
        let at_a: Vec<_> = cs.rules_at(SiteId::new(0)).collect();
        assert_eq!(at_a.len(), 1); // the N rule; the P rule is periodic
        assert_eq!(cs.rules_at(SiteId::new(1)).count(), 0);
        assert_eq!(cs.periodic_rules_at(SiteId::new(0)).count(), 1);
        assert_eq!(cs.periodic_rules_at(SiteId::new(1)).count(), 0);
    }

    #[test]
    fn interest_patterns_only_db_side_kinds() {
        let spec = r#"
[locate]
X = A
Y = B
[strategy]
Ws(X, b) -> WR(Y, b) within 5s
N(X, b) -> WR(Y, b) within 5s
"#;
        let mut reg = RuleRegistry::new();
        let cs = CompiledStrategy::from_spec(spec, &sites(), &mut reg).unwrap();
        let pats = cs.interest_patterns(SiteId::new(0));
        // Only the Ws LHS needs translator forwarding; N events arrive
        // at the shell natively.
        assert_eq!(pats.len(), 1);
        assert!(matches!(pats[0], TemplateDesc::Ws { .. }));
        assert!(cs.interest_patterns(SiteId::new(1)).is_empty());
    }

    #[test]
    fn private_data_located() {
        let mut reg = RuleRegistry::new();
        let cs = CompiledStrategy::from_spec(SPEC, &sites(), &mut reg).unwrap();
        assert!(cs.locator.is_private("Cx"));
        assert!(!cs.locator.is_private("salary1"));
        assert_eq!(cs.locator.site_of("Cx"), Some(SiteId::new(0)));
    }

    #[test]
    fn rejects_cross_site_rhs() {
        let spec = r#"
[locate]
X = A
Y = B
Z = A
[strategy]
N(X, b) -> WR(Y, b) ; WR(Z, b) within 5s
"#;
        let mut reg = RuleRegistry::new();
        let e = CompiledStrategy::from_spec(spec, &sites(), &mut reg).unwrap_err();
        assert!(e.msg.contains("single RHS site"));
    }

    #[test]
    fn rejects_unknown_site_and_unplaceable() {
        let mut reg = RuleRegistry::new();
        assert!(CompiledStrategy::from_spec("[locate]\nX = Q\n", &sites(), &mut reg).is_err());
        let unplace = "[strategy]\nN(Unlocated, b) -> W(AlsoUnlocated, b) within 1s\n";
        assert!(CompiledStrategy::from_spec(unplace, &sites(), &mut reg).is_err());
    }

    #[test]
    fn custom_events_locatable() {
        let spec = r#"
[locate]
X = A
LimitReq = B
[strategy]
Ws(X, a, b) -> LimitReq(b) within 5s
"#;
        let mut reg = RuleRegistry::new();
        let cs = CompiledStrategy::from_spec(spec, &sites(), &mut reg).unwrap();
        assert_eq!(cs.rules[0].lhs_site, SiteId::new(0));
        assert_eq!(cs.rules[0].rhs_site, SiteId::new(1));
    }

    #[test]
    fn guarantee_section_needs_name() {
        let mut reg = RuleRegistry::new();
        let bad = "[guarantee]\n(X = 1) @ t\n";
        assert!(CompiledStrategy::from_spec(bad, &sites(), &mut reg).is_err());
    }
}
