//! The inside of a CM-Translator: the adapter trait over native RISIs.
//!
//! A [`RisBackend`] owns one raw store and performs four duties, always
//! through the store's **native** interface (command strings for the
//! relational source, paths for the file store, …):
//!
//! 1. apply *spontaneous* application operations, returning the changes
//!    to tracked items **only when the store has a native change feed**
//!    (relational triggers, kv watches) — poll-only stores return
//!    nothing, and the translator must discover changes by reading;
//! 2. perform CM-requested writes (a write of [`Value::Null`] deletes);
//! 3. read current values ([`Value::Null`] = absent);
//! 4. enumerate the ground items matching a pattern, for periodic
//!    interfaces and initial-state capture.

use crate::msg::SpontaneousOp;
use crate::rid::RisKind;
use hcm_core::{ItemId, ItemPattern, SimTime, Value};
use hcm_ris::RisError;

/// A change to a tracked item, observed through a native change feed.
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// The item affected.
    pub item: ItemId,
    /// Prior value (`None` when unknown, `Some(Null)` when absent).
    pub old: Option<Value>,
    /// New value (`Null` for deletion).
    pub new: Value,
}

/// Adapter over one raw store. See the module docs.
pub trait RisBackend {
    /// Which store kind this adapts.
    fn kind(&self) -> RisKind;

    /// Whether the store has a *native* change feed (triggers,
    /// watches). When `false`, the changes returned by
    /// [`RisBackend::apply_spontaneous`] are ground truth for the
    /// recorded trace only — the translator must NOT base notify
    /// interfaces on them (it could not have observed them in a real
    /// deployment; it polls instead).
    fn has_change_feed(&self) -> bool;

    /// Apply a native application operation at time `now`.
    fn apply_spontaneous(
        &mut self,
        op: &SpontaneousOp,
        now: SimTime,
    ) -> Result<Vec<Change>, RisError>;

    /// Perform a CM-requested write; returns the old value when the
    /// native interface exposes it. `Err(ConstraintViolation)` when a
    /// local constraint rejects the write (demarcation relies on this).
    fn write(
        &mut self,
        item: &ItemId,
        value: &Value,
        now: SimTime,
    ) -> Result<Option<Value>, RisError>;

    /// Read the current value of an item (`Null` when absent).
    fn read(&self, item: &ItemId) -> Result<Value, RisError>;

    /// Ground items currently matching `pattern`.
    fn enumerate(&self, pattern: &ItemPattern) -> Vec<ItemId>;
}

/// Render a value in the plain-text form the file store and whois
/// directory hold.
#[must_use]
pub fn value_to_text(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

/// Parse plain text into a typed value according to a CM-RID
/// `type = int|float|str|bool` mapping property (default `str`).
#[must_use]
pub fn text_to_value(text: &str, ty: Option<&str>) -> Value {
    match ty.unwrap_or("str") {
        "int" => text.trim().parse::<i64>().map_or(Value::Null, Value::Int),
        "float" => text.trim().parse::<f64>().map_or(Value::Null, Value::Float),
        "bool" => match text.trim() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::Null,
        },
        _ => Value::Str(text.to_owned()),
    }
}

/// A single-parameter native-name pattern such as `phone/$p0` or
/// `/phones/$p0.txt`: render an item parameter into a native key, or
/// extract the parameter back out of one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPattern {
    prefix: String,
    suffix: String,
    has_param: bool,
}

impl KeyPattern {
    /// Parse a pattern containing exactly one `$p0` placeholder, or a
    /// constant pattern (no placeholder — an unparameterized item).
    #[must_use]
    pub fn parse(pattern: &str) -> KeyPattern {
        match pattern.split_once("$p0") {
            Some((pre, suf)) => KeyPattern {
                prefix: pre.to_owned(),
                suffix: suf.to_owned(),
                has_param: true,
            },
            None => KeyPattern {
                prefix: pattern.to_owned(),
                suffix: String::new(),
                has_param: false,
            },
        }
    }

    /// Whether the pattern carries a `$p0` placeholder; constant
    /// patterns name *unparameterized* items.
    #[must_use]
    pub fn has_param(&self) -> bool {
        self.has_param
    }

    /// Build the item for `base` from a native key's extracted
    /// parameter: parameterized patterns yield `base(param)`, constant
    /// patterns yield the plain `base`.
    #[must_use]
    pub fn item_for(&self, base: &str, param: &str) -> crate::ItemIdAlias {
        if self.has_param {
            hcm_core::ItemId::with(base.to_owned(), [hcm_core::Value::from(param)])
        } else {
            hcm_core::ItemId::plain(base.to_owned())
        }
    }

    /// Render a native key for a parameter (pass `""` for constant
    /// patterns).
    #[must_use]
    pub fn render(&self, param: &str) -> String {
        format!("{}{}{}", self.prefix, param, self.suffix)
    }

    /// Extract the parameter from a native key, if it matches.
    #[must_use]
    pub fn extract<'a>(&self, key: &'a str) -> Option<&'a str> {
        key.strip_prefix(&self.prefix)?.strip_suffix(&self.suffix)
    }
}

/// Resolve the single string parameter of an item (most mapped stores
/// namespace by one key). Items with no parameters use `""`.
pub(crate) fn single_param(item: &ItemId) -> Result<String, RisError> {
    match item.params.len() {
        0 => Ok(String::new()),
        1 => Ok(value_to_text(&item.params[0])),
        n => Err(RisError::Unsupported(format!(
            "store mapping supports at most 1 item parameter, `{item}` has {n}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        assert_eq!(text_to_value("42", Some("int")), Value::Int(42));
        assert_eq!(text_to_value(" 2.5 ", Some("float")), Value::Float(2.5));
        assert_eq!(text_to_value("true", Some("bool")), Value::Bool(true));
        assert_eq!(text_to_value("hi", None), Value::Str("hi".into()));
        assert_eq!(text_to_value("junk", Some("int")), Value::Null);
        assert_eq!(value_to_text(&Value::Int(7)), "7");
        assert_eq!(value_to_text(&Value::Str("x".into())), "x");
        assert_eq!(value_to_text(&Value::Null), "");
    }

    #[test]
    fn key_patterns() {
        let p = KeyPattern::parse("/phones/$p0.txt");
        assert_eq!(p.render("ann"), "/phones/ann.txt");
        assert_eq!(p.extract("/phones/ann.txt"), Some("ann"));
        assert_eq!(p.extract("/other/ann.txt"), None);
        assert_eq!(p.extract("/phones/ann.csv"), None);
        let constant = KeyPattern::parse("config");
        assert_eq!(constant.render(""), "config");
        assert_eq!(constant.extract("config"), Some(""));
    }

    #[test]
    fn single_param_rules() {
        assert_eq!(single_param(&ItemId::plain("X")).unwrap(), "");
        assert_eq!(
            single_param(&ItemId::with("p", [Value::from("ann")])).unwrap(),
            "ann"
        );
        assert!(single_param(&ItemId::with("p", [Value::Int(1), Value::Int(2)])).is_err());
    }
}
