//! The CM-Shell actor — the distributed rule engine.
//!
//! "At run-time, the CM-Shells process events received from their
//! respective CM-Translators and fire rules appropriately. The events
//! that are produced as a result of rules firing are forwarded to the
//! local CM-Translator and other CM-Shells as determined during
//! initialization" (§4.1).
//!
//! Each shell evaluates the LHS of the strategy rules assigned to its
//! site; when a rule fires, its sequenced RHS executes at the RHS
//! site's shell (locally, or via a `RemoteFire` message). The shell
//! also holds the CM-private data strategies may read and write
//! (§3.2's `Cx`, §6.3's `Flag`/`Tb`), arms timers for `P(p)`-headed
//! rules, tracks outstanding CMI requests for failure detection (§5),
//! and keeps the site's [`GuaranteeRegistry`].

use crate::compile::{CompiledRule, CompiledStrategy, Locator};
use crate::dispatch::{DispatchMode, RuleIndex};
use crate::durability::{
    fail_to_tag, status_to_tag, tag_to_fail, tag_to_status, StatePolicy, StoreBridge,
};
use crate::msg::{CmMsg, FailureKindMsg, RequestKind, TranslatorEvent};
use crate::registry::{FailureKind, GuaranteeRegistry};
use hcm_core::{
    Bindings, EventDesc, EventId, ItemId, RuleId, Shared, SimDuration, SimTime, SiteId,
    TemplateDesc, TraceRecorder, Value,
};
use hcm_obs::{Metrics, Obs, Scope, SpanId, SpanKind, Spans};
use hcm_rulelang::ast::BindingsEnv;
use hcm_simkit::{Actor, ActorId, Ctx};
use hcm_store::{LogRecord, ShellSnapshot};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Delay for shell→translator request submission (same machine).
const LOCAL_DELAY: SimDuration = SimDuration::from_millis(1);

/// Observable shell counters, materialized from the metrics registry.
#[derive(Debug, Default, Clone)]
pub struct ShellStats {
    /// Rule firings executed (RHS runs).
    pub firings: u64,
    /// LHS matches whose condition failed.
    pub cond_suppressed: u64,
    /// RHS steps skipped by their step condition.
    pub steps_skipped: u64,
    /// Write/read requests sent to the local translator.
    pub requests_sent: u64,
    /// Metric failures detected (deadline missed).
    pub metric_failures_detected: u64,
    /// Logical failures detected (escalation deadline missed).
    pub logical_failures_detected: u64,
    /// Failures cleared (late response arrived).
    pub failures_cleared: u64,
}

/// Registry-backed view of one shell's counters.
///
/// The shell writes every counter straight into the shared
/// [`Metrics`] registry under `Scope::Site`; this handle is a thin
/// typed view over those entries. `borrow()` materializes an owned
/// [`ShellStats`] snapshot, so existing `stats.borrow().firings`
/// call sites read naturally.
#[derive(Debug, Clone)]
pub struct ShellStatsHandle {
    metrics: Metrics,
    scope: Scope,
}

impl ShellStatsHandle {
    /// View over `site`'s shell metrics in `metrics`.
    #[must_use]
    pub fn new(metrics: Metrics, site: SiteId) -> Self {
        ShellStatsHandle {
            metrics,
            scope: Scope::Site(site.index()),
        }
    }

    fn inc(&self, name: &str) {
        self.metrics.inc(self.scope, name);
    }

    fn get(&self, name: &str) -> u64 {
        self.metrics.counter(self.scope, name)
    }

    /// Snapshot the counters as an owned [`ShellStats`].
    #[must_use]
    pub fn borrow(&self) -> ShellStats {
        ShellStats {
            firings: self.get("shell.firings"),
            cond_suppressed: self.get("shell.cond_suppressed"),
            steps_skipped: self.get("shell.steps_skipped"),
            requests_sent: self.get("shell.requests_sent"),
            metric_failures_detected: self.get("shell.metric_failures_detected"),
            logical_failures_detected: self.get("shell.logical_failures_detected"),
            failures_cleared: self.get("shell.failures_cleared"),
        }
    }
}

/// Failure-detection timing configuration.
#[derive(Debug, Clone, Copy)]
pub struct FailureConfig {
    /// A request unanswered after this long is a *metric* failure.
    pub deadline: SimDuration,
    /// Still unanswered after this much more ⇒ *logical* failure.
    pub escalation: SimDuration,
    /// When set, the shell probes its translator at this period even
    /// with no application traffic, so a silent site failure is
    /// detected within `heartbeat + deadline` rather than waiting for
    /// the next constraint-driven request (§5's silent-failure gap).
    pub heartbeat: Option<SimDuration>,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            deadline: SimDuration::from_secs(5),
            escalation: SimDuration::from_secs(30),
            heartbeat: None,
        }
    }
}

struct Outstanding {
    /// Whether a metric failure has already been flagged for it.
    flagged: bool,
    /// The request's causal span, ended when the reply (or the
    /// escalation verdict) arrives.
    span: SpanId,
    /// When the request was issued, for latency histograms.
    sent_at: SimTime,
}

/// A `P`-headed rule this shell arms timers for, with its period
/// precomputed at construction so ticks don't re-destructure the LHS.
struct PeriodicRule {
    /// Position in the shared rule arena.
    pos: usize,
    /// Constant period; `None` (non-constant or non-positive) never
    /// arms a timer.
    period: Option<SimDuration>,
}

/// The CM-Shell actor. See module docs.
pub struct ShellActor {
    site: SiteId,
    translator: ActorId,
    /// Shell of every site, indexed by site ordinal, for
    /// RemoteFire/Custom/FailureNotice routing.
    shells: Vec<ActorId>,
    /// Shared arena of every compiled rule (execution needs RHS
    /// definitions of rules matched elsewhere).
    rules: Arc<Vec<CompiledRule>>,
    /// Positions into `rules` whose LHS this shell evaluates.
    my_rules: Vec<usize>,
    /// Discrimination index over `my_rules` (see [`crate::dispatch`]).
    dispatch: RuleIndex,
    /// Which matching path `process_event` takes.
    mode: DispatchMode,
    /// Rule id → arena position (remote fires look rules up by id);
    /// built once per strategy, shared by every shell.
    rule_index: Arc<HashMap<RuleId, usize>>,
    /// `P`-headed rules this shell arms timers for.
    periodic_rules: Vec<PeriodicRule>,
    locator: Arc<Locator>,
    /// CM-private and auxiliary data (shared with the scenario so
    /// applications can read it — §7.1).
    private: Shared<BTreeMap<ItemId, Value>>,
    registry: Shared<GuaranteeRegistry>,
    recorder: TraceRecorder,
    stats: ShellStatsHandle,
    metrics: Metrics,
    spans: Spans,
    failure_cfg: FailureConfig,
    outstanding: BTreeMap<u64, Outstanding>,
    next_req: u64,
    stop_periodics_at: SimTime,
    /// How this shell's state relates to crashes (see
    /// [`crate::durability`]). Default keeps historical behaviour.
    policy: StatePolicy,
    /// Set by a lossy crash; consumed by the next recovery.
    crashed_lossy: bool,
    /// Scratch bindings reused across LHS match attempts.
    match_scratch: Bindings,
    /// Scratch list of (rule position, bindings) firings per event.
    firing_scratch: Vec<(usize, Bindings)>,
    /// Scratch list of candidate rule positions per event.
    cand_scratch: Vec<usize>,
}

/// The constant period of a `P`-headed LHS, when it has one.
fn const_period(lhs: &TemplateDesc) -> Option<SimDuration> {
    match lhs {
        TemplateDesc::P {
            period: hcm_core::Term::Const(Value::Int(ms @ 1..)),
        } => Some(SimDuration::from_millis(*ms as u64)),
        _ => None,
    }
}

impl ShellActor {
    /// Build a shell for `site`. `strategy` supplies rules, placement
    /// and the locator; `shells` holds every site's shell actor,
    /// indexed by site ordinal.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        site: SiteId,
        translator: ActorId,
        shells: Vec<ActorId>,
        strategy: &CompiledStrategy,
        private: Shared<BTreeMap<ItemId, Value>>,
        registry: Shared<GuaranteeRegistry>,
        recorder: TraceRecorder,
        obs: Obs,
        failure_cfg: FailureConfig,
        stop_periodics_at: SimTime,
    ) -> Self {
        let rules = Arc::clone(&strategy.rules);
        let my_rules: Vec<usize> = rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.lhs_site == site && !matches!(r.rule.lhs, TemplateDesc::P { .. }))
            .map(|(i, _)| i)
            .collect();
        let periodic_rules = rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.lhs_site == site && matches!(r.rule.lhs, TemplateDesc::P { .. }))
            .map(|(i, r)| PeriodicRule {
                pos: i,
                period: const_period(&r.rule.lhs),
            })
            .collect();
        let dispatch = RuleIndex::build(&rules, &my_rules);
        ShellActor {
            site,
            translator,
            shells,
            my_rules,
            dispatch,
            mode: DispatchMode::default(),
            rule_index: strategy.rule_lookup(),
            periodic_rules,
            locator: Arc::clone(&strategy.locator),
            rules,
            private,
            registry,
            recorder,
            stats: ShellStatsHandle::new(obs.metrics.clone(), site),
            metrics: obs.metrics,
            spans: obs.spans,
            failure_cfg,
            outstanding: BTreeMap::new(),
            next_req: 0,
            stop_periodics_at,
            policy: StatePolicy::default(),
            crashed_lossy: false,
            match_scratch: Bindings::new(),
            firing_scratch: Vec::new(),
            cand_scratch: Vec::new(),
        }
    }

    /// Select the LHS matching path. The default is
    /// [`DispatchMode::Indexed`]; [`DispatchMode::Linear`] retains the
    /// reference full scan for differential testing — both produce
    /// byte-identical traces, metrics and spans.
    pub fn set_dispatch_mode(&mut self, mode: DispatchMode) {
        self.mode = mode;
    }

    /// Registry-backed view of this shell's counters.
    #[must_use]
    pub fn stats(&self) -> ShellStatsHandle {
        self.stats.clone()
    }

    /// Set how this shell's state relates to crashes. With
    /// [`StatePolicy::Durable`], every durable mutation is
    /// write-ahead-logged and recovery replays checkpoint + log.
    pub fn set_state_policy(&mut self, policy: StatePolicy) {
        self.policy = policy;
    }

    /// Log one durable mutation; checkpoint when the cadence says so.
    fn log_durable(&mut self, rec: &LogRecord) {
        let due = match self.policy.bridge() {
            Some(b) => b.log(rec),
            None => return,
        };
        if due {
            self.write_checkpoint();
        }
    }

    /// Snapshot the shell's durable state into the store.
    fn write_checkpoint(&mut self) {
        let snap = ShellSnapshot {
            private: self
                .private
                .borrow()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            registry: self
                .registry
                .borrow()
                .statuses()
                .into_iter()
                .map(|(name, status, since)| (name, status_to_tag(status), since))
                .collect(),
            next_req: self.next_req,
            outstanding: self
                .outstanding
                .iter()
                .map(|(&req_id, o)| (req_id, o.sent_at, o.flagged))
                .collect(),
        };
        let blob = snap.encode();
        if let Some(b) = self.policy.bridge() {
            b.save_checkpoint(&blob);
        }
    }

    fn record(
        &self,
        now: SimTime,
        desc: EventDesc,
        old: Option<Value>,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
    ) -> EventId {
        self.recorder
            .record(now, self.site, desc, old, rule, trigger)
    }

    fn private_lookup(&self, item: &ItemId) -> Option<Value> {
        self.private.borrow().get(item).cloned()
    }

    /// Match an event against this shell's rules and dispatch firings.
    ///
    /// Under [`DispatchMode::Indexed`] the candidate set comes from
    /// the discrimination index — a strict subset of `my_rules` in the
    /// same relative order, excluding only guaranteed kind/base
    /// mismatches — so every observable side effect (trace, metrics,
    /// spans, firing order) is identical to the linear scan.
    fn process_event(&mut self, id: EventId, desc: &EventDesc, ctx: &mut Ctx<'_, CmMsg>) {
        let mut cands = std::mem::take(&mut self.cand_scratch);
        match self.mode {
            DispatchMode::Linear => cands.extend_from_slice(&self.my_rules),
            DispatchMode::Indexed => cands.extend(self.dispatch.candidates(desc)),
        }
        let mut bindings = std::mem::take(&mut self.match_scratch);
        let mut firings = std::mem::take(&mut self.firing_scratch);
        for &i in &cands {
            let r = &self.rules[i];
            bindings.clear();
            if !r.rule.lhs.match_desc(desc, &mut bindings) {
                continue;
            }
            // LHS condition: evaluated at the LHS site against CM-local
            // data (strategies never need global data access, §3.2).
            let env = BindingsEnv {
                bindings: &bindings,
                lookup: |item: &ItemId| self.private_lookup(item),
            };
            if !r.rule.cond.eval(&env) {
                self.stats.inc("shell.cond_suppressed");
                let s = self.spans.start(
                    SpanKind::CondEval,
                    None,
                    self.site,
                    Some(r.id),
                    Some(id),
                    ctx.now(),
                    "suppressed",
                );
                self.spans.end(s, ctx.now());
                continue;
            }
            firings.push((i, std::mem::take(&mut bindings)));
        }
        cands.clear();
        self.cand_scratch = cands;
        bindings.clear();
        self.match_scratch = bindings;
        let rules = Arc::clone(&self.rules);
        for (i, bindings) in firings.drain(..) {
            let r = &rules[i];
            if r.rhs_site == self.site {
                self.execute_rhs(r.id, id, bindings, ctx);
            } else {
                let target = self.shells[r.rhs_site.index() as usize];
                let s = self.spans.start_with(
                    SpanKind::RemoteFire,
                    None,
                    self.site,
                    Some(r.id),
                    Some(id),
                    ctx.now(),
                    || format!("to {}", r.rhs_site),
                );
                self.spans.end(s, ctx.now());
                ctx.send(
                    target,
                    CmMsg::RemoteFire {
                        rule: r.id,
                        trigger: id,
                        bindings,
                    },
                );
            }
        }
        self.firing_scratch = firings;
    }

    /// Execute a rule's sequenced RHS at this (the RHS) site.
    fn execute_rhs(
        &mut self,
        rule_id: RuleId,
        trigger: EventId,
        bindings: Bindings,
        ctx: &mut Ctx<'_, CmMsg>,
    ) {
        let now = ctx.now();
        // An unknown rule id (a corrupt or stale RemoteFire) degrades
        // to a recorded logical-failure event + counter instead of
        // killing the whole simulation.
        let Some(&pos) = self.rule_index.get(&rule_id) else {
            self.metrics
                .inc(Scope::Site(self.site.index()), "shell.unknown_rule");
            self.record(
                now,
                EventDesc::Custom {
                    name: "UnknownRuleFire".into(),
                    args: vec![
                        Value::Int(i64::from(self.site.index())),
                        Value::Str(rule_id.to_string()),
                    ],
                },
                None,
                None,
                None,
            );
            return;
        };
        self.stats.inc("shell.firings");
        // Firing latency: how long after its trigger occurred did this
        // rule's RHS begin executing (LHS transport + matching).
        if let Some(trigger_time) = self.recorder.with(|t| t.get(trigger).map(|e| e.time)) {
            self.metrics.observe(
                Scope::Site(self.site.index()),
                "shell.firing_latency",
                now.saturating_since(trigger_time),
            );
        }
        let firing_span = self.spans.start(
            SpanKind::Firing,
            None,
            self.site,
            Some(rule_id),
            Some(trigger),
            now,
            "",
        );
        let rules = Arc::clone(&self.rules);
        let rule = &rules[pos].rule;
        for (step_idx, step) in rule.steps.iter().enumerate() {
            // Step conditions are evaluated at firing time at the RHS
            // site (Appendix A.1), against CM-local data.
            let cond_ok = {
                let env = BindingsEnv {
                    bindings: &bindings,
                    lookup: |item: &ItemId| self.private_lookup(item),
                };
                step.cond.eval(&env)
            };
            if !cond_ok {
                self.stats.inc("shell.steps_skipped");
                continue;
            }
            let Some(desc) = step.event.instantiate(&bindings) else {
                // Unbound variable: specification bug; skip the step.
                self.stats.inc("shell.steps_skipped");
                continue;
            };
            let step_span = self.spans.start(
                SpanKind::RhsStep(step_idx),
                Some(firing_span),
                self.site,
                Some(rule_id),
                Some(trigger),
                ctx.now(),
                desc.tag(),
            );
            self.emit(desc, rule_id, trigger, step_span, ctx);
            self.spans.end(step_span, ctx.now());
        }
        self.spans.end(firing_span, ctx.now());
    }

    /// Emit one generated event: route it to the right component and
    /// record it where the paper says it occurs.
    fn emit(
        &mut self,
        desc: EventDesc,
        rule: RuleId,
        trigger: EventId,
        parent_span: SpanId,
        ctx: &mut Ctx<'_, CmMsg>,
    ) {
        let now = ctx.now();
        match desc {
            EventDesc::Wr { item, value } => {
                // The WR event occurs at the database when it receives
                // the request — the translator records it.
                let req_id =
                    self.track_request(SpanKind::Request, Some(parent_span), Some(rule), ctx);
                self.stats.inc("shell.requests_sent");
                let me = ctx.me();
                ctx.send_local(
                    self.translator,
                    CmMsg::Request {
                        req_id,
                        reply_to: me,
                        rule: Some(rule),
                        trigger: Some(trigger),
                        kind: RequestKind::Write(item, value),
                    },
                    LOCAL_DELAY,
                );
            }
            EventDesc::Rr { item } => {
                let req_id =
                    self.track_request(SpanKind::Request, Some(parent_span), Some(rule), ctx);
                self.stats.inc("shell.requests_sent");
                let me = ctx.me();
                ctx.send_local(
                    self.translator,
                    CmMsg::Request {
                        req_id,
                        reply_to: me,
                        rule: Some(rule),
                        trigger: Some(trigger),
                        kind: RequestKind::Read(item),
                    },
                    LOCAL_DELAY,
                );
            }
            EventDesc::W { item, value } => {
                // Writes on the RHS address CM-private data (remote
                // database writes go through WR).
                assert!(
                    self.locator.is_private(item.base),
                    "W(...) on RHS must target CM-private data, got `{item}`"
                );
                let old = self
                    .private
                    .borrow_mut()
                    .insert(item.clone(), value.clone());
                self.log_durable(&LogRecord::PrivateWrite {
                    at: now,
                    item: item.clone(),
                    value: value.clone(),
                });
                let desc = EventDesc::W { item, value };
                let id = self.record(now, desc.clone(), old, Some(rule), Some(trigger));
                self.rematch_later(id, desc, ctx);
            }
            EventDesc::Custom { name, args } => {
                let target_site = self.locator.site_of(&name).unwrap_or(self.site);
                if target_site == self.site {
                    let d = EventDesc::Custom { name, args };
                    let id = self.record(now, d.clone(), None, Some(rule), Some(trigger));
                    self.rematch_later(id, d, ctx);
                } else {
                    ctx.send(
                        self.shells[target_site.index() as usize],
                        CmMsg::Custom {
                            desc: EventDesc::Custom { name, args },
                            rule: Some(rule),
                            trigger: Some(trigger),
                        },
                    );
                }
            }
            other => {
                // N/R/Ws/P on a strategy RHS have no executable
                // meaning for the shell; record them as-is so custom
                // monitoring strategies can still assert them.
                let id = self.record(now, other.clone(), None, Some(rule), Some(trigger));
                self.rematch_later(id, other, ctx);
            }
        }
    }

    /// Re-match a just-recorded local event against this shell's rules
    /// *through the scheduler* rather than by direct recursion:
    /// self-triggering rule chains then consume scheduler steps (and
    /// hit the step budget) instead of overflowing the stack.
    fn rematch_later(&mut self, id: EventId, desc: EventDesc, ctx: &mut Ctx<'_, CmMsg>) {
        let me = ctx.me();
        ctx.send_local(
            me,
            CmMsg::Cmi(TranslatorEvent::Observed { id, desc }),
            SimDuration::from_millis(1),
        );
    }

    fn track_request(
        &mut self,
        kind: SpanKind,
        parent: Option<SpanId>,
        rule: Option<RuleId>,
        ctx: &mut Ctx<'_, CmMsg>,
    ) -> u64 {
        let req_id = self.next_req;
        self.next_req += 1;
        let now = ctx.now();
        let span = self
            .spans
            .start(kind, parent, self.site, rule, None, now, "");
        self.metrics
            .inc(Scope::Site(self.site.index()), "shell.deadlines_armed");
        self.outstanding.insert(
            req_id,
            Outstanding {
                flagged: false,
                span,
                sent_at: now,
            },
        );
        self.log_durable(&LogRecord::RequestSent { at: now, req_id });
        ctx.schedule_self(
            self.failure_cfg.deadline,
            CmMsg::CheckDeadline {
                req_id,
                escalation: false,
            },
        );
        req_id
    }

    fn resolve_request(&mut self, req_id: u64, ctx: &mut Ctx<'_, CmMsg>) {
        if let Some(o) = self.outstanding.remove(&req_id) {
            let now = ctx.now();
            self.log_durable(&LogRecord::RequestResolved { req_id });
            self.metrics.observe(
                Scope::Site(self.site.index()),
                "shell.request_latency",
                now.saturating_since(o.sent_at),
            );
            self.spans.end(o.span, now);
            if o.flagged {
                // Late response: the failure was metric after all and
                // has now cleared.
                self.spans.annotate(o.span, "cleared-late");
                self.stats.inc("shell.failures_cleared");
                self.metrics.record(
                    now,
                    Scope::Site(self.site.index()),
                    "shell.failure",
                    [
                        ("phase", "cleared".to_string()),
                        ("req", req_id.to_string()),
                    ],
                );
                self.registry.borrow_mut().on_clear(self.site, ctx.now());
                self.log_durable(&LogRecord::Clear {
                    at: now,
                    site: self.site,
                });
                self.broadcast_failure(FailureKindMsg::Cleared, ctx);
            }
        }
    }

    fn broadcast_failure(&self, kind: FailureKindMsg, ctx: &mut Ctx<'_, CmMsg>) {
        for (i, &shell) in self.shells.iter().enumerate() {
            if i as u32 != self.site.index() {
                ctx.send(
                    shell,
                    CmMsg::FailureNotice {
                        site: self.site,
                        kind,
                    },
                );
            }
        }
    }

    fn handle_deadline(&mut self, req_id: u64, escalation: bool, ctx: &mut Ctx<'_, CmMsg>) {
        let now = ctx.now();
        if !self.outstanding.contains_key(&req_id) {
            return; // answered in time
        }
        if escalation {
            // Still unanswered well past the bound: logical failure.
            self.stats.inc("shell.logical_failures_detected");
            self.metrics.record(
                now,
                Scope::Site(self.site.index()),
                "shell.failure",
                [
                    ("phase", "logical".to_string()),
                    ("req", req_id.to_string()),
                ],
            );
            if let Some(o) = self.outstanding.get(&req_id) {
                self.spans.annotate(o.span, "logical-failure");
                self.spans.end(o.span, now);
            }
            self.record(
                now,
                EventDesc::Custom {
                    name: "FailureDetected".into(),
                    args: vec![
                        Value::Int(i64::from(self.site.index())),
                        Value::Str("logical".into()),
                    ],
                },
                None,
                None,
                None,
            );
            self.registry
                .borrow_mut()
                .on_failure(self.site, FailureKind::Logical, now);
            self.log_durable(&LogRecord::Failure {
                at: now,
                site: self.site,
                kind: fail_to_tag(FailureKind::Logical),
            });
            self.broadcast_failure(FailureKindMsg::Logical, ctx);
        } else {
            if let Some(o) = self.outstanding.get_mut(&req_id) {
                o.flagged = true;
            }
            self.stats.inc("shell.metric_failures_detected");
            self.metrics.record(
                now,
                Scope::Site(self.site.index()),
                "shell.failure",
                [("phase", "metric".to_string()), ("req", req_id.to_string())],
            );
            if let Some(o) = self.outstanding.get(&req_id) {
                self.spans.annotate(o.span, "metric-failure");
            }
            self.record(
                now,
                EventDesc::Custom {
                    name: "FailureDetected".into(),
                    args: vec![
                        Value::Int(i64::from(self.site.index())),
                        Value::Str("metric".into()),
                    ],
                },
                None,
                None,
                None,
            );
            self.registry
                .borrow_mut()
                .on_failure(self.site, FailureKind::Metric, now);
            self.log_durable(&LogRecord::Failure {
                at: now,
                site: self.site,
                kind: fail_to_tag(FailureKind::Metric),
            });
            self.broadcast_failure(FailureKindMsg::Metric, ctx);
            ctx.schedule_self(
                self.failure_cfg.escalation,
                CmMsg::CheckDeadline {
                    req_id,
                    escalation: true,
                },
            );
        }
    }

    /// Probe the local translator with a cheap meta-request; the normal
    /// deadline machinery turns a missing reply into a failure.
    fn handle_heartbeat(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        let Some(period) = self.failure_cfg.heartbeat else {
            return;
        };
        self.metrics
            .inc(Scope::Site(self.site.index()), "shell.heartbeats");
        let req_id = self.track_request(SpanKind::Heartbeat, None, None, ctx);
        let me = ctx.me();
        ctx.send_local(
            self.translator,
            CmMsg::Request {
                req_id,
                reply_to: me,
                rule: None,
                trigger: None,
                kind: RequestKind::Enumerate(hcm_core::ItemPattern::plain("__probe__")),
            },
            LOCAL_DELAY,
        );
        if ctx.now() + period <= self.stop_periodics_at {
            ctx.schedule_self(period, CmMsg::Heartbeat);
        }
    }

    /// Re-arm heartbeat and periodic-rule timers after a recovery (a
    /// lossy crash destroyed the pending self-timers). Unlike
    /// `on_start`, every re-arm is gated on `stop_periodics_at`: a
    /// recovery after the periodic horizon must not restart them.
    fn rearm_periodics(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        let now = ctx.now();
        if let Some(period) = self.failure_cfg.heartbeat {
            if now + period <= self.stop_periodics_at {
                ctx.schedule_self(period, CmMsg::Heartbeat);
            }
        }
        for idx in 0..self.periodic_rules.len() {
            if let Some(period) = self.periodic_rules[idx].period {
                if now + period <= self.stop_periodics_at {
                    ctx.schedule_self(period, CmMsg::RuleTick { idx });
                }
            }
        }
    }

    fn handle_rule_tick(&mut self, idx: usize, ctx: &mut Ctx<'_, CmMsg>) {
        let now = ctx.now();
        let Some(pr) = self.periodic_rules.get(idx) else {
            return;
        };
        let Some(period) = pr.period else {
            return;
        };
        let rules = Arc::clone(&self.rules);
        let r = &rules[pr.pos];
        let rule_id = r.id;
        let desc = EventDesc::P { period };
        let p_id = self.record(now, desc, None, None, None);
        // Evaluate the LHS condition and fire the RHS (locally, by
        // construction of periodic-rule placement).
        let bindings = Bindings::new();
        let cond_ok = {
            let env = BindingsEnv {
                bindings: &bindings,
                lookup: |item: &ItemId| self.private_lookup(item),
            };
            r.rule.cond.eval(&env)
        };
        if cond_ok {
            self.execute_rhs(rule_id, p_id, bindings, ctx);
        } else {
            self.stats.inc("shell.cond_suppressed");
        }
        if now + period <= self.stop_periodics_at {
            ctx.schedule_self(period, CmMsg::RuleTick { idx });
        }
    }
}

impl Actor<CmMsg> for ShellActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        if let Some(period) = self.failure_cfg.heartbeat {
            if SimTime::ZERO + period <= self.stop_periodics_at {
                ctx.schedule_self(period, CmMsg::Heartbeat);
            }
        }
        for idx in 0..self.periodic_rules.len() {
            if let Some(period) = self.periodic_rules[idx].period {
                ctx.schedule_self(period, CmMsg::RuleTick { idx });
            }
        }
        // Seed initial values of private items into the trace.
        for (item, value) in self.private.borrow().iter() {
            self.recorder.set_initial(item.clone(), value.clone());
        }
    }

    fn on_crash(&mut self, lossy: bool, _ctx: &mut Ctx<'_, CmMsg>) {
        if !lossy || !self.policy.wipes_on_lossy_crash() {
            return;
        }
        self.crashed_lossy = true;
        // The process image is gone: private data, registry statuses
        // and request bookkeeping reset to a fresh start. `next_req`
        // stays monotone so late replies to pre-crash requests cannot
        // collide with requests issued after recovery.
        self.private.borrow_mut().clear();
        self.registry.borrow_mut().reset(SimTime::ZERO);
        self.outstanding.clear();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        if !std::mem::take(&mut self.crashed_lossy) {
            return;
        }
        let now = ctx.now();
        let recovered = self.policy.bridge().map(StoreBridge::recover);
        if let Some((ckpt, records)) = recovered {
            // Snapshot first, then the log suffix on top. Replay only
            // rebuilds in-memory state — the trace recorder already
            // holds the original events as ground truth and must not
            // see them twice.
            let mut pending: BTreeMap<u64, (SimTime, bool)> = BTreeMap::new();
            if let Some(snap) = ckpt.and_then(|blob| ShellSnapshot::decode(&blob).ok()) {
                self.private.borrow_mut().extend(snap.private);
                {
                    let mut reg = self.registry.borrow_mut();
                    for (name, tag, since) in snap.registry {
                        reg.restore(&name, tag_to_status(tag), since);
                    }
                }
                self.next_req = self.next_req.max(snap.next_req);
                for (req_id, sent_at, flagged) in snap.outstanding {
                    pending.insert(req_id, (sent_at, flagged));
                }
            }
            for rec in records {
                match rec {
                    LogRecord::PrivateWrite { item, value, .. } => {
                        self.private.borrow_mut().insert(item, value);
                    }
                    LogRecord::Failure { at, site, kind } => {
                        self.registry
                            .borrow_mut()
                            .on_failure(site, tag_to_fail(kind), at);
                    }
                    LogRecord::Clear { at, site } => {
                        self.registry.borrow_mut().on_clear(site, at);
                    }
                    LogRecord::Reset { at } => self.registry.borrow_mut().reset(at),
                    LogRecord::RequestSent { at, req_id } => {
                        self.next_req = self.next_req.max(req_id + 1);
                        pending.insert(req_id, (at, false));
                    }
                    LogRecord::RequestResolved { req_id } => {
                        pending.remove(&req_id);
                    }
                    // Translator-only records never appear in a shell log.
                    _ => {}
                }
            }
            // Requests that were in flight when the crash hit: re-arm
            // failure detection. A request already flagged metric goes
            // straight to its escalation check; the rest get a fresh
            // metric deadline measured from recovery.
            let outstanding_count = pending.len() as u64;
            for (req_id, (sent_at, flagged)) in pending {
                let span = self.spans.start(
                    SpanKind::Request,
                    None,
                    self.site,
                    None,
                    None,
                    now,
                    "recovered",
                );
                self.outstanding.insert(
                    req_id,
                    Outstanding {
                        flagged,
                        span,
                        sent_at,
                    },
                );
                let (delay, escalation) = if flagged {
                    (self.failure_cfg.escalation, true)
                } else {
                    (self.failure_cfg.deadline, false)
                };
                ctx.schedule_self(delay, CmMsg::CheckDeadline { req_id, escalation });
            }
            self.metrics.record(
                now,
                Scope::Site(self.site.index()),
                "shell.recovered",
                [("outstanding", outstanding_count.to_string())],
            );
        }
        self.rearm_periodics(ctx);
    }

    fn on_message(&mut self, msg: CmMsg, ctx: &mut Ctx<'_, CmMsg>) {
        match msg {
            CmMsg::Cmi(TranslatorEvent::Notify {
                item,
                value,
                rule,
                trigger,
            }) => {
                let desc = EventDesc::N { item, value };
                let id = self.record(ctx.now(), desc.clone(), None, Some(rule), Some(trigger));
                self.process_event(id, &desc, ctx);
            }
            CmMsg::Cmi(TranslatorEvent::ReadResult {
                req_id,
                item,
                value,
                rule,
                trigger,
            }) => {
                self.resolve_request(req_id, ctx);
                let desc = EventDesc::R { item, value };
                let id = self.record(ctx.now(), desc.clone(), None, Some(rule), Some(trigger));
                self.process_event(id, &desc, ctx);
            }
            CmMsg::Cmi(TranslatorEvent::WriteDone { req_id, ok: _ })
            | CmMsg::Cmi(TranslatorEvent::EnumResult { req_id, .. }) => {
                self.resolve_request(req_id, ctx);
            }
            CmMsg::Cmi(TranslatorEvent::Observed { id, desc }) => {
                self.process_event(id, &desc, ctx);
            }
            CmMsg::RemoteFire {
                rule,
                trigger,
                bindings,
            } => {
                self.execute_rhs(rule, trigger, bindings, ctx);
            }
            CmMsg::Custom {
                desc,
                rule,
                trigger,
            } => {
                let id = self.record(ctx.now(), desc.clone(), None, rule, trigger);
                self.process_event(id, &desc, ctx);
            }
            CmMsg::RuleTick { idx } => self.handle_rule_tick(idx, ctx),
            CmMsg::Heartbeat => self.handle_heartbeat(ctx),
            CmMsg::CheckDeadline { req_id, escalation } => {
                self.handle_deadline(req_id, escalation, ctx)
            }
            CmMsg::FailureNotice { site, kind } => {
                let now = ctx.now();
                {
                    let mut reg = self.registry.borrow_mut();
                    match kind {
                        FailureKindMsg::Metric => reg.on_failure(site, FailureKind::Metric, now),
                        FailureKindMsg::Logical => reg.on_failure(site, FailureKind::Logical, now),
                        FailureKindMsg::Cleared => reg.on_clear(site, now),
                    }
                }
                let rec = match kind {
                    FailureKindMsg::Metric => LogRecord::Failure {
                        at: now,
                        site,
                        kind: fail_to_tag(FailureKind::Metric),
                    },
                    FailureKindMsg::Logical => LogRecord::Failure {
                        at: now,
                        site,
                        kind: fail_to_tag(FailureKind::Logical),
                    },
                    FailureKindMsg::Cleared => LogRecord::Clear { at: now, site },
                };
                self.log_durable(&rec);
            }
            other => panic!(
                "shell at {} received unexpected message {other:?}",
                self.site
            ),
        }
    }
}
