//! Discrimination-indexed rule dispatch for the CM-Shell.
//!
//! A shell's `process_event` historically scanned every local rule
//! and ran full template unification against each — O(rules) per
//! event, the classic wall active-rule systems hit at scale. The
//! [`RuleIndex`] built here buckets a shell's rules by the cheap part
//! of their LHS — the event-descriptor *kind* crossed with the
//! interned item base [`Sym`] (or the custom-event name) — so an
//! incoming event probes exactly one bucket plus a small generic
//! bucket, and only those candidates pay for unification.
//!
//! Soundness rests on [`TemplateDesc::match_desc`] semantics: a
//! keyed template only ever matches an event of the same kind whose
//! item base (which is always a concrete `Sym`, never a variable)
//! equals the pattern's base — so every rule the index skips is a rule
//! the linear scan would have rejected, and candidate order within the
//! merge is ascending rule position, i.e. exactly the linear-scan
//! visit order. [`ShellActor`](crate::shell::ShellActor) exploits that
//! to keep traces, metrics and spans byte-identical across
//! [`DispatchMode`]s; `tests/dispatch_equivalence.rs` checks the
//! candidate-set equality property differentially against a linear
//! reference over randomized templates.

use crate::compile::CompiledRule;
use hcm_core::{EventDesc, Sym, TemplateDesc};
use std::collections::HashMap;

/// Which matching path `ShellActor::process_event` takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Scan every local rule per event — the retained reference path.
    Linear,
    /// Probe the discrimination index (the default).
    #[default]
    Indexed,
}

/// Event-kind discriminant, the first component of a bucket key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    Ws,
    W,
    Wr,
    Rr,
    R,
    N,
}

/// How one event (or template) keys into the index.
enum Key<'a> {
    /// Item-bearing kinds: (kind, interned base).
    Item(Kind, Sym),
    /// Custom events, keyed by name (no interner round-trip on probe).
    Custom(&'a str),
    /// No concrete discriminant (`P` events): generic bucket only.
    None,
}

fn event_key(desc: &EventDesc) -> Key<'_> {
    match desc {
        EventDesc::Ws { item, .. } => Key::Item(Kind::Ws, item.base),
        EventDesc::W { item, .. } => Key::Item(Kind::W, item.base),
        EventDesc::Wr { item, .. } => Key::Item(Kind::Wr, item.base),
        EventDesc::Rr { item } => Key::Item(Kind::Rr, item.base),
        EventDesc::R { item, .. } => Key::Item(Kind::R, item.base),
        EventDesc::N { item, .. } => Key::Item(Kind::N, item.base),
        EventDesc::Custom { name, .. } => Key::Custom(name),
        EventDesc::P { .. } => Key::None,
    }
}

/// A discrimination index over one shell's local rules.
///
/// Bucket values are positions into the shared rule arena, in
/// ascending order (= specification order among the shell's rules).
#[derive(Debug, Clone, Default)]
pub struct RuleIndex {
    /// (event kind, item base) → candidate rule positions.
    items: HashMap<(Kind, Sym), Vec<usize>>,
    /// Custom-event name → candidate rule positions.
    custom: HashMap<String, Vec<usize>>,
    /// Rules with no concrete discriminant (`P`-headed templates):
    /// probed on every event.
    generic: Vec<usize>,
}

impl RuleIndex {
    /// Index `positions` (into `rules`) by their LHS discriminant.
    /// `positions` must be ascending — candidate iteration preserves
    /// that order.
    #[must_use]
    pub fn build(rules: &[CompiledRule], positions: &[usize]) -> RuleIndex {
        let mut idx = RuleIndex::default();
        for &i in positions {
            match &rules[i].rule.lhs {
                TemplateDesc::Ws { item, .. } => idx.push_item(Kind::Ws, item.base, i),
                TemplateDesc::W { item, .. } => idx.push_item(Kind::W, item.base, i),
                TemplateDesc::Wr { item, .. } => idx.push_item(Kind::Wr, item.base, i),
                TemplateDesc::Rr { item } => idx.push_item(Kind::Rr, item.base, i),
                TemplateDesc::R { item, .. } => idx.push_item(Kind::R, item.base, i),
                TemplateDesc::N { item, .. } => idx.push_item(Kind::N, item.base, i),
                TemplateDesc::Custom { name, .. } => {
                    idx.custom.entry(name.clone()).or_default().push(i);
                }
                TemplateDesc::P { .. } => idx.generic.push(i),
                // `𝓕` matches nothing; indexing it anywhere would only
                // waste probes.
                TemplateDesc::False => {}
            }
        }
        idx
    }

    fn push_item(&mut self, kind: Kind, base: Sym, i: usize) {
        self.items.entry((kind, base)).or_default().push(i);
    }

    /// Candidate rule positions for `desc`, ascending: the merge of
    /// its discriminant bucket with the generic bucket. Every rule the
    /// linear scan would match is a candidate; rules skipped are
    /// guaranteed kind- or base-mismatches.
    pub fn candidates(&self, desc: &EventDesc) -> Candidates<'_> {
        let keyed: &[usize] = match event_key(desc) {
            Key::Item(kind, base) => self.items.get(&(kind, base)).map_or(&[], Vec::as_slice),
            Key::Custom(name) => self.custom.get(name).map_or(&[], Vec::as_slice),
            Key::None => &[],
        };
        Candidates {
            keyed,
            generic: &self.generic,
        }
    }

    /// Total indexed rules (keyed + generic), for diagnostics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.values().map(Vec::len).sum::<usize>()
            + self.custom.values().map(Vec::len).sum::<usize>()
            + self.generic.len()
    }

    /// True when nothing is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Ascending merge of a keyed bucket with the generic bucket (both
/// already sorted; a rule lives in exactly one, so no duplicates).
pub struct Candidates<'a> {
    keyed: &'a [usize],
    generic: &'a [usize],
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match (self.keyed.first(), self.generic.first()) {
            (Some(&k), Some(&g)) => {
                if k <= g {
                    self.keyed = &self.keyed[1..];
                    Some(k)
                } else {
                    self.generic = &self.generic[1..];
                    Some(g)
                }
            }
            (Some(&k), None) => {
                self.keyed = &self.keyed[1..];
                Some(k)
            }
            (None, Some(&g)) => {
                self.generic = &self.generic[1..];
                Some(g)
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.keyed.len() + self.generic.len();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::{RuleRegistry, SiteId};
    use std::collections::BTreeMap;

    fn compiled(spec: &str) -> Vec<CompiledRule> {
        let sites: BTreeMap<String, SiteId> = [
            ("A".to_string(), SiteId::new(0)),
            ("B".to_string(), SiteId::new(1)),
        ]
        .into_iter()
        .collect();
        let mut reg = RuleRegistry::new();
        let cs = crate::compile::CompiledStrategy::from_spec(spec, &sites, &mut reg).unwrap();
        cs.rules.to_vec()
    }

    #[test]
    fn buckets_by_kind_and_base() {
        let rules = compiled(
            "[locate]\nX = A\nY = A\nZ = B\n\
             [strategy]\n\
             N(X(n), b) -> WR(Z(n), b) within 5s\n\
             N(Y(n), b) -> WR(Z(n), b) within 5s\n\
             Ws(X(n), b) -> WR(Z(n), b) within 5s\n\
             N(X(n), 7) -> WR(Z(n), 7) within 5s\n",
        );
        let positions: Vec<usize> = (0..rules.len()).collect();
        let idx = RuleIndex::build(&rules, &positions);
        assert_eq!(idx.len(), 4);
        let n_x = EventDesc::N {
            item: hcm_core::ItemId::with("X", [hcm_core::Value::Int(1)]),
            value: hcm_core::Value::Int(7),
        };
        // N(X) probes only the two N/X rules, in rule order.
        assert_eq!(idx.candidates(&n_x).collect::<Vec<_>>(), vec![0, 3]);
        let ws_x = EventDesc::Ws {
            item: hcm_core::ItemId::with("X", [hcm_core::Value::Int(1)]),
            old: None,
            new: hcm_core::Value::Int(7),
        };
        assert_eq!(idx.candidates(&ws_x).collect::<Vec<_>>(), vec![2]);
        // A base no rule watches yields no candidates.
        let n_z = EventDesc::N {
            item: hcm_core::ItemId::with("Z", [hcm_core::Value::Int(1)]),
            value: hcm_core::Value::Int(7),
        };
        assert_eq!(idx.candidates(&n_z).count(), 0);
    }

    #[test]
    fn generic_bucket_merges_in_position_order() {
        let rules = compiled(
            "[locate]\nX = A\nLimitReq = A\n\
             [strategy]\n\
             P(100ms) -> RR(X(1)) within 1s\n\
             LimitReq(b) -> RR(X(1)) within 1s\n\
             P(200ms) -> RR(X(1)) within 1s\n",
        );
        let positions: Vec<usize> = (0..rules.len()).collect();
        let idx = RuleIndex::build(&rules, &positions);
        let custom = EventDesc::Custom {
            name: "LimitReq".into(),
            args: vec![hcm_core::Value::Int(1)],
        };
        // Custom bucket [1] merged with generic [0, 2], ascending.
        assert_eq!(idx.candidates(&custom).collect::<Vec<_>>(), vec![0, 1, 2]);
        let p = EventDesc::P {
            period: hcm_core::SimDuration::from_millis(100),
        };
        // P events see only the generic bucket.
        assert_eq!(idx.candidates(&p).collect::<Vec<_>>(), vec![0, 2]);
    }
}
