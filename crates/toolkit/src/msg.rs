//! The message vocabulary of the simulated toolkit.
//!
//! Everything that moves between workloads, CM-Translators and
//! CM-Shells is a [`CmMsg`]. The CMI of the paper — the uniform
//! interface a CM-Translator presents to its CM-Shell — is the
//! [`RequestKind`] / [`TranslatorEvent`] pair.

use hcm_core::{Bindings, EventDesc, EventId, RuleId, SimDuration, SiteId, Value};

/// A native, store-shaped operation performed by a local application —
/// *spontaneous* from the CM's point of view. Each variant matches one
/// RIS's RISI; sending the wrong shape to a translator is a scenario
/// bug and panics.
#[derive(Debug, Clone, PartialEq)]
pub enum SpontaneousOp {
    /// Relational: the application executes a SQL command.
    Sql(String),
    /// File store: replace a file's contents.
    FileWrite {
        /// File path.
        path: String,
        /// New contents.
        contents: String,
    },
    /// File store: remove a file.
    FileRemove {
        /// File path.
        path: String,
    },
    /// KV store: put.
    KvPut {
        /// Key.
        key: String,
        /// Value.
        value: Value,
    },
    /// KV store: delete.
    KvDelete {
        /// Key.
        key: String,
    },
    /// Bibliographic store: the librarian appends a record.
    BiblioAppend {
        /// Author.
        author: String,
        /// Title.
        title: String,
        /// Year.
        year: u32,
    },
    /// Whois directory: the administrator sets a field.
    WhoisSet {
        /// Person.
        name: String,
        /// Field name.
        field: String,
        /// Field value.
        value: String,
    },
    /// Whois directory: the administrator removes an entry.
    WhoisRemove {
        /// Person.
        name: String,
    },
}

/// A CMI request from a CM-Shell to a CM-Translator.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Write `item ← value` (a write of [`Value::Null`] deletes the
    /// item — see `hcm_core::event`).
    Write(hcm_core::ItemId, Value),
    /// Read the current value of `item`.
    Read(hcm_core::ItemId),
    /// Enumerate the ground items currently matching a pattern (a
    /// query capability of the CMI; used by repair agents that need
    /// the set of records, e.g. referential-integrity checking).
    Enumerate(hcm_core::ItemPattern),
}

/// A CMI event from a CM-Translator to its CM-Shell.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslatorEvent {
    /// A notification `N(item, value)` promised by a notify or
    /// periodic-notify interface. `rule` is the interface statement
    /// that generated it and `trigger` the generating event
    /// (the `Ws` or `P` occurrence).
    Notify {
        /// Item concerned.
        item: hcm_core::ItemId,
        /// Current/new value.
        value: Value,
        /// Generating interface rule.
        rule: RuleId,
        /// Triggering event.
        trigger: EventId,
    },
    /// The response `R(item, value)` to a read request.
    ReadResult {
        /// Correlates with the shell's request.
        req_id: u64,
        /// Item read.
        item: hcm_core::ItemId,
        /// Value observed (`Value::Null` when the item does not exist).
        value: Value,
        /// Generating interface rule.
        rule: RuleId,
        /// The `RR` event.
        trigger: EventId,
    },
    /// Acknowledgment that a requested write was performed.
    WriteDone {
        /// Correlates with the shell's request.
        req_id: u64,
        /// Whether the native write succeeded (local CHECK constraints
        /// may reject it — the demarcation protocol depends on that).
        ok: bool,
    },
    /// Response to an `Enumerate` request.
    EnumResult {
        /// Correlates with the shell's request.
        req_id: u64,
        /// The matching items.
        items: Vec<hcm_core::ItemId>,
    },
    /// An event at the database that some strategy rule's LHS watches
    /// (forwarded per the interest patterns computed at initialization).
    Observed {
        /// The recorded event's id.
        id: EventId,
        /// Its descriptor.
        desc: EventDesc,
    },
}

/// Failure classification, §5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKindMsg {
    /// Interface time bounds missed but service eventually provided.
    Metric,
    /// Interface statements void (crash without recovery in sight).
    Logical,
    /// A previously flagged failure has been cleared (site answered
    /// again / system reset).
    Cleared,
}

/// The toolkit's message type (the `M` of `hcm_simkit::Sim`).
#[derive(Debug, Clone, PartialEq)]
pub enum CmMsg {
    /// Workload → translator: a local application operates on the RIS.
    Spontaneous(SpontaneousOp),
    /// Shell → translator: CMI request. `rule`/`trigger` identify the
    /// strategy-rule firing that caused it, so the translator can
    /// record the `WR`/`RR` event with correct provenance.
    Request {
        /// Correlation id assigned by the requester.
        req_id: u64,
        /// Where the response (`WriteDone` / `ReadResult` /
        /// `EnumResult`) goes — the site's shell, or a protocol agent
        /// acting as one.
        reply_to: hcm_simkit::ActorId,
        /// Strategy rule that generated the request.
        rule: Option<RuleId>,
        /// Event that fired the rule.
        trigger: Option<EventId>,
        /// The request proper.
        kind: RequestKind,
    },
    /// Translator → shell: CMI event.
    Cmi(TranslatorEvent),
    /// Shell → shell: execute the (already matched) rule's RHS here.
    RemoteFire {
        /// Strategy rule to execute.
        rule: RuleId,
        /// The triggering event at the sender's site.
        trigger: EventId,
        /// Matching interpretation from the LHS.
        bindings: Bindings,
    },
    /// Shell → shell (or protocol actor → shell): a custom event to
    /// record and match at the receiving site.
    Custom {
        /// The (ground) event descriptor.
        desc: EventDesc,
        /// Provenance: generating rule, if any.
        rule: Option<RuleId>,
        /// Provenance: triggering event, if any.
        trigger: Option<EventId>,
    },
    /// Translator self-timer: the `idx`-th periodic interface fires.
    PollTick {
        /// Index into the translator's periodic-interface list.
        idx: usize,
    },
    /// Translator self-timer: perform a previously accepted write.
    PerformWrite {
        /// Correlation id.
        req_id: u64,
        /// Requesting shell.
        reply_to: hcm_simkit::ActorId,
        /// Item to write.
        item: hcm_core::ItemId,
        /// Value to write.
        value: Value,
        /// Interface rule performing the write.
        rule: RuleId,
        /// The `WR` event.
        trigger: EventId,
    },
    /// Shell self-timer: the `idx`-th local periodic strategy rule
    /// fires (`P(p)`-headed rules).
    RuleTick {
        /// Index into the shell's periodic-rule list.
        idx: usize,
    },
    /// Shell self-timer: probe the local database even when idle
    /// (heartbeat failure detection — the paper's §5 notes silent
    /// failures are undetectable without probing).
    Heartbeat,
    /// Shell self-timer: check whether request `req_id` was answered.
    CheckDeadline {
        /// Correlation id being checked.
        req_id: u64,
        /// Whether this is the escalation (logical) deadline.
        escalation: bool,
    },
    /// Shell → shell: failure status of a site changed.
    FailureNotice {
        /// The affected site.
        site: SiteId,
        /// What happened.
        kind: FailureKindMsg,
    },
    /// Failure injection → translator: add `extra` to every internal
    /// service delay (models database overload; `ZERO` restores
    /// normal operation).
    SetServiceExtra(SimDuration),
}
