//! The library of proven interfaces and strategies, and the suggestion
//! engine.
//!
//! "A final component of our architecture is a library of common
//! interfaces and strategies. Thus, the contents of the Strategy
//! Specification and the CM-RID files can usually be selected from
//! available menus of proven strategies and interfaces" (§4.1) — and
//! at initialization "the CM then suggests strategies that are
//! applicable to these interfaces, along with the associated
//! guarantees".
//!
//! Builders here emit rule-language text, so a menu choice is exactly
//! what a hand-written specification would be.

use crate::rid::{classify, IfaceClass};
use hcm_core::SimDuration;
use hcm_rulelang::InterfaceStmt;

fn secs(d: SimDuration) -> String {
    if d.as_millis().is_multiple_of(1000) {
        format!("{}s", d.as_secs())
    } else {
        format!("{}ms", d.as_millis())
    }
}

/// Interface menu (§3.1.1). Each returns one interface statement in
/// rule-language text; `item` may be parameterized (`salary1(n)`).
pub mod interfaces {
    use super::secs;
    use hcm_core::SimDuration;

    /// Write Interface: `WR(X, b) →δ W(X, b)`.
    #[must_use]
    pub fn write(item: &str, bound: SimDuration) -> String {
        format!("WR({item}, b) -> W({item}, b) within {}", secs(bound))
    }

    /// No-Spontaneous-Write Interface: `Ws(X, b) → 𝓕`.
    #[must_use]
    pub fn no_spontaneous_write(item: &str) -> String {
        format!("Ws({item}, b) -> false")
    }

    /// Notify Interface: `Ws(X, b) →δ N(X, b)`.
    #[must_use]
    pub fn notify(item: &str, bound: SimDuration) -> String {
        format!("Ws({item}, b) -> N({item}, b) within {}", secs(bound))
    }

    /// Conditional Notify (relative change threshold, the paper's
    /// "more than 10 %" example): `Ws(X, a, b) ∧ |b−a| > frac·a →δ N`.
    #[must_use]
    pub fn conditional_notify(item: &str, frac: f64, bound: SimDuration) -> String {
        format!(
            "Ws({item}, a, b) when abs(b - a) > {frac} * a -> N({item}, b) within {}",
            secs(bound)
        )
    }

    /// Periodic Notify: `P(p) ∧ (X = b) →ε N(X, b)`.
    #[must_use]
    pub fn periodic_notify(item: &str, period: SimDuration, bound: SimDuration) -> String {
        format!(
            "P({}) when {item} = b -> N({item}, b) within {}",
            secs(period),
            secs(bound)
        )
    }

    /// Read Interface: `RR(X) ∧ (X = b) →δ R(X, b)`.
    #[must_use]
    pub fn read(item: &str, bound: SimDuration) -> String {
        format!(
            "RR({item}) when {item} = b -> R({item}, b) within {}",
            secs(bound)
        )
    }
}

/// Strategy menu. Each returns strategy-rule text.
pub mod strategies {
    use super::secs;
    use hcm_core::SimDuration;

    /// Update propagation (§4.2.2): `N(src, b) →δ WR(dst, b)`.
    #[must_use]
    pub fn propagate(src: &str, dst: &str, bound: SimDuration) -> String {
        format!("N({src}, b) -> WR({dst}, b) within {}", secs(bound))
    }

    /// Cached propagation (§3.2): forward only when the value differs
    /// from the CM-private cache, then refresh the cache. `cache` must
    /// be declared in the `[private]` section.
    #[must_use]
    pub fn propagate_cached(src: &str, dst: &str, cache: &str, bound: SimDuration) -> String {
        format!(
            "N({src}, b) -> if {cache} != b then WR({dst}, b) ; W({cache}, b) within {}",
            secs(bound)
        )
    }

    /// The polling pair (§4.2.3): poll the source every `period`, and
    /// propagate each read result.
    #[must_use]
    pub fn poll_and_propagate(
        src: &str,
        dst: &str,
        period: SimDuration,
        bound: SimDuration,
    ) -> Vec<String> {
        vec![
            format!("P({}) -> RR({src}) within {}", secs(period), secs(bound)),
            format!("R({src}, b) -> WR({dst}, b) within {}", secs(bound)),
        ]
    }
}

/// Guarantee menu (§3.3.1), as formula text for `[guarantee]` sections.
pub mod guarantees {
    use super::secs;
    use hcm_core::SimDuration;

    /// (1) "Y follows X": Y only takes values X has taken.
    #[must_use]
    pub fn follows(x: &str, y: &str) -> String {
        format!("({y} = y) @ t1 => ({x} = y) @ t2 and t2 < t1")
    }

    /// (2) "X leads Y": every value of X eventually reaches Y.
    #[must_use]
    pub fn leads(x: &str, y: &str) -> String {
        format!("({x} = x) @ t1 => ({y} = x) @ t2 and t2 > t1")
    }

    /// (3) "Y strictly follows X": order of values is preserved.
    #[must_use]
    pub fn strictly_follows(x: &str, y: &str) -> String {
        format!(
            "({y} = y1) @ t1 and ({y} = y2) @ t2 and t1 < t2 and y1 != y2 => \
             ({x} = y1) @ t3 and ({x} = y2) @ t4 and t3 < t4"
        )
    }

    /// (4) metric "Y follows X within κ".
    #[must_use]
    pub fn follows_metric(x: &str, y: &str, kappa: SimDuration) -> String {
        format!(
            "({y} = y) @ t1 => ({x} = y) @ t2 and t1 - {} < t2 and t2 <= t1",
            secs(kappa)
        )
    }
}

/// A suggested strategy with its associated guarantees, as produced by
/// the suggestion engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// Menu name of the strategy.
    pub name: &'static str,
    /// Strategy-rule lines for the `[strategy]` section.
    pub rules: Vec<String>,
    /// Names of the §3.3.1 guarantees that are provably valid with
    /// this interface/strategy pair.
    pub valid_guarantees: Vec<&'static str>,
}

/// Given the interface statements available for the source and
/// destination of a copy constraint `dst = copy of src`, suggest
/// applicable strategies with their proven guarantees (§4.1: "The CM
/// then suggests strategies that are applicable to these interfaces,
/// along with the associated guarantees").
#[must_use]
pub fn suggest_copy_strategies(
    src: &str,
    dst: &str,
    src_ifaces: &[InterfaceStmt],
    dst_ifaces: &[InterfaceStmt],
    poll_period: SimDuration,
    bound: SimDuration,
) -> Vec<Suggestion> {
    let has = |stmts: &[InterfaceStmt], class: IfaceClass| {
        stmts.iter().any(|s| classify(s) == Some(class))
    };
    let mut out = Vec::new();
    if !has(dst_ifaces, IfaceClass::Write) {
        // Without a write interface at the destination, the CM can at
        // best monitor (§6.3) — no enforcement suggestions.
        return out;
    }
    if has(src_ifaces, IfaceClass::Notify) {
        // §4.2.3: with notify + write, propagation validates all four
        // copy guarantees.
        out.push(Suggestion {
            name: "propagate",
            rules: vec![strategies::propagate(src, dst, bound)],
            valid_guarantees: vec!["follows", "leads", "strictly_follows", "follows_metric"],
        });
        out.push(Suggestion {
            name: "propagate_cached",
            rules: vec![strategies::propagate_cached(src, dst, "Cache", bound)],
            valid_guarantees: vec!["follows", "leads", "strictly_follows", "follows_metric"],
        });
    }
    if has(src_ifaces, IfaceClass::Read) {
        // §4.2.3: polling loses guarantee (2) — updates inside one
        // polling interval can be missed.
        out.push(Suggestion {
            name: "poll_and_propagate",
            rules: strategies::poll_and_propagate(src, dst, poll_period, bound),
            valid_guarantees: vec!["follows", "strictly_follows", "follows_metric"],
        });
    }
    if has(src_ifaces, IfaceClass::PeriodicNotify) {
        // Equivalent to polling from the guarantee standpoint.
        out.push(Suggestion {
            name: "propagate",
            rules: vec![strategies::propagate(src, dst, bound)],
            valid_guarantees: vec!["follows", "strictly_follows", "follows_metric"],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_rulelang::{parse_guarantee, parse_interface, parse_strategy_rule};

    #[test]
    fn interface_builders_parse() {
        for text in [
            interfaces::write("X", SimDuration::from_secs(1)),
            interfaces::no_spontaneous_write("X"),
            interfaces::notify("salary1(n)", SimDuration::from_secs(2)),
            interfaces::conditional_notify("X", 0.1, SimDuration::from_secs(2)),
            interfaces::periodic_notify(
                "X",
                SimDuration::from_secs(300),
                SimDuration::from_millis(500),
            ),
            interfaces::read("X", SimDuration::from_secs(1)),
        ] {
            parse_interface(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn strategy_builders_parse() {
        parse_strategy_rule(&strategies::propagate(
            "salary1(n)",
            "salary2(n)",
            SimDuration::from_secs(5),
        ))
        .unwrap();
        parse_strategy_rule(&strategies::propagate_cached(
            "X",
            "Y",
            "Cx",
            SimDuration::from_secs(5),
        ))
        .unwrap();
        for r in strategies::poll_and_propagate(
            "X",
            "Y",
            SimDuration::from_secs(60),
            SimDuration::from_secs(1),
        ) {
            parse_strategy_rule(&r).unwrap();
        }
    }

    #[test]
    fn guarantee_builders_parse() {
        for text in [
            guarantees::follows("X", "Y"),
            guarantees::leads("X", "Y"),
            guarantees::strictly_follows("X", "Y"),
            guarantees::follows_metric("X", "Y", SimDuration::from_secs(30)),
        ] {
            parse_guarantee("g", &text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn suggestions_follow_the_paper() {
        let notify =
            vec![parse_interface(&interfaces::notify("X", SimDuration::from_secs(2))).unwrap()];
        let read =
            vec![parse_interface(&interfaces::read("X", SimDuration::from_secs(1))).unwrap()];
        let write =
            vec![parse_interface(&interfaces::write("Y", SimDuration::from_secs(1))).unwrap()];
        let none: Vec<InterfaceStmt> = vec![];

        // notify + write → propagation with all four guarantees.
        let s = suggest_copy_strategies(
            "X",
            "Y",
            &notify,
            &write,
            SimDuration::from_secs(60),
            SimDuration::from_secs(5),
        );
        assert!(s
            .iter()
            .any(|x| x.name == "propagate" && x.valid_guarantees.contains(&"leads")));

        // read + write → polling without guarantee (2).
        let s = suggest_copy_strategies(
            "X",
            "Y",
            &read,
            &write,
            SimDuration::from_secs(60),
            SimDuration::from_secs(5),
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "poll_and_propagate");
        assert!(!s[0].valid_guarantees.contains(&"leads"));
        assert!(s[0].valid_guarantees.contains(&"follows"));

        // no write interface at destination → nothing to suggest.
        let s = suggest_copy_strategies(
            "X",
            "Y",
            &notify,
            &none,
            SimDuration::from_secs(60),
            SimDuration::from_secs(5),
        );
        assert!(s.is_empty());
    }
}

/// Derived guarantees with computed metric bounds — the paper's §3
/// future-work item ("we also plan to extend the toolkit so that it can
/// help the system designer derive new guarantees for different
/// interfaces and strategies"), specialized to copy constraints.
///
/// The κ of the metric follows-guarantee is *computed from the
/// specification bounds* the same way §4.2.2 tells administrators to
/// estimate δ: sum the interface bounds along the propagation path,
/// plus the strategy bound, plus a messaging allowance.
pub mod derive {
    use super::{classify, IfaceClass};
    use hcm_core::{SimDuration, TemplateDesc, Term, Value};
    use hcm_rulelang::InterfaceStmt;

    /// Extra allowance for intra-site hops and network transit beyond
    /// the declared bounds (the paper's "maximum transmission time
    /// between CM-Shells").
    pub const MESSAGING_ALLOWANCE: SimDuration = SimDuration::from_millis(500);

    /// A derived guarantee: its name, the formula text, and (for
    /// metric ones) the computed κ.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Derived {
        /// Menu name.
        pub name: &'static str,
        /// Formula text for a `[guarantee]` section.
        pub formula: String,
        /// The computed bound, when metric.
        pub kappa: Option<SimDuration>,
    }

    fn bound_of(stmts: &[InterfaceStmt], class: IfaceClass) -> Option<SimDuration> {
        stmts
            .iter()
            .filter(|s| classify(s) == Some(class))
            .map(|s| s.bound)
            .max()
    }

    fn period_of(stmts: &[InterfaceStmt]) -> Option<SimDuration> {
        stmts
            .iter()
            .filter(|s| classify(s) == Some(IfaceClass::PeriodicNotify))
            .find_map(|s| match &s.lhs {
                TemplateDesc::P {
                    period: Term::Const(Value::Int(ms)),
                } if *ms > 0 => Some(SimDuration::from_millis(*ms as u64)),
                _ => None,
            })
    }

    /// Derive the copy guarantees valid for `dst = copy of src` under
    /// the *propagation* strategy (`N(src,b) →δ WR(dst,b)`), given the
    /// two sites' interface statements. Returns an empty vector when
    /// the interfaces cannot support the strategy at all.
    #[must_use]
    pub fn propagation_guarantees(
        src: &str,
        dst: &str,
        src_ifaces: &[InterfaceStmt],
        dst_ifaces: &[InterfaceStmt],
        strategy_bound: SimDuration,
    ) -> Vec<Derived> {
        let Some(write_bound) = bound_of(dst_ifaces, IfaceClass::Write) else {
            return Vec::new();
        };
        let notify = bound_of(src_ifaces, IfaceClass::Notify);
        let periodic = period_of(src_ifaces).map(|p| {
            (
                p,
                bound_of(src_ifaces, IfaceClass::PeriodicNotify).unwrap_or_default(),
            )
        });
        let mut out = Vec::new();
        let (source_lag, lossless) = match (notify, periodic) {
            // Plain notify: every change surfaces within its bound.
            (Some(nb), _) => (nb, true),
            // Periodic notify: changes surface within period + ε, and
            // intra-period updates are lost.
            (None, Some((p, eps))) => (p + eps, false),
            (None, None) => return Vec::new(),
        };
        out.push(Derived {
            name: "follows",
            formula: format!("({dst} = y) @ t1 => ({src} = y) @ t2 and t2 <= t1"),
            kappa: None,
        });
        out.push(Derived {
            name: "strictly_follows",
            formula: format!(
                "({dst} = y1) @ t1 and ({dst} = y2) @ t2 and t1 < t2 and y1 != y2 => \
                 ({src} = y1) @ t3 and ({src} = y2) @ t4 and t3 < t4"
            ),
            kappa: None,
        });
        if lossless {
            out.push(Derived {
                name: "leads",
                formula: format!("({src} = x) @ t1 => ({dst} = x) @ t2 and t2 >= t1"),
                kappa: None,
            });
        }
        let kappa = source_lag + strategy_bound + write_bound + MESSAGING_ALLOWANCE;
        out.push(Derived {
            name: "follows_metric",
            formula: format!(
                "({dst} = y) @ t1 => ({src} = y) @ t2 and t1 - {}ms < t2 and t2 <= t1",
                kappa.as_millis()
            ),
            kappa: Some(kappa),
        });
        out
    }

    /// Derive the guarantees for the polling strategy
    /// (`P(p) → RR(src); R(src,b) → WR(dst,b)`).
    #[must_use]
    pub fn polling_guarantees(
        src: &str,
        dst: &str,
        src_ifaces: &[InterfaceStmt],
        dst_ifaces: &[InterfaceStmt],
        poll_period: SimDuration,
        strategy_bound: SimDuration,
    ) -> Vec<Derived> {
        let (Some(read_bound), Some(write_bound)) = (
            bound_of(src_ifaces, IfaceClass::Read),
            bound_of(dst_ifaces, IfaceClass::Write),
        ) else {
            return Vec::new();
        };
        let kappa = poll_period
            + read_bound
            + strategy_bound
            + strategy_bound // P→RR and R→WR each carry the bound
            + write_bound
            + MESSAGING_ALLOWANCE;
        vec![
            Derived {
                name: "follows",
                formula: format!("({dst} = y) @ t1 => ({src} = y) @ t2 and t2 <= t1"),
                kappa: None,
            },
            Derived {
                name: "strictly_follows",
                formula: format!(
                    "({dst} = y1) @ t1 and ({dst} = y2) @ t2 and t1 < t2 and y1 != y2 => \
                     ({src} = y1) @ t3 and ({src} = y2) @ t4 and t3 < t4"
                ),
                kappa: None,
            },
            // NOTE: no "leads" — polling misses intra-interval values.
            Derived {
                name: "follows_metric",
                formula: format!(
                    "({dst} = y) @ t1 => ({src} = y) @ t2 and t1 - {}ms < t2 and t2 <= t1",
                    kappa.as_millis()
                ),
                kappa: Some(kappa),
            },
        ]
    }
}

#[cfg(test)]
mod derive_tests {
    use super::*;
    use hcm_rulelang::{parse_guarantee, parse_interface};

    #[test]
    fn propagation_kappa_is_sum_of_bounds() {
        let src = vec![parse_interface("Ws(X, b) -> N(X, b) within 2s").unwrap()];
        let dst = vec![parse_interface("WR(Y, b) -> W(Y, b) within 1s").unwrap()];
        let derived =
            derive::propagation_guarantees("X", "Y", &src, &dst, SimDuration::from_secs(5));
        let names: Vec<_> = derived.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec!["follows", "strictly_follows", "leads", "follows_metric"]
        );
        let metric = derived.iter().find(|d| d.name == "follows_metric").unwrap();
        assert_eq!(metric.kappa, Some(SimDuration::from_millis(8_500)));
        // Every formula parses.
        for d in &derived {
            parse_guarantee(d.name, &d.formula).unwrap();
        }
    }

    #[test]
    fn periodic_source_drops_leads_and_widens_kappa() {
        let src = vec![parse_interface("P(60s) when X = b -> N(X, b) within 1s").unwrap()];
        let dst = vec![parse_interface("WR(Y, b) -> W(Y, b) within 1s").unwrap()];
        let derived =
            derive::propagation_guarantees("X", "Y", &src, &dst, SimDuration::from_secs(5));
        assert!(!derived.iter().any(|d| d.name == "leads"));
        let metric = derived.iter().find(|d| d.name == "follows_metric").unwrap();
        // 60s period + 1s ε + 5s strategy + 1s write + 500ms.
        assert_eq!(metric.kappa, Some(SimDuration::from_millis(67_500)));
    }

    #[test]
    fn polling_kappa_includes_period() {
        let src = vec![parse_interface("RR(X) when X = b -> R(X, b) within 1s").unwrap()];
        let dst = vec![parse_interface("WR(Y, b) -> W(Y, b) within 1s").unwrap()];
        let derived = derive::polling_guarantees(
            "X",
            "Y",
            &src,
            &dst,
            SimDuration::from_secs(60),
            SimDuration::from_secs(5),
        );
        assert!(!derived.iter().any(|d| d.name == "leads"));
        let metric = derived.iter().find(|d| d.name == "follows_metric").unwrap();
        // 60 + 1 + 5 + 5 + 1 + 0.5 = 72.5 s.
        assert_eq!(metric.kappa, Some(SimDuration::from_millis(72_500)));
    }

    #[test]
    fn unsupported_interfaces_derive_nothing() {
        let none: Vec<hcm_rulelang::InterfaceStmt> = vec![];
        let dst = vec![parse_interface("WR(Y, b) -> W(Y, b) within 1s").unwrap()];
        assert!(
            derive::propagation_guarantees("X", "Y", &none, &dst, SimDuration::from_secs(5))
                .is_empty()
        );
        assert!(derive::polling_guarantees(
            "X",
            "Y",
            &none,
            &dst,
            SimDuration::from_secs(60),
            SimDuration::from_secs(5)
        )
        .is_empty());
        let src = vec![parse_interface("Ws(X, b) -> N(X, b) within 2s").unwrap()];
        assert!(
            derive::propagation_guarantees("X", "Y", &src, &none, SimDuration::from_secs(5))
                .is_empty()
        );
    }
}
