//! Backend for the relational store.
//!
//! Faithful to §4.2.1: every CM-initiated operation is a **command
//! string** built from the CM-RID's templates by `$param` substitution
//! and submitted through the store's textual `execute` interface.
//! Spontaneous changes surface through declared **triggers**, mapped
//! back to item names via the `[map <base>]` sections
//! (`table = …`, `key = …`, `col = …`).

use crate::backend::{single_param, Change, RisBackend};
use crate::msg::SpontaneousOp;
use crate::rid::{substitute, CmRid, RisKind};
use hcm_core::{ItemId, ItemPattern, SimTime, Value};
use hcm_ris::relational::{Database, QueryResult, TriggerOp};
use hcm_ris::RisError;

struct TableMap {
    base: String,
    table: String,
    key_col: String,
    val_col: String,
    /// `Some(k)` when the CM-RID pins the mapping to one row
    /// (`row = k`): the item is then the *unparameterized* `base`.
    fixed_key: Option<String>,
}

impl TableMap {
    fn item_for(&self, key: &hcm_core::Value) -> ItemId {
        match &self.fixed_key {
            Some(_) => ItemId::plain(self.base.clone()),
            None => ItemId::with(self.base.clone(), [key.clone()]),
        }
    }

    fn key_matches(&self, key: &hcm_core::Value) -> bool {
        match &self.fixed_key {
            Some(k) => key.as_str() == Some(k.as_str()) || key.to_string() == *k,
            None => true,
        }
    }
}

/// See module docs.
pub struct RelationalBackend {
    db: Database,
    maps: Vec<TableMap>,
    commands: std::collections::BTreeMap<(String, String), String>,
}

impl RelationalBackend {
    /// Wrap a database per the CM-RID, declaring the triggers the
    /// mapped tables need (the paper's "a CM-Translator supporting a
    /// Notify Interface … may need to declare triggers").
    #[must_use]
    pub fn new(db: Database, rid: &CmRid) -> Self {
        let mut db = db;
        let mut maps = Vec::new();
        for (base, props) in &rid.maps {
            let (Some(table), Some(key_col), Some(val_col)) =
                (props.get("table"), props.get("key"), props.get("col"))
            else {
                continue;
            };
            // Triggers power the native change feed; tables may be
            // mapped by several bases, but one trigger each suffices.
            if !maps.iter().any(|m: &TableMap| &m.table == table) {
                let _ = db.add_trigger(
                    table,
                    &[TriggerOp::Insert, TriggerOp::Update, TriggerOp::Delete],
                );
            }
            maps.push(TableMap {
                base: base.clone(),
                table: table.clone(),
                key_col: key_col.clone(),
                val_col: val_col.clone(),
                fixed_key: props.get("row").cloned(),
            });
        }
        RelationalBackend {
            db,
            maps,
            commands: rid.commands.clone(),
        }
    }

    fn command(&self, op: &str, base: &str) -> Result<&str, RisError> {
        self.commands
            .get(&(op.to_owned(), base.to_owned()))
            .map(String::as_str)
            .ok_or_else(|| {
                RisError::Unsupported(format!("no `{op}` command template for `{base}`"))
            })
    }

    fn run(&mut self, cmd: &str) -> Result<QueryResult, RisError> {
        self.db.execute(cmd)
    }

    /// Convert drained trigger firings into item changes.
    fn changes_from_firings(&mut self) -> Vec<Change> {
        let firings = self.db.take_firings();
        let mut out = Vec::new();
        for f in firings {
            for m in self.maps.iter().filter(|m| m.table == f.table) {
                let Ok(table) = self.db.get_table(&f.table) else {
                    continue;
                };
                let (Ok(ki), Ok(vi)) = (table.col_index(&m.key_col), table.col_index(&m.val_col))
                else {
                    continue;
                };
                let key_row = f.new_row.as_ref().or(f.old_row.as_ref());
                let Some(key) = key_row.map(|r| r[ki].clone()) else {
                    continue;
                };
                if !m.key_matches(&key) {
                    continue;
                }
                let old = f.old_row.as_ref().map(|r| r[vi].clone());
                let new = f.new_row.as_ref().map_or(Value::Null, |r| r[vi].clone());
                // Updates that do not touch the mapped column are not
                // changes to this item.
                if old.as_ref() == Some(&new) {
                    continue;
                }
                out.push(Change {
                    item: m.item_for(&key),
                    old,
                    new,
                });
            }
        }
        out
    }
}

impl RisBackend for RelationalBackend {
    fn kind(&self) -> RisKind {
        RisKind::Relational
    }

    fn has_change_feed(&self) -> bool {
        true // triggers
    }

    fn apply_spontaneous(
        &mut self,
        op: &SpontaneousOp,
        _now: SimTime,
    ) -> Result<Vec<Change>, RisError> {
        let SpontaneousOp::Sql(cmd) = op else {
            panic!("relational RIS received non-SQL spontaneous op: {op:?}");
        };
        self.run(cmd)?;
        Ok(self.changes_from_firings())
    }

    fn write(
        &mut self,
        item: &ItemId,
        value: &Value,
        _now: SimTime,
    ) -> Result<Option<Value>, RisError> {
        let old = self.read(item).ok();
        let param = single_param(item)?;
        let params = [Value::Str(param)];
        if *value == Value::Null {
            let tpl = self.command("delete", &item.base)?.to_owned();
            self.run(&substitute(&tpl, &params, None, true))?;
        } else {
            let tpl = self.command("write", &item.base)?.to_owned();
            let result = self.run(&substitute(&tpl, &params, Some(value), true))?;
            // UPDATE hit no rows: fall back to the insert template when
            // the CM-RID provides one (upsert behaviour).
            if result == QueryResult::Affected(0) {
                if let Ok(ins) = self.command("insert", &item.base) {
                    let ins = ins.to_owned();
                    self.run(&substitute(&ins, &params, Some(value), true))?;
                }
            }
        }
        // CM-initiated writes are not spontaneous: consume the trigger
        // firings they caused so they never surface as `Ws` changes.
        let _ = self.db.take_firings();
        Ok(old)
    }

    fn read(&self, item: &ItemId) -> Result<Value, RisError> {
        let tpl = self
            .commands
            .get(&("read".to_owned(), item.base.as_str().to_owned()))
            .ok_or_else(|| {
                RisError::Unsupported(format!("no `read` command template for `{}`", item.base))
            })?;
        let param = single_param(item)?;
        let cmd = substitute(tpl, &[Value::Str(param)], None, true);
        // `read` must not mutate; the parser only yields SELECTs for
        // SELECT text, so executing on a clone-free path is fine — but
        // Database::execute takes &mut self for triggers. Route through
        // a SELECT-only check instead.
        let parsed = hcm_ris::relational::parse_command(&cmd)?;
        match &parsed {
            hcm_ris::relational::Command::Select {
                table,
                columns,
                predicate,
                order: _,
                limit: _,
            } => {
                let t = self.db.get_table(table)?;
                let proj: Vec<usize> = if columns.len() == 1 && columns[0] == "*" {
                    (0..t.columns().len()).collect()
                } else {
                    columns
                        .iter()
                        .map(|c| t.col_index(c))
                        .collect::<Result<_, _>>()?
                };
                let mut value = Value::Null;
                'rows: for row in t.rows() {
                    for cmp in predicate {
                        let i = t.col_index(&cmp.column)?;
                        if !cmp.op.apply(&row[i], &cmp.value) {
                            continue 'rows;
                        }
                    }
                    value = row[proj[0]].clone();
                    break;
                }
                Ok(value)
            }
            _ => Err(RisError::BadCommand(
                "read template must be a SELECT".into(),
            )),
        }
    }

    fn enumerate(&self, pattern: &ItemPattern) -> Vec<ItemId> {
        let Some(m) = self.maps.iter().find(|m| m.base == pattern.base) else {
            return Vec::new();
        };
        let Ok(table) = self.db.get_table(&m.table) else {
            return Vec::new();
        };
        let Ok(ki) = table.col_index(&m.key_col) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for row in table.rows() {
            if !m.key_matches(&row[ki]) {
                continue;
            }
            let item = m.item_for(&row[ki]);
            let mut b = hcm_core::Bindings::new();
            if pattern.match_item(&item, &mut b) {
                out.push(item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::Term;

    const RID: &str = r#"
ris = relational
[interface]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s
WR(salary1(n), b) -> W(salary1(n), b) within 1s
[command write salary1]
update employees set salary = $value where empid = $p0
[command insert salary1]
insert into employees values ($p0, $value)
[command read salary1]
select salary from employees where empid = $p0
[command delete salary1]
delete from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

    fn setup() -> RelationalBackend {
        let mut db = Database::new();
        db.create_table("employees", &["empid", "salary"]).unwrap();
        db.execute("INSERT INTO employees VALUES ('e1', 90000)")
            .unwrap();
        let rid = CmRid::parse(RID).unwrap();
        RelationalBackend::new(db, &rid)
    }

    fn e1() -> ItemId {
        ItemId::with("salary1", [Value::from("e1")])
    }

    #[test]
    fn spontaneous_sql_produces_changes() {
        let mut b = setup();
        let changes = b
            .apply_spontaneous(
                &SpontaneousOp::Sql(
                    "update employees set salary = 95000 where empid = 'e1'".into(),
                ),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].item, e1());
        assert_eq!(changes[0].old, Some(Value::Int(90000)));
        assert_eq!(changes[0].new, Value::Int(95000));
    }

    #[test]
    fn spontaneous_insert_and_delete_are_changes() {
        let mut b = setup();
        let ins = b
            .apply_spontaneous(
                &SpontaneousOp::Sql("insert into employees values ('e2', 50000)".into()),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(ins[0].new, Value::Int(50000));
        assert_eq!(ins[0].old, None);
        let del = b
            .apply_spontaneous(
                &SpontaneousOp::Sql("delete from employees where empid = 'e2'".into()),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(del[0].new, Value::Null);
    }

    #[test]
    fn no_change_when_other_column_updated() {
        let mut db = Database::new();
        db.create_table("employees", &["empid", "salary", "office"])
            .unwrap();
        db.execute("INSERT INTO employees VALUES ('e1', 90000, 'b1')")
            .unwrap();
        let rid = CmRid::parse(RID).unwrap();
        let mut b = RelationalBackend::new(db, &rid);
        let changes = b
            .apply_spontaneous(
                &SpontaneousOp::Sql("update employees set office = 'b2' where empid = 'e1'".into()),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(changes.is_empty());
    }

    #[test]
    fn cm_write_uses_template_and_suppresses_feed() {
        let mut b = setup();
        let old = b.write(&e1(), &Value::Int(99000), SimTime::ZERO).unwrap();
        assert_eq!(old, Some(Value::Int(90000)));
        assert_eq!(b.read(&e1()).unwrap(), Value::Int(99000));
        // No spontaneous change surfaced.
        let changes = b
            .apply_spontaneous(
                &SpontaneousOp::Sql("select empid from employees".into()),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(changes.is_empty());
    }

    #[test]
    fn write_upserts_via_insert_template() {
        let mut b = setup();
        let item = ItemId::with("salary1", [Value::from("e9")]);
        b.write(&item, &Value::Int(12345), SimTime::ZERO).unwrap();
        assert_eq!(b.read(&item).unwrap(), Value::Int(12345));
    }

    #[test]
    fn null_write_deletes() {
        let mut b = setup();
        b.write(&e1(), &Value::Null, SimTime::ZERO).unwrap();
        assert_eq!(b.read(&e1()).unwrap(), Value::Null);
    }

    #[test]
    fn enumerate_matches_pattern() {
        let mut b = setup();
        b.write(
            &ItemId::with("salary1", [Value::from("e2")]),
            &Value::Int(1),
            SimTime::ZERO,
        )
        .unwrap();
        let pat = ItemPattern::with("salary1", [Term::var("n")]);
        let items = b.enumerate(&pat);
        assert_eq!(items.len(), 2);
        let ground = ItemPattern::with("salary1", [Term::Const(Value::from("e1"))]);
        assert_eq!(b.enumerate(&ground).len(), 1);
        assert!(b.enumerate(&ItemPattern::plain("unmapped")).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-SQL")]
    fn wrong_op_shape_panics() {
        let mut b = setup();
        let _ = b.apply_spontaneous(
            &SpontaneousOp::KvPut {
                key: "k".into(),
                value: Value::Int(1),
            },
            SimTime::ZERO,
        );
    }
}
