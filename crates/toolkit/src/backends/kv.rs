//! Backend for the key-value store ("lookup").
//!
//! Items map onto native keys via `[map <base>] key = prefix$p0suffix`.
//! Spontaneous changes surface through the store's **watch** facility.

use crate::backend::{single_param, Change, KeyPattern, RisBackend};
use crate::msg::SpontaneousOp;
use crate::rid::{CmRid, RisKind};
use hcm_core::{Bindings, ItemId, ItemPattern, SimTime, Value};
use hcm_ris::kvstore::KvStore;
use hcm_ris::RisError;

struct KvMap {
    base: String,
    key: KeyPattern,
}

/// See module docs.
pub struct KvBackend {
    kv: KvStore,
    maps: Vec<KvMap>,
}

impl KvBackend {
    /// Wrap a store per the CM-RID, registering a watch on every mapped
    /// key space.
    #[must_use]
    pub fn new(kv: KvStore, rid: &CmRid) -> Self {
        let mut kv = kv;
        let mut maps = Vec::new();
        for (base, props) in &rid.maps {
            let Some(key) = props.get("key") else {
                continue;
            };
            maps.push(KvMap {
                base: base.clone(),
                key: KeyPattern::parse(key),
            });
        }
        // One catch-all watch; drain-time filtering maps events back to
        // items (pattern suffixes are not expressible as native prefix
        // watches).
        if !maps.is_empty() {
            kv.watch_prefix("");
        }
        KvBackend { kv, maps }
    }

    fn map_for(&self, base: &str) -> Result<&KvMap, RisError> {
        self.maps
            .iter()
            .find(|m| m.base == base)
            .ok_or_else(|| RisError::Unsupported(format!("no kv mapping for `{base}`")))
    }

    fn drain_changes(&mut self) -> Vec<Change> {
        let events = self.kv.take_events();
        let mut out = Vec::new();
        for e in events {
            for m in &self.maps {
                if let Some(param) = m.key.extract(&e.key) {
                    out.push(Change {
                        item: m.key.item_for(&m.base, param),
                        old: Some(e.old.clone().unwrap_or(Value::Null)),
                        new: e.new.clone().unwrap_or(Value::Null),
                    });
                }
            }
        }
        out
    }
}

impl RisBackend for KvBackend {
    fn kind(&self) -> RisKind {
        RisKind::Kv
    }

    fn has_change_feed(&self) -> bool {
        true // watches
    }

    fn apply_spontaneous(
        &mut self,
        op: &SpontaneousOp,
        _now: SimTime,
    ) -> Result<Vec<Change>, RisError> {
        match op {
            SpontaneousOp::KvPut { key, value } => {
                self.kv.put(key, value.clone());
            }
            SpontaneousOp::KvDelete { key } => {
                self.kv.delete(key)?;
            }
            other => panic!("kv RIS received non-kv spontaneous op: {other:?}"),
        }
        Ok(self.drain_changes())
    }

    fn write(
        &mut self,
        item: &ItemId,
        value: &Value,
        _now: SimTime,
    ) -> Result<Option<Value>, RisError> {
        let m = self.map_for(&item.base)?;
        let key = m.key.render(&single_param(item)?);
        let old = if *value == Value::Null {
            match self.kv.delete(&key) {
                Ok(v) => Some(v),
                Err(RisError::NotFound(_)) => Some(Value::Null),
                Err(e) => return Err(e),
            }
        } else {
            self.kv.put(&key, value.clone())
        };
        // CM-initiated: consume the watch events this caused.
        let _ = self.kv.take_events();
        Ok(old)
    }

    fn read(&self, item: &ItemId) -> Result<Value, RisError> {
        let m = self.map_for(&item.base)?;
        let key = m.key.render(&single_param(item)?);
        Ok(self.kv.get(&key).cloned().unwrap_or(Value::Null))
    }

    fn enumerate(&self, pattern: &ItemPattern) -> Vec<ItemId> {
        let Ok(m) = self.map_for(&pattern.base) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for key in self.kv.keys() {
            if let Some(param) = m.key.extract(key) {
                let item = m.key.item_for(&m.base, param);
                let mut b = Bindings::new();
                if pattern.match_item(&item, &mut b) {
                    out.push(item);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::Term;

    fn setup() -> KvBackend {
        let mut kv = KvStore::new();
        kv.put("phone/ann", Value::from("555-0100"));
        let rid = CmRid::parse(
            "ris = kv\n[interface]\nWs(phone(n), b) -> N(phone(n), b) within 1s\n\
             [map phone]\nkey = phone/$p0\n",
        )
        .unwrap();
        KvBackend::new(kv, &rid)
    }

    fn ann() -> ItemId {
        ItemId::with("phone", [Value::from("ann")])
    }

    #[test]
    fn spontaneous_put_yields_change() {
        let mut b = setup();
        let ch = b
            .apply_spontaneous(
                &SpontaneousOp::KvPut {
                    key: "phone/ann".into(),
                    value: Value::from("555-0200"),
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(ch.len(), 1);
        assert_eq!(ch[0].item, ann());
        assert_eq!(ch[0].old, Some(Value::from("555-0100")));
        assert_eq!(ch[0].new, Value::from("555-0200"));
    }

    #[test]
    fn unmapped_keys_change_nothing() {
        let mut b = setup();
        let ch = b
            .apply_spontaneous(
                &SpontaneousOp::KvPut {
                    key: "office/ann".into(),
                    value: Value::from("b1"),
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert!(ch.is_empty());
    }

    #[test]
    fn delete_is_null_change() {
        let mut b = setup();
        let ch = b
            .apply_spontaneous(
                &SpontaneousOp::KvDelete {
                    key: "phone/ann".into(),
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(ch[0].new, Value::Null);
    }

    #[test]
    fn cm_write_and_read() {
        let mut b = setup();
        let old = b.write(&ann(), &Value::from("999"), SimTime::ZERO).unwrap();
        assert_eq!(old, Some(Value::from("555-0100")));
        assert_eq!(b.read(&ann()).unwrap(), Value::from("999"));
        // CM write produced no spontaneous change.
        let ch = b
            .apply_spontaneous(
                &SpontaneousOp::KvPut {
                    key: "unrelated".into(),
                    value: Value::Int(1),
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert!(ch.is_empty());
        // Null write deletes; deleting an absent key is idempotent.
        b.write(&ann(), &Value::Null, SimTime::ZERO).unwrap();
        assert_eq!(b.read(&ann()).unwrap(), Value::Null);
        assert_eq!(
            b.write(&ann(), &Value::Null, SimTime::ZERO).unwrap(),
            Some(Value::Null)
        );
    }

    #[test]
    fn enumerate() {
        let mut b = setup();
        b.write(
            &ItemId::with("phone", [Value::from("bob")]),
            &Value::from("1"),
            SimTime::ZERO,
        )
        .unwrap();
        let pat = ItemPattern::with("phone", [Term::var("n")]);
        assert_eq!(b.enumerate(&pat).len(), 2);
    }

    #[test]
    fn unmapped_base_errors() {
        let b = setup();
        assert!(b.read(&ItemId::plain("zz")).is_err());
    }
}
