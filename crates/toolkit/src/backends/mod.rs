//! Concrete [`crate::backend::RisBackend`] implementations, one per
//! store kind. Construction is factored through [`build_backend`].

mod biblio;
mod email;
mod files;
mod kv;
mod relational;
mod whois;

pub use biblio::BiblioBackend;
pub use email::EmailBackend;
pub use files::FileBackend;
pub use kv::KvBackend;
pub use relational::RelationalBackend;
pub use whois::WhoisBackend;

use crate::backend::RisBackend;
use crate::rid::{CmRid, RisKind};
use hcm_ris::{
    biblio::BiblioDb, email::MailSystem, filestore::FileStore, kvstore::KvStore,
    relational::Database, whois::WhoisDir,
};

/// A prepared raw store, handed to [`build_backend`] together with its
/// CM-RID. The variant must match the RID's `ris` kind.
pub enum RawStore {
    /// Relational database.
    Relational(Database),
    /// File store.
    File(FileStore),
    /// Key-value store.
    Kv(KvStore),
    /// Bibliographic store.
    Biblio(BiblioDb),
    /// Whois directory.
    Whois(WhoisDir),
    /// Mail system.
    Email(MailSystem),
}

/// Wrap a raw store in the backend matching the CM-RID. Panics when the
/// store variant does not match the RID's declared kind — that is a
/// scenario construction bug, not a run-time condition.
#[must_use]
pub fn build_backend(store: RawStore, rid: &CmRid) -> Box<dyn RisBackend + Send> {
    match (store, rid.kind) {
        (RawStore::Relational(db), RisKind::Relational) => {
            Box::new(RelationalBackend::new(db, rid))
        }
        (RawStore::File(fs), RisKind::File) => Box::new(FileBackend::new(fs, rid)),
        (RawStore::Kv(kv), RisKind::Kv) => Box::new(KvBackend::new(kv, rid)),
        (RawStore::Biblio(db), RisKind::Biblio) => Box::new(BiblioBackend::new(db, rid)),
        (RawStore::Whois(d), RisKind::Whois) => Box::new(WhoisBackend::new(d, rid)),
        (RawStore::Email(m), RisKind::Email) => Box::new(EmailBackend::new(m, rid)),
        (_, kind) => panic!("raw store does not match CM-RID kind {kind:?}"),
    }
}
