//! Backend for the whois directory.
//!
//! Items map via `[map <base>] field = phone`; the item's single
//! parameter is the directory entry name. **Read-only**: CM writes are
//! rejected with `Unsupported` — a constraint over whois data can only
//! be monitored or enforced *elsewhere* (paper §6.3). No change feed.

use crate::backend::{single_param, Change, RisBackend};
use crate::msg::SpontaneousOp;
use crate::rid::{CmRid, RisKind};
use hcm_core::{Bindings, ItemId, ItemPattern, SimTime, Value};
use hcm_ris::whois::WhoisDir;
use hcm_ris::RisError;

struct WhoisMap {
    base: String,
    field: String,
}

/// See module docs.
pub struct WhoisBackend {
    dir: WhoisDir,
    maps: Vec<WhoisMap>,
}

impl WhoisBackend {
    /// Wrap a directory per the CM-RID.
    #[must_use]
    pub fn new(dir: WhoisDir, rid: &CmRid) -> Self {
        let maps = rid
            .maps
            .iter()
            .filter_map(|(base, props)| {
                props.get("field").map(|f| WhoisMap {
                    base: base.clone(),
                    field: f.clone(),
                })
            })
            .collect();
        WhoisBackend { dir, maps }
    }

    fn map_for(&self, base: &str) -> Result<&WhoisMap, RisError> {
        self.maps
            .iter()
            .find(|m| m.base == base)
            .ok_or_else(|| RisError::Unsupported(format!("no whois mapping for `{base}`")))
    }
}

impl RisBackend for WhoisBackend {
    fn kind(&self) -> RisKind {
        RisKind::Whois
    }

    fn has_change_feed(&self) -> bool {
        false // the CM must poll; changes below are trace ground truth
    }

    fn apply_spontaneous(
        &mut self,
        op: &SpontaneousOp,
        _now: SimTime,
    ) -> Result<Vec<Change>, RisError> {
        // Ground-truth bookkeeping for the trace (the CM cannot see
        // these; its polling interfaces discover them later).
        let mut out = Vec::new();
        match op {
            SpontaneousOp::WhoisSet { name, field, value } => {
                for m in self.maps.iter().filter(|m| &m.field == field) {
                    let item = ItemId::with(m.base.clone(), [Value::from(name.as_str())]);
                    let old = self
                        .dir
                        .lookup_field(name, field)
                        .map(Value::from)
                        .unwrap_or(Value::Null);
                    out.push(Change {
                        item,
                        old: Some(old),
                        new: Value::from(value.as_str()),
                    });
                }
                self.dir.admin_set(name, field, value);
            }
            SpontaneousOp::WhoisRemove { name } => {
                for m in &self.maps {
                    if let Ok(old) = self.dir.lookup_field(name, &m.field) {
                        let item = ItemId::with(m.base.clone(), [Value::from(name.as_str())]);
                        out.push(Change {
                            item,
                            old: Some(Value::from(old)),
                            new: Value::Null,
                        });
                    }
                }
                self.dir.admin_remove(name)?;
            }
            other => panic!("whois RIS received non-whois spontaneous op: {other:?}"),
        }
        Ok(out)
    }

    fn write(
        &mut self,
        item: &ItemId,
        _value: &Value,
        _now: SimTime,
    ) -> Result<Option<Value>, RisError> {
        Err(RisError::Unsupported(format!(
            "whois directory is read-only (write to `{item}`)"
        )))
    }

    fn read(&self, item: &ItemId) -> Result<Value, RisError> {
        let m = self.map_for(&item.base)?;
        let name = single_param(item)?;
        match self.dir.lookup_field(&name, &m.field) {
            Ok(v) => Ok(Value::from(v)),
            Err(RisError::NotFound(_)) => Ok(Value::Null),
            Err(e) => Err(e),
        }
    }

    fn enumerate(&self, pattern: &ItemPattern) -> Vec<ItemId> {
        let Ok(m) = self.map_for(&pattern.base) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (name, fields) in self.dir.dump() {
            if !fields.contains_key(&m.field) {
                continue;
            }
            let item = ItemId::with(m.base.clone(), [Value::from(name)]);
            let mut b = Bindings::new();
            if pattern.match_item(&item, &mut b) {
                out.push(item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::Term;

    fn setup() -> WhoisBackend {
        let mut dir = WhoisDir::new();
        dir.admin_set("ann", "phone", "555-0100");
        dir.admin_set("bob", "office", "b12");
        let rid = CmRid::parse("ris = whois\n[map wphone]\nfield = phone\n").unwrap();
        WhoisBackend::new(dir, &rid)
    }

    #[test]
    fn read_only() {
        let mut b = setup();
        let err = b
            .write(
                &ItemId::with("wphone", [Value::from("ann")]),
                &Value::from("1"),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, RisError::Unsupported(_)));
    }

    #[test]
    fn read_and_absent() {
        let b = setup();
        assert_eq!(
            b.read(&ItemId::with("wphone", [Value::from("ann")]))
                .unwrap(),
            Value::from("555-0100")
        );
        // bob has no phone field.
        assert_eq!(
            b.read(&ItemId::with("wphone", [Value::from("bob")]))
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn spontaneous_admin_ops_report_ground_truth() {
        let mut b = setup();
        assert!(!b.has_change_feed(), "whois has no native feed");
        let ch = b
            .apply_spontaneous(
                &SpontaneousOp::WhoisSet {
                    name: "ann".into(),
                    field: "phone".into(),
                    value: "555-0200".into(),
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(ch.len(), 1);
        assert_eq!(ch[0].old, Some(Value::from("555-0100")));
        assert_eq!(ch[0].new, Value::from("555-0200"));
        assert_eq!(
            b.read(&ItemId::with("wphone", [Value::from("ann")]))
                .unwrap(),
            Value::from("555-0200")
        );
        // Unmapped fields produce nothing.
        let none = b
            .apply_spontaneous(
                &SpontaneousOp::WhoisSet {
                    name: "ann".into(),
                    field: "office".into(),
                    value: "b9".into(),
                },
                SimTime::ZERO,
            )
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn enumerate_only_entries_with_field() {
        let b = setup();
        let pat = ItemPattern::with("wphone", [Term::var("n")]);
        let items = b.enumerate(&pat);
        assert_eq!(items.len(), 1); // bob lacks `phone`
        assert_eq!(items[0].params[0], Value::from("ann"));
    }
}
