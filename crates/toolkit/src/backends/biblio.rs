//! Backend for the bibliographic store.
//!
//! Items are two-parameter names `pub(author, title)` (base configured
//! by `[map <base>] mode = year`). Reading yields the publication year
//! when the record exists, `Null` otherwise — so the paper's
//! referential-integrity `E(x)` predicate works directly. **Read-only**
//! to the CM; no change feed (translators poll).

use crate::backend::{value_to_text, Change, RisBackend};
use crate::msg::SpontaneousOp;
use crate::rid::{CmRid, RisKind};
use hcm_core::{Bindings, ItemId, ItemPattern, SimTime, Value};
use hcm_ris::biblio::BiblioDb;
use hcm_ris::RisError;

/// See module docs.
pub struct BiblioBackend {
    db: BiblioDb,
    bases: Vec<String>,
}

impl BiblioBackend {
    /// Wrap a store per the CM-RID.
    #[must_use]
    pub fn new(db: BiblioDb, rid: &CmRid) -> Self {
        BiblioBackend {
            db,
            bases: rid.maps.keys().cloned().collect(),
        }
    }

    fn check_base(&self, base: &str) -> Result<(), RisError> {
        if self.bases.iter().any(|b| b == base) {
            Ok(())
        } else {
            Err(RisError::Unsupported(format!(
                "no biblio mapping for `{base}`"
            )))
        }
    }

    fn author_title(item: &ItemId) -> Result<(String, String), RisError> {
        if item.params.len() != 2 {
            return Err(RisError::Unsupported(format!(
                "biblio items take (author, title): `{item}`"
            )));
        }
        Ok((
            value_to_text(&item.params[0]),
            value_to_text(&item.params[1]),
        ))
    }
}

impl RisBackend for BiblioBackend {
    fn kind(&self) -> RisKind {
        RisKind::Biblio
    }

    fn has_change_feed(&self) -> bool {
        false // the CM must poll; changes below are trace ground truth
    }

    fn apply_spontaneous(
        &mut self,
        op: &SpontaneousOp,
        _now: SimTime,
    ) -> Result<Vec<Change>, RisError> {
        let mut out = Vec::new();
        match op {
            SpontaneousOp::BiblioAppend {
                author,
                title,
                year,
            } => {
                self.db.append(author, title, *year);
                for base in &self.bases {
                    out.push(Change {
                        item: ItemId::with(
                            base.clone(),
                            [Value::from(author.as_str()), Value::from(title.as_str())],
                        ),
                        old: Some(Value::Null),
                        new: Value::Int(i64::from(*year)),
                    });
                }
            }
            other => panic!("biblio RIS received non-biblio spontaneous op: {other:?}"),
        }
        Ok(out)
    }

    fn write(
        &mut self,
        item: &ItemId,
        _value: &Value,
        _now: SimTime,
    ) -> Result<Option<Value>, RisError> {
        Err(RisError::Unsupported(format!(
            "bibliographic database is read-only (write to `{item}`)"
        )))
    }

    fn read(&self, item: &ItemId) -> Result<Value, RisError> {
        self.check_base(&item.base)?;
        let (author, title) = Self::author_title(item)?;
        Ok(self
            .db
            .by_author(&author)
            .into_iter()
            .find(|r| r.title == title)
            .map_or(Value::Null, |r| Value::Int(i64::from(r.year))))
    }

    fn enumerate(&self, pattern: &ItemPattern) -> Vec<ItemId> {
        if self.check_base(&pattern.base).is_err() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for rec in self.db.since(None) {
            let item = ItemId::with(
                pattern.base,
                [
                    Value::from(rec.author.as_str()),
                    Value::from(rec.title.as_str()),
                ],
            );
            let mut b = Bindings::new();
            if pattern.match_item(&item, &mut b) {
                out.push(item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::Term;

    fn setup() -> BiblioBackend {
        let mut db = BiblioDb::new();
        db.append("widom", "Active Databases", 1994);
        db.append("garcia", "Sagas", 1987);
        let rid = CmRid::parse("ris = biblio\n[map paper]\nmode = year\n").unwrap();
        BiblioBackend::new(db, &rid)
    }

    #[test]
    fn read_existing_and_absent() {
        let b = setup();
        let item = ItemId::with(
            "paper",
            [Value::from("widom"), Value::from("Active Databases")],
        );
        assert_eq!(b.read(&item).unwrap(), Value::Int(1994));
        let missing = ItemId::with("paper", [Value::from("widom"), Value::from("Nope")]);
        assert_eq!(b.read(&missing).unwrap(), Value::Null);
    }

    #[test]
    fn read_only_and_arity() {
        let mut b = setup();
        let item = ItemId::with("paper", [Value::from("a"), Value::from("t")]);
        assert!(b.write(&item, &Value::Int(1), SimTime::ZERO).is_err());
        assert!(b.read(&ItemId::plain("paper")).is_err());
        assert!(b
            .read(&ItemId::with("zz", [Value::from("a"), Value::from("t")]))
            .is_err());
    }

    #[test]
    fn librarian_append_then_visible_via_read() {
        let mut b = setup();
        b.apply_spontaneous(
            &SpontaneousOp::BiblioAppend {
                author: "chawathe".into(),
                title: "Constraints".into(),
                year: 1996,
            },
            SimTime::ZERO,
        )
        .unwrap();
        let item = ItemId::with(
            "paper",
            [Value::from("chawathe"), Value::from("Constraints")],
        );
        assert_eq!(b.read(&item).unwrap(), Value::Int(1996));
    }

    #[test]
    fn enumerate_by_author() {
        let b = setup();
        let all = ItemPattern::with("paper", [Term::var("a"), Term::var("t")]);
        assert_eq!(b.enumerate(&all).len(), 2);
        let widom_only =
            ItemPattern::with("paper", [Term::Const(Value::from("widom")), Term::var("t")]);
        assert_eq!(b.enumerate(&widom_only).len(), 1);
    }
}
