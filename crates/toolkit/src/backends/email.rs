//! Backend for the mail system — the write-only profile.
//!
//! Items map via `[map <base>] subject = …`; the item's single
//! parameter is the recipient. A CM write of a string value sends a
//! message; reads return `Null` (the CM cannot see mailboxes), and
//! there is no change feed.

use crate::backend::{single_param, value_to_text, Change, RisBackend};
use crate::msg::SpontaneousOp;
use crate::rid::{CmRid, RisKind};
use hcm_core::{ItemId, ItemPattern, SimTime, Value};
use hcm_ris::email::MailSystem;
use hcm_ris::RisError;

struct MailMap {
    base: String,
    subject: String,
}

/// See module docs.
pub struct EmailBackend {
    mail: MailSystem,
    maps: Vec<MailMap>,
}

impl EmailBackend {
    /// Wrap a mail system per the CM-RID.
    #[must_use]
    pub fn new(mail: MailSystem, rid: &CmRid) -> Self {
        let maps = rid
            .maps
            .iter()
            .map(|(base, props)| MailMap {
                base: base.clone(),
                subject: props
                    .get("subject")
                    .cloned()
                    .unwrap_or_else(|| "constraint manager notice".to_owned()),
            })
            .collect();
        EmailBackend { mail, maps }
    }

    /// Test/inspection access to the underlying mailboxes (the
    /// *recipients'* view, not the CM's).
    #[must_use]
    pub fn mailboxes(&self) -> &MailSystem {
        &self.mail
    }
}

impl RisBackend for EmailBackend {
    fn kind(&self) -> RisKind {
        RisKind::Email
    }

    fn has_change_feed(&self) -> bool {
        false
    }

    fn apply_spontaneous(
        &mut self,
        op: &SpontaneousOp,
        _now: SimTime,
    ) -> Result<Vec<Change>, RisError> {
        Err(RisError::Unsupported(format!(
            "the mail system takes no application operations through the CM harness: {op:?}"
        )))
    }

    fn write(
        &mut self,
        item: &ItemId,
        value: &Value,
        now: SimTime,
    ) -> Result<Option<Value>, RisError> {
        let m = self
            .maps
            .iter()
            .find(|m| m.base == item.base)
            .ok_or_else(|| RisError::Unsupported(format!("no mail mapping for `{}`", item.base)))?;
        if *value == Value::Null {
            return self.mail.recall(&single_param(item)?).map(|()| None);
        }
        let to = single_param(item)?;
        self.mail.send(&to, &m.subject, &value_to_text(value), now);
        Ok(None)
    }

    fn read(&self, item: &ItemId) -> Result<Value, RisError> {
        // The CM has no read access to mailboxes; a mailbox "item"
        // reads as absent.
        let _ = item;
        Ok(Value::Null)
    }

    fn enumerate(&self, _pattern: &ItemPattern) -> Vec<ItemId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> EmailBackend {
        let rid = CmRid::parse(
            "ris = email\n[interface]\nWR(mail(n), b) -> W(mail(n), b) within 1s\n\
             [map mail]\nsubject = record deleted\n",
        )
        .unwrap();
        EmailBackend::new(MailSystem::new(), &rid)
    }

    #[test]
    fn write_sends_mail() {
        let mut b = setup();
        let item = ItemId::with("mail", [Value::from("ann")]);
        b.write(
            &item,
            &Value::from("your project record was removed"),
            SimTime::from_secs(9),
        )
        .unwrap();
        let inbox = b.mailboxes().inbox("ann");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].subject, "record deleted");
        assert_eq!(inbox[0].body, "your project record was removed");
        assert_eq!(inbox[0].at, SimTime::from_secs(9));
    }

    #[test]
    fn cm_cannot_read_or_recall() {
        let mut b = setup();
        let item = ItemId::with("mail", [Value::from("ann")]);
        b.write(&item, &Value::from("x"), SimTime::ZERO).unwrap();
        assert_eq!(b.read(&item).unwrap(), Value::Null);
        assert!(b.write(&item, &Value::Null, SimTime::ZERO).is_err());
        assert!(b
            .enumerate(&ItemPattern::with("mail", [hcm_core::Term::var("n")]))
            .is_empty());
    }

    #[test]
    fn unmapped_base_rejected() {
        let mut b = setup();
        assert!(b
            .write(&ItemId::plain("zz"), &Value::from("x"), SimTime::ZERO)
            .is_err());
    }
}
