//! Backend for the file store.
//!
//! Items map onto paths via `[map <base>] path = prefix$p0suffix`, with
//! a `type` property controlling text ↔ value conversion. The store has
//! **no change feed**: `apply_spontaneous` deliberately reports nothing
//! (the application's `write()` gives the CM no signal), so a notify
//! interface cannot be offered for this RIS — translators poll via
//! read/enumerate, exactly the situation of the paper's polling example
//! (§4.2.3).

use crate::backend::{single_param, text_to_value, value_to_text, Change, KeyPattern, RisBackend};
use crate::msg::SpontaneousOp;
use crate::rid::{CmRid, RisKind};
use hcm_core::{Bindings, ItemId, ItemPattern, SimTime, Value};
use hcm_ris::filestore::FileStore;
use hcm_ris::RisError;

struct FileMap {
    base: String,
    path: KeyPattern,
    ty: Option<String>,
}

/// See module docs.
pub struct FileBackend {
    fs: FileStore,
    maps: Vec<FileMap>,
}

impl FileBackend {
    /// Wrap a file store per the CM-RID.
    #[must_use]
    pub fn new(fs: FileStore, rid: &CmRid) -> Self {
        let maps = rid
            .maps
            .iter()
            .filter_map(|(base, props)| {
                props.get("path").map(|p| FileMap {
                    base: base.clone(),
                    path: KeyPattern::parse(p),
                    ty: props.get("type").cloned(),
                })
            })
            .collect();
        FileBackend { fs, maps }
    }

    fn map_for(&self, base: &str) -> Result<&FileMap, RisError> {
        self.maps
            .iter()
            .find(|m| m.base == base)
            .ok_or_else(|| RisError::Unsupported(format!("no file mapping for `{base}`")))
    }
}

impl RisBackend for FileBackend {
    fn kind(&self) -> RisKind {
        RisKind::File
    }

    fn has_change_feed(&self) -> bool {
        false // the CM must poll; changes below are trace ground truth
    }

    fn apply_spontaneous(
        &mut self,
        op: &SpontaneousOp,
        now: SimTime,
    ) -> Result<Vec<Change>, RisError> {
        // Ground-truth bookkeeping for the recorded trace: the mapped
        // item's old/new value around the native operation. The
        // translator records the Ws event but must not *act* on it
        // (no change feed).
        let changed_path;
        let mut old = None;
        match op {
            SpontaneousOp::FileWrite { path, .. } | SpontaneousOp::FileRemove { path } => {
                changed_path = path.clone();
                for m in &self.maps {
                    if m.path.extract(path).is_some() {
                        old = self
                            .fs
                            .read(path)
                            .ok()
                            .map(|t| text_to_value(t, m.ty.as_deref()));
                    }
                }
            }
            other => panic!("file RIS received non-file spontaneous op: {other:?}"),
        }
        match op {
            SpontaneousOp::FileWrite { path, contents } => {
                self.fs.write(path, contents, now);
            }
            SpontaneousOp::FileRemove { path } => {
                self.fs.remove(path)?;
            }
            _ => unreachable!(),
        }
        let mut out = Vec::new();
        for m in &self.maps {
            if let Some(param) = m.path.extract(&changed_path) {
                let item = m.path.item_for(&m.base, param);
                let new = match op {
                    SpontaneousOp::FileWrite { contents, .. } => {
                        text_to_value(contents, m.ty.as_deref())
                    }
                    _ => Value::Null,
                };
                out.push(Change {
                    item,
                    old: Some(old.clone().unwrap_or(Value::Null)),
                    new,
                });
            }
        }
        Ok(out)
    }

    fn write(
        &mut self,
        item: &ItemId,
        value: &Value,
        now: SimTime,
    ) -> Result<Option<Value>, RisError> {
        let m = self.map_for(&item.base)?;
        let path = m.path.render(&single_param(item)?);
        let old = self
            .fs
            .read(&path)
            .ok()
            .map(|text| text_to_value(text, m.ty.as_deref()));
        if *value == Value::Null {
            // Removing an absent file is idempotent for the CM.
            let _ = self.fs.remove(&path);
        } else {
            self.fs.write(&path, &value_to_text(value), now);
        }
        Ok(old.or(Some(Value::Null)))
    }

    fn read(&self, item: &ItemId) -> Result<Value, RisError> {
        let m = self.map_for(&item.base)?;
        let path = m.path.render(&single_param(item)?);
        match self.fs.read(&path) {
            Ok(text) => Ok(text_to_value(text, m.ty.as_deref())),
            Err(RisError::NotFound(_)) => Ok(Value::Null),
            Err(e) => Err(e),
        }
    }

    fn enumerate(&self, pattern: &ItemPattern) -> Vec<ItemId> {
        let Ok(m) = self.map_for(&pattern.base) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for path in self.fs.list() {
            if let Some(param) = m.path.extract(path) {
                let item = m.path.item_for(&m.base, param);
                let mut b = Bindings::new();
                if pattern.match_item(&item, &mut b) {
                    out.push(item);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::Term;

    fn setup() -> FileBackend {
        let mut fs = FileStore::new();
        fs.write("/phones/ann.txt", "5550100", SimTime::ZERO);
        let rid =
            CmRid::parse("ris = file\n[map phone]\npath = /phones/$p0.txt\ntype = int\n").unwrap();
        FileBackend::new(fs, &rid)
    }

    fn ann() -> ItemId {
        ItemId::with("phone", [Value::from("ann")])
    }

    #[test]
    fn no_change_feed_but_ground_truth_reported() {
        let mut b = setup();
        assert!(!b.has_change_feed(), "file store has no native feed");
        let ch = b
            .apply_spontaneous(
                &SpontaneousOp::FileWrite {
                    path: "/phones/ann.txt".into(),
                    contents: "1".into(),
                },
                SimTime::from_secs(1),
            )
            .unwrap();
        // The change IS reported — as trace ground truth the translator
        // records but must not base notifications on.
        assert_eq!(ch.len(), 1);
        assert_eq!(ch[0].old, Some(Value::Int(5_550_100)));
        assert_eq!(ch[0].new, Value::Int(1));
        assert_eq!(b.read(&ann()).unwrap(), Value::Int(1));
        // Unmapped paths produce nothing.
        let none = b
            .apply_spontaneous(
                &SpontaneousOp::FileWrite {
                    path: "/other.txt".into(),
                    contents: "x".into(),
                },
                SimTime::from_secs(2),
            )
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn typed_read() {
        let b = setup();
        assert_eq!(b.read(&ann()).unwrap(), Value::Int(5_550_100));
        assert_eq!(
            b.read(&ItemId::with("phone", [Value::from("bob")]))
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn cm_write_and_delete() {
        let mut b = setup();
        let old = b
            .write(&ann(), &Value::Int(42), SimTime::from_secs(2))
            .unwrap();
        assert_eq!(old, Some(Value::Int(5_550_100)));
        assert_eq!(b.read(&ann()).unwrap(), Value::Int(42));
        b.write(&ann(), &Value::Null, SimTime::from_secs(3))
            .unwrap();
        assert_eq!(b.read(&ann()).unwrap(), Value::Null);
    }

    #[test]
    fn enumerate_and_unmapped() {
        let mut b = setup();
        b.write(
            &ItemId::with("phone", [Value::from("bob")]),
            &Value::Int(7),
            SimTime::ZERO,
        )
        .unwrap();
        let pat = ItemPattern::with("phone", [Term::var("n")]);
        assert_eq!(b.enumerate(&pat).len(), 2);
        assert!(b.read(&ItemId::plain("zz")).is_err());
        assert!(b.enumerate(&ItemPattern::plain("zz")).is_empty());
    }

    #[test]
    fn file_remove_spontaneous() {
        let mut b = setup();
        b.apply_spontaneous(
            &SpontaneousOp::FileRemove {
                path: "/phones/ann.txt".into(),
            },
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(b.read(&ann()).unwrap(), Value::Null);
    }
}
