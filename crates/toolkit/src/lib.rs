//! # hcm-toolkit — the constraint-management toolkit
//!
//! This crate is the reproduction of the paper's contribution proper
//! (§4, Figure 2): a set of configurable modules that monitor and
//! enforce constraints spanning loosely coupled heterogeneous
//! information systems.
//!
//! ```text
//!   CM-Shell ◄────────────── Strategy Specification
//!      │  CMI (uniform)
//!   CM-Translator ◄───────── CM-RID (per data source)
//!      │  RISI (native: SQL / files / kv / biblio / whois)
//!   Raw Information Source
//! ```
//!
//! * [`rid::CmRid`] — parsed CM-Raw-Interface-Description files: the
//!   interface statements a database offers plus the RIS-specific
//!   plumbing (command templates with `$param` substitution for the
//!   relational source, path/key patterns for the others).
//! * [`backend::RisBackend`] + [`backends`] — the inside of a
//!   CM-Translator: one adapter per RIS kind, each speaking its
//!   store's *native* interface only.
//! * [`translator::TranslatorActor`] — implements the offered
//!   interfaces at run time: performs requested writes/reads within
//!   their `→δ` bounds, turns native triggers/watches into
//!   notifications, polls for periodic-notify interfaces, and
//!   classifies failures (§5).
//! * [`shell::ShellActor`] — the CM-Shell: a distributed rule engine
//!   executing the strategy rules assigned to its site, with CM-private
//!   and auxiliary data, event forwarding, and guarantee bookkeeping.
//! * [`compile::CompiledStrategy`] — initialization (§4.1): rule
//!   distribution by LHS-event site, routing tables, interest patterns.
//! * [`menu`] — the library of proven interfaces and strategies, and
//!   the suggestion engine.
//! * [`scenario::ScenarioBuilder`] — wires sites, translators, shells,
//!   workloads and failure schedules into an `hcm_simkit::Sim` and
//!   returns the recorded trace for checking.

#![warn(missing_docs)]

pub mod backend;
pub mod backends;
pub mod compile;
pub mod dispatch;
pub mod durability;
pub mod menu;
pub mod msg;
pub mod registry;
pub mod rid;
pub mod scenario;
pub mod shell;
pub mod translator;
pub mod workload;

pub use compile::CompiledStrategy;
pub use dispatch::{DispatchMode, RuleIndex};
pub use durability::{Durability, StatePolicy, StoreBridge, StoreKind, StoreSetup};
pub use msg::{CmMsg, RequestKind, SpontaneousOp, TranslatorEvent};
pub use registry::{FailureKind, GuaranteeRegistry, GuaranteeStatus};
pub use rid::CmRid;

/// Alias used by `backend::KeyPattern::item_for`.
pub type ItemIdAlias = hcm_core::ItemId;
pub use scenario::{Scenario, ScenarioBuilder};
