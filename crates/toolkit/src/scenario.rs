//! Scenario construction — wiring sites, translators, shells,
//! strategies, workloads and failure schedules into a simulation.
//!
//! A scenario mirrors the toolkit deployment of Figure 2: one Raw
//! Information Source + CM-Translator + CM-Shell per site, a Strategy
//! Specification shared by all shells, and applications (workloads)
//! operating on the stores natively. [`ScenarioBuilder`] performs the
//! §4.1 initialization — registering interface statements, compiling
//! and distributing strategy rules, deriving interest patterns,
//! registering guarantees — and yields a [`Scenario`] ready to run.

use crate::backends::{build_backend, RawStore};
use crate::compile::CompiledStrategy;
use crate::dispatch::DispatchMode;
use crate::durability::{Durability, StatePolicy, StoreBridge, StoreKind};
use crate::msg::{CmMsg, SpontaneousOp};
use crate::registry::GuaranteeRegistry;
use crate::rid::CmRid;
use crate::shell::{FailureConfig, ShellActor, ShellStatsHandle};
use crate::translator::{TranslatorActor, TranslatorStatsHandle};
use hcm_core::{
    ItemId, RuleId, RuleRegistry, Shared, SimDuration, SimTime, SiteId, Trace, TraceRecorder, Value,
};
use hcm_obs::{Metrics, Scope};
use hcm_simkit::{Actor, ActorId, Network, Obs, RunOutcome, Sim};
use hcm_store::{FileStore, MemStore, SharedStore, StoreConfig};
use std::collections::BTreeMap;
use std::fmt;

/// A scenario-construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario error: {}", self.msg)
    }
}

impl std::error::Error for ScenarioError {}

struct SiteSpec {
    name: String,
    rid: CmRid,
    store: RawStore,
}

/// Handles to one site's components, for inspection by experiments.
pub struct SiteHandle {
    /// The site id.
    pub site: SiteId,
    /// Its name in specification files.
    pub name: String,
    /// The translator actor.
    pub translator: ActorId,
    /// The shell actor.
    pub shell: ActorId,
    /// Interface-statement rule ids, in CM-RID order.
    pub iface_ids: Vec<RuleId>,
    /// The parsed CM-RID (interface statements in the same order as
    /// `iface_ids`) — checkers rebuild the rule set from this.
    pub rid: CmRid,
    /// Translator counters (registry-backed view).
    pub translator_stats: TranslatorStatsHandle,
    /// Shell counters (registry-backed view).
    pub shell_stats: ShellStatsHandle,
    /// CM-private/auxiliary data of the shell (§7.1: applications read
    /// auxiliary data through the shell's programmatic interface —
    /// this is that interface).
    pub private: Shared<BTreeMap<ItemId, Value>>,
    /// The shell's guarantee registry.
    pub registry: Shared<GuaranteeRegistry>,
    /// The shell's durable store when the scenario runs with
    /// [`Durability::Durable`]; `None` otherwise. Exposed so
    /// experiments can inspect (or damage) the log between runs.
    pub shell_store: Option<SharedStore>,
    /// The translator's durable store, likewise.
    pub translator_store: Option<SharedStore>,
}

/// Build the per-actor state policy for one component of a durable
/// (or state-losing) site, returning the policy plus a handle to the
/// backing store when one was created.
fn actor_policy(
    durability: &Durability,
    label: &str,
    scope: Scope,
    metrics: &Metrics,
) -> Result<(StatePolicy, Option<SharedStore>), ScenarioError> {
    match durability {
        Durability::MessageOnly => Ok((StatePolicy::Keep, None)),
        Durability::LoseState => Ok((StatePolicy::Lose, None)),
        Durability::Durable(setup) => {
            let store: SharedStore = match &setup.kind {
                StoreKind::Memory => hcm_store::shared(MemStore::new()),
                StoreKind::File(dir) => {
                    let cfg = StoreConfig {
                        segment_bytes: setup.segment_bytes,
                    };
                    let fs = FileStore::open(dir.join(label), cfg).map_err(|e| ScenarioError {
                        msg: format!("store `{label}`: {e}"),
                    })?;
                    hcm_store::shared(fs)
                }
            };
            let bridge = StoreBridge::new(
                store.clone(),
                metrics.clone(),
                scope,
                setup.checkpoint_every,
            );
            Ok((StatePolicy::Durable(bridge), Some(store)))
        }
    }
}

/// Builder for a toolkit deployment. See the module docs.
pub struct ScenarioBuilder {
    seed: u64,
    network: Option<Network>,
    sites: Vec<SiteSpec>,
    strategy_src: String,
    failure_cfg: FailureConfig,
    stop_periodics_at: SimTime,
    private_init: Vec<(String, ItemId, Value)>,
    durability: Durability,
    dispatch: DispatchMode,
    shards: Option<u32>,
    co_locate: Vec<Vec<String>>,
}

impl ScenarioBuilder {
    /// A builder with the given RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ScenarioBuilder {
            seed,
            network: None,
            sites: Vec::new(),
            strategy_src: String::new(),
            failure_cfg: FailureConfig::default(),
            stop_periodics_at: SimTime::from_millis(u64::MAX),
            private_init: Vec::new(),
            durability: Durability::default(),
            dispatch: DispatchMode::default(),
            shards: None,
            co_locate: Vec::new(),
        }
    }

    /// Select the shells' LHS matching path. The default
    /// [`DispatchMode::Indexed`] probes the discrimination index;
    /// [`DispatchMode::Linear`] retains the reference full scan (same
    /// observable behaviour, used for differential testing).
    #[must_use]
    pub fn dispatch_mode(mut self, mode: DispatchMode) -> Self {
        self.dispatch = mode;
        self
    }

    /// What a *lossy* crash does to component state (§5): the default
    /// [`Durability::MessageOnly`] only drops messages,
    /// [`Durability::LoseState`] also wipes volatile shell/translator
    /// state, and [`Durability::Durable`] wipes it but recovers from a
    /// write-ahead log + checkpoints.
    #[must_use]
    pub fn durability(mut self, d: Durability) -> Self {
        self.durability = d;
        self
    }

    /// Partition the deployment across `n` worker threads for the
    /// sharded execution mode: each site's shell and translator are
    /// co-located on one shard and sites round-robin across shards.
    /// Observable results (trace, metrics snapshot, spans, checker
    /// verdicts) are byte-identical to serial execution. Defaults to
    /// the `HCM_SIM_THREADS` environment variable, else serial.
    #[must_use]
    pub fn shards(mut self, n: u32) -> Self {
        self.shards = Some(n);
        self
    }

    /// Constrain the named sites to one shard in sharded runs. Needed
    /// when a protocol actor talks to several sites' translators with
    /// short local sends (e.g. the batch propagator spanning BR and
    /// HQ): the sharded executor requires sub-lookahead sends to stay
    /// intra-shard. Unknown names are rejected by `build`.
    #[must_use]
    pub fn co_locate<S: AsRef<str>>(mut self, sites: &[S]) -> Self {
        self.co_locate
            .push(sites.iter().map(|s| s.as_ref().to_owned()).collect());
        self
    }

    /// Use an explicit network model.
    #[must_use]
    pub fn network(mut self, net: Network) -> Self {
        self.network = Some(net);
        self
    }

    /// Failure-detection configuration for every shell.
    #[must_use]
    pub fn failure_config(mut self, cfg: FailureConfig) -> Self {
        self.failure_cfg = cfg;
        self
    }

    /// Stop re-arming periodic timers (interface polls and `P`-headed
    /// rules) after `t`, so the simulation can drain to quiescence.
    #[must_use]
    pub fn stop_periodics_at(mut self, t: SimTime) -> Self {
        self.stop_periodics_at = t;
        self
    }

    /// Add a site: a name (used in specification files), a prepared raw
    /// store, and its CM-RID text.
    pub fn site(
        mut self,
        name: &str,
        store: RawStore,
        rid_src: &str,
    ) -> Result<Self, ScenarioError> {
        let rid = CmRid::parse(rid_src).map_err(|e| ScenarioError { msg: e.to_string() })?;
        self.sites.push(SiteSpec {
            name: name.to_owned(),
            rid,
            store,
        });
        Ok(self)
    }

    /// Set the Strategy Specification text (see
    /// [`crate::compile::CompiledStrategy::from_spec`] for the format).
    #[must_use]
    pub fn strategy(mut self, src: &str) -> Self {
        self.strategy_src = src.to_owned();
        self
    }

    /// Initialize a CM-private item at a named site's shell.
    #[must_use]
    pub fn private_data(mut self, site: &str, item: ItemId, value: Value) -> Self {
        self.private_init.push((site.to_owned(), item, value));
        self
    }

    /// Perform initialization and produce a runnable [`Scenario`].
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let n = self.sites.len();
        if n == 0 {
            return Err(ScenarioError {
                msg: "a scenario needs at least one site".into(),
            });
        }
        let mut site_ids = BTreeMap::new();
        for (i, s) in self.sites.iter().enumerate() {
            if site_ids
                .insert(s.name.clone(), SiteId::new(i as u32))
                .is_some()
            {
                return Err(ScenarioError {
                    msg: format!("duplicate site name `{}`", s.name),
                });
            }
        }

        let recorder = TraceRecorder::new();
        let mut registry = RuleRegistry::new();

        // Interface statements register first, per site and in CM-RID
        // order, so events generated by translators have stable rule
        // ids.
        let mut iface_ids: Vec<Vec<RuleId>> = Vec::with_capacity(n);
        for s in &self.sites {
            iface_ids.push(
                s.rid
                    .interfaces
                    .iter()
                    .map(|st| registry.register(st.to_string()))
                    .collect(),
            );
        }

        let strategy = CompiledStrategy::from_spec(&self.strategy_src, &site_ids, &mut registry)
            .map_err(|e| ScenarioError { msg: e.to_string() })?;

        let mut sim = Sim::with_network(self.seed, self.network.unwrap_or_default());
        let obs = sim.obs();

        // Actor id layout: shells first (0..n), translators next (n..2n).
        let shell_ids: Vec<ActorId> = (0..n).map(|i| ActorId(i as u32)).collect();

        // Per-site shared state.
        let mut handles = Vec::with_capacity(n);
        let mut privates = Vec::with_capacity(n);
        let mut registries = Vec::with_capacity(n);
        for i in 0..n {
            let mut private = BTreeMap::new();
            for (site_name, item, value) in &self.private_init {
                if site_ids[site_name] == SiteId::new(i as u32) {
                    private.insert(item.clone(), value.clone());
                }
            }
            privates.push(Shared::new(private));
            let mut greg = GuaranteeRegistry::new();
            for g in &strategy.guarantees {
                greg.register(g.clone(), strategy.guarantee_sites(g));
            }
            registries.push(Shared::new(greg));
        }

        let mut shell_stores = Vec::with_capacity(n);
        for (i, _) in self.sites.iter().enumerate() {
            let site = SiteId::new(i as u32);
            let shell_stats = ShellStatsHandle::new(obs.metrics.clone(), site);
            // Scoped recorder/span handles mint ids from a per-actor
            // namespace, so ids are identical in serial and sharded
            // execution regardless of interleaving.
            let mut shell_obs = obs.clone();
            shell_obs.spans = obs.spans.scoped(i as u32);
            let mut shell = ShellActor::new(
                site,
                ActorId((n + i) as u32),
                shell_ids.clone(),
                &strategy,
                privates[i].clone(),
                registries[i].clone(),
                recorder.scoped(i as u32),
                shell_obs,
                self.failure_cfg,
                self.stop_periodics_at,
            );
            shell.set_dispatch_mode(self.dispatch);
            let (policy, store) = actor_policy(
                &self.durability,
                &format!("site{i}-shell"),
                Scope::Actor(i as u32),
                &obs.metrics,
            )?;
            shell.set_state_policy(policy);
            shell_stores.push(store);
            let id = sim.add_actor(Box::new(shell));
            assert_eq!(id, ActorId(i as u32), "actor id layout violated");
            handles.push((shell_stats, ActorId(i as u32)));
        }

        let mut site_handles = Vec::with_capacity(n);
        for (i, s) in self.sites.into_iter().enumerate() {
            let site = SiteId::new(i as u32);
            let rid_copy = s.rid.clone();
            let backend = build_backend(s.store, &s.rid);
            let t_stats = TranslatorStatsHandle::new(obs.metrics.clone(), site);
            let mut translator = TranslatorActor::new(
                site,
                ActorId(i as u32),
                backend,
                &s.rid,
                iface_ids[i].clone(),
                strategy.interest_patterns(site),
                self.stop_periodics_at,
                recorder.scoped((n + i) as u32),
                t_stats.clone(),
            );
            let (policy, t_store) = actor_policy(
                &self.durability,
                &format!("site{i}-translator"),
                Scope::Actor((n + i) as u32),
                &obs.metrics,
            )?;
            translator.set_state_policy(policy);
            let id = sim.add_actor(Box::new(translator));
            assert_eq!(id, ActorId((n + i) as u32), "actor id layout violated");
            site_handles.push(SiteHandle {
                site,
                name: s.name,
                translator: id,
                shell: handles[i].1,
                iface_ids: iface_ids[i].clone(),
                rid: rid_copy,
                translator_stats: t_stats,
                shell_stats: handles[i].0.clone(),
                private: privates[i].clone(),
                registry: registries[i].clone(),
                shell_store: shell_stores[i].clone(),
                translator_store: t_store,
            });
        }

        // Shard assignment: a site's shell and translator are
        // co-located (their interactions use short local delays), as
        // is every co_locate group; groups round-robin across shards.
        // An all-zeros map keeps the serial executor.
        let shards = self
            .shards
            .or_else(|| {
                std::env::var("HCM_SIM_THREADS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(1)
            .clamp(1, n as u32);
        // Union-find over site indexes: each co_locate group collapses
        // into its first member's set.
        let mut rep: Vec<usize> = (0..n).collect();
        fn find(rep: &mut [usize], mut i: usize) -> usize {
            while rep[i] != i {
                rep[i] = rep[rep[i]];
                i = rep[i];
            }
            i
        }
        for group in &self.co_locate {
            let mut idx = Vec::with_capacity(group.len());
            for name in group {
                let Some(sid) = site_ids.get(name) else {
                    return Err(ScenarioError {
                        msg: format!("co_locate names unknown site `{name}`"),
                    });
                };
                idx.push(sid.index() as usize);
            }
            for w in idx.windows(2) {
                let (a, b) = (find(&mut rep, w[0]), find(&mut rep, w[1]));
                rep[a.max(b)] = a.min(b);
            }
        }
        let mut site_shard = vec![0u32; n];
        let mut map = vec![0u32; 2 * n];
        let mut root_shard: Vec<Option<u32>> = vec![None; n];
        let mut next = 0u32;
        for i in 0..n {
            let r = find(&mut rep, i);
            let sh = *root_shard[r].get_or_insert_with(|| {
                let sh = next % shards;
                next += 1;
                sh
            });
            site_shard[i] = sh;
            map[i] = sh; // shell
            map[n + i] = sh; // translator
        }
        sim.set_shard_map(map);
        // After a sharded run, restore the trace's canonical order
        // (metrics and spans are finalized by the simulation itself).
        {
            let rec = recorder.clone();
            sim.add_order_sink(Box::new(move || rec.finalize_order()));
        }

        Ok(Scenario {
            obs,
            sim,
            recorder,
            rule_registry: registry,
            strategy,
            sites: site_handles,
            site_shard,
        })
    }
}

/// A runnable toolkit deployment.
pub struct Scenario {
    /// The observability registry shared by the simulation substrate
    /// and every shell/translator (metrics + causal spans).
    pub obs: Obs,
    /// The underlying simulation (exposed for failure injection and
    /// custom actors).
    pub sim: Sim<CmMsg>,
    /// The shared trace recorder.
    pub recorder: TraceRecorder,
    /// Rule-id registry (interface + strategy rules).
    pub rule_registry: RuleRegistry,
    /// The compiled strategy.
    pub strategy: CompiledStrategy,
    /// Per-site handles, in site order.
    pub sites: Vec<SiteHandle>,
    /// Shard of each site's shell+translator pair (all zeros when
    /// running serially).
    site_shard: Vec<u32>,
}

impl Scenario {
    /// Handle of a site by name. Panics on unknown names (construction
    /// bug).
    #[must_use]
    pub fn site(&self, name: &str) -> &SiteHandle {
        self.sites
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no site named `{name}`"))
    }

    /// Inject a spontaneous application operation at a named site at an
    /// absolute time.
    pub fn inject(&mut self, at: SimTime, site: &str, op: SpontaneousOp) {
        let target = self.site(site).translator;
        self.sim.inject_at(at, target, CmMsg::Spontaneous(op));
    }

    /// Add a workload (or protocol) actor (on shard 0 in sharded
    /// runs — prefer [`Scenario::add_actor_for`] for actors that
    /// interact with one site through local sends).
    pub fn add_actor(&mut self, actor: Box<dyn Actor<CmMsg> + Send>) -> ActorId {
        self.sim.add_actor(actor)
    }

    /// Add an actor co-located with a named site's shard, so its
    /// short-delay local interactions with that site's shell and
    /// translator never cross a shard boundary in parallel runs.
    pub fn add_actor_for(&mut self, site: &str, actor: Box<dyn Actor<CmMsg> + Send>) -> ActorId {
        let shard = self.site_shard[self.site(site).site.index() as usize];
        let id = self.sim.add_actor(actor);
        self.sim.assign_shard(id, shard);
        id
    }

    /// The shard hosting a named site's components (0 when serial).
    #[must_use]
    pub fn site_shard(&self, site: &str) -> u32 {
        self.site_shard[self.site(site).site.index() as usize]
    }

    /// Inflict an overload window on a site's database: its internal
    /// service delay grows by `extra` during `[from, to)` — the §5
    /// *metric failure* generator.
    pub fn overload(&mut self, site: &str, from: SimTime, to: SimTime, extra: SimDuration) {
        let t = self.site(site).translator;
        self.sim.inject_at(from, t, CmMsg::SetServiceExtra(extra));
        self.sim
            .inject_at(to, t, CmMsg::SetServiceExtra(SimDuration::ZERO));
    }

    /// Crash a site's database at `at` — the §5 *logical failure*
    /// generator. With `lossy`, in-flight messages are dropped; else
    /// they replay at recovery.
    pub fn crash(&mut self, site: &str, at: SimTime, lossy: bool) {
        let t = self.site(site).translator;
        self.sim.crash_at(t, at, lossy);
    }

    /// Recover a crashed site at `at`.
    pub fn recover(&mut self, site: &str, at: SimTime) {
        let t = self.site(site).translator;
        self.sim.recover_at(t, at);
    }

    /// Crash a site's CM-Shell at `at`. Under
    /// [`crate::Durability::LoseState`] or
    /// [`crate::Durability::Durable`] a lossy shell crash also wipes
    /// its volatile state (private data, guarantee registry,
    /// outstanding requests).
    pub fn crash_shell(&mut self, site: &str, at: SimTime, lossy: bool) {
        let s = self.site(site).shell;
        self.sim.crash_at(s, at, lossy);
    }

    /// Recover a crashed CM-Shell at `at`. Durable shells reload the
    /// latest checkpoint and replay the log suffix before resuming.
    pub fn recover_shell(&mut self, site: &str, at: SimTime) {
        let s = self.site(site).shell;
        self.sim.recover_at(s, at);
    }

    /// Run until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.sim.run(Some(horizon))
    }

    /// Run until no work remains (requires
    /// [`ScenarioBuilder::stop_periodics_at`] for scenarios with
    /// periodic interfaces or rules).
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.sim.run(None)
    }

    /// Snapshot the recorded trace.
    #[must_use]
    pub fn trace(&self) -> Trace {
        self.recorder.snapshot()
    }

    /// Human-readable metrics table for the run so far.
    #[must_use]
    pub fn metrics_table(&self) -> String {
        self.obs.table()
    }

    /// Deterministic JSON-lines metrics snapshot: byte-identical
    /// across same-seed runs of the same scenario.
    #[must_use]
    pub fn metrics_jsonl(&self) -> String {
        self.obs.snapshot_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use hcm_ris::relational::Database;

    const RID_A: &str = r#"
ris = relational
service = 200ms
[interface]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s
[command read salary1]
select salary from employees where empid = $p0
[map salary1]
table = employees
key = empid
col = salary
"#;

    const RID_B: &str = r#"
ris = relational
service = 200ms
[interface]
WR(salary2(n), b) -> W(salary2(n), b) within 1s
Ws(salary2(n), b) -> false
[command write salary2]
update employees set salary = $value where empid = $p0
[command insert salary2]
insert into employees values ($p0, $value)
[command read salary2]
select salary from employees where empid = $p0
[map salary2]
table = employees
key = empid
col = salary
"#;

    const STRATEGY: &str = r#"
[locate]
salary1 = A
salary2 = B

[strategy]
N(salary1(n), b) -> WR(salary2(n), b) within 5s

[guarantee y_follows_x]
(salary2(n) = y) @ t1 => (salary1(n) = y) @ t2 and t2 < t1
"#;

    fn db_with_salary(v: i64) -> Database {
        let mut db = Database::new();
        db.create_table("employees", &["empid", "salary"]).unwrap();
        db.execute(&format!("INSERT INTO employees VALUES ('e1', {v})"))
            .unwrap();
        db
    }

    fn build_salary_scenario() -> Scenario {
        ScenarioBuilder::new(42)
            .site("A", RawStore::Relational(db_with_salary(90_000)), RID_A)
            .unwrap()
            .site("B", RawStore::Relational(db_with_salary(90_000)), RID_B)
            .unwrap()
            .strategy(STRATEGY)
            .build()
            .unwrap()
    }

    #[test]
    fn salary_update_propagates_end_to_end() {
        let mut sc = build_salary_scenario();
        sc.inject(
            SimTime::from_secs(10),
            "A",
            SpontaneousOp::Sql("update employees set salary = 95000 where empid = 'e1'".into()),
        );
        assert_eq!(sc.run_to_quiescence(), RunOutcome::Quiescent);
        let trace = sc.trace();
        // Expect the full causal chain: Ws at A, N at A, WR at B, W at B.
        let tags: Vec<&str> = trace.events().iter().map(|e| e.desc.tag()).collect();
        assert_eq!(tags, vec!["Ws", "N", "WR", "W"]);
        // Values propagated.
        let item2 = ItemId::with("salary2", [Value::from("e1")]);
        assert_eq!(
            trace.value_at(&item2, trace.end_time()),
            Some(Value::Int(95_000))
        );
        // Provenance chain intact.
        let n_event = &trace.events()[1];
        assert_eq!(n_event.trigger, Some(trace.events()[0].id));
        let w_event = &trace.events()[3];
        assert_eq!(w_event.trigger, Some(trace.events()[2].id));
        // Metric bound: W within 5s+1s+net of the Ws.
        let delay = w_event.time - trace.events()[0].time;
        assert!(
            delay < SimDuration::from_secs(6),
            "propagation took {delay}"
        );
        // Stats.
        assert_eq!(sc.site("A").translator_stats.borrow().notifications, 1);
        assert_eq!(sc.site("B").translator_stats.borrow().writes_done, 1);
        assert_eq!(
            sc.site("B").shell_stats.borrow().firings,
            1,
            "RHS executes at B"
        );
    }

    #[test]
    fn initial_values_recorded() {
        let mut sc = build_salary_scenario();
        sc.run_to_quiescence();
        let trace = sc.trace();
        let item1 = ItemId::with("salary1", [Value::from("e1")]);
        assert_eq!(trace.initial(&item1), Some(&Value::Int(90_000)));
    }

    #[test]
    fn multiple_updates_propagate_in_order() {
        let mut sc = build_salary_scenario();
        for (i, v) in [91_000, 92_000, 93_000].iter().enumerate() {
            sc.inject(
                SimTime::from_secs(10 + i as u64 * 10),
                "A",
                SpontaneousOp::Sql(format!(
                    "update employees set salary = {v} where empid = 'e1'"
                )),
            );
        }
        sc.run_to_quiescence();
        let trace = sc.trace();
        let item2 = ItemId::with("salary2", [Value::from("e1")]);
        let tl = trace.timeline(&item2);
        let vals = tl.values_taken();
        assert_eq!(
            vals,
            vec![
                Value::Int(90_000), // initial
                Value::Int(91_000),
                Value::Int(92_000),
                Value::Int(93_000)
            ]
        );
    }

    #[test]
    fn unknown_site_panics() {
        let sc = build_salary_scenario();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sc.site("Z");
        }));
        assert!(r.is_err());
    }

    #[test]
    fn empty_scenario_rejected() {
        assert!(ScenarioBuilder::new(1).build().is_err());
    }

    #[test]
    fn duplicate_site_rejected() {
        let r = ScenarioBuilder::new(1)
            .site("A", RawStore::Relational(db_with_salary(1)), RID_A)
            .unwrap()
            .site("A", RawStore::Relational(db_with_salary(1)), RID_A)
            .unwrap()
            .strategy("")
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn prohibition_violation_counted() {
        let mut sc = build_salary_scenario();
        // Site B promised no spontaneous writes to salary2 — violate it.
        sc.inject(
            SimTime::from_secs(5),
            "B",
            SpontaneousOp::Sql("update employees set salary = 1 where empid = 'e1'".into()),
        );
        sc.run_to_quiescence();
        assert_eq!(
            sc.site("B")
                .translator_stats
                .borrow()
                .prohibition_violations,
            1
        );
    }

    #[test]
    fn read_interface_round_trip() {
        // Poll-style strategy: P fires once (stop_periodics early).
        let strategy = r#"
[locate]
salary1 = A
salary2 = B
[strategy]
P(10s) -> RR(salary1(n)) within 1s
"#;
        // RR(salary1(n)) has an unbound parameter `n`; instantiation
        // fails and the step is skipped — this documents that polling
        // parameterized items needs ground rules or periodic-notify
        // interfaces instead.
        let mut sc = ScenarioBuilder::new(7)
            .site("A", RawStore::Relational(db_with_salary(90_000)), RID_A)
            .unwrap()
            .site("B", RawStore::Relational(db_with_salary(90_000)), RID_B)
            .unwrap()
            .strategy(strategy)
            .stop_periodics_at(SimTime::from_secs(15))
            .build()
            .unwrap();
        sc.run_to_quiescence();
        assert!(sc.site("A").shell_stats.borrow().steps_skipped >= 1);
    }
}
