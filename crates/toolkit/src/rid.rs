//! CM-RID — the CM-Raw-Interface-Description file.
//!
//! §4.1: "The design and implementation of the CM-Translator is helped
//! by the CM-RID file, which configures standard CM-Translators to the
//! particular underlying data source by presenting the specifics of the
//! RISI in a standard format."
//!
//! A CM-RID contains:
//!
//! * top-level properties — `ris` (which backend kind), `service`
//!   (the database's internal processing delay, used when performing
//!   requested operations);
//! * an `[interface]` section with the interface statements the
//!   database offers, in the rule language;
//! * for the relational backend, `[command <op> <itembase>]` sections
//!   holding native command templates with `$value` / `$p0…$pk`
//!   placeholders — exactly the §4.2.1 mechanism ("update employees set
//!   salary = $b where empid = $n" plus parameter substitution);
//! * for the other backends, `[map <itembase>]` sections describing how
//!   an item name maps onto the store's native namespace (file path,
//!   kv key, whois entry/field, biblio author/title) and how raw text
//!   converts to typed values.

use hcm_core::{SimDuration, TemplateDesc, Value};
use hcm_rulelang::{parse_interface, InterfaceStmt, SpecFile};
use std::collections::BTreeMap;
use std::fmt;

/// Which Raw Information Source a translator adapts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RisKind {
    /// `hcm_ris::relational::Database` — SQL commands, triggers, CHECKs.
    Relational,
    /// `hcm_ris::filestore::FileStore` — whole-file text, mtimes.
    File,
    /// `hcm_ris::kvstore::KvStore` — typed get/put, watches.
    Kv,
    /// `hcm_ris::biblio::BiblioDb` — append-only records.
    Biblio,
    /// `hcm_ris::whois::WhoisDir` — read-only directory.
    Whois,
    /// `hcm_ris::email::MailSystem` — write-only notification sink.
    Email,
}

impl RisKind {
    fn parse(s: &str) -> Result<Self, RidError> {
        match s {
            "relational" => Ok(RisKind::Relational),
            "file" => Ok(RisKind::File),
            "kv" => Ok(RisKind::Kv),
            "biblio" => Ok(RisKind::Biblio),
            "whois" => Ok(RisKind::Whois),
            "email" => Ok(RisKind::Email),
            other => Err(RidError {
                msg: format!("unknown ris kind `{other}`"),
            }),
        }
    }
}

/// A CM-RID configuration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RidError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for RidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CM-RID error: {}", self.msg)
    }
}

impl std::error::Error for RidError {}

/// The classification of an interface statement — which menu entry of
/// §3.1.1 it instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfaceClass {
    /// `WR(X, b) → W(X, b)`.
    Write,
    /// `Ws(X, …) → N(X, b)` (plain or conditional).
    Notify,
    /// `P(p) ∧ C → N(X, b)`.
    PeriodicNotify,
    /// `RR(X) ∧ (X = b) → R(X, b)`.
    Read,
    /// `… → 𝓕` (e.g. no-spontaneous-writes).
    Prohibition,
}

/// Classify an interface statement; `None` for shapes the translator
/// does not know how to implement.
#[must_use]
pub fn classify(stmt: &InterfaceStmt) -> Option<IfaceClass> {
    if stmt.rhs == TemplateDesc::False {
        return Some(IfaceClass::Prohibition);
    }
    match (&stmt.lhs, &stmt.rhs) {
        (TemplateDesc::Wr { .. }, TemplateDesc::W { .. }) => Some(IfaceClass::Write),
        (TemplateDesc::Ws { .. }, TemplateDesc::N { .. }) => Some(IfaceClass::Notify),
        (TemplateDesc::P { .. }, TemplateDesc::N { .. }) => Some(IfaceClass::PeriodicNotify),
        (TemplateDesc::Rr { .. }, TemplateDesc::R { .. }) => Some(IfaceClass::Read),
        _ => None,
    }
}

/// A parsed CM-RID.
#[derive(Debug, Clone)]
pub struct CmRid {
    /// Backend kind.
    pub kind: RisKind,
    /// Internal service delay of the database when performing requested
    /// operations (must be below the write/read interface bounds or the
    /// database could never honor them).
    pub service: SimDuration,
    /// Offered interface statements, in file order.
    pub interfaces: Vec<InterfaceStmt>,
    /// Relational command templates: `(op, item base) → template`.
    /// Ops: `write`, `read`, `delete`, `insert`, `enumerate`.
    pub commands: BTreeMap<(String, String), String>,
    /// Per-item-base mapping properties for the non-relational
    /// backends.
    pub maps: BTreeMap<String, BTreeMap<String, String>>,
}

impl CmRid {
    /// Parse a CM-RID file.
    pub fn parse(src: &str) -> Result<CmRid, RidError> {
        let spec = SpecFile::parse(src).map_err(|e| RidError { msg: e.to_string() })?;
        let kind = RisKind::parse(
            spec.require("ris")
                .map_err(|e| RidError { msg: e.to_string() })?,
        )?;
        let service = match spec.props.get("service") {
            None => SimDuration::from_millis(100),
            Some(s) => parse_duration(s)?,
        };
        let mut interfaces = Vec::new();
        for sect in spec.sections_of("interface") {
            for line in &sect.lines {
                let stmt = parse_interface(line).map_err(|e| RidError {
                    msg: format!("in [interface]: {e}"),
                })?;
                if classify(&stmt).is_none() {
                    return Err(RidError {
                        msg: format!("interface statement not implementable: {stmt}"),
                    });
                }
                interfaces.push(stmt);
            }
        }
        let mut commands = BTreeMap::new();
        for sect in spec.sections_of("command") {
            let [op, base] = sect.args() else {
                return Err(RidError {
                    msg: "[command] needs exactly `op itembase` arguments".into(),
                });
            };
            if !matches!(
                op.as_str(),
                "write" | "read" | "delete" | "insert" | "enumerate"
            ) {
                return Err(RidError {
                    msg: format!("unknown command op `{op}`"),
                });
            }
            let template = sect.lines.join(" ");
            if template.is_empty() {
                return Err(RidError {
                    msg: format!("[command {op} {base}] has no body"),
                });
            }
            commands.insert((op.clone(), base.clone()), template);
        }
        let mut maps = BTreeMap::new();
        for sect in spec.sections_of("map") {
            let [base] = sect.args() else {
                return Err(RidError {
                    msg: "[map] needs exactly one itembase argument".into(),
                });
            };
            let pairs = sect
                .as_pairs()
                .map_err(|e| RidError { msg: e.to_string() })?;
            maps.insert(base.clone(), pairs);
        }
        Ok(CmRid {
            kind,
            service,
            interfaces,
            commands,
            maps,
        })
    }

    /// Interface statements of a given class.
    pub fn of_class(&self, class: IfaceClass) -> impl Iterator<Item = &InterfaceStmt> {
        self.interfaces
            .iter()
            .filter(move |s| classify(s) == Some(class))
    }

    /// The command template for `(op, base)`, with placeholders intact.
    #[must_use]
    pub fn command(&self, op: &str, base: &str) -> Option<&str> {
        self.commands
            .get(&(op.to_owned(), base.to_owned()))
            .map(String::as_str)
    }

    /// A mapping property for an item base (`key`, `path`, `type`, …).
    #[must_use]
    pub fn map_prop(&self, base: &str, prop: &str) -> Option<&str> {
        self.maps
            .get(base)
            .and_then(|m| m.get(prop))
            .map(String::as_str)
    }
}

fn parse_duration(s: &str) -> Result<SimDuration, RidError> {
    let s = s.trim();
    if let Some(ms) = s.strip_suffix("ms") {
        let v: f64 = ms.parse().map_err(|e| RidError {
            msg: format!("bad duration `{s}`: {e}"),
        })?;
        Ok(SimDuration::from_millis(v.round() as u64))
    } else if let Some(secs) = s.strip_suffix('s') {
        let v: f64 = secs.parse().map_err(|e| RidError {
            msg: format!("bad duration `{s}`: {e}"),
        })?;
        Ok(SimDuration::from_millis((v * 1000.0).round() as u64))
    } else {
        Err(RidError {
            msg: format!("duration `{s}` needs an `s` or `ms` suffix"),
        })
    }
}

/// Substitute `$value` and `$p0…$pk` placeholders in a native command
/// template. String values are rendered in the backend's literal syntax
/// via `quote` (SQL single quotes for the relational backend; identity
/// elsewhere).
#[must_use]
pub fn substitute(template: &str, params: &[Value], value: Option<&Value>, quote: bool) -> String {
    let render = |v: &Value| -> String {
        match v {
            Value::Str(s) if quote => format!("'{s}'"),
            Value::Str(s) => s.clone(),
            Value::Null => "NULL".to_owned(),
            other => other.to_string(),
        }
    };
    let mut out = template.to_owned();
    // Longest placeholder names first so `$p10` is not clobbered by `$p1`.
    for i in (0..params.len()).rev() {
        out = out.replace(&format!("$p{i}"), &render(&params[i]));
    }
    if let Some(v) = value {
        out = out.replace("$value", &render(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SALARY_RID: &str = r#"
ris = relational
service = 200ms

[interface]
Ws(salary1(n), b) -> N(salary1(n), b) within 2s
WR(salary2(n), b) -> W(salary2(n), b) within 1s
RR(salary1(n)) when salary1(n) = b -> R(salary1(n), b) within 1s

[command write salary2]
update employees set salary = $value where empid = $p0

[command read salary1]
select salary from employees where empid = $p0
"#;

    #[test]
    fn parses_full_rid() {
        let rid = CmRid::parse(SALARY_RID).unwrap();
        assert_eq!(rid.kind, RisKind::Relational);
        assert_eq!(rid.service, SimDuration::from_millis(200));
        assert_eq!(rid.interfaces.len(), 3);
        assert_eq!(rid.of_class(IfaceClass::Notify).count(), 1);
        assert_eq!(rid.of_class(IfaceClass::Write).count(), 1);
        assert_eq!(rid.of_class(IfaceClass::Read).count(), 1);
        assert!(rid.command("write", "salary2").unwrap().contains("$value"));
        assert!(rid.command("write", "salary1").is_none());
    }

    #[test]
    fn parses_map_backend() {
        let rid = CmRid::parse(
            "ris = kv\n[interface]\nWs(phone(n), b) -> N(phone(n), b) within 1s\n\
             [map phone]\nkey = phone/$p0\ntype = str\n",
        )
        .unwrap();
        assert_eq!(rid.kind, RisKind::Kv);
        assert_eq!(rid.map_prop("phone", "key"), Some("phone/$p0"));
        assert_eq!(rid.map_prop("phone", "type"), Some("str"));
        assert_eq!(rid.map_prop("other", "key"), None);
    }

    #[test]
    fn classification() {
        let w = parse_interface("WR(X, b) -> W(X, b) within 1s").unwrap();
        assert_eq!(classify(&w), Some(IfaceClass::Write));
        let p = parse_interface("Ws(X, b) -> false").unwrap();
        assert_eq!(classify(&p), Some(IfaceClass::Prohibition));
        let pn = parse_interface("P(300s) when X = b -> N(X, b) within 1s").unwrap();
        assert_eq!(classify(&pn), Some(IfaceClass::PeriodicNotify));
        let odd = parse_interface("N(X, b) -> W(X, b) within 1s").unwrap();
        assert_eq!(classify(&odd), None);
    }

    #[test]
    fn rejects_bad_rids() {
        assert!(CmRid::parse("ris = martian").is_err());
        assert!(CmRid::parse("service = 1s").is_err()); // missing ris
        assert!(CmRid::parse("ris = kv\nservice = soon").is_err());
        assert!(CmRid::parse("ris = kv\n[interface]\nN(X, b) -> W(X, b) within 1s\n").is_err());
        assert!(CmRid::parse("ris = relational\n[command write]\nfoo\n").is_err());
        assert!(CmRid::parse("ris = relational\n[command frobnicate x]\nfoo\n").is_err());
        assert!(CmRid::parse("ris = relational\n[command write x]\n").is_err());
        assert!(CmRid::parse("ris = kv\n[map]\nk = v\n").is_err());
    }

    #[test]
    fn substitution() {
        let out = substitute(
            "update employees set salary = $value where empid = $p0",
            &[Value::from("e42")],
            Some(&Value::Int(90000)),
            true,
        );
        assert_eq!(
            out,
            "update employees set salary = 90000 where empid = 'e42'"
        );
        let unquoted = substitute("phone/$p0", &[Value::from("ann")], None, false);
        assert_eq!(unquoted, "phone/ann");
        let null = substitute("set x = $value", &[], Some(&Value::Null), true);
        assert_eq!(null, "set x = NULL");
    }

    #[test]
    fn substitution_many_params_no_clobber() {
        let params: Vec<Value> = (0..11).map(Value::Int).collect();
        let out = substitute("$p10 $p1 $p0", &params, None, false);
        assert_eq!(out, "10 1 0");
    }

    #[test]
    fn default_service_delay() {
        let rid = CmRid::parse("ris = whois\n").unwrap();
        assert_eq!(rid.service, SimDuration::from_millis(100));
    }

    #[test]
    fn duration_suffixes() {
        let rid = CmRid::parse("ris = whois\nservice = 1.5s\n").unwrap();
        assert_eq!(rid.service, SimDuration::from_millis(1500));
    }
}
