//! Guarantee bookkeeping under failures (§5).
//!
//! "When a metric failure occurs on one or more of the sites involved
//! in a constraint, the metric guarantees for that constraint are no
//! longer valid. However, the non-metric guarantees continue to be
//! valid … When a logical failure occurs, both metric and non-metric
//! guarantees involving the failed site are no longer valid until the
//! system is reset."
//!
//! Each CM-Shell holds a [`GuaranteeRegistry`]; failure notices
//! propagate between shells and every registry applies the same
//! transition rules, so any application can consult its local shell.

use hcm_core::{SimTime, SiteId, Sym};
use hcm_rulelang::{Cond, Expr, GAtom, Guarantee, TimeExpr};
use std::collections::BTreeMap;
use std::fmt;

/// Failure classification (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Time bounds missed; service eventually provided.
    Metric,
    /// Interface statements void.
    Logical,
}

/// Current standing of a registered guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuaranteeStatus {
    /// The guarantee is in force.
    Valid,
    /// A metric failure suspended it (metric guarantees only).
    SuspendedMetric,
    /// A logical failure suspended it; a reset is required.
    SuspendedLogical,
}

/// A registered guarantee plus derived metadata.
#[derive(Debug, Clone)]
pub struct RegisteredGuarantee {
    /// The formula.
    pub guarantee: Guarantee,
    /// Sites whose data items the formula mentions.
    pub sites: Vec<SiteId>,
    /// Whether the formula is *metric* (mentions absolute times or
    /// offsets — κ bounds). Non-metric guarantees survive metric
    /// failures.
    pub metric: bool,
    /// Current status.
    pub status: GuaranteeStatus,
    /// When the status last changed.
    pub since: SimTime,
}

/// Is a guarantee metric? — it is iff some time expression carries an
/// offset or an absolute constant.
#[must_use]
pub fn is_metric(g: &Guarantee) -> bool {
    fn te_metric(t: &TimeExpr) -> bool {
        matches!(t, TimeExpr::Const(_) | TimeExpr::Offset(..))
    }
    fn atom_metric(a: &GAtom) -> bool {
        match a {
            GAtom::At(_, t) => te_metric(t),
            GAtom::Throughout(_, a, b) | GAtom::Sometime(_, a, b) => te_metric(a) || te_metric(b),
            GAtom::TimeCmp(a, _, b) => te_metric(a) || te_metric(b),
        }
    }
    g.lhs.iter().chain(&g.rhs).any(atom_metric)
}

/// Item base names mentioned by a guarantee (to derive involved sites).
#[must_use]
pub fn mentioned_bases(g: &Guarantee) -> Vec<Sym> {
    fn walk_expr(e: &Expr, out: &mut Vec<Sym>) {
        match e {
            Expr::Item(p) => out.push(p.base),
            Expr::Neg(a) | Expr::Abs(a) => walk_expr(a, out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            Expr::Var(_) | Expr::Lit(_) => {}
        }
    }
    fn walk_cond(c: &Cond, out: &mut Vec<Sym>) {
        match c {
            Cond::Cmp(a, _, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                walk_cond(a, out);
                walk_cond(b, out);
            }
            Cond::Not(a) => walk_cond(a, out),
            Cond::Exists(p) => out.push(p.base),
            Cond::True => {}
        }
    }
    let mut out = Vec::new();
    for a in g.lhs.iter().chain(&g.rhs) {
        match a {
            GAtom::At(c, _) | GAtom::Throughout(c, _, _) | GAtom::Sometime(c, _, _) => {
                walk_cond(c, &mut out)
            }
            GAtom::TimeCmp(..) => {}
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Per-shell registry of guarantees and their failure-driven status.
#[derive(Debug, Default, Clone)]
pub struct GuaranteeRegistry {
    entries: BTreeMap<String, RegisteredGuarantee>,
}

impl GuaranteeRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a guarantee with the sites it involves.
    pub fn register(&mut self, guarantee: Guarantee, sites: Vec<SiteId>) {
        let metric = is_metric(&guarantee);
        self.entries.insert(
            guarantee.name.clone(),
            RegisteredGuarantee {
                guarantee,
                sites,
                metric,
                status: GuaranteeStatus::Valid,
                since: SimTime::ZERO,
            },
        );
    }

    /// Apply a failure of `site` at `now` (§5 transition rules).
    pub fn on_failure(&mut self, site: SiteId, kind: FailureKind, now: SimTime) {
        for e in self.entries.values_mut() {
            if !e.sites.contains(&site) {
                continue;
            }
            match kind {
                FailureKind::Metric if e.metric => {
                    if e.status == GuaranteeStatus::Valid {
                        e.status = GuaranteeStatus::SuspendedMetric;
                        e.since = now;
                    }
                }
                FailureKind::Metric => {} // non-metric guarantees survive
                FailureKind::Logical => {
                    if e.status != GuaranteeStatus::SuspendedLogical {
                        e.status = GuaranteeStatus::SuspendedLogical;
                        e.since = now;
                    }
                }
            }
        }
    }

    /// Clear a metric failure of `site`: metric-suspended guarantees on
    /// that site return to valid. Logically suspended guarantees stay
    /// down (they need [`GuaranteeRegistry::reset`]).
    pub fn on_clear(&mut self, site: SiteId, now: SimTime) {
        for e in self.entries.values_mut() {
            if e.sites.contains(&site) && e.status == GuaranteeStatus::SuspendedMetric {
                e.status = GuaranteeStatus::Valid;
                e.since = now;
            }
        }
    }

    /// System reset (§5: logical suspensions last "until the system is
    /// reset"): everything returns to valid.
    pub fn reset(&mut self, now: SimTime) {
        for e in self.entries.values_mut() {
            e.status = GuaranteeStatus::Valid;
            e.since = now;
        }
    }

    /// Status of a guarantee by name.
    #[must_use]
    pub fn status(&self, name: &str) -> Option<GuaranteeStatus> {
        self.entries.get(name).map(|e| e.status)
    }

    /// `(name, status, since)` of every entry in name order — the
    /// durable portion of the registry, checkpointed by the store.
    #[must_use]
    pub fn statuses(&self) -> Vec<(String, GuaranteeStatus, SimTime)> {
        self.entries
            .iter()
            .map(|(name, e)| (name.clone(), e.status, e.since))
            .collect()
    }

    /// Restore one entry's status from a checkpoint. Unknown names are
    /// ignored (the strategy, and hence the registered set, is static
    /// configuration that recovery re-derives before restoring).
    pub fn restore(&mut self, name: &str, status: GuaranteeStatus, since: SimTime) {
        if let Some(e) = self.entries.get_mut(name) {
            e.status = status;
            e.since = since;
        }
    }

    /// Full entry by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&RegisteredGuarantee> {
        self.entries.get(name)
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &RegisteredGuarantee> {
        self.entries.values()
    }

    /// Number of registered guarantees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for GuaranteeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in self.entries.values() {
            writeln!(
                f,
                "{} [{}] {:?} since {}",
                e.guarantee.name,
                if e.metric { "metric" } else { "non-metric" },
                e.status,
                e.since
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_rulelang::parse_guarantee;

    fn metric_g() -> Guarantee {
        parse_guarantee(
            "m",
            "(Y = y) @ t1 => (X = y) @ t2 and t1 - 30s < t2 and t2 < t1",
        )
        .unwrap()
    }

    fn nonmetric_g() -> Guarantee {
        parse_guarantee("n", "(Y = y) @ t1 => (X = y) @ t2 and t2 < t1").unwrap()
    }

    #[test]
    fn metric_detection() {
        assert!(is_metric(&metric_g()));
        assert!(!is_metric(&nonmetric_g()));
        let abs = parse_guarantee("a", "(X = 1) @ 300s").unwrap();
        assert!(is_metric(&abs));
    }

    #[test]
    fn mentioned_bases_found() {
        let g = parse_guarantee(
            "g",
            "(Flag = true and Tb = s) @ t => (X = Y) @@ [s, t - 10s]",
        )
        .unwrap();
        assert_eq!(mentioned_bases(&g), vec!["Flag", "Tb", "X", "Y"]);
        let e = parse_guarantee(
            "e",
            "exists(project(i)) @ t => exists(salary(i)) @? [t, t + 1s]",
        )
        .unwrap();
        assert_eq!(mentioned_bases(&e), vec!["project", "salary"]);
    }

    #[test]
    fn metric_failure_suspends_only_metric_guarantees() {
        let mut r = GuaranteeRegistry::new();
        let s1 = SiteId::new(1);
        r.register(metric_g(), vec![s1]);
        r.register(nonmetric_g(), vec![s1]);
        r.on_failure(s1, FailureKind::Metric, SimTime::from_secs(10));
        assert_eq!(r.status("m"), Some(GuaranteeStatus::SuspendedMetric));
        assert_eq!(r.status("n"), Some(GuaranteeStatus::Valid));
    }

    #[test]
    fn logical_failure_suspends_all_and_needs_reset() {
        let mut r = GuaranteeRegistry::new();
        let s1 = SiteId::new(1);
        r.register(metric_g(), vec![s1]);
        r.register(nonmetric_g(), vec![s1]);
        r.on_failure(s1, FailureKind::Logical, SimTime::from_secs(10));
        assert_eq!(r.status("m"), Some(GuaranteeStatus::SuspendedLogical));
        assert_eq!(r.status("n"), Some(GuaranteeStatus::SuspendedLogical));
        // Clearing a metric failure does not lift logical suspension.
        r.on_clear(s1, SimTime::from_secs(20));
        assert_eq!(r.status("n"), Some(GuaranteeStatus::SuspendedLogical));
        r.reset(SimTime::from_secs(30));
        assert_eq!(r.status("m"), Some(GuaranteeStatus::Valid));
        assert_eq!(r.status("n"), Some(GuaranteeStatus::Valid));
    }

    #[test]
    fn unrelated_site_untouched() {
        let mut r = GuaranteeRegistry::new();
        r.register(metric_g(), vec![SiteId::new(1)]);
        r.on_failure(SiteId::new(2), FailureKind::Logical, SimTime::from_secs(1));
        assert_eq!(r.status("m"), Some(GuaranteeStatus::Valid));
    }

    #[test]
    fn clear_restores_metric_suspension() {
        let mut r = GuaranteeRegistry::new();
        let s1 = SiteId::new(1);
        r.register(metric_g(), vec![s1]);
        r.on_failure(s1, FailureKind::Metric, SimTime::from_secs(10));
        r.on_clear(s1, SimTime::from_secs(15));
        assert_eq!(r.status("m"), Some(GuaranteeStatus::Valid));
        let e = r.get("m").unwrap();
        assert_eq!(e.since, SimTime::from_secs(15));
    }

    #[test]
    fn logical_overrides_metric_suspension() {
        let mut r = GuaranteeRegistry::new();
        let s1 = SiteId::new(1);
        r.register(metric_g(), vec![s1]);
        r.on_failure(s1, FailureKind::Metric, SimTime::from_secs(10));
        r.on_failure(s1, FailureKind::Logical, SimTime::from_secs(12));
        assert_eq!(r.status("m"), Some(GuaranteeStatus::SuspendedLogical));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert!(r.to_string().contains("metric"));
    }
}
