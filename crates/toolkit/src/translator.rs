//! The CM-Translator actor.
//!
//! "To factor this complexity away from the CM-Shells, we provide a
//! CM-Translator (for each RIS) that presents to the CM-Shells the
//! local capabilities in a standard fashion" (§4.1). At run time the
//! translator
//!
//! * applies spontaneous application operations to its store and
//!   records the resulting `Ws` events;
//! * implements the offered **notify** interfaces from the store's
//!   native change feed, the **periodic-notify** interfaces by armed
//!   timers + native reads, the **write** and **read** interfaces by
//!   servicing CMI requests within their `→δ` bounds;
//! * forwards database-side events that strategy rules watch (the
//!   interest patterns computed at initialization);
//! * exhibits *metric failures* when its service delay is inflated
//!   (overload injection) and *logical failures* when its actor
//!   crashes — the two §5 classes.

use crate::backend::RisBackend;
use crate::durability::{StatePolicy, StoreBridge};
use crate::msg::{CmMsg, RequestKind, SpontaneousOp, TranslatorEvent};
use crate::rid::{classify, CmRid, IfaceClass};
use hcm_core::{
    Bindings, EventDesc, EventId, ItemId, RuleId, SimDuration, SimTime, SiteId, TemplateDesc,
    TraceRecorder, Value,
};
use hcm_obs::{Metrics, Scope};
use hcm_rulelang::ast::BindingsEnv;
use hcm_rulelang::InterfaceStmt;
use hcm_simkit::{Actor, ActorId, Ctx};
use hcm_store::{LogRecord, PendingWrite, TranslatorSnapshot};
use std::collections::BTreeMap;

/// Delay for forwarding an observed event to the co-located shell.
const FORWARD_DELAY: SimDuration = SimDuration::from_millis(1);

/// Observable counters for experiment measurement (E8/E9 count
/// messages; E7 counts rejections), materialized from the metrics
/// registry.
#[derive(Debug, Default, Clone)]
pub struct TranslatorStats {
    /// Notifications sent to the shell.
    pub notifications: u64,
    /// Spontaneous changes that matched a notify interface but failed
    /// its condition (conditional-notify suppression).
    pub suppressed: u64,
    /// CM write requests rejected by local constraints.
    pub writes_rejected: u64,
    /// CM write requests performed.
    pub writes_done: u64,
    /// Read requests served.
    pub reads_served: u64,
    /// Spontaneous operations that failed natively (e.g. deleting a
    /// missing key).
    pub spontaneous_errors: u64,
    /// Spontaneous writes that violated a prohibition interface.
    pub prohibition_violations: u64,
}

/// Registry-backed view of one translator's counters.
///
/// Counters live in the shared [`Metrics`] registry under
/// `Scope::Site`; `borrow()` materializes an owned
/// [`TranslatorStats`] snapshot so `stats.borrow().notifications`
/// call sites read naturally.
#[derive(Debug, Clone)]
pub struct TranslatorStatsHandle {
    metrics: Metrics,
    scope: Scope,
}

impl TranslatorStatsHandle {
    /// View over `site`'s translator metrics in `metrics`.
    #[must_use]
    pub fn new(metrics: Metrics, site: SiteId) -> Self {
        TranslatorStatsHandle {
            metrics,
            scope: Scope::Site(site.index()),
        }
    }

    fn inc(&self, name: &str) {
        self.metrics.inc(self.scope, name);
    }

    fn get(&self, name: &str) -> u64 {
        self.metrics.counter(self.scope, name)
    }

    fn observe_service(&self, d: SimDuration) {
        self.metrics
            .observe(self.scope, "translator.service_delay", d);
    }

    /// Snapshot the counters as an owned [`TranslatorStats`].
    #[must_use]
    pub fn borrow(&self) -> TranslatorStats {
        TranslatorStats {
            notifications: self.get("translator.notifications"),
            suppressed: self.get("translator.suppressed"),
            writes_rejected: self.get("translator.writes_rejected"),
            writes_done: self.get("translator.writes_done"),
            reads_served: self.get("translator.reads_served"),
            spontaneous_errors: self.get("translator.spontaneous_errors"),
            prohibition_violations: self.get("translator.prohibition_violations"),
        }
    }
}

struct IfaceRule {
    stmt: InterfaceStmt,
    class: IfaceClass,
    id: RuleId,
}

/// The translator actor. See module docs.
pub struct TranslatorActor {
    site: SiteId,
    shell: ActorId,
    backend: Box<dyn RisBackend + Send>,
    interfaces: Vec<IfaceRule>,
    interest: Vec<TemplateDesc>,
    service: SimDuration,
    extra: SimDuration,
    stop_periodics_at: SimTime,
    recorder: TraceRecorder,
    stats: TranslatorStatsHandle,
    /// How this translator's state relates to crashes (see
    /// [`crate::durability`]). Default keeps historical behaviour.
    policy: StatePolicy,
    /// Set by a lossy crash; consumed by the next recovery.
    crashed_lossy: bool,
    /// Writes accepted (scheduled against the backend) but not yet
    /// performed — the §5 obligations a durable translator must not
    /// lose across a crash.
    pending: BTreeMap<u64, PendingWrite>,
    /// Armed periodic-notify interfaces: statement index → period.
    armed: BTreeMap<u64, SimDuration>,
}

impl TranslatorActor {
    /// Build a translator. `iface_ids` are the rule ids assigned to the
    /// CM-RID's interface statements (same order) in the scenario's
    /// shared rule registry.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        site: SiteId,
        shell: ActorId,
        backend: Box<dyn RisBackend + Send>,
        rid: &CmRid,
        iface_ids: Vec<RuleId>,
        interest: Vec<TemplateDesc>,
        stop_periodics_at: SimTime,
        recorder: TraceRecorder,
        stats: TranslatorStatsHandle,
    ) -> Self {
        assert_eq!(rid.interfaces.len(), iface_ids.len());
        let interfaces = rid
            .interfaces
            .iter()
            .cloned()
            .zip(iface_ids)
            .map(|(stmt, id)| {
                let class = classify(&stmt).expect("validated by CmRid::parse");
                IfaceRule { stmt, class, id }
            })
            .collect();
        TranslatorActor {
            site,
            shell,
            backend,
            interfaces,
            interest,
            service: rid.service,
            extra: SimDuration::ZERO,
            stop_periodics_at,
            recorder,
            stats,
            policy: StatePolicy::default(),
            crashed_lossy: false,
            pending: BTreeMap::new(),
            armed: BTreeMap::new(),
        }
    }

    /// Set how this translator's state relates to crashes. With
    /// [`StatePolicy::Durable`], accepted writes and armed periodic
    /// interfaces are write-ahead-logged and recovered after a crash.
    pub fn set_state_policy(&mut self, policy: StatePolicy) {
        self.policy = policy;
    }

    /// Log one durable mutation; checkpoint when the cadence says so.
    fn log_durable(&mut self, rec: &LogRecord) {
        let due = match self.policy.bridge() {
            Some(b) => b.log(rec),
            None => return,
        };
        if due {
            self.write_checkpoint();
        }
    }

    /// Snapshot the translator's durable state into the store.
    fn write_checkpoint(&mut self) {
        let snap = TranslatorSnapshot {
            armed: self.armed.iter().map(|(&i, &p)| (i, p)).collect(),
            pending: self.pending.values().cloned().collect(),
        };
        let blob = snap.encode();
        if let Some(b) = self.policy.bridge() {
            b.save_checkpoint(&blob);
        }
    }

    /// Capture initial values of all tracked items into the trace and
    /// arm periodic-notify timers.
    fn initialize(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        let mut seen = std::collections::BTreeSet::new();
        for iface in &self.interfaces {
            let pattern = match iface.class {
                IfaceClass::Write | IfaceClass::Read | IfaceClass::Notify => {
                    iface.stmt.lhs.item_pattern()
                }
                IfaceClass::PeriodicNotify => iface.stmt.rhs.item_pattern(),
                IfaceClass::Prohibition => None,
            };
            let Some(pattern) = pattern else { continue };
            for item in self.backend.enumerate(pattern) {
                if seen.insert(item.clone()) {
                    if let Ok(v) = self.backend.read(&item) {
                        self.recorder.set_initial(item, v);
                    }
                }
            }
        }
        let to_arm: Vec<(usize, u64)> = self
            .interfaces
            .iter()
            .enumerate()
            .filter(|(_, iface)| iface.class == IfaceClass::PeriodicNotify)
            .filter_map(|(idx, iface)| {
                let TemplateDesc::P { period } = &iface.stmt.lhs else {
                    return None;
                };
                period_millis(period).map(|ms| (idx, ms))
            })
            .collect();
        for (idx, ms) in to_arm {
            let period = SimDuration::from_millis(ms);
            self.armed.insert(idx as u64, period);
            self.log_durable(&LogRecord::PollArmed {
                idx: idx as u64,
                period,
            });
            ctx.schedule_self(period, CmMsg::PollTick { idx });
        }
    }

    fn delay(&self) -> SimDuration {
        self.service + self.extra
    }

    fn record(
        &self,
        now: SimTime,
        desc: EventDesc,
        old: Option<Value>,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
    ) -> EventId {
        self.recorder
            .record(now, self.site, desc, old, rule, trigger)
    }

    /// Forward an event to the shell when an interest pattern matches.
    fn forward_if_interesting(&self, id: EventId, desc: &EventDesc, ctx: &mut Ctx<'_, CmMsg>) {
        for pat in &self.interest {
            let mut b = Bindings::new();
            if pat.match_desc(desc, &mut b) {
                ctx.send_local(
                    self.shell,
                    CmMsg::Cmi(TranslatorEvent::Observed {
                        id,
                        desc: desc.clone(),
                    }),
                    FORWARD_DELAY,
                );
                return;
            }
        }
    }

    fn handle_spontaneous(&mut self, op: &SpontaneousOp, ctx: &mut Ctx<'_, CmMsg>) {
        let now = ctx.now();
        let changes = match self.backend.apply_spontaneous(op, now) {
            Ok(c) => c,
            Err(_) => {
                self.stats.inc("translator.spontaneous_errors");
                return;
            }
        };
        for change in changes {
            let desc = EventDesc::Ws {
                item: change.item.clone(),
                old: change.old.clone(),
                new: change.new.clone(),
            };
            let ws_id = self.record(now, desc.clone(), change.old.clone(), None, None);
            self.forward_if_interesting(ws_id, &desc, ctx);

            // Prohibition interfaces: the database promised this never
            // happens. Record the breach for the checker and count it.
            for iface in &self.interfaces {
                if iface.class == IfaceClass::Prohibition {
                    let mut b = Bindings::new();
                    if iface.stmt.lhs.match_desc(&desc, &mut b) {
                        self.stats.inc("translator.prohibition_violations");
                    }
                }
            }

            // Notify interfaces driven by the native change feed. A
            // store without one reported this change only as trace
            // ground truth — the translator could never have observed
            // it, so no notifications may be derived from it.
            if !self.backend.has_change_feed() {
                continue;
            }
            let mut to_send: Vec<(ItemId, Value, RuleId)> = Vec::new();
            for iface in &self.interfaces {
                if iface.class != IfaceClass::Notify {
                    continue;
                }
                let mut bindings = Bindings::new();
                if !iface.stmt.lhs.match_desc(&desc, &mut bindings) {
                    continue;
                }
                let backend = &self.backend;
                let env = BindingsEnv {
                    bindings: &bindings,
                    lookup: |item: &ItemId| backend.read(item).ok(),
                };
                if !iface.stmt.cond.eval(&env) {
                    self.stats.inc("translator.suppressed");
                    continue;
                }
                if let Some(EventDesc::N { item, value }) = iface.stmt.rhs.instantiate(&bindings) {
                    to_send.push((item, value, iface.id));
                }
            }
            for (item, value, rule) in to_send {
                self.stats.inc("translator.notifications");
                self.stats.observe_service(self.delay());
                ctx.send_local(
                    self.shell,
                    CmMsg::Cmi(TranslatorEvent::Notify {
                        item,
                        value,
                        rule,
                        trigger: ws_id,
                    }),
                    self.delay(),
                );
            }
        }
    }

    fn find_iface(&self, class: IfaceClass, item: &ItemId) -> Option<&IfaceRule> {
        self.interfaces.iter().find(|i| {
            i.class == class
                && i.stmt.lhs.item_pattern().is_some_and(|p| {
                    let mut b = Bindings::new();
                    p.match_item(item, &mut b)
                })
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_request(
        &mut self,
        req_id: u64,
        reply_to: ActorId,
        rule: Option<RuleId>,
        trigger: Option<EventId>,
        kind: &RequestKind,
        ctx: &mut Ctx<'_, CmMsg>,
    ) {
        let now = ctx.now();
        self.stats.observe_service(self.delay());
        match kind {
            RequestKind::Write(item, value) => {
                let desc = EventDesc::Wr {
                    item: item.clone(),
                    value: value.clone(),
                };
                let wr_id = self.record(now, desc.clone(), None, rule, trigger);
                self.forward_if_interesting(wr_id, &desc, ctx);
                let Some(iface) = self.find_iface(IfaceClass::Write, item) else {
                    // No write interface offered: refuse immediately.
                    self.stats.inc("translator.writes_rejected");
                    ctx.send_local(
                        reply_to,
                        CmMsg::Cmi(TranslatorEvent::WriteDone { req_id, ok: false }),
                        FORWARD_DELAY,
                    );
                    return;
                };
                // Perform after the database's service delay — within
                // the interface bound in normal operation, beyond it
                // under overload (metric failure).
                let iface_rule = iface.id;
                ctx.schedule_self(
                    self.delay(),
                    CmMsg::PerformWrite {
                        req_id,
                        reply_to,
                        item: item.clone(),
                        value: value.clone(),
                        rule: iface_rule,
                        trigger: wr_id,
                    },
                );
                // The write is now an accepted obligation: a durable
                // translator remembers it until performed, so a crash
                // in the acceptance-to-perform window delays it
                // instead of losing it (§5's metric demotion).
                let pw = PendingWrite {
                    req_id,
                    reply_to: reply_to.0,
                    item: item.clone(),
                    value: value.clone(),
                    rule: iface_rule,
                    trigger: wr_id,
                };
                self.pending.insert(req_id, pw.clone());
                self.log_durable(&LogRecord::WriteAccepted(pw));
            }
            RequestKind::Enumerate(pattern) => {
                // A meta-operation of the CMI: not part of the event
                // vocabulary, so nothing is recorded in the trace.
                let items = self.backend.enumerate(pattern);
                ctx.send_local(
                    reply_to,
                    CmMsg::Cmi(TranslatorEvent::EnumResult { req_id, items }),
                    self.delay(),
                );
            }
            RequestKind::Read(item) => {
                let desc = EventDesc::Rr { item: item.clone() };
                let rr_id = self.record(now, desc.clone(), None, rule, trigger);
                self.forward_if_interesting(rr_id, &desc, ctx);
                let Some(iface) = self.find_iface(IfaceClass::Read, item) else {
                    return; // no read interface: request goes unanswered
                };
                let value = self.backend.read(item).unwrap_or(Value::Null);
                self.stats.inc("translator.reads_served");
                ctx.send_local(
                    reply_to,
                    CmMsg::Cmi(TranslatorEvent::ReadResult {
                        req_id,
                        item: item.clone(),
                        value,
                        rule: iface.id,
                        trigger: rr_id,
                    }),
                    self.delay(),
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_perform_write(
        &mut self,
        req_id: u64,
        reply_to: ActorId,
        item: &ItemId,
        value: &Value,
        rule: RuleId,
        trigger: EventId,
        ctx: &mut Ctx<'_, CmMsg>,
    ) {
        let now = ctx.now();
        // Performed or definitively rejected — either way the
        // obligation is discharged.
        if self.pending.remove(&req_id).is_some() {
            self.log_durable(&LogRecord::WritePerformed { req_id });
        }
        match self.backend.write(item, value, now) {
            Ok(old) => {
                let desc = EventDesc::W {
                    item: item.clone(),
                    value: value.clone(),
                };
                let w_id = self.record(now, desc.clone(), old, Some(rule), Some(trigger));
                self.forward_if_interesting(w_id, &desc, ctx);
                self.stats.inc("translator.writes_done");
                ctx.send_local(
                    reply_to,
                    CmMsg::Cmi(TranslatorEvent::WriteDone { req_id, ok: true }),
                    FORWARD_DELAY,
                );
            }
            Err(_) => {
                self.stats.inc("translator.writes_rejected");
                self.record(
                    now,
                    EventDesc::Custom {
                        name: "WriteRejected".into(),
                        args: vec![Value::Str(item.to_string()), value.clone()],
                    },
                    None,
                    Some(rule),
                    Some(trigger),
                );
                ctx.send_local(
                    reply_to,
                    CmMsg::Cmi(TranslatorEvent::WriteDone { req_id, ok: false }),
                    FORWARD_DELAY,
                );
            }
        }
    }

    fn handle_poll_tick(&mut self, idx: usize, ctx: &mut Ctx<'_, CmMsg>) {
        let now = ctx.now();
        let Some(iface) = self.interfaces.get(idx) else {
            return;
        };
        let TemplateDesc::P { period } = &iface.stmt.lhs else {
            return;
        };
        let Some(period_ms) = period_millis(period) else {
            return;
        };
        let p_id = self.record(
            now,
            EventDesc::P {
                period: SimDuration::from_millis(period_ms),
            },
            None,
            None,
            None,
        );
        // Instantiate the N template for every currently existing item.
        if let TemplateDesc::N {
            item: item_pat,
            value: value_term,
        } = &iface.stmt.rhs
        {
            let items = self.backend.enumerate(item_pat);
            let mut to_send = Vec::new();
            for item in items {
                let Ok(value) = self.backend.read(&item) else {
                    continue;
                };
                let mut bindings = Bindings::new();
                if !item_pat.match_item(&item, &mut bindings) {
                    continue;
                }
                if let hcm_core::Term::Var(v) = value_term {
                    bindings.bind(v.clone(), value.clone());
                }
                let backend = &self.backend;
                let env = BindingsEnv {
                    bindings: &bindings,
                    lookup: |i: &ItemId| backend.read(i).ok(),
                };
                if !iface.stmt.cond.eval(&env) {
                    self.stats.inc("translator.suppressed");
                    continue;
                }
                to_send.push((item, value, iface.id));
            }
            for (item, value, rule) in to_send {
                self.stats.inc("translator.notifications");
                self.stats.observe_service(self.delay());
                ctx.send_local(
                    self.shell,
                    CmMsg::Cmi(TranslatorEvent::Notify {
                        item,
                        value,
                        rule,
                        trigger: p_id,
                    }),
                    self.delay(),
                );
            }
        }
        if now + SimDuration::from_millis(period_ms) <= self.stop_periodics_at {
            ctx.schedule_self(SimDuration::from_millis(period_ms), CmMsg::PollTick { idx });
        } else if self.armed.remove(&(idx as u64)).is_some() {
            self.log_durable(&LogRecord::PollDisarmed { idx: idx as u64 });
        }
    }

    /// Re-arm the periodic-notify interfaces in `self.armed` (used by
    /// recovery; gated on `stop_periodics_at`).
    fn rearm_polls(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        let now = ctx.now();
        for (&idx, &period) in &self.armed {
            if now + period <= self.stop_periodics_at {
                ctx.schedule_self(period, CmMsg::PollTick { idx: idx as usize });
            }
        }
    }

    /// Rebuild `self.armed` from the CM-RID alone — what a restarted
    /// translator with no durable store can still do, since the RID is
    /// static configuration.
    fn arm_from_config(&mut self) {
        let to_arm: Vec<(usize, u64)> = self
            .interfaces
            .iter()
            .enumerate()
            .filter(|(_, iface)| iface.class == IfaceClass::PeriodicNotify)
            .filter_map(|(idx, iface)| {
                let TemplateDesc::P { period } = &iface.stmt.lhs else {
                    return None;
                };
                period_millis(period).map(|ms| (idx, ms))
            })
            .collect();
        for (idx, ms) in to_arm {
            self.armed.insert(idx as u64, SimDuration::from_millis(ms));
        }
    }
}

fn period_millis(period: &hcm_core::Term) -> Option<u64> {
    match period {
        hcm_core::Term::Const(Value::Int(ms)) if *ms > 0 => Some(*ms as u64),
        _ => None,
    }
}

impl Actor<CmMsg> for TranslatorActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        self.initialize(ctx);
    }

    fn on_crash(&mut self, lossy: bool, _ctx: &mut Ctx<'_, CmMsg>) {
        if !lossy || !self.policy.wipes_on_lossy_crash() {
            return;
        }
        self.crashed_lossy = true;
        // Obligations destroyed with the process image; without a
        // store they are gone for good.
        if matches!(self.policy, StatePolicy::Lose) {
            for _ in 0..self.pending.len() {
                self.stats.inc("translator.writes_lost");
            }
        }
        self.pending.clear();
        self.armed.clear();
        self.extra = SimDuration::ZERO;
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        if !std::mem::take(&mut self.crashed_lossy) {
            return;
        }
        if matches!(self.policy, StatePolicy::Lose) {
            // Restarted from static configuration alone: periodic
            // interfaces re-arm (the CM-RID is config); accepted
            // writes are lost.
            self.arm_from_config();
            self.rearm_polls(ctx);
            return;
        }
        let Some((ckpt, records)) = self.policy.bridge().map(StoreBridge::recover) else {
            return;
        };
        // Snapshot first, then the log suffix on top.
        if let Some(snap) = ckpt.and_then(|blob| TranslatorSnapshot::decode(&blob).ok()) {
            self.armed.extend(snap.armed);
            for pw in snap.pending {
                self.pending.insert(pw.req_id, pw);
            }
        }
        for rec in records {
            match rec {
                LogRecord::WriteAccepted(pw) => {
                    self.pending.insert(pw.req_id, pw);
                }
                LogRecord::WritePerformed { req_id } => {
                    self.pending.remove(&req_id);
                }
                LogRecord::PollArmed { idx, period } => {
                    self.armed.insert(idx, period);
                }
                LogRecord::PollDisarmed { idx } => {
                    self.armed.remove(&idx);
                }
                // Shell-only records never appear in a translator log.
                _ => {}
            }
        }
        self.rearm_polls(ctx);
        // Re-schedule every write that was accepted but unperformed
        // when the crash hit: it lands after a fresh service delay —
        // delayed, not lost (§5's metric demotion).
        let survivors: Vec<PendingWrite> = self.pending.values().cloned().collect();
        for pw in survivors {
            self.stats.inc("translator.writes_recovered");
            ctx.schedule_self(
                self.delay(),
                CmMsg::PerformWrite {
                    req_id: pw.req_id,
                    reply_to: ActorId(pw.reply_to),
                    item: pw.item,
                    value: pw.value,
                    rule: pw.rule,
                    trigger: pw.trigger,
                },
            );
        }
    }

    fn on_message(&mut self, msg: CmMsg, ctx: &mut Ctx<'_, CmMsg>) {
        match msg {
            CmMsg::Spontaneous(op) => self.handle_spontaneous(&op, ctx),
            CmMsg::Request {
                req_id,
                reply_to,
                rule,
                trigger,
                kind,
            } => self.handle_request(req_id, reply_to, rule, trigger, &kind, ctx),
            CmMsg::PerformWrite {
                req_id,
                reply_to,
                item,
                value,
                rule,
                trigger,
            } => self.handle_perform_write(req_id, reply_to, &item, &value, rule, trigger, ctx),
            CmMsg::PollTick { idx } => self.handle_poll_tick(idx, ctx),
            CmMsg::SetServiceExtra(d) => self.extra = d,
            other => panic!(
                "translator at {} received unexpected message {other:?}",
                self.site
            ),
        }
    }
}
