//! Wiring between the toolkit's actors and the durable store (§5).
//!
//! The paper's crash taxonomy hinges on memory: "crashes can be mapped
//! to metric failures if the database … can remember messages". This
//! module provides the three memory regimes a scenario can pick per
//! site, and the glue ([`StoreBridge`]) that shells and translators use
//! to write-ahead-log their durable state into an
//! [`hcm_store::StateStore`] and reload it on recovery.
//!
//! * [`Durability::MessageOnly`] — historical behaviour: a crash only
//!   affects message traffic; in-memory actor state survives (the
//!   simulation never destroyed it). Kept as the default so existing
//!   experiments are bit-for-bit unchanged.
//! * [`Durability::LoseState`] — a *lossy* crash now also wipes the
//!   component's volatile state (registry, private data, pending
//!   writes). With no store to recover from, this is the paper's
//!   logical failure made concrete: promised notifications and
//!   accepted writes are simply gone.
//! * [`Durability::Durable`] — same wipe, but the component logs every
//!   durable mutation to a [`StateStore`] and recovers from
//!   checkpoint + replay, demoting the crash to a metric failure:
//!   obligations are delayed, never lost.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::registry::{FailureKind, GuaranteeRegistry, GuaranteeStatus};
use hcm_core::{ItemId, Shared, Value};
use hcm_obs::{Metrics, Scope};
use hcm_store::{FailureTag, LogRecord, SharedStore, ShellSnapshot, StatusTag};

/// Which backing medium a durable site logs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreKind {
    /// In-memory log outside the simulated actor — durable across
    /// *simulated* crashes, gone when the process exits. The default
    /// for tests.
    Memory,
    /// CRC-checked segment files under this directory (one
    /// subdirectory per actor).
    File(PathBuf),
}

/// Configuration of a durable site's store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSetup {
    /// Backing medium.
    pub kind: StoreKind,
    /// Write a checkpoint after this many appended records.
    pub checkpoint_every: u64,
    /// Segment rotation threshold for file-backed stores.
    pub segment_bytes: u64,
}

impl Default for StoreSetup {
    fn default() -> Self {
        StoreSetup {
            kind: StoreKind::Memory,
            checkpoint_every: 64,
            segment_bytes: 64 * 1024,
        }
    }
}

/// Scenario-level durability regime (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Durability {
    /// Crashes affect messages only; actor state silently survives.
    #[default]
    MessageOnly,
    /// Lossy crashes wipe volatile state; nothing is recovered.
    LoseState,
    /// Lossy crashes wipe volatile state; a write-ahead log and
    /// checkpoints bring it back on recovery.
    Durable(StoreSetup),
}

/// Per-actor state policy derived from [`Durability`].
#[derive(Default)]
pub enum StatePolicy {
    /// Keep in-memory state across crashes (historical behaviour).
    #[default]
    Keep,
    /// Wipe on lossy crash; recover nothing.
    Lose,
    /// Wipe on lossy crash; recover via this bridge.
    Durable(StoreBridge),
}

impl StatePolicy {
    /// The bridge, if this policy is durable.
    pub fn bridge(&mut self) -> Option<&mut StoreBridge> {
        match self {
            StatePolicy::Durable(b) => Some(b),
            _ => None,
        }
    }

    /// Whether a lossy crash wipes volatile state under this policy.
    #[must_use]
    pub fn wipes_on_lossy_crash(&self) -> bool {
        !matches!(self, StatePolicy::Keep)
    }
}

/// An actor's handle to its [`hcm_store::StateStore`]: logging with
/// checkpoint cadence, recovery, and `store.*` metrics.
pub struct StoreBridge {
    store: SharedStore,
    metrics: Metrics,
    scope: Scope,
    checkpoint_every: u64,
    appends_since_ckpt: u64,
}

impl StoreBridge {
    /// Bridge `store` for the component metered under `scope`.
    #[must_use]
    pub fn new(store: SharedStore, metrics: Metrics, scope: Scope, checkpoint_every: u64) -> Self {
        StoreBridge {
            store,
            metrics,
            scope,
            checkpoint_every: checkpoint_every.max(1),
            appends_since_ckpt: 0,
        }
    }

    /// Append one record to the WAL. Returns `true` when the
    /// checkpoint cadence says the caller should snapshot now. Store
    /// errors are counted, not propagated: a component must not fall
    /// over because its log did (§5 degrades, never halts).
    pub fn log(&mut self, rec: &LogRecord) -> bool {
        let payload = rec.encode();
        match self.store.borrow_mut().append(&payload) {
            Ok(bytes) => {
                self.metrics.inc(self.scope, "store.appends");
                self.metrics.add(self.scope, "store.bytes", bytes);
                // Every append is flushed before the component moves
                // on — the sim-world analogue of an fsync per record.
                self.metrics.inc(self.scope, "store.fsyncs");
                self.appends_since_ckpt += 1;
                self.appends_since_ckpt >= self.checkpoint_every
            }
            Err(_) => {
                self.metrics.inc(self.scope, "store.errors");
                false
            }
        }
    }

    /// Install a checkpoint blob and reset the cadence counter.
    pub fn save_checkpoint(&mut self, snapshot: &[u8]) {
        match self.store.borrow_mut().checkpoint(snapshot) {
            Ok(bytes) => {
                self.metrics.inc(self.scope, "store.checkpoints");
                self.metrics.add(self.scope, "store.bytes", bytes);
                self.appends_since_ckpt = 0;
            }
            Err(_) => {
                self.metrics.inc(self.scope, "store.errors");
            }
        }
    }

    /// Load the latest checkpoint and the decoded log suffix. Records
    /// that fail to decode are skipped (and counted) — recovery is
    /// best-effort by design.
    pub fn recover(&mut self) -> (Option<Vec<u8>>, Vec<LogRecord>) {
        let recovery = match self.store.borrow_mut().recover() {
            Ok(r) => r,
            Err(_) => {
                self.metrics.inc(self.scope, "store.errors");
                return (None, Vec::new());
            }
        };
        self.metrics.inc(self.scope, "store.recoveries");
        self.metrics
            .add(self.scope, "store.truncations", recovery.torn_truncations);
        let mut records = Vec::with_capacity(recovery.records.len());
        for payload in &recovery.records {
            match LogRecord::decode(payload) {
                Ok(r) => records.push(r),
                Err(_) => {
                    self.metrics.inc(self.scope, "store.decode_errors");
                }
            }
        }
        self.metrics
            .add(self.scope, "store.replayed", records.len() as u64);
        (recovery.checkpoint, records)
    }
}

/// [`GuaranteeStatus`] → its storable tag.
#[must_use]
pub fn status_to_tag(s: GuaranteeStatus) -> StatusTag {
    match s {
        GuaranteeStatus::Valid => StatusTag::Valid,
        GuaranteeStatus::SuspendedMetric => StatusTag::SuspendedMetric,
        GuaranteeStatus::SuspendedLogical => StatusTag::SuspendedLogical,
    }
}

/// Storable tag → [`GuaranteeStatus`].
#[must_use]
pub fn tag_to_status(t: StatusTag) -> GuaranteeStatus {
    match t {
        StatusTag::Valid => GuaranteeStatus::Valid,
        StatusTag::SuspendedMetric => GuaranteeStatus::SuspendedMetric,
        StatusTag::SuspendedLogical => GuaranteeStatus::SuspendedLogical,
    }
}

/// [`FailureKind`] → its storable tag.
#[must_use]
pub fn fail_to_tag(k: FailureKind) -> FailureTag {
    match k {
        FailureKind::Metric => FailureTag::Metric,
        FailureKind::Logical => FailureTag::Logical,
    }
}

/// Storable tag → [`FailureKind`].
#[must_use]
pub fn tag_to_fail(t: FailureTag) -> FailureKind {
    match t {
        FailureTag::Metric => FailureKind::Metric,
        FailureTag::Logical => FailureKind::Logical,
    }
}

/// Canonical byte encoding of a shell's externally visible durable
/// state — its CM-private data and guarantee registry. Deterministic
/// (BTreeMap order, fixed-width codec), so "recovered to the same
/// state" can be asserted byte-for-byte across a crash.
#[must_use]
pub fn shell_state_blob(
    private: &Shared<BTreeMap<ItemId, Value>>,
    registry: &Shared<GuaranteeRegistry>,
) -> Vec<u8> {
    let snap = ShellSnapshot {
        private: private
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        registry: registry
            .borrow()
            .statuses()
            .into_iter()
            .map(|(name, status, since)| (name, status_to_tag(status), since))
            .collect(),
        next_req: 0,
        outstanding: Vec::new(),
    };
    snap.encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_core::SimTime;
    use hcm_obs::Obs;
    use hcm_store::MemStore;

    #[test]
    fn bridge_logs_checkpoints_and_recovers() {
        let obs = Obs::new();
        let store = hcm_store::shared(MemStore::new());
        let scope = Scope::Site(3);
        let mut bridge = StoreBridge::new(store.clone(), obs.metrics.clone(), scope, 2);
        let rec = LogRecord::Reset { at: SimTime::ZERO };
        assert!(!bridge.log(&rec)); // 1 of 2
        assert!(bridge.log(&rec)); // cadence reached
        bridge.save_checkpoint(b"snap");
        assert!(!bridge.log(&rec)); // counter reset
        let (ckpt, records) = bridge.recover();
        assert_eq!(ckpt.as_deref(), Some(&b"snap"[..]));
        assert_eq!(records, vec![rec]);
        assert_eq!(obs.metrics.counter(scope, "store.appends"), 3);
        assert_eq!(obs.metrics.counter(scope, "store.fsyncs"), 3);
        assert_eq!(obs.metrics.counter(scope, "store.checkpoints"), 1);
        assert_eq!(obs.metrics.counter(scope, "store.recoveries"), 1);
        assert_eq!(obs.metrics.counter(scope, "store.replayed"), 1);
        assert!(obs.metrics.counter(scope, "store.bytes") > 0);
    }

    #[test]
    fn state_blob_is_deterministic_and_state_sensitive() {
        let private = Shared::new(BTreeMap::new());
        let registry = Shared::new(GuaranteeRegistry::new());
        let a = shell_state_blob(&private, &registry);
        assert_eq!(a, shell_state_blob(&private, &registry));
        private
            .borrow_mut()
            .insert(ItemId::plain("Cx"), Value::Int(1));
        assert_ne!(a, shell_state_blob(&private, &registry));
    }

    #[test]
    fn status_tags_round_trip() {
        for s in [
            GuaranteeStatus::Valid,
            GuaranteeStatus::SuspendedMetric,
            GuaranteeStatus::SuspendedLogical,
        ] {
            assert_eq!(tag_to_status(status_to_tag(s)), s);
        }
    }

    #[test]
    fn default_policy_keeps_state() {
        let p = StatePolicy::default();
        assert!(!p.wipes_on_lossy_crash());
        assert!(matches!(Durability::default(), Durability::MessageOnly));
    }
}
