//! Differential property test: indexed dispatch ≡ linear scan.
//!
//! A SplitMix64 generator (same pattern as the store codec round-trip
//! tests — deterministic, dependency-free) drives thousands of random
//! rule sets and events across every [`TemplateDesc`] variant,
//! including parameterized item patterns (`X(n)`, `X(*)`, `X(7)`),
//! wild-carded value terms, custom events, periodic templates, and the
//! never-matching `𝓕`. For each (rule set, event) pair the
//! [`RuleIndex`] candidate list must
//!
//! 1. be a subset of the shell's rule positions, strictly ascending
//!    (the linear-scan visit order — what keeps traces byte-identical);
//! 2. contain *every* rule whose template matches the event, so the
//!    candidate set filtered by full unification equals the
//!    linear-scan match set exactly, in the same order, with the same
//!    resulting bindings.
//!
//! Property 2 is what makes the index sound; property 1 is what makes
//! it observably invisible.

use hcm_core::{
    Bindings, EventDesc, ItemId, ItemPattern, RuleId, SimDuration, SiteId, TemplateDesc, Term,
    Value,
};
use hcm_rulelang::ast::{Cond, StrategyRule};
use hcm_toolkit::compile::CompiledRule;
use hcm_toolkit::dispatch::RuleIndex;

/// SplitMix64: tiny, deterministic, well-distributed.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A small base-name pool so rules and events collide often enough
    /// for the match path (not just the miss path) to be exercised.
    fn base(&mut self) -> &'static str {
        ["X", "Y", "Z", "acct", "salary"][self.below(5) as usize]
    }

    fn value(&mut self) -> Value {
        match self.below(3) {
            0 => Value::Int(self.below(4) as i64),
            1 => Value::Str(["a", "b", "c"][self.below(3) as usize].to_string()),
            _ => Value::Bool(self.below(2) == 1),
        }
    }

    fn term(&mut self) -> Term {
        match self.below(3) {
            0 => Term::Var(["n", "b", "v"][self.below(3) as usize].to_string()),
            1 => Term::Const(self.value()),
            _ => Term::Wild,
        }
    }

    fn pattern(&mut self) -> ItemPattern {
        let arity = self.below(3) as usize;
        let base = self.base();
        ItemPattern::with(base, (0..arity).map(|_| self.term()).collect::<Vec<_>>())
    }

    fn item(&mut self) -> ItemId {
        let arity = self.below(3) as usize;
        let base = self.base();
        ItemId::with(base, (0..arity).map(|_| self.value()).collect::<Vec<_>>())
    }

    fn template(&mut self) -> TemplateDesc {
        match self.below(10) {
            0 => TemplateDesc::Ws {
                item: self.pattern(),
                old: if self.below(2) == 0 {
                    None
                } else {
                    Some(self.term())
                },
                new: self.term(),
            },
            1 => TemplateDesc::W {
                item: self.pattern(),
                value: self.term(),
            },
            2 => TemplateDesc::Wr {
                item: self.pattern(),
                value: self.term(),
            },
            3 => TemplateDesc::Rr {
                item: self.pattern(),
            },
            4 => TemplateDesc::R {
                item: self.pattern(),
                value: self.term(),
            },
            5 => TemplateDesc::N {
                item: self.pattern(),
                value: self.term(),
            },
            6 => TemplateDesc::P {
                period: match self.below(3) {
                    0 => Term::Const(Value::Int(100 * (1 + self.below(3) as i64))),
                    1 => Term::Var("p".to_string()),
                    _ => Term::Wild,
                },
            },
            7 => TemplateDesc::Custom {
                name: ["Grant", "LimitReq"][self.below(2) as usize].to_string(),
                args: (0..self.below(3)).map(|_| self.term()).collect(),
            },
            8 => TemplateDesc::False,
            _ => TemplateDesc::N {
                // Extra weight on N — the most common strategy trigger.
                item: self.pattern(),
                value: self.term(),
            },
        }
    }

    fn event(&mut self) -> EventDesc {
        match self.below(8) {
            0 => EventDesc::Ws {
                item: self.item(),
                old: if self.below(2) == 0 {
                    None
                } else {
                    Some(self.value())
                },
                new: self.value(),
            },
            1 => EventDesc::W {
                item: self.item(),
                value: self.value(),
            },
            2 => EventDesc::Wr {
                item: self.item(),
                value: self.value(),
            },
            3 => EventDesc::Rr { item: self.item() },
            4 => EventDesc::R {
                item: self.item(),
                value: self.value(),
            },
            5 => EventDesc::N {
                item: self.item(),
                value: self.value(),
            },
            6 => EventDesc::P {
                period: SimDuration::from_millis(100 * (1 + self.below(3))),
            },
            _ => EventDesc::Custom {
                name: ["Grant", "LimitReq"][self.below(2) as usize].to_string(),
                args: (0..self.below(3)).map(|_| self.value()).collect(),
            },
        }
    }

    fn rule(&mut self, id: u32) -> CompiledRule {
        CompiledRule {
            id: RuleId(id),
            rule: StrategyRule {
                lhs: self.template(),
                cond: Cond::True,
                steps: Vec::new(),
                bound: SimDuration::from_secs(5),
            },
            lhs_site: SiteId::new(0),
            rhs_site: SiteId::new(1),
        }
    }
}

/// Render the bindings a successful match produced, for comparing the
/// *result* of matching (not just the verdict) across dispatch paths.
fn binding_fingerprint(b: &Bindings) -> String {
    let mut pairs: Vec<String> = b.iter().map(|(k, v)| format!("{k}={v}")).collect();
    pairs.sort();
    pairs.join(",")
}

/// The retained reference: scan every position, full unification each.
fn linear_matches(
    rules: &[CompiledRule],
    positions: &[usize],
    desc: &EventDesc,
) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for &i in positions {
        let mut b = Bindings::new();
        if rules[i].rule.lhs.match_desc(desc, &mut b) {
            out.push((i, binding_fingerprint(&b)));
        }
    }
    out
}

#[test]
fn indexed_candidates_cover_exactly_the_linear_match_set() {
    let mut g = Gen::new(0xD15B_47C4);
    for round in 0..400 {
        let n_rules = 1 + g.below(24) as usize;
        let rules: Vec<CompiledRule> = (0..n_rules).map(|i| g.rule(i as u32)).collect();
        // A random (ascending) subset plays the shell's `my_rules`.
        let positions: Vec<usize> = (0..n_rules).filter(|_| g.below(4) != 0).collect();
        let idx = RuleIndex::build(&rules, &positions);

        for _ in 0..16 {
            let desc = g.event();
            let cands: Vec<usize> = idx.candidates(&desc).collect();

            // Property 1: candidates ⊆ positions, strictly ascending.
            assert!(
                cands.windows(2).all(|w| w[0] < w[1]),
                "round {round}: candidates not strictly ascending: {cands:?}"
            );
            assert!(
                cands.iter().all(|c| positions.contains(c)),
                "round {round}: candidate outside the shell's rules"
            );

            // Property 2: unifying the candidates reproduces the
            // linear-scan match set — same rules, same order, same
            // bindings.
            let mut via_index = Vec::new();
            for i in cands {
                let mut b = Bindings::new();
                if rules[i].rule.lhs.match_desc(&desc, &mut b) {
                    via_index.push((i, binding_fingerprint(&b)));
                }
            }
            let via_linear = linear_matches(&rules, &positions, &desc);
            assert_eq!(
                via_index, via_linear,
                "round {round}: dispatch paths disagree on {desc:?}"
            );
        }
    }
}

/// The wildcard-heavy corner pinned explicitly: a parameterized
/// pattern never matches across arity or base, and the index never
/// hides a same-base candidate regardless of parameter shape.
#[test]
fn parameterized_and_wildcard_patterns_stay_sound() {
    let rules: Vec<CompiledRule> = [
        TemplateDesc::N {
            item: ItemPattern::plain("X"),
            value: Term::Var("b".into()),
        },
        TemplateDesc::N {
            item: ItemPattern::with("X", [Term::Wild]),
            value: Term::Wild,
        },
        TemplateDesc::N {
            item: ItemPattern::with("X", [Term::Const(Value::Int(7))]),
            value: Term::Var("b".into()),
        },
        TemplateDesc::N {
            item: ItemPattern::with("X", [Term::Var("n".into()), Term::Var("n".into())]),
            value: Term::Wild,
        },
    ]
    .into_iter()
    .enumerate()
    .map(|(i, lhs)| CompiledRule {
        id: RuleId(i as u32),
        rule: StrategyRule {
            lhs,
            cond: Cond::True,
            steps: Vec::new(),
            bound: SimDuration::from_secs(5),
        },
        lhs_site: SiteId::new(0),
        rhs_site: SiteId::new(0),
    })
    .collect();
    let positions: Vec<usize> = (0..rules.len()).collect();
    let idx = RuleIndex::build(&rules, &positions);

    let cases: Vec<(EventDesc, Vec<usize>)> = vec![
        // Bare X: only the unparameterized pattern unifies.
        (
            EventDesc::N {
                item: ItemId::plain("X"),
                value: Value::Int(1),
            },
            vec![0],
        ),
        // X(7): wildcard-arity-1 and the constant pattern.
        (
            EventDesc::N {
                item: ItemId::with("X", [Value::Int(7)]),
                value: Value::Int(1),
            },
            vec![1, 2],
        ),
        // X(3, 3): only the repeated-variable pattern (n = 3 twice).
        (
            EventDesc::N {
                item: ItemId::with("X", [Value::Int(3), Value::Int(3)]),
                value: Value::Int(1),
            },
            vec![3],
        ),
        // X(3, 4): repeated variable cannot bind two values.
        (
            EventDesc::N {
                item: ItemId::with("X", [Value::Int(3), Value::Int(4)]),
                value: Value::Int(1),
            },
            vec![],
        ),
        // Y: no rule watches the base at all.
        (
            EventDesc::N {
                item: ItemId::plain("Y"),
                value: Value::Int(1),
            },
            vec![],
        ),
    ];
    for (desc, want) in cases {
        // All four rules share the (N, X) bucket, so every X event sees
        // all of them as candidates; unification does the narrowing.
        let got: Vec<usize> = idx
            .candidates(&desc)
            .filter(|&i| {
                let mut b = Bindings::new();
                rules[i].rule.lhs.match_desc(&desc, &mut b)
            })
            .collect();
        assert_eq!(got, want, "match set for {desc:?}");
        assert_eq!(
            got,
            linear_matches(&rules, &positions, &desc)
                .into_iter()
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        );
    }
}
