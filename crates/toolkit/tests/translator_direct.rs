//! Direct CM-Translator tests: one translator in a bare simulation with
//! a probe actor standing in as its CM-Shell, exercising each CMI
//! behaviour in isolation (the scenario-level tests cover composition).

use hcm_core::{
    EventDesc, ItemId, RuleRegistry, Shared, SimDuration, SimTime, SiteId, TemplateDesc, Term,
    TraceRecorder, Value,
};
use hcm_simkit::{Actor, ActorId, Ctx, Sim};
use hcm_toolkit::backends::{build_backend, RawStore};
use hcm_toolkit::msg::{CmMsg, RequestKind, SpontaneousOp, TranslatorEvent};
use hcm_toolkit::rid::CmRid;
use hcm_toolkit::translator::{TranslatorActor, TranslatorStatsHandle};

/// Records every CMI event it receives, with its arrival time.
struct Probe {
    log: Shared<Vec<(SimTime, TranslatorEvent)>>,
}

impl Actor<CmMsg> for Probe {
    fn on_message(&mut self, msg: CmMsg, ctx: &mut Ctx<'_, CmMsg>) {
        if let CmMsg::Cmi(ev) = msg {
            self.log.borrow_mut().push((ctx.now(), ev));
        }
    }
}

const RID: &str = r#"
ris = relational
service = 100ms
[interface]
Ws(sal(n), b) -> N(sal(n), b) within 2s
WR(sal(n), b) -> W(sal(n), b) within 1s
RR(sal(n)) when sal(n) = b -> R(sal(n), b) within 1s
[command write sal]
update t set v = $value where k = $p0
[command insert sal]
insert into t values ($p0, $value)
[command read sal]
select v from t where k = $p0
[map sal]
table = t
key = k
col = v
"#;

struct Rig {
    sim: Sim<CmMsg>,
    translator: ActorId,
    probe: ActorId,
    log: Shared<Vec<(SimTime, TranslatorEvent)>>,
    recorder: TraceRecorder,
    stats: TranslatorStatsHandle,
}

fn rig(interest: Vec<TemplateDesc>) -> Rig {
    let mut db = hcm_ris::relational::Database::new();
    db.create_table("t", &["k", "v"]).unwrap();
    db.execute("insert into t values ('e1', 10)").unwrap();
    let rid = CmRid::parse(RID).unwrap();
    let mut registry = RuleRegistry::new();
    let iface_ids: Vec<_> = rid
        .interfaces
        .iter()
        .map(|s| registry.register(s.to_string()))
        .collect();
    let recorder = TraceRecorder::new();
    let log = Shared::new(Vec::new());

    let mut sim = Sim::new(1);
    let stats = TranslatorStatsHandle::new(sim.obs().metrics, SiteId::new(0));
    let probe = sim.add_actor(Box::new(Probe { log: log.clone() }));
    let t = TranslatorActor::new(
        SiteId::new(0),
        probe,
        build_backend(RawStore::Relational(db), &rid),
        &rid,
        iface_ids,
        interest,
        SimTime::from_millis(u64::MAX),
        recorder.clone(),
        stats.clone(),
    );
    let translator = sim.add_actor(Box::new(t));
    Rig {
        sim,
        translator,
        probe,
        log,
        recorder,
        stats,
    }
}

fn e1() -> ItemId {
    ItemId::with("sal", [Value::from("e1")])
}

#[test]
fn initial_state_is_captured() {
    let mut r = rig(vec![]);
    r.sim.run_to_quiescence();
    let trace = r.recorder.snapshot();
    assert_eq!(trace.initial(&e1()), Some(&Value::Int(10)));
}

#[test]
fn write_request_performs_within_service_delay_and_acks() {
    let mut r = rig(vec![]);
    r.sim.inject_at(
        SimTime::from_secs(1),
        r.translator,
        CmMsg::Request {
            req_id: 7,
            reply_to: r.probe,
            rule: None,
            trigger: None,
            kind: RequestKind::Write(e1(), Value::Int(20)),
        },
    );
    r.sim.run_to_quiescence();
    let log = r.log.borrow();
    let (at, ev) = &log[0];
    assert_eq!(
        ev,
        &TranslatorEvent::WriteDone {
            req_id: 7,
            ok: true
        }
    );
    // service 100ms + forward 1ms.
    assert_eq!(*at, SimTime::from_millis(1_101));
    drop(log);
    let trace = r.recorder.snapshot();
    let tags: Vec<&str> = trace.events().iter().map(|e| e.desc.tag()).collect();
    assert_eq!(tags, vec!["WR", "W"]);
    assert_eq!(
        trace.value_at(&e1(), trace.end_time()),
        Some(Value::Int(20))
    );
    assert_eq!(r.stats.borrow().writes_done, 1);
}

#[test]
fn read_request_returns_current_value() {
    let mut r = rig(vec![]);
    r.sim.inject_at(
        SimTime::from_secs(1),
        r.translator,
        CmMsg::Request {
            req_id: 9,
            reply_to: r.probe,
            rule: None,
            trigger: None,
            kind: RequestKind::Read(e1()),
        },
    );
    r.sim.run_to_quiescence();
    let log = r.log.borrow();
    match &log[0].1 {
        TranslatorEvent::ReadResult {
            req_id,
            item,
            value,
            ..
        } => {
            assert_eq!(*req_id, 9);
            assert_eq!(item, &e1());
            assert_eq!(value, &Value::Int(10));
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(r.stats.borrow().reads_served, 1);
}

#[test]
fn read_of_missing_item_is_null() {
    let mut r = rig(vec![]);
    r.sim.inject_at(
        SimTime::from_secs(1),
        r.translator,
        CmMsg::Request {
            req_id: 1,
            reply_to: r.probe,
            rule: None,
            trigger: None,
            kind: RequestKind::Read(ItemId::with("sal", [Value::from("ghost")])),
        },
    );
    r.sim.run_to_quiescence();
    match &r.log.borrow()[0].1 {
        TranslatorEvent::ReadResult { value, .. } => assert_eq!(value, &Value::Null),
        other => panic!("unexpected {other:?}"),
    };
}

#[test]
fn spontaneous_change_notifies_within_bound() {
    let mut r = rig(vec![]);
    r.sim.inject_at(
        SimTime::from_secs(5),
        r.translator,
        CmMsg::Spontaneous(SpontaneousOp::Sql(
            "update t set v = 11 where k = 'e1'".into(),
        )),
    );
    r.sim.run_to_quiescence();
    let log = r.log.borrow();
    match &log[0].1 {
        TranslatorEvent::Notify { item, value, .. } => {
            assert_eq!(item, &e1());
            assert_eq!(value, &Value::Int(11));
        }
        other => panic!("unexpected {other:?}"),
    }
    // Within the 2s notify bound (service 100ms).
    assert!(log[0].0 <= SimTime::from_secs(7));
    assert_eq!(r.stats.borrow().notifications, 1);
}

#[test]
fn overload_injection_delays_service() {
    let mut r = rig(vec![]);
    r.sim.inject_at(
        SimTime::ZERO,
        r.translator,
        CmMsg::SetServiceExtra(SimDuration::from_secs(10)),
    );
    r.sim.inject_at(
        SimTime::from_secs(1),
        r.translator,
        CmMsg::Request {
            req_id: 2,
            reply_to: r.probe,
            rule: None,
            trigger: None,
            kind: RequestKind::Write(e1(), Value::Int(30)),
        },
    );
    r.sim.run_to_quiescence();
    let log = r.log.borrow();
    assert!(
        log[0].0 >= SimTime::from_secs(11),
        "overload must delay the ack: {}",
        log[0].0
    );
}

#[test]
fn interest_patterns_forward_observed_events() {
    // The shell registered interest in Ws(sal(n), b) events.
    let interest = vec![TemplateDesc::Ws {
        item: hcm_core::ItemPattern::with("sal", [Term::var("n")]),
        old: None,
        new: Term::var("b"),
    }];
    let mut r = rig(interest);
    r.sim.inject_at(
        SimTime::from_secs(1),
        r.translator,
        CmMsg::Spontaneous(SpontaneousOp::Sql(
            "update t set v = 12 where k = 'e1'".into(),
        )),
    );
    r.sim.run_to_quiescence();
    let log = r.log.borrow();
    assert!(
        log.iter().any(
            |(_, ev)| matches!(ev, TranslatorEvent::Observed { desc, .. }
            if matches!(desc, EventDesc::Ws { .. }))
        ),
        "Ws must be forwarded: {log:#?}"
    );
}

#[test]
fn enumerate_meta_request() {
    let mut r = rig(vec![]);
    r.sim.inject_at(
        SimTime::from_secs(1),
        r.translator,
        CmMsg::Request {
            req_id: 3,
            reply_to: r.probe,
            rule: None,
            trigger: None,
            kind: RequestKind::Enumerate(hcm_core::ItemPattern::with("sal", [Term::var("n")])),
        },
    );
    r.sim.run_to_quiescence();
    match &r.log.borrow()[0].1 {
        TranslatorEvent::EnumResult { req_id, items } => {
            assert_eq!(*req_id, 3);
            assert_eq!(items, &vec![e1()]);
        }
        other => panic!("unexpected {other:?}"),
    };
    // Meta-operations leave no trace events.
    assert!(r.recorder.snapshot().is_empty());
}

#[test]
fn failed_spontaneous_op_counted_not_crashed() {
    let mut r = rig(vec![]);
    r.sim.inject_at(
        SimTime::from_secs(1),
        r.translator,
        CmMsg::Spontaneous(SpontaneousOp::Sql("garbage command".into())),
    );
    r.sim.run_to_quiescence();
    assert_eq!(r.stats.borrow().spontaneous_errors, 1);
    assert!(r.log.borrow().is_empty());
}
