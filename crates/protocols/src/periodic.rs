//! Periodic guarantees — the §6.4 banking scenario.
//!
//! "Consider an old-fashioned banking environment in which all update
//! transactions occur between 9 a.m. and 5 p.m. … A simple strategy is
//! to propagate the new values of account balances from the branch to
//! the head office at the end of each working day." With a no-updates
//! window 17:00–08:00 and a 15-minute propagation batch, the toolkit
//! can offer: *balances agree from 17:15 until 08:00 the next day*.
//!
//! The [`BatchAgent`] runs at `batch_at` (+ optional clock skew, for
//! the §7.2 clock-synchronization experiment E11): it enumerates the
//! branch's balances, reads each, and writes them to the head office —
//! all over the CMI.

use hcm_core::{ItemId, SimDuration, SimTime};
use hcm_obs::{Metrics, Scope};
use hcm_simkit::{Actor, ActorId, Ctx};
use hcm_toolkit::backends::RawStore;
use hcm_toolkit::msg::{CmMsg, RequestKind, TranslatorEvent};
use hcm_toolkit::{Scenario, ScenarioBuilder};
use std::collections::BTreeMap;

/// Batch counters.
#[derive(Debug, Default, Clone)]
pub struct BatchStats {
    /// Batches run.
    pub batches: u64,
    /// Balances propagated.
    pub propagated: u64,
    /// Time the last batch finished (last write acknowledged).
    pub last_finish: Option<SimTime>,
}

/// Registry-backed view of the batch counters; [`BatchStats`] is the
/// snapshot it materializes.
#[derive(Clone)]
pub struct BatchStatsHandle {
    metrics: Metrics,
    scope: Scope,
}

impl BatchStatsHandle {
    /// A handle recording under `batch.*` at the global scope.
    #[must_use]
    pub fn new(metrics: Metrics) -> Self {
        BatchStatsHandle {
            metrics,
            scope: Scope::Global,
        }
    }

    fn inc(&self, name: &str) {
        self.metrics.inc(self.scope, name);
    }

    /// Materialize an owned snapshot (source-compatible with the former
    /// `RefCell` accessor).
    #[must_use]
    pub fn borrow(&self) -> BatchStats {
        BatchStats {
            batches: self.metrics.counter(self.scope, "batch.batches"),
            propagated: self.metrics.counter(self.scope, "batch.propagated"),
            last_finish: self
                .metrics
                .gauge(self.scope, "batch.last_finish_ms")
                .map(|ms| SimTime::from_millis(ms as u64)),
        }
    }
}

enum Phase {
    Idle,
    Enumerating {
        req: u64,
    },
    Reading {
        pending: BTreeMap<u64, ItemId>,
        writes_outstanding: u64,
    },
    Writing {
        writes_outstanding: u64,
    },
}

/// The end-of-day propagator, a CM-Shell for the constraint serving
/// both sites.
pub struct BatchAgent {
    branch_translator: ActorId,
    hq_translator: ActorId,
    /// Absolute batch start times (one per day), already skew-adjusted.
    schedule: Vec<SimTime>,
    next_req: u64,
    phase: Phase,
    stats: BatchStatsHandle,
}

impl BatchAgent {
    fn req(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }
}

impl Actor<CmMsg> for BatchAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        for &t in &self.schedule {
            ctx.schedule_self(
                t.saturating_since(SimTime::ZERO),
                CmMsg::RuleTick { idx: 0 },
            );
        }
    }

    fn on_message(&mut self, msg: CmMsg, ctx: &mut Ctx<'_, CmMsg>) {
        match msg {
            CmMsg::RuleTick { .. } => {
                self.stats.inc("batch.batches");
                let req = self.req();
                self.phase = Phase::Enumerating { req };
                let me = ctx.me();
                ctx.send_local(
                    self.branch_translator,
                    CmMsg::Request {
                        req_id: req,
                        reply_to: me,
                        rule: None,
                        trigger: None,
                        kind: RequestKind::Enumerate(hcm_core::ItemPattern::with(
                            "bbal",
                            [hcm_core::Term::var("n")],
                        )),
                    },
                    SimDuration::from_millis(1),
                );
            }
            CmMsg::Cmi(TranslatorEvent::EnumResult { req_id, items }) => {
                let Phase::Enumerating { req } = &self.phase else {
                    return;
                };
                if *req != req_id {
                    return;
                }
                let me = ctx.me();
                let mut pending = BTreeMap::new();
                for item in items {
                    let r = self.req();
                    pending.insert(r, item.clone());
                    ctx.send_local(
                        self.branch_translator,
                        CmMsg::Request {
                            req_id: r,
                            reply_to: me,
                            rule: None,
                            trigger: None,
                            kind: RequestKind::Read(item),
                        },
                        SimDuration::from_millis(1),
                    );
                }
                self.phase = if pending.is_empty() {
                    Phase::Idle
                } else {
                    Phase::Reading {
                        pending,
                        writes_outstanding: 0,
                    }
                };
            }
            CmMsg::Cmi(TranslatorEvent::ReadResult { req_id, value, .. }) => {
                let (branch_item, w, empty) = {
                    let Phase::Reading {
                        pending,
                        writes_outstanding,
                    } = &mut self.phase
                    else {
                        return;
                    };
                    let Some(item) = pending.remove(&req_id) else {
                        return;
                    };
                    *writes_outstanding += 1;
                    (item, *writes_outstanding, pending.is_empty())
                };
                let hq_item = ItemId {
                    base: "hbal".into(),
                    params: branch_item.params,
                };
                let r = self.req();
                self.stats.inc("batch.propagated");
                let me = ctx.me();
                ctx.send_local(
                    self.hq_translator,
                    CmMsg::Request {
                        req_id: r,
                        reply_to: me,
                        rule: None,
                        trigger: None,
                        kind: RequestKind::Write(hq_item, value),
                    },
                    SimDuration::from_millis(1),
                );
                if empty {
                    self.phase = Phase::Writing {
                        writes_outstanding: w,
                    };
                }
            }
            CmMsg::Cmi(TranslatorEvent::WriteDone { .. }) => {
                let done = match &mut self.phase {
                    Phase::Writing { writes_outstanding } => {
                        *writes_outstanding -= 1;
                        *writes_outstanding == 0
                    }
                    Phase::Reading {
                        writes_outstanding, ..
                    } => {
                        *writes_outstanding -= 1;
                        false
                    }
                    _ => false,
                };
                if done {
                    self.phase = Phase::Idle;
                    self.stats.metrics.gauge_set(
                        self.stats.scope,
                        "batch.last_finish_ms",
                        ctx.now().as_millis() as i64,
                    );
                }
            }
            other => panic!("batch agent: unexpected message {other:?}"),
        }
    }
}

const RID_BRANCH: &str = r#"
ris = relational
service = 100ms
[interface]
RR(bbal(n)) when bbal(n) = b -> R(bbal(n), b) within 1s
[command read bbal]
select bal from accounts where acct = $p0
[map bbal]
table = accounts
key = acct
col = bal
"#;

const RID_HQ: &str = r#"
ris = relational
service = 100ms
[interface]
WR(hbal(n), b) -> W(hbal(n), b) within 1s
RR(hbal(n)) when hbal(n) = b -> R(hbal(n), b) within 1s
[command write hbal]
update accounts set bal = $value where acct = $p0
[command insert hbal]
insert into accounts values ($p0, $value)
[command read hbal]
select bal from accounts where acct = $p0
[map hbal]
table = accounts
key = acct
col = bal
"#;

/// Seconds-from-midnight helpers for readable scenarios.
pub mod clock {
    /// 09:00.
    pub const NINE_AM: u64 = 9 * 3600;
    /// 17:00.
    pub const FIVE_PM: u64 = 17 * 3600;
    /// 17:15.
    pub const FIVE_FIFTEEN_PM: u64 = 17 * 3600 + 900;
    /// 08:00 next day.
    pub const EIGHT_AM_NEXT: u64 = 32 * 3600;
}

/// A built banking deployment.
pub struct BankScenario {
    /// Underlying toolkit scenario ("BR" = branch, "HQ" = head office).
    pub scenario: Scenario,
    /// The batch agent.
    pub agent: ActorId,
    /// Counters.
    pub stats: BatchStatsHandle,
}

/// Build the banking deployment: `accounts` at both sites with the
/// given initial balances; one batch per entry in `batch_times`
/// (absolute; add skew there to model unsynchronized clocks).
#[must_use]
pub fn build(seed: u64, accounts: &[(&str, i64)], batch_times: &[SimTime]) -> BankScenario {
    let mk_db = |rows: &[(&str, i64)]| {
        let mut db = hcm_ris::relational::Database::new();
        db.create_table("accounts", &["acct", "bal"]).unwrap();
        for (a, v) in rows {
            db.execute(&format!("INSERT INTO accounts VALUES ('{a}', {v})"))
                .unwrap();
        }
        db
    };
    let mut scenario = ScenarioBuilder::new(seed)
        .site("BR", RawStore::Relational(mk_db(accounts)), RID_BRANCH)
        .unwrap()
        .site("HQ", RawStore::Relational(mk_db(accounts)), RID_HQ)
        .unwrap()
        .strategy("[locate]\nbbal = BR\nhbal = HQ\n")
        // The batch agent drives both translators with short local
        // sends, so the two sites must share a shard in parallel runs.
        .co_locate(&["BR", "HQ"])
        .build()
        .unwrap();
    let stats = BatchStatsHandle::new(scenario.obs.metrics.clone());
    let bt = scenario.site("BR").translator;
    let ht = scenario.site("HQ").translator;
    let agent = scenario.add_actor_for(
        "BR",
        Box::new(BatchAgent {
            branch_translator: bt,
            hq_translator: ht,
            schedule: batch_times.to_vec(),
            next_req: 0,
            phase: Phase::Idle,
            stats: stats.clone(),
        }),
    );
    BankScenario {
        scenario,
        agent,
        stats,
    }
}

impl BankScenario {
    /// A branch deposit/withdrawal at `t` (seconds from midnight).
    pub fn branch_update(&mut self, t: SimTime, acct: &str, new_bal: i64) {
        self.scenario.inject(
            t,
            "BR",
            hcm_toolkit::SpontaneousOp::Sql(format!(
                "update accounts set bal = {new_bal} where acct = '{acct}'"
            )),
        );
    }

    /// The §6.4 periodic guarantee for one night, with explicit window
    /// bounds (ms since midnight): balances agree at every instant of
    /// `[from, to]`.
    #[must_use]
    pub fn night_guarantee(from_ms: u64, to_ms: u64) -> hcm_rulelang::Guarantee {
        hcm_rulelang::parse_guarantee(
            "bank_night",
            &format!(
                "(bbal(n) = v) @ t and t >= {from_ms}ms and t <= {to_ms}ms => (hbal(n) = v) @ t"
            ),
        )
        .expect("valid guarantee")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clock::*;
    use hcm_checker::guarantee::check_guarantee;

    fn working_day(b: &mut BankScenario) {
        // Updates strictly inside 09:00–17:00.
        b.branch_update(SimTime::from_secs(NINE_AM + 1800), "a1", 120);
        b.branch_update(SimTime::from_secs(NINE_AM + 7200), "a2", 80);
        b.branch_update(SimTime::from_secs(FIVE_PM - 600), "a1", 150);
    }

    fn pad_horizon(b: &mut BankScenario) {
        // An out-of-window marker so the trace extends past 08:00
        // (INSERT: an UPDATE matching no rows records no event).
        b.scenario.inject(
            SimTime::from_secs(EIGHT_AM_NEXT + 3600),
            "BR",
            hcm_toolkit::SpontaneousOp::Sql("insert into accounts values ('pad', 1)".into()),
        );
    }

    #[test]
    fn balances_agree_through_the_night() {
        let mut b = build(
            1,
            &[("a1", 100), ("a2", 100)],
            &[SimTime::from_secs(FIVE_PM)],
        );
        working_day(&mut b);
        pad_horizon(&mut b);
        b.scenario.run_to_quiescence();
        let trace = b.scenario.trace();
        assert_eq!(b.stats.borrow().batches, 1);
        assert!(b.stats.borrow().propagated >= 2);
        // Batch finished within the 15-minute window.
        let finish = b.stats.borrow().last_finish.unwrap();
        assert!(
            finish <= SimTime::from_secs(FIVE_FIFTEEN_PM),
            "batch finished at {finish}"
        );
        let g = BankScenario::night_guarantee(FIVE_FIFTEEN_PM * 1000, EIGHT_AM_NEXT * 1000);
        let r = check_guarantee(&trace, &g, None);
        assert!(r.holds, "{:#?}", r.violations);
        assert!(r.instantiations > 0);
    }

    #[test]
    fn daytime_window_does_not_hold() {
        // The same trace violates an *all-day* version of the guarantee
        // — consistency is genuinely periodic, not continuous.
        let mut b = build(2, &[("a1", 100)], &[SimTime::from_secs(FIVE_PM)]);
        working_day(&mut b);
        pad_horizon(&mut b);
        b.scenario.run_to_quiescence();
        let trace = b.scenario.trace();
        let g = BankScenario::night_guarantee(NINE_AM * 1000, EIGHT_AM_NEXT * 1000);
        let r = check_guarantee(&trace, &g, None);
        assert!(
            !r.holds,
            "daytime divergence must violate the widened window"
        );
    }

    #[test]
    fn late_batch_from_clock_skew_breaks_the_tight_window() {
        // E11: the batch machine's clock is 20 minutes behind, so the
        // batch runs at 17:20 — past the 17:15 window start. The tight
        // guarantee fails; widening the window start by the skew (a
        // margin "significantly larger than the expected skew", §7.2)
        // repairs it.
        let skew = 1200; // 20 min
        let mut b = build(3, &[("a1", 100)], &[SimTime::from_secs(FIVE_PM + skew)]);
        working_day(&mut b);
        pad_horizon(&mut b);
        b.scenario.run_to_quiescence();
        let trace = b.scenario.trace();
        let tight = BankScenario::night_guarantee(FIVE_FIFTEEN_PM * 1000, EIGHT_AM_NEXT * 1000);
        assert!(!check_guarantee(&trace, &tight, None).holds);
        let margin =
            BankScenario::night_guarantee((FIVE_FIFTEEN_PM + skew) * 1000, EIGHT_AM_NEXT * 1000);
        let r = check_guarantee(&trace, &margin, None);
        assert!(r.holds, "{:#?}", r.violations);
    }
}
