//! Referential integrity with a bounded violation window (§6.2).
//!
//! Constraint: every employee with a *project record* in the projects
//! database must have a *salary record* in the salary database. The
//! weakened, loosely-coupled-friendly guarantee: "the constraint may be
//! violated for any one employee ID for a period of at most 24 hours".
//!
//! Strategy (the paper's): "at the end of each working day, the CM
//! deletes all project records from the projects database that do not
//! have a corresponding salary record in the salary database". The
//! [`RefintAgent`] implements it over the CMI: enumerate project
//! records, read the matching salary records, delete the dangling
//! projects — all through the two sites' CM-Translators.
//!
//! Checkable form of the guarantee (see `DESIGN.md` on the formula):
//!
//! ```text
//! (exists(project(i))) @@ [t, t + W]  ⇒  exists(salary(i)) @? [t, t + W]
//! ```
//!
//! i.e. a project record that *persists* a full window `W` must have
//! had a salary record some time in that window; repair-by-deletion
//! discharges the antecedent.

use hcm_core::{ItemId, SimDuration, SimTime, Value};
use hcm_obs::{Metrics, Scope};
use hcm_simkit::{Actor, ActorId, Ctx};
use hcm_toolkit::backends::RawStore;
use hcm_toolkit::msg::{CmMsg, RequestKind, TranslatorEvent};
use hcm_toolkit::{Scenario, ScenarioBuilder};
use std::collections::BTreeMap;

/// Repair-cycle counters.
#[derive(Debug, Default, Clone)]
pub struct RefintStats {
    /// Repair cycles run.
    pub cycles: u64,
    /// Project records examined.
    pub examined: u64,
    /// Dangling project records deleted.
    pub deleted: u64,
    /// Owner notifications mailed.
    pub notices_sent: u64,
}

/// Registry-backed view of the repair counters; [`RefintStats`] is the
/// snapshot it materializes.
#[derive(Clone)]
pub struct RefintStatsHandle {
    metrics: Metrics,
    scope: Scope,
}

impl RefintStatsHandle {
    /// A handle recording under `refint.*` at the global scope.
    #[must_use]
    pub fn new(metrics: Metrics) -> Self {
        RefintStatsHandle {
            metrics,
            scope: Scope::Global,
        }
    }

    fn inc(&self, name: &str) {
        self.metrics.inc(self.scope, name);
    }

    /// Materialize an owned snapshot (source-compatible with the former
    /// `RefCell` accessor).
    #[must_use]
    pub fn borrow(&self) -> RefintStats {
        RefintStats {
            cycles: self.metrics.counter(self.scope, "refint.cycles"),
            examined: self.metrics.counter(self.scope, "refint.examined"),
            deleted: self.metrics.counter(self.scope, "refint.deleted"),
            notices_sent: self.metrics.counter(self.scope, "refint.notices_sent"),
        }
    }
}

enum Phase {
    Idle,
    Enumerating { req: u64 },
    Reading { pending: BTreeMap<u64, ItemId> },
}

/// The end-of-day repair agent. Serves as the CM-Shell for the
/// constraint, talking to both sites' translators over the CMI.
pub struct RefintAgent {
    projects_translator: ActorId,
    salaries_translator: ActorId,
    /// Optional mail translator: the paper's "perhaps notifying the
    /// database owner of the deleted records".
    mail_translator: Option<ActorId>,
    period: SimDuration,
    stop_at: SimTime,
    next_req: u64,
    phase: Phase,
    stats: RefintStatsHandle,
}

impl RefintAgent {
    fn req(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    fn tick_msg() -> CmMsg {
        CmMsg::RuleTick { idx: usize::MAX }
    }
}

impl Actor<CmMsg> for RefintAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CmMsg>) {
        if SimTime::ZERO + self.period <= self.stop_at {
            ctx.schedule_self(self.period, Self::tick_msg());
        }
    }

    fn on_message(&mut self, msg: CmMsg, ctx: &mut Ctx<'_, CmMsg>) {
        match msg {
            CmMsg::RuleTick { .. } => {
                self.stats.inc("refint.cycles");
                let req = self.req();
                self.phase = Phase::Enumerating { req };
                let me = ctx.me();
                ctx.send_local(
                    self.projects_translator,
                    CmMsg::Request {
                        req_id: req,
                        reply_to: me,
                        rule: None,
                        trigger: None,
                        kind: RequestKind::Enumerate(hcm_core::ItemPattern::with(
                            "project",
                            [hcm_core::Term::var("i")],
                        )),
                    },
                    SimDuration::from_millis(1),
                );
                if ctx.now() + self.period <= self.stop_at {
                    ctx.schedule_self(self.period, Self::tick_msg());
                }
            }
            CmMsg::Cmi(TranslatorEvent::EnumResult { req_id, items }) => {
                let Phase::Enumerating { req } = &self.phase else {
                    return;
                };
                if *req != req_id {
                    return;
                }
                self.stats
                    .metrics
                    .add(self.stats.scope, "refint.examined", items.len() as u64);
                let mut pending = BTreeMap::new();
                let me = ctx.me();
                for project in items {
                    let salary_item = ItemId {
                        base: "salary".into(),
                        params: project.params.clone(),
                    };
                    let r = self.req();
                    pending.insert(r, project);
                    ctx.send_local(
                        self.salaries_translator,
                        CmMsg::Request {
                            req_id: r,
                            reply_to: me,
                            rule: None,
                            trigger: None,
                            kind: RequestKind::Read(salary_item),
                        },
                        SimDuration::from_millis(1),
                    );
                }
                self.phase = if pending.is_empty() {
                    Phase::Idle
                } else {
                    Phase::Reading { pending }
                };
            }
            CmMsg::Cmi(TranslatorEvent::ReadResult { req_id, value, .. }) => {
                let Phase::Reading { pending } = &mut self.phase else {
                    return;
                };
                let Some(project) = pending.remove(&req_id) else {
                    return;
                };
                let done = pending.is_empty();
                if value == Value::Null {
                    // Dangling: delete the project record and notify
                    // its owner (§6.2: "perhaps notifying the database
                    // owner of the deleted records").
                    self.stats.inc("refint.deleted");
                    let r = self.req();
                    let me = ctx.me();
                    if let Some(mailer) = self.mail_translator {
                        self.stats.inc("refint.notices_sent");
                        let notice = ItemId {
                            base: "notice".into(),
                            params: project.params.clone(),
                        };
                        let r2 = self.req();
                        ctx.send_local(
                            mailer,
                            CmMsg::Request {
                                req_id: r2,
                                reply_to: me,
                                rule: None,
                                trigger: None,
                                kind: RequestKind::Write(
                                    notice,
                                    Value::from(format!(
                                        "your project record {project} was deleted:                                          no salary record found"
                                    )),
                                ),
                            },
                            SimDuration::from_millis(1),
                        );
                    }
                    ctx.send_local(
                        self.projects_translator,
                        CmMsg::Request {
                            req_id: r,
                            reply_to: me,
                            rule: None,
                            trigger: None,
                            kind: RequestKind::Write(project, Value::Null),
                        },
                        SimDuration::from_millis(1),
                    );
                }
                if done {
                    self.phase = Phase::Idle;
                }
            }
            CmMsg::Cmi(TranslatorEvent::WriteDone { .. }) => {}
            other => panic!("refint agent: unexpected message {other:?}"),
        }
    }
}

const RID_PROJECTS: &str = r#"
ris = relational
service = 100ms
[interface]
WR(project(i), b) -> W(project(i), b) within 1s
RR(project(i)) when project(i) = b -> R(project(i), b) within 1s
[command write project]
update projects set proj = $value where empid = $p0
[command insert project]
insert into projects values ($p0, $value)
[command read project]
select proj from projects where empid = $p0
[command delete project]
delete from projects where empid = $p0
[map project]
table = projects
key = empid
col = proj
"#;

const RID_MAIL: &str = r#"
ris = email
service = 50ms
[interface]
WR(notice(i), b) -> W(notice(i), b) within 1s
[map notice]
subject = project record deleted
"#;

const RID_SALARIES: &str = r#"
ris = relational
service = 100ms
[interface]
RR(salary(i)) when salary(i) = b -> R(salary(i), b) within 1s
[command read salary]
select amount from salaries where empid = $p0
[map salary]
table = salaries
key = empid
col = amount
"#;

/// A built referential-integrity deployment.
pub struct RefintScenario {
    /// Underlying toolkit scenario ("P" = projects site, "S" = salaries
    /// site).
    pub scenario: Scenario,
    /// Repair agent.
    pub agent: ActorId,
    /// Counters.
    pub stats: RefintStatsHandle,
    /// The repair period (the guarantee window W).
    pub window: SimDuration,
}

/// Build the deployment. `window` is the repair period (the paper's 24
/// hours; tests shrink it). Repairs stop after `stop_at`.
#[must_use]
pub fn build(seed: u64, window: SimDuration, stop_at: SimTime) -> RefintScenario {
    let mut projects = hcm_ris::relational::Database::new();
    projects
        .create_table("projects", &["empid", "proj"])
        .unwrap();
    let mut salaries = hcm_ris::relational::Database::new();
    salaries
        .create_table("salaries", &["empid", "amount"])
        .unwrap();

    let mut scenario = ScenarioBuilder::new(seed)
        .site("P", RawStore::Relational(projects), RID_PROJECTS)
        .unwrap()
        .site("S", RawStore::Relational(salaries), RID_SALARIES)
        .unwrap()
        .site(
            "M",
            RawStore::Email(hcm_ris::email::MailSystem::new()),
            RID_MAIL,
        )
        .unwrap()
        .strategy("[locate]\nproject = P\nsalary = S\nnotice = M\n")
        // The repair agent drives all three translators with short
        // local sends, so the sites must share a shard in parallel
        // runs.
        .co_locate(&["P", "S", "M"])
        .build()
        .unwrap();

    let stats = RefintStatsHandle::new(scenario.obs.metrics.clone());
    let pt = scenario.site("P").translator;
    let st = scenario.site("S").translator;
    let mt = scenario.site("M").translator;
    let agent = scenario.add_actor_for(
        "P",
        Box::new(RefintAgent {
            projects_translator: pt,
            salaries_translator: st,
            mail_translator: Some(mt),
            period: window,
            stop_at,
            next_req: 0,
            phase: Phase::Idle,
            stats: stats.clone(),
        }),
    );
    RefintScenario {
        scenario,
        agent,
        stats,
        window,
    }
}

impl RefintScenario {
    /// Application adds a project record for employee `id` at `t`.
    pub fn add_project(&mut self, t: SimTime, id: &str, proj: &str) {
        self.scenario.inject(
            t,
            "P",
            hcm_toolkit::SpontaneousOp::Sql(format!(
                "insert into projects values ('{id}', '{proj}')"
            )),
        );
    }

    /// Application adds a salary record for employee `id` at `t`.
    pub fn add_salary(&mut self, t: SimTime, id: &str, amount: i64) {
        self.scenario.inject(
            t,
            "S",
            hcm_toolkit::SpontaneousOp::Sql(format!(
                "insert into salaries values ('{id}', {amount})"
            )),
        );
    }

    /// The checkable guarantee for this deployment's window (with a
    /// grace factor for repair processing time).
    #[must_use]
    pub fn guarantee(&self) -> hcm_rulelang::Guarantee {
        // Window plus one repair period of grace: a record created just
        // after a repair waits almost a full period for the next one.
        let w = self.window.as_millis() * 2;
        hcm_rulelang::parse_guarantee(
            "refint_window",
            &format!(
                "(exists(project(i))) @@ [t, t + {w}ms] => exists(salary(i)) @? [t, t + {w}ms]"
            ),
        )
        .expect("valid guarantee")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_checker::guarantee::check_guarantee;

    /// 1-hour window so tests stay small (the paper's 24 h is just a
    /// larger constant).
    const W: SimDuration = SimDuration::from_secs(3600);

    #[test]
    fn dangling_project_deleted_at_end_of_day() {
        let mut r = build(1, W, SimTime::from_secs(4 * 3600));
        r.add_project(SimTime::from_secs(600), "e1", "apollo");
        // No salary for e1.
        r.scenario.run_to_quiescence();
        assert_eq!(r.stats.borrow().deleted, 1);
        let trace = r.scenario.trace();
        let p = ItemId::with("project", [Value::from("e1")]);
        assert_eq!(trace.value_at(&p, trace.end_time()), Some(Value::Null));
        // Guarantee holds: the antecedent (project persists a full
        // window) is discharged by the deletion.
        let g = r.guarantee();
        let rep = check_guarantee(&trace, &g, None);
        assert!(rep.holds, "{:#?}", rep.violations);
    }

    #[test]
    fn project_with_salary_survives() {
        let mut r = build(2, W, SimTime::from_secs(4 * 3600));
        r.add_salary(SimTime::from_secs(100), "e2", 80_000);
        r.add_project(SimTime::from_secs(600), "e2", "gemini");
        r.scenario.run_to_quiescence();
        assert_eq!(r.stats.borrow().deleted, 0);
        let trace = r.scenario.trace();
        let p = ItemId::with("project", [Value::from("e2")]);
        assert_eq!(
            trace.value_at(&p, trace.end_time()),
            Some(Value::from("gemini"))
        );
        let rep = check_guarantee(&trace, &r.guarantee(), None);
        assert!(rep.holds, "{:#?}", rep.violations);
    }

    #[test]
    fn late_salary_rescues_project_in_next_cycle() {
        let mut r = build(3, W, SimTime::from_secs(4 * 3600));
        // Project at 10 min, salary at 50 min — before the 60-min
        // repair: survives.
        r.add_project(SimTime::from_secs(600), "e3", "x");
        r.add_salary(SimTime::from_secs(3000), "e3", 1);
        r.scenario.run_to_quiescence();
        assert_eq!(r.stats.borrow().deleted, 0);
    }

    #[test]
    fn without_repair_guarantee_fails() {
        // Same workload, but the repair agent never ticks (stop_at 0):
        // the dangling project persists past the window and the
        // guarantee is violated — this is the "currently, constraints
        // are simply not monitored" baseline of §1.
        let mut r = build(4, W, SimTime::ZERO);
        r.add_project(SimTime::from_secs(600), "e4", "zombie");
        // Pad the horizon well past the (doubled) window.
        r.add_salary(SimTime::from_secs(9000), "other", 1);
        r.add_salary(SimTime::from_secs(4 * 3600), "other2", 1);
        r.scenario.run_to_quiescence();
        let trace = r.scenario.trace();
        let rep = check_guarantee(&trace, &r.guarantee(), None);
        assert!(
            !rep.holds,
            "dangling project must violate the window guarantee"
        );
    }

    #[test]
    fn multiple_cycles_count() {
        let mut r = build(5, W, SimTime::from_secs(3 * 3600 + 10));
        r.add_project(SimTime::from_secs(100), "a", "p1");
        r.add_project(SimTime::from_secs(4000), "b", "p2");
        r.scenario.run_to_quiescence();
        let s = r.stats.borrow();
        assert_eq!(s.cycles, 3);
        assert_eq!(s.deleted, 2);
        assert!(s.examined >= 2);
    }
}
