//! Monitoring without enforcement (§6.3).
//!
//! Copy constraint `X = Y` where *both* databases offer only notify
//! interfaces — the CM cannot write either item, so "the best the CM
//! can do is to monitor the constraint". The CM maintains auxiliary
//! data `Flag` and `Tb` at the application's site and offers
//!
//! ```text
//! (Flag = true and Tb = s) @ t  ⇒  (X = Y) @@ [s, t − κ]
//! ```
//!
//! where κ covers the notification bounds. The deployment also
//! reproduces Figure 1's Site 3: one [`MonitorAgent`] acts as the
//! CM-Shell for *two* databases' translators (here deliberately
//! heterogeneous — `X` lives in a key-value store, `Y` in a relational
//! database).

use hcm_core::{
    EventDesc, ItemId, RuleRegistry, Shared, SimDuration, SimTime, SiteId, TraceRecorder, Value,
};
use hcm_obs::Scope;
use hcm_simkit::{Actor, ActorId, Ctx, RunOutcome, Sim};
use hcm_store::{LogRecord, MemStore};
use hcm_toolkit::backends::{build_backend, RawStore};
use hcm_toolkit::msg::{CmMsg, SpontaneousOp, TranslatorEvent};
use hcm_toolkit::rid::CmRid;
use hcm_toolkit::translator::{TranslatorActor, TranslatorStatsHandle};
use hcm_toolkit::{StatePolicy, StoreBridge};

/// What a lossy crash does to the monitor agent's volatile state —
/// the protocols-level mirror of [`hcm_toolkit::Durability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorMemory {
    /// Historical behaviour: state silently survives crashes.
    #[default]
    Keep,
    /// A lossy crash wipes `Cx`/`Cy`/`Flag`; nothing comes back.
    Lose,
    /// State is write-ahead-logged and recovered on restart (§5).
    Durable,
}

/// The application-site shell that serves both databases and maintains
/// the auxiliary items.
pub struct MonitorAgent {
    site: SiteId,
    item_x: ItemId,
    item_y: ItemId,
    cx: Value,
    cy: Value,
    flag: bool,
    recorder: TraceRecorder,
    policy: StatePolicy,
    crashed_lossy: bool,
    /// Count of Flag transitions (experiment metric).
    pub transitions: Shared<u64>,
}

impl MonitorAgent {
    fn aux(&self, name: &str) -> ItemId {
        ItemId::plain(name)
    }

    fn set_aux(&self, now: SimTime, name: &str, value: Value, old: Value) {
        self.recorder.record(
            now,
            self.site,
            EventDesc::W {
                item: self.aux(name),
                value,
            },
            Some(old),
            None,
            None,
        );
    }

    fn reevaluate(&mut self, now: SimTime) {
        let eq = self.cx == self.cy;
        if eq && !self.flag {
            self.flag = true;
            *self.transitions.borrow_mut() += 1;
            self.set_aux(now, "Flag", Value::Bool(true), Value::Bool(false));
            // Tb records *when the agent established* equality; the
            // guarantee's κ absorbs the notification lag.
            self.set_aux(now, "Tb", Value::Int(now.as_millis() as i64), Value::Null);
            self.log_durable(&LogRecord::PrivateWrite {
                at: now,
                item: ItemId::plain("Flag"),
                value: Value::Bool(true),
            });
        } else if !eq && self.flag {
            self.flag = false;
            *self.transitions.borrow_mut() += 1;
            self.set_aux(now, "Flag", Value::Bool(false), Value::Bool(true));
            self.log_durable(&LogRecord::PrivateWrite {
                at: now,
                item: ItemId::plain("Flag"),
                value: Value::Bool(false),
            });
        }
    }

    /// Append one record to the WAL when the agent is durable. The
    /// monitor's whole state fits in `PrivateWrite` records, so it
    /// needs no checkpoints — cadence-due signals are ignored.
    fn log_durable(&mut self, rec: &LogRecord) {
        if let Some(bridge) = self.policy.bridge() {
            let _ = bridge.log(rec);
        }
    }
}

impl Actor<CmMsg> for MonitorAgent {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, CmMsg>) {
        self.recorder
            .set_initial(self.aux("Flag"), Value::Bool(self.flag));
        self.recorder.set_initial(self.aux("Tb"), Value::Int(0));
        // Seed the log with the initial state so recovery after a
        // crash that precedes any notification still lands on the
        // right values, not on an empty mirror.
        for (item, value) in [
            (self.item_x.clone(), self.cx.clone()),
            (self.item_y.clone(), self.cy.clone()),
            (ItemId::plain("Flag"), Value::Bool(self.flag)),
        ] {
            self.log_durable(&LogRecord::PrivateWrite {
                at: SimTime::ZERO,
                item,
                value,
            });
        }
    }

    fn on_message(&mut self, msg: CmMsg, ctx: &mut Ctx<'_, CmMsg>) {
        match msg {
            CmMsg::Cmi(TranslatorEvent::Notify {
                item,
                value,
                rule,
                trigger,
            }) => {
                // Record the N event (this agent *is* the CM-Shell for
                // both sites).
                self.recorder.record(
                    ctx.now(),
                    self.site,
                    EventDesc::N {
                        item: item.clone(),
                        value: value.clone(),
                    },
                    None,
                    Some(rule),
                    Some(trigger),
                );
                if item == self.item_x {
                    self.cx = value.clone();
                    self.log_durable(&LogRecord::PrivateWrite {
                        at: ctx.now(),
                        item,
                        value,
                    });
                } else if item == self.item_y {
                    self.cy = value.clone();
                    self.log_durable(&LogRecord::PrivateWrite {
                        at: ctx.now(),
                        item,
                        value,
                    });
                }
                self.reevaluate(ctx.now());
            }
            CmMsg::Cmi(_) => {}
            other => panic!("monitor agent: unexpected message {other:?}"),
        }
    }

    fn on_crash(&mut self, lossy: bool, _ctx: &mut Ctx<'_, CmMsg>) {
        if !(lossy && self.policy.wipes_on_lossy_crash()) {
            return;
        }
        // The lossy crash destroys the agent's volatile mirror of both
        // databases and its Flag. Note the *trace* keeps whatever aux
        // values were last recorded — exactly why a storeless restart
        // is dangerous: the world still reads `Flag = true`.
        self.crashed_lossy = true;
        self.cx = Value::Null;
        self.cy = Value::Null;
        self.flag = false;
    }

    fn on_recover(&mut self, _ctx: &mut Ctx<'_, CmMsg>) {
        if !std::mem::take(&mut self.crashed_lossy) {
            return;
        }
        let Some(bridge) = self.policy.bridge() else {
            return;
        };
        let (_ckpt, records) = bridge.recover();
        for rec in records {
            if let LogRecord::PrivateWrite { item, value, .. } = rec {
                if item == self.item_x {
                    self.cx = value;
                } else if item == self.item_y {
                    self.cy = value;
                } else if item == ItemId::plain("Flag") {
                    self.flag = value == Value::Bool(true);
                }
            }
        }
    }
}

const RID_X_KV: &str = r#"
ris = kv
service = 100ms
[interface]
Ws(X, b) -> N(X, b) within 2s
[map X]
key = x
"#;

const RID_Y_REL: &str = r#"
ris = relational
service = 100ms
[interface]
Ws(Y, b) -> N(Y, b) within 2s
[command read Y]
select value from items where name = 'Y'
[map Y]
table = items
key = name
col = value
row = Y
"#;

/// A built monitor deployment.
pub struct MonitorScenario {
    /// The simulation.
    pub sim: Sim<CmMsg>,
    /// Trace recorder (check the guarantee on its snapshot).
    pub recorder: TraceRecorder,
    /// Translator for the kv store holding `X`.
    pub translator_x: ActorId,
    /// Translator for the relational store holding `Y`.
    pub translator_y: ActorId,
    /// The shared shell.
    pub agent: ActorId,
    /// Flag-transition count.
    pub transitions: Shared<u64>,
    /// κ implied by the interfaces: the max notification bound plus
    /// service/processing slack.
    pub kappa: SimDuration,
}

/// Build the monitor deployment with both items initially `v0`.
#[must_use]
pub fn build(seed: u64, v0: i64) -> MonitorScenario {
    build_with_memory(seed, v0, MonitorMemory::Keep)
}

/// Build the monitor deployment with an explicit crash-memory regime
/// for the agent (§5: "crashes can be mapped to metric failures if the
/// database … can remember").
#[must_use]
pub fn build_with_memory(seed: u64, v0: i64, memory: MonitorMemory) -> MonitorScenario {
    let mut sim = Sim::new(seed);
    let recorder = TraceRecorder::new();
    let mut registry = RuleRegistry::new();

    let mut kv = hcm_ris::kvstore::KvStore::new();
    kv.put("x", Value::Int(v0));
    let mut db = hcm_ris::relational::Database::new();
    db.create_table("items", &["name", "value"]).unwrap();
    db.execute(&format!("INSERT INTO items VALUES ('Y', {v0})"))
        .unwrap();

    let rid_x = CmRid::parse(RID_X_KV).expect("valid RID");
    let rid_y = CmRid::parse(RID_Y_REL).expect("valid RID");
    let iface_x: Vec<_> = rid_x
        .interfaces
        .iter()
        .map(|s| registry.register(s.to_string()))
        .collect();
    let iface_y: Vec<_> = rid_y
        .interfaces
        .iter()
        .map(|s| registry.register(s.to_string()))
        .collect();

    // Actor layout: agent 0, translator_x 1, translator_y 2. The agent
    // is the CM-Shell of *both* sites (paper Fig. 1, Site 3).
    let agent_id = ActorId(0);
    let transitions = Shared::new(0);
    let policy = match memory {
        MonitorMemory::Keep => StatePolicy::Keep,
        MonitorMemory::Lose => StatePolicy::Lose,
        MonitorMemory::Durable => StatePolicy::Durable(StoreBridge::new(
            hcm_store::shared(MemStore::new()),
            sim.obs().metrics,
            Scope::Actor(agent_id.0),
            u64::MAX, // PrivateWrite records carry full state: no checkpoints
        )),
    };
    let agent = MonitorAgent {
        site: SiteId::new(2), // the application's site
        item_x: ItemId::plain("X"),
        item_y: ItemId::plain("Y"),
        cx: Value::Int(v0),
        cy: Value::Int(v0),
        flag: true,
        recorder: recorder.clone(),
        policy,
        crashed_lossy: false,
        transitions: transitions.clone(),
    };
    assert_eq!(sim.add_actor(Box::new(agent)), agent_id);

    let never = SimTime::from_millis(u64::MAX);
    let tx = TranslatorActor::new(
        SiteId::new(0),
        agent_id,
        build_backend(RawStore::Kv(kv), &rid_x),
        &rid_x,
        iface_x,
        Vec::new(),
        never,
        recorder.clone(),
        TranslatorStatsHandle::new(sim.obs().metrics, SiteId::new(0)),
    );
    let ty = TranslatorActor::new(
        SiteId::new(1),
        agent_id,
        build_backend(RawStore::Relational(db), &rid_y),
        &rid_y,
        iface_y,
        Vec::new(),
        never,
        recorder.clone(),
        TranslatorStatsHandle::new(sim.obs().metrics, SiteId::new(1)),
    );
    let translator_x = sim.add_actor(Box::new(tx));
    let translator_y = sim.add_actor(Box::new(ty));

    MonitorScenario {
        sim,
        recorder,
        translator_x,
        translator_y,
        agent: agent_id,
        transitions,
        // 2s notify bound + 100ms service + margin.
        kappa: SimDuration::from_millis(2500),
    }
}

impl MonitorScenario {
    /// Application writes `X ← v` at `t` (kv-native).
    pub fn write_x(&mut self, t: SimTime, v: i64) {
        self.sim.inject_at(
            t,
            self.translator_x,
            CmMsg::Spontaneous(SpontaneousOp::KvPut {
                key: "x".into(),
                value: Value::Int(v),
            }),
        );
    }

    /// Application writes `Y ← v` at `t` (SQL-native).
    pub fn write_y(&mut self, t: SimTime, v: i64) {
        self.sim.inject_at(
            t,
            self.translator_y,
            CmMsg::Spontaneous(SpontaneousOp::Sql(format!(
                "update items set value = {v} where name = 'Y'"
            ))),
        );
    }

    /// Crash the monitor agent at `t`; with `lossy`, in-flight
    /// notifications are dropped and (under [`MonitorMemory::Lose`] or
    /// [`MonitorMemory::Durable`]) its volatile state is wiped.
    pub fn crash_agent(&mut self, t: SimTime, lossy: bool) {
        self.sim.crash_at(self.agent, t, lossy);
    }

    /// Recover the crashed monitor agent at `t`.
    pub fn recover_agent(&mut self, t: SimTime) {
        self.sim.recover_at(self.agent, t);
    }

    /// Run to quiescence.
    pub fn run(&mut self) -> RunOutcome {
        self.sim.run(None)
    }

    /// The §6.3 guarantee with this deployment's κ.
    #[must_use]
    pub fn guarantee(&self) -> hcm_rulelang::Guarantee {
        hcm_rulelang::parse_guarantee(
            "monitor",
            &format!(
                "(Flag = true and Tb = s) @ t => (X = Y) @@ [s, t - {}ms]",
                self.kappa.as_millis()
            ),
        )
        .expect("valid guarantee")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcm_checker::guarantee::check_guarantee;

    #[test]
    fn flag_clears_on_divergence_and_resets_on_convergence() {
        let mut m = build(1, 10);
        m.write_x(SimTime::from_secs(10), 20); // diverge
        m.write_y(SimTime::from_secs(40), 20); // converge
        assert_eq!(m.run(), RunOutcome::Quiescent);
        assert_eq!(*m.transitions.borrow(), 2);
        let trace = m.recorder.snapshot();
        let flag = trace.value_at(&ItemId::plain("Flag"), trace.end_time());
        assert_eq!(flag, Some(Value::Bool(true)));
        // Tb was refreshed at the reconvergence (~40s + notify lag).
        let tb = trace
            .value_at(&ItemId::plain("Tb"), trace.end_time())
            .and_then(|v| v.as_int())
            .unwrap();
        assert!(tb >= 40_000, "Tb = {tb}");
    }

    #[test]
    fn guarantee_holds_through_workload() {
        let mut m = build(2, 10);
        m.write_x(SimTime::from_secs(10), 20);
        m.write_y(SimTime::from_secs(40), 20);
        m.write_y(SimTime::from_secs(100), 30);
        m.write_x(SimTime::from_secs(130), 30);
        m.run();
        let trace = m.recorder.snapshot();
        let g = m.guarantee();
        let r = check_guarantee(&trace, &g, None);
        assert!(r.holds, "{:#?}", r.violations);
        assert!(r.instantiations > 0);
    }

    #[test]
    fn stale_flag_would_violate_guarantee() {
        // Adversarial check of the *checker*: a monitor that never
        // clears Flag produces a violating trace. We simulate that by
        // checking a doctored guarantee window on a divergent trace:
        // take the real trace but evaluate with κ = 0 just after a
        // divergence, where the honest agent's Flag is still briefly
        // true while X ≠ Y (notification in flight).
        let mut m = build(3, 10);
        m.write_x(SimTime::from_secs(10), 20);
        m.write_y(SimTime::from_secs(40), 20);
        m.run();
        let trace = m.recorder.snapshot();
        let g0 = hcm_rulelang::parse_guarantee(
            "monitor_k0",
            "(Flag = true and Tb = s) @ t => (X = Y) @@ [s, t]",
        )
        .unwrap();
        let r = check_guarantee(&trace, &g0, None);
        assert!(
            !r.holds,
            "κ = 0 must fail: Flag lags divergence by the notification delay"
        );
    }

    #[test]
    fn durable_agent_recovers_its_mirror_and_keeps_monitoring() {
        let mut m = build_with_memory(7, 10, MonitorMemory::Durable);
        m.write_x(SimTime::from_secs(10), 20); // diverge: Flag clears
        m.crash_agent(SimTime::from_secs(30), true);
        m.recover_agent(SimTime::from_secs(35));
        m.write_y(SimTime::from_secs(40), 20); // converge again
        m.run();
        // The recovered agent remembered cx = 20 and flag = false, so
        // the Y notification re-establishes equality: two transitions,
        // Flag true, guarantee intact.
        assert_eq!(*m.transitions.borrow(), 2);
        let trace = m.recorder.snapshot();
        assert_eq!(
            trace.value_at(&ItemId::plain("Flag"), trace.end_time()),
            Some(Value::Bool(true))
        );
        let r = check_guarantee(&trace, &m.guarantee(), None);
        assert!(r.holds, "{:#?}", r.violations);
        let metrics = m.sim.obs().metrics;
        assert!(metrics.counter(Scope::Actor(0), "store.appends") > 0);
        assert_eq!(metrics.counter(Scope::Actor(0), "store.recoveries"), 1);
    }

    #[test]
    fn storeless_agent_goes_blind_after_crash() {
        // Same schedule, no memory: the wiped agent recovers with a
        // Null mirror. The Y notification alone cannot re-establish
        // equality (cx is Null), so the monitor stays dark — Flag
        // never returns to true even though X = Y in the world.
        let mut m = build_with_memory(7, 10, MonitorMemory::Lose);
        m.write_x(SimTime::from_secs(10), 20);
        m.crash_agent(SimTime::from_secs(30), true);
        m.recover_agent(SimTime::from_secs(35));
        m.write_y(SimTime::from_secs(40), 20);
        m.run();
        assert_eq!(*m.transitions.borrow(), 1, "only the divergence");
        let trace = m.recorder.snapshot();
        assert_eq!(
            trace.value_at(&ItemId::plain("Flag"), trace.end_time()),
            Some(Value::Bool(false)),
            "the monitor misses the reconvergence for good"
        );
    }

    #[test]
    fn heterogeneous_stores_really_used() {
        let mut m = build(4, 5);
        m.write_x(SimTime::from_secs(1), 6);
        m.run();
        let trace = m.recorder.snapshot();
        // The Ws from the kv store and its N at the shared shell.
        let tags: Vec<&str> = trace.events().iter().map(|e| e.desc.tag()).collect();
        assert!(tags.contains(&"Ws"));
        assert!(tags.contains(&"N"));
        assert!(tags.contains(&"W"), "aux updates recorded");
    }
}
