//! # hcm-protocols — constraint-management strategies beyond single rules
//!
//! The paper's §6 scenarios exercise the framework on strategies whose
//! control logic goes past what a single rule expresses. Each module
//! here implements one of them on top of the toolkit (translators, CMI,
//! trace recording), plus the strict-consistency baseline the paper
//! positions itself against:
//!
//! * [`demarcation`] — the Demarcation Protocol (§6.1) for `X ≤ Y`
//!   with configurable limit-change (slack-grant) policies, built on
//!   the relational store's local CHECK constraints.
//! * [`tpc`] — a two-phase-commit global-transaction baseline: what
//!   the paper's loosely coupled systems *cannot* have, for
//!   quantitative comparison (latency, availability under failure).
//! * [`monitor`] — the §6.3 monitor-only scenario: two notify-only
//!   databases, auxiliary `Flag`/`Tb` data, and the
//!   `(Flag ∧ Tb = s)@t ⇒ (X = Y)@@[s, t−κ]` guarantee. Also
//!   demonstrates Fig. 1's "CM-Shell serving several sites".
//! * [`refint`] — the §6.2 referential-integrity scenario with
//!   end-of-day repair and a bounded violation window.
//! * [`periodic`] — the §6.4 banking scenario: end-of-day batch
//!   propagation and a periodic guarantee.

#![warn(missing_docs)]

pub mod demarcation;
pub mod monitor;
pub mod periodic;
pub mod refint;
pub mod tpc;
