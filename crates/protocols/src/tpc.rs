//! Two-phase-commit baseline — the facility loosely coupled systems
//! *lack*.
//!
//! The paper's premise is that "traditional approaches to constraint
//! management assume various facilities such as distributed
//! transactions, remote locking, and prepare-to-commit interfaces,
//! which are usually not supported" (§1). To quantify what the
//! weakened-consistency approach trades away and wins, this module
//! implements exactly that traditional facility over the same simulated
//! network: a coordinator runs each update to `X` or `Y` as a global
//! transaction — lock both sites, check `X ≤ Y` against the *global*
//! state, commit or abort, unlock.
//!
//! The E3 comparison measures, against the demarcation protocol:
//! per-update latency (2PC pays two round trips on every update,
//! demarcation is local in the common case), message counts, and
//! availability under site failure (2PC aborts/blocks; demarcation's
//! local updates keep flowing).

use hcm_core::{SimDuration, SimTime};
use hcm_obs::{Metrics, Scope};
use hcm_simkit::{Actor, ActorId, Ctx, RunOutcome, Sim};
use std::collections::VecDeque;

/// Messages of the 2PC world.
#[derive(Debug, Clone, PartialEq)]
pub enum TpcMsg {
    /// Application submits an update: add `delta` to participant
    /// `target`'s value (delta may be negative).
    Submit {
        /// Which participant's value changes.
        target: ActorId,
        /// Signed change.
        delta: i64,
    },
    /// Coordinator → participant: lock and report your value.
    Prepare {
        /// Transaction id.
        txn: u64,
    },
    /// Participant self-timer: service delay elapsed, send the vote.
    SendVote {
        /// Transaction id.
        txn: u64,
        /// Vote payload.
        ok: bool,
    },
    /// Participant → coordinator: locked (or not), current value.
    Vote {
        /// Transaction id.
        txn: u64,
        /// Which participant voted.
        from: ActorId,
        /// Participant's current value.
        value: i64,
        /// Whether the lock was acquired.
        ok: bool,
    },
    /// Coordinator → participant: apply `delta` (0 for the untouched
    /// site) and unlock.
    Commit {
        /// Transaction id.
        txn: u64,
        /// Signed change to apply.
        delta: i64,
    },
    /// Coordinator → participant: unlock without changes.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// Participant → coordinator: commit/abort acknowledged.
    Ack {
        /// Transaction id.
        txn: u64,
    },
    /// Coordinator self-timer: give up on a transaction whose
    /// participant stopped answering.
    Timeout {
        /// Transaction id.
        txn: u64,
    },
}

/// A 2PC participant: one value, one lock.
pub struct Participant {
    value: i64,
    locked_by: Option<u64>,
    coordinator: ActorId,
    /// Local processing delay before voting (the database's service
    /// time, mirroring the CM-Translator's).
    service: SimDuration,
}

impl Participant {
    /// A participant with an initial value.
    #[must_use]
    pub fn new(value: i64, coordinator: ActorId, service: SimDuration) -> Self {
        Participant {
            value,
            locked_by: None,
            coordinator,
            service,
        }
    }

    /// Current value (test inspection).
    #[must_use]
    pub fn value(&self) -> i64 {
        self.value
    }
}

impl Actor<TpcMsg> for Participant {
    fn on_message(&mut self, msg: TpcMsg, ctx: &mut Ctx<'_, TpcMsg>) {
        match msg {
            TpcMsg::Prepare { txn } => {
                let ok = match self.locked_by {
                    None => {
                        self.locked_by = Some(txn);
                        true
                    }
                    Some(holder) => holder == txn,
                };
                ctx.schedule_self(self.service, TpcMsg::SendVote { txn, ok });
            }
            TpcMsg::SendVote { txn, ok } => {
                let me = ctx.me();
                let value = self.value;
                ctx.send(
                    self.coordinator,
                    TpcMsg::Vote {
                        txn,
                        from: me,
                        value,
                        ok,
                    },
                );
            }
            TpcMsg::Commit { txn, delta } => {
                if self.locked_by == Some(txn) {
                    self.value += delta;
                    self.locked_by = None;
                }
                ctx.send(self.coordinator, TpcMsg::Ack { txn });
            }
            TpcMsg::Abort { txn } => {
                if self.locked_by == Some(txn) {
                    self.locked_by = None;
                }
                ctx.send(self.coordinator, TpcMsg::Ack { txn });
            }
            other => panic!("participant: unexpected {other:?}"),
        }
    }
}

/// Transaction outcome counters and latency series.
#[derive(Debug, Default, Clone)]
pub struct TpcStats {
    /// Updates submitted.
    pub submitted: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted: would have violated `X ≤ Y`.
    pub aborted_constraint: u64,
    /// Aborted: lock conflict or participant unreachable.
    pub aborted_unavailable: u64,
    /// Commit latencies (ms) in completion order.
    pub latencies_ms: Vec<u64>,
    /// Messages the coordinator sent.
    pub messages: u64,
}

/// Registry-backed view of the 2PC counters; [`TpcStats`] is the
/// snapshot it materializes. Commit latencies live in the registry's
/// `tpc.latency_ms` series so exporters see them too.
#[derive(Clone)]
pub struct TpcStatsHandle {
    metrics: Metrics,
    scope: Scope,
}

impl TpcStatsHandle {
    /// A handle recording under `tpc.*` at the global scope.
    #[must_use]
    pub fn new(metrics: Metrics) -> Self {
        TpcStatsHandle {
            metrics,
            scope: Scope::Global,
        }
    }

    fn inc(&self, name: &str) {
        self.metrics.inc(self.scope, name);
    }

    fn add(&self, name: &str, n: u64) {
        self.metrics.add(self.scope, name, n);
    }

    /// Materialize an owned snapshot (source-compatible with the former
    /// `RefCell` accessor).
    #[must_use]
    pub fn borrow(&self) -> TpcStats {
        TpcStats {
            submitted: self.metrics.counter(self.scope, "tpc.submitted"),
            committed: self.metrics.counter(self.scope, "tpc.committed"),
            aborted_constraint: self.metrics.counter(self.scope, "tpc.aborted_constraint"),
            aborted_unavailable: self.metrics.counter(self.scope, "tpc.aborted_unavailable"),
            latencies_ms: self
                .metrics
                .series(self.scope, "tpc.latency_ms")
                .into_iter()
                .map(|v| v as u64)
                .collect(),
            messages: self.metrics.counter(self.scope, "tpc.messages"),
        }
    }
}

struct Txn {
    target: ActorId,
    delta: i64,
    submitted: SimTime,
    votes: Vec<(ActorId, i64)>,
    state: TxnState,
}

#[derive(PartialEq)]
enum TxnState {
    Preparing,
    Resolving,
}

/// The coordinator serializes global transactions over X (participant
/// `px`) and Y (participant `py`), maintaining `X ≤ Y`.
pub struct Coordinator {
    px: ActorId,
    py: ActorId,
    txns: std::collections::BTreeMap<u64, Txn>,
    queue: VecDeque<(ActorId, i64, SimTime)>,
    active: Option<u64>,
    next_txn: u64,
    pending_acks: std::collections::BTreeMap<u64, u8>,
    timeout: SimDuration,
    stats: TpcStatsHandle,
}

impl Coordinator {
    /// A coordinator over the two participants.
    #[must_use]
    pub fn new(px: ActorId, py: ActorId, timeout: SimDuration, stats: TpcStatsHandle) -> Self {
        Coordinator {
            px,
            py,
            txns: std::collections::BTreeMap::new(),
            queue: VecDeque::new(),
            active: None,
            next_txn: 0,
            pending_acks: std::collections::BTreeMap::new(),
            timeout,
            stats,
        }
    }

    fn start_next(&mut self, ctx: &mut Ctx<'_, TpcMsg>) {
        if self.active.is_some() {
            return;
        }
        let Some((target, delta, submitted)) = self.queue.pop_front() else {
            return;
        };
        let txn = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(
            txn,
            Txn {
                target,
                delta,
                submitted,
                votes: Vec::new(),
                state: TxnState::Preparing,
            },
        );
        self.active = Some(txn);
        ctx.send(self.px, TpcMsg::Prepare { txn });
        ctx.send(self.py, TpcMsg::Prepare { txn });
        self.stats.add("tpc.messages", 2);
        ctx.schedule_self(self.timeout, TpcMsg::Timeout { txn });
    }

    /// Second phase: commit or abort, then wait for both acks.
    fn resolve(&mut self, txn: u64, commit: bool, ctx: &mut Ctx<'_, TpcMsg>) {
        let Some(t) = self.txns.get_mut(&txn) else {
            return;
        };
        if t.state != TxnState::Preparing {
            return;
        }
        t.state = TxnState::Resolving;
        self.pending_acks.insert(txn, 2);
        if commit {
            let (dx, dy) = if t.target == self.px {
                (t.delta, 0)
            } else {
                (0, t.delta)
            };
            let lat = ctx.now().saturating_since(t.submitted);
            ctx.send(self.px, TpcMsg::Commit { txn, delta: dx });
            ctx.send(self.py, TpcMsg::Commit { txn, delta: dy });
            self.stats.add("tpc.messages", 2);
            self.stats.inc("tpc.committed");
            self.stats.metrics.series_push(
                self.stats.scope,
                "tpc.latency_ms",
                lat.as_millis() as i64,
            );
        } else {
            ctx.send(self.px, TpcMsg::Abort { txn });
            ctx.send(self.py, TpcMsg::Abort { txn });
            self.stats.add("tpc.messages", 2);
        }
    }

    fn finish(&mut self, txn: u64, ctx: &mut Ctx<'_, TpcMsg>) {
        self.txns.remove(&txn);
        self.pending_acks.remove(&txn);
        if self.active == Some(txn) {
            self.active = None;
        }
        self.start_next(ctx);
    }
}

impl Actor<TpcMsg> for Coordinator {
    fn on_message(&mut self, msg: TpcMsg, ctx: &mut Ctx<'_, TpcMsg>) {
        match msg {
            TpcMsg::Submit { target, delta } => {
                self.stats.inc("tpc.submitted");
                self.queue.push_back((target, delta, ctx.now()));
                self.start_next(ctx);
            }
            TpcMsg::Vote {
                txn,
                from,
                value,
                ok,
            } => {
                let constraint_abort;
                let resolve_commit;
                {
                    let Some(t) = self.txns.get_mut(&txn) else {
                        return;
                    };
                    if t.state != TxnState::Preparing {
                        return;
                    }
                    if !ok {
                        self.stats.inc("tpc.aborted_unavailable");
                        self.resolve(txn, false, ctx);
                        return;
                    }
                    t.votes.push((from, value));
                    if t.votes.len() < 2 {
                        return;
                    }
                    let x = t
                        .votes
                        .iter()
                        .find(|(a, _)| *a == self.px)
                        .map(|(_, v)| *v)
                        .expect("px voted");
                    let y = t
                        .votes
                        .iter()
                        .find(|(a, _)| *a == self.py)
                        .map(|(_, v)| *v)
                        .expect("py voted");
                    let (nx, ny) = if t.target == self.px {
                        (x + t.delta, y)
                    } else {
                        (x, y + t.delta)
                    };
                    resolve_commit = nx <= ny;
                    constraint_abort = !resolve_commit;
                }
                if constraint_abort {
                    self.stats.inc("tpc.aborted_constraint");
                }
                self.resolve(txn, resolve_commit, ctx);
            }
            TpcMsg::Ack { txn } => {
                let done = match self.pending_acks.get_mut(&txn) {
                    Some(n) => {
                        *n -= 1;
                        *n == 0
                    }
                    None => false,
                };
                if done {
                    self.finish(txn, ctx);
                }
            }
            TpcMsg::Timeout { txn } => {
                let still_preparing = self
                    .txns
                    .get(&txn)
                    .is_some_and(|t| t.state == TxnState::Preparing);
                if still_preparing {
                    self.stats.inc("tpc.aborted_unavailable");
                    // Participants may be dead: abort best-effort and
                    // move on without waiting for acks.
                    if let Some(t) = self.txns.get_mut(&txn) {
                        t.state = TxnState::Resolving;
                    }
                    ctx.send(self.px, TpcMsg::Abort { txn });
                    ctx.send(self.py, TpcMsg::Abort { txn });
                    self.stats.add("tpc.messages", 2);
                    self.finish(txn, ctx);
                }
            }
            other => panic!("coordinator: unexpected {other:?}"),
        }
    }
}

/// A built 2PC scenario.
pub struct TpcScenario {
    /// The simulation.
    pub sim: Sim<TpcMsg>,
    /// Coordinator actor.
    pub coordinator: ActorId,
    /// X participant.
    pub px: ActorId,
    /// Y participant.
    pub py: ActorId,
    /// Counters.
    pub stats: TpcStatsHandle,
}

/// Build a 2PC scenario maintaining `X ≤ Y` with the given initial
/// values and seed.
#[must_use]
pub fn build(seed: u64, x0: i64, y0: i64) -> TpcScenario {
    let mut sim = Sim::new(seed);
    let stats = TpcStatsHandle::new(sim.obs().metrics);
    // Ids: participants 0,1; coordinator 2.
    let px_id = ActorId(0);
    let py_id = ActorId(1);
    let coord_id = ActorId(2);
    let service = SimDuration::from_millis(50);
    assert_eq!(
        sim.add_actor(Box::new(Participant::new(x0, coord_id, service))),
        px_id
    );
    assert_eq!(
        sim.add_actor(Box::new(Participant::new(y0, coord_id, service))),
        py_id
    );
    let c = Coordinator::new(px_id, py_id, SimDuration::from_secs(5), stats.clone());
    assert_eq!(sim.add_actor(Box::new(c)), coord_id);
    TpcScenario {
        sim,
        coordinator: coord_id,
        px: px_id,
        py: py_id,
        stats,
    }
}

impl TpcScenario {
    /// Submit an update at time `t`: to X when `lower_side`, else Y.
    /// `delta` is the increase of X / decrease of Y (mirrors the
    /// demarcation driver so workloads are comparable).
    pub fn try_update(&mut self, t: SimTime, lower_side: bool, delta: i64) {
        let (target, signed) = if lower_side {
            (self.px, delta)
        } else {
            (self.py, -delta)
        };
        self.sim.inject_at(
            t,
            self.coordinator,
            TpcMsg::Submit {
                target,
                delta: signed,
            },
        );
    }

    /// Run to quiescence.
    pub fn run(&mut self) -> RunOutcome {
        self.sim.run(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_valid_updates_and_aborts_violations() {
        let mut s = build(1, 0, 100);
        s.try_update(SimTime::from_secs(1), true, 50); // X: 0→50 ok
        s.try_update(SimTime::from_secs(10), true, 60); // X: 50→110 > Y=100: abort
        s.try_update(SimTime::from_secs(20), false, 30); // Y: 100→70 ok (X=50)
        s.try_update(SimTime::from_secs(30), false, 30); // Y: 70→40 < X=50: abort
        assert_eq!(s.run(), RunOutcome::Quiescent);
        let st = s.stats.borrow();
        assert_eq!(st.submitted, 4);
        assert_eq!(st.committed, 2);
        assert_eq!(st.aborted_constraint, 2);
        assert_eq!(st.aborted_unavailable, 0);
        assert_eq!(st.latencies_ms.len(), 2);
        // Every committed update pays prepare + vote round trips plus
        // participant service time.
        assert!(
            st.latencies_ms.iter().all(|&ms| ms >= 50),
            "{:?}",
            st.latencies_ms
        );
    }

    #[test]
    fn serializes_concurrent_submissions() {
        let mut s = build(2, 0, 1000);
        for i in 0..10 {
            s.try_update(SimTime::from_millis(1000 + i), true, 10);
        }
        assert_eq!(s.run(), RunOutcome::Quiescent);
        let st = s.stats.borrow();
        assert_eq!(st.committed, 10);
        assert_eq!(st.aborted_unavailable, 0);
    }

    #[test]
    fn participant_crash_blocks_then_aborts() {
        let mut s = build(3, 0, 100);
        s.sim.crash_at(s.py, SimTime::from_millis(500), true);
        s.try_update(SimTime::from_secs(1), true, 10);
        s.try_update(SimTime::from_secs(2), true, 10);
        assert_eq!(s.run(), RunOutcome::Quiescent);
        let st = s.stats.borrow();
        assert_eq!(st.committed, 0, "no commits while a participant is down");
        assert_eq!(st.aborted_unavailable, 2);
    }

    #[test]
    fn every_update_costs_messages_even_when_local_state_suffices() {
        // The contrast with demarcation: an update far inside the
        // constraint still pays global coordination.
        let mut s = build(4, 0, 1_000_000);
        s.try_update(SimTime::from_secs(1), true, 1);
        s.run();
        let st = s.stats.borrow();
        assert!(st.messages >= 4, "prepare+commit to both participants");
    }
}
