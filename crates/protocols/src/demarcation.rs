//! The Demarcation Protocol (§6.1, after Barbará & Garcia-Molina).
//!
//! Constraint: `X ≤ Y`, `X` at site A, `Y` at site B. Each site keeps a
//! local *limit* next to its value — `X ≤ Lx` enforced by A's database
//! (a relational CHECK constraint: the paper's "local constraint
//! managers"), `Y ≥ Ly` by B's — and the protocol maintains the global
//! invariant `Lx ≤ Ly`, so `X ≤ Lx ≤ Ly ≤ Y` **always**, with no
//! distributed transactions.
//!
//! Within its limit a site updates freely. To go beyond, it asks the
//! peer for slack: the peer *moves its own limit first* (which only
//! tightens its side), then grants; the requester moves its limit and
//! retries. How much the peer gives away is the *policy* — the paper
//! notes different \[BGM92\] policies "can then be compared using this
//! guarantee"; [`GrantPolicy`] implements three, and the E3 experiment
//! compares their denial rates and messaging cost.
//!
//! Agents are toolkit citizens: values and limits live in the
//! relational stores, every write flows through the CM-Translator (so
//! CHECK rejections surface as `WriteDone{ok:false}` / `WriteRejected`
//! events), and limit-change traffic is recorded as custom events
//! `LimitReq` / `LimitGrant` / `LimitDeny`.

use hcm_core::{EventDesc, ItemId, SimTime, SiteId, TraceRecorder, Value};
use hcm_obs::{Metrics, Scope};
use hcm_simkit::{Actor, ActorId, Ctx, RunOutcome};
use hcm_toolkit::backends::RawStore;
use hcm_toolkit::msg::{CmMsg, RequestKind, TranslatorEvent};
use hcm_toolkit::{DispatchMode, Scenario, ScenarioBuilder};

/// How much slack the peer gives away when asked for `need`, given
/// `avail` (its distance from value to limit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantPolicy {
    /// Exactly what was asked (when available): conservative, keeps
    /// local freedom, maximizes round trips.
    Requested,
    /// Everything available: generous, minimizes repeat requests but
    /// starves the granter's own future updates.
    All,
    /// Half of what is available (at least the need when possible).
    HalfAvailable,
}

impl GrantPolicy {
    /// The granted amount (0 = denial).
    #[must_use]
    pub fn grant(self, need: i64, avail: i64) -> i64 {
        if avail <= 0 || need <= 0 {
            return 0;
        }
        match self {
            GrantPolicy::Requested => {
                if avail >= need {
                    need
                } else {
                    0
                }
            }
            GrantPolicy::All => avail,
            GrantPolicy::HalfAvailable => {
                let half = avail / 2;
                if half >= need {
                    half
                } else if avail >= need {
                    need
                } else {
                    0
                }
            }
        }
    }
}

/// Which side of `X ≤ Y` an agent manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The lower side `X`: increases consume slack.
    Lower,
    /// The upper side `Y`: decreases consume slack.
    Upper,
}

/// Protocol counters (shared with the experiment driver).
#[derive(Debug, Default, Clone)]
pub struct DemarcStats {
    /// Application update attempts.
    pub attempts: u64,
    /// Attempts satisfied locally (within the limit).
    pub local_ok: u64,
    /// Attempts satisfied after a granted limit change.
    pub granted: u64,
    /// Attempts denied (peer had no slack).
    pub denied: u64,
    /// Limit-change request messages sent.
    pub limit_requests: u64,
    /// Total slack received via grants.
    pub slack_received: i64,
}

/// Registry-backed view of one side's protocol counters. `borrow()`
/// materializes an owned [`DemarcStats`] snapshot.
#[derive(Debug, Clone)]
pub struct DemarcStatsHandle {
    metrics: Metrics,
    scope: Scope,
}

impl DemarcStatsHandle {
    /// View over `site`'s demarcation metrics in `metrics`.
    #[must_use]
    pub fn new(metrics: Metrics, site: SiteId) -> Self {
        DemarcStatsHandle {
            metrics,
            scope: Scope::Site(site.index()),
        }
    }

    fn inc(&self, name: &str) {
        self.metrics.inc(self.scope, name);
    }

    /// Snapshot the counters as an owned [`DemarcStats`].
    #[must_use]
    pub fn borrow(&self) -> DemarcStats {
        let get = |n: &str| self.metrics.counter(self.scope, n);
        DemarcStats {
            attempts: get("demarc.attempts"),
            local_ok: get("demarc.local_ok"),
            granted: get("demarc.granted"),
            denied: get("demarc.denied"),
            limit_requests: get("demarc.limit_requests"),
            slack_received: self
                .metrics
                .gauge(self.scope, "demarc.slack_received")
                .unwrap_or(0),
        }
    }
}

/// One site's protocol agent. It acts as the CM-Shell of its site for
/// this constraint: the translator's events are addressed to it.
pub struct DemarcAgent {
    role: Role,
    translator: ActorId,
    peer: Option<ActorId>,
    /// Cached local state; authoritative copies live in the store.
    value: i64,
    limit: i64,
    item_value: ItemId,
    item_limit: ItemId,
    policy: GrantPolicy,
    /// An attempt waiting for a grant: (desired delta).
    pending: Option<i64>,
    next_req: u64,
    /// Writes in flight: req_id → (is_limit_write, new cached value).
    inflight: std::collections::BTreeMap<u64, (bool, i64)>,
    stats: DemarcStatsHandle,
    /// Trace recording: §6.1 formalizes the limit-change negotiation
    /// "by introducing an event to denote a request for a limit-change
    /// operation" — LimitReq / LimitGrant / LimitDeny land in the trace
    /// so the responsiveness guarantee is checkable.
    recorder: Option<(TraceRecorder, SiteId)>,
}

impl DemarcAgent {
    /// Create an agent. `value`/`limit` must match the store's initial
    /// contents. The peer id is wired afterwards with
    /// [`DemarcAgent::set_peer`] (agents reference each other).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        role: Role,
        translator: ActorId,
        item_value: ItemId,
        item_limit: ItemId,
        value: i64,
        limit: i64,
        policy: GrantPolicy,
        stats: DemarcStatsHandle,
    ) -> Self {
        DemarcAgent {
            role,
            translator,
            peer: None,
            value,
            limit,
            item_value,
            item_limit,
            policy,
            pending: None,
            next_req: 0,
            inflight: std::collections::BTreeMap::new(),
            stats,
            recorder: None,
        }
    }

    /// Wire the peer agent.
    pub fn set_peer(&mut self, peer: ActorId) {
        self.peer = Some(peer);
    }

    /// Attach a trace recorder (events recorded at `site`).
    pub fn set_recorder(&mut self, recorder: TraceRecorder, site: SiteId) {
        self.recorder = Some((recorder, site));
    }

    fn record_custom(&self, now: SimTime, name: &str, args: Vec<Value>) {
        if let Some((rec, site)) = &self.recorder {
            rec.record(
                now,
                *site,
                EventDesc::Custom {
                    name: name.into(),
                    args,
                },
                None,
                None,
                None,
            );
        }
    }

    /// Slack this agent could give away: distance from value to limit.
    fn avail(&self) -> i64 {
        match self.role {
            Role::Lower => self.limit - self.value, // can lower Lx by this
            Role::Upper => self.value - self.limit, // can raise Ly by this
        }
    }

    /// Room left for the agent's own updates.
    fn headroom(&self) -> i64 {
        self.avail()
    }

    fn write(&mut self, ctx: &mut Ctx<'_, CmMsg>, limit_write: bool, new: i64) {
        let req_id = self.next_req;
        self.next_req += 1;
        self.inflight.insert(req_id, (limit_write, new));
        let item = if limit_write {
            self.item_limit.clone()
        } else {
            self.item_value.clone()
        };
        let me = ctx.me();
        ctx.send_local(
            self.translator,
            CmMsg::Request {
                req_id,
                reply_to: me,
                rule: None,
                trigger: None,
                kind: RequestKind::Write(item, Value::Int(new)),
            },
            hcm_core::SimDuration::from_millis(1),
        );
    }

    /// Apply an application attempt to move the value by `delta`
    /// (positive for `Lower`, i.e. X += δ consumes slack; for `Upper`,
    /// δ is how far Y decreases).
    fn try_update(&mut self, delta: i64, ctx: &mut Ctx<'_, CmMsg>) {
        self.stats.inc("demarc.attempts");
        if delta <= self.headroom() {
            let new = match self.role {
                Role::Lower => self.value + delta,
                Role::Upper => self.value - delta,
            };
            self.stats.inc("demarc.local_ok");
            self.value = new;
            self.write(ctx, false, new);
        } else if self.pending.is_none() {
            let need = delta - self.headroom();
            self.pending = Some(delta);
            self.stats.inc("demarc.limit_requests");
            self.record_custom(ctx.now(), "LimitReqSent", vec![Value::Int(need)]);
            if let Some(peer) = self.peer {
                ctx.send(
                    peer,
                    CmMsg::Custom {
                        desc: EventDesc::Custom {
                            name: "LimitReq".into(),
                            args: vec![Value::Int(need)],
                        },
                        rule: None,
                        trigger: None,
                    },
                );
            }
        } else {
            // One outstanding negotiation at a time; concurrent
            // attempts beyond the limit are denied outright.
            self.stats.inc("demarc.denied");
        }
    }

    /// Peer asks for `need` slack. Move own limit first, then answer.
    fn on_limit_request(&mut self, need: i64, ctx: &mut Ctx<'_, CmMsg>) {
        self.record_custom(
            ctx.now(),
            "LimitReqRecv",
            vec![Value::Int(need), Value::Int(self.avail())],
        );
        let g = self.policy.grant(need, self.avail());
        if g <= 0 {
            self.record_custom(ctx.now(), "LimitDenied", vec![Value::Int(need)]);
            if let Some(peer) = self.peer {
                ctx.send(
                    peer,
                    CmMsg::Custom {
                        desc: EventDesc::Custom {
                            name: "LimitDeny".into(),
                            args: vec![],
                        },
                        rule: None,
                        trigger: None,
                    },
                );
            }
            return;
        }
        // Tighten own limit *first* — the safe order (`Lx ≤ Ly` never
        // breaks): Lower gives slack by lowering Lx, Upper by raising Ly.
        let new_limit = match self.role {
            Role::Lower => self.limit - g,
            Role::Upper => self.limit + g,
        };
        self.limit = new_limit;
        self.write(ctx, true, new_limit);
        self.record_custom(ctx.now(), "LimitGranted", vec![Value::Int(g)]);
        if let Some(peer) = self.peer {
            ctx.send(
                peer,
                CmMsg::Custom {
                    desc: EventDesc::Custom {
                        name: "LimitGrant".into(),
                        args: vec![Value::Int(g)],
                    },
                    rule: None,
                    trigger: None,
                },
            );
        }
    }

    fn on_grant(&mut self, g: i64, ctx: &mut Ctx<'_, CmMsg>) {
        // Widen own limit by the granted slack, then retry the pending
        // update.
        self.stats
            .metrics
            .gauge_add(self.stats.scope, "demarc.slack_received", g);
        let new_limit = match self.role {
            Role::Lower => self.limit + g,
            Role::Upper => self.limit - g,
        };
        self.limit = new_limit;
        self.write(ctx, true, new_limit);
        if let Some(delta) = self.pending.take() {
            if delta <= self.headroom() {
                let new = match self.role {
                    Role::Lower => self.value + delta,
                    Role::Upper => self.value - delta,
                };
                self.stats.inc("demarc.granted");
                self.value = new;
                self.write(ctx, false, new);
            } else {
                self.stats.inc("demarc.denied");
            }
        }
    }

    fn on_deny(&mut self) {
        if self.pending.take().is_some() {
            self.stats.inc("demarc.denied");
        }
    }
}

impl Actor<CmMsg> for DemarcAgent {
    fn on_message(&mut self, msg: CmMsg, ctx: &mut Ctx<'_, CmMsg>) {
        match msg {
            CmMsg::Custom {
                desc: EventDesc::Custom { name, args },
                ..
            } => match (name.as_str(), args.as_slice()) {
                ("TryUpdate", [Value::Int(delta)]) => self.try_update(*delta, ctx),
                ("LimitReq", [Value::Int(need)]) => self.on_limit_request(*need, ctx),
                ("LimitGrant", [Value::Int(g)]) => self.on_grant(*g, ctx),
                ("LimitDeny", _) => self.on_deny(),
                other => panic!("demarcation agent: unexpected custom event {other:?}"),
            },
            CmMsg::Cmi(TranslatorEvent::WriteDone { req_id, ok }) => {
                let entry = self.inflight.remove(&req_id);
                if !ok {
                    // The local CHECK rejected a write the agent's
                    // cached state said was safe — a protocol bug.
                    panic!(
                        "demarcation invariant broken: store rejected write {entry:?} \
                         (role {:?}, value {}, limit {})",
                        self.role, self.value, self.limit
                    );
                }
            }
            other => panic!("demarcation agent: unexpected message {other:?}"),
        }
    }
}

/// A built demarcation scenario: the toolkit scenario plus the agent
/// actors and shared stats.
pub struct DemarcScenario {
    /// The underlying toolkit scenario.
    pub scenario: Scenario,
    /// Agent for X (site A).
    pub agent_x: ActorId,
    /// Agent for Y (site B).
    pub agent_y: ActorId,
    /// X-side counters.
    pub stats_x: DemarcStatsHandle,
    /// Y-side counters.
    pub stats_y: DemarcStatsHandle,
}

/// Configuration for [`build`].
#[derive(Debug, Clone, Copy)]
pub struct DemarcConfig {
    /// RNG seed.
    pub seed: u64,
    /// Initial X.
    pub x0: i64,
    /// Initial Y.
    pub y0: i64,
    /// Initial shared demarcation line `Lx = Ly`.
    pub line: i64,
    /// Slack-grant policy (both sides).
    pub policy: GrantPolicy,
}

const RID_X: &str = r#"
ris = relational
service = 50ms
[interface]
WR(x, b) -> W(x, b) within 1s
WR(xlim, b) -> W(xlim, b) within 1s
RR(x) when x = b -> R(x, b) within 1s
[command write x]
update demarc set value = $value where name = 'X'
[command write xlim]
update demarc set lim = $value where name = 'X'
[command read x]
select value from demarc where name = 'X'
[command read xlim]
select lim from demarc where name = 'X'
[map x]
table = demarc
key = name
col = value
[map xlim]
table = demarc
key = name
col = lim
"#;

const RID_Y: &str = r#"
ris = relational
service = 50ms
[interface]
WR(y, b) -> W(y, b) within 1s
WR(ylim, b) -> W(ylim, b) within 1s
RR(y) when y = b -> R(y, b) within 1s
[command write y]
update demarc set value = $value where name = 'Y'
[command write ylim]
update demarc set lim = $value where name = 'Y'
[command read y]
select value from demarc where name = 'Y'
[command read ylim]
select lim from demarc where name = 'Y'
[map y]
table = demarc
key = name
col = value
[map ylim]
table = demarc
key = name
col = lim
"#;

/// Build the demarcation scenario: two relational stores with CHECK
/// constraints (`X ≤ Lx`, `Y ≥ Ly`), a translator each, and the two
/// protocol agents wired as their shells' peers.
pub fn build(cfg: DemarcConfig) -> DemarcScenario {
    build_with_dispatch(cfg, DispatchMode::default())
}

/// [`build`], but pinning the shells' rule-dispatch mode — the
/// perf-equivalence suite runs E3 cells under both modes and demands
/// byte-identical observability.
pub fn build_with_dispatch(cfg: DemarcConfig, dispatch: DispatchMode) -> DemarcScenario {
    build_with(cfg, dispatch, None)
}

/// [`build_with_dispatch`] with an explicit shard count for the
/// sharded executor (`None` defers to `HCM_SIM_THREADS`). The two
/// agents ride their own site's shard; peer traffic uses the network,
/// so demarcation genuinely parallelizes across two shards.
pub fn build_with(
    cfg: DemarcConfig,
    dispatch: DispatchMode,
    shards: Option<u32>,
) -> DemarcScenario {
    use hcm_ris::relational::{Check, CheckOperand, Database, SqlOp};

    let mut db_x = Database::new();
    db_x.create_table("demarc", &["name", "value", "lim"])
        .unwrap();
    db_x.execute(&format!(
        "INSERT INTO demarc VALUES ('X', {}, {})",
        cfg.x0, cfg.line
    ))
    .unwrap();
    db_x.add_check(Check {
        table: "demarc".into(),
        left: CheckOperand::Col("value".into()),
        op: SqlOp::Le,
        right: CheckOperand::Col("lim".into()),
    })
    .unwrap();

    let mut db_y = Database::new();
    db_y.create_table("demarc", &["name", "value", "lim"])
        .unwrap();
    db_y.execute(&format!(
        "INSERT INTO demarc VALUES ('Y', {}, {})",
        cfg.y0, cfg.line
    ))
    .unwrap();
    db_y.add_check(Check {
        table: "demarc".into(),
        left: CheckOperand::Col("value".into()),
        op: SqlOp::Ge,
        right: CheckOperand::Col("lim".into()),
    })
    .unwrap();

    let mut b = ScenarioBuilder::new(cfg.seed)
        .site("A", RawStore::Relational(db_x), RID_X)
        .unwrap()
        .site("B", RawStore::Relational(db_y), RID_Y)
        .unwrap()
        .strategy("[locate]\nx = A\nxlim = A\ny = B\nylim = B\n")
        .dispatch_mode(dispatch);
    if let Some(k) = shards {
        b = b.shards(k);
    }
    let mut scenario = b.build().unwrap();

    let metrics = scenario.sim.obs().metrics;
    let stats_x = DemarcStatsHandle::new(metrics.clone(), scenario.site("A").site);
    let stats_y = DemarcStatsHandle::new(metrics, scenario.site("B").site);
    let tx = scenario.site("A").translator;
    let ty = scenario.site("B").translator;
    // Actor ids are sequential: the next two additions get these ids,
    // so each agent can be constructed already knowing its peer.
    let expected_x = ActorId(scenario.sim.actor_count() as u32);
    let expected_y = ActorId(scenario.sim.actor_count() as u32 + 1);
    let mut ax = DemarcAgent::new(
        Role::Lower,
        tx,
        ItemId::plain("x"),
        ItemId::plain("xlim"),
        cfg.x0,
        cfg.line,
        cfg.policy,
        stats_x.clone(),
    );
    ax.set_peer(expected_y);
    ax.set_recorder(
        scenario.recorder.scoped(expected_x.0),
        scenario.site("A").site,
    );
    let mut ay = DemarcAgent::new(
        Role::Upper,
        ty,
        ItemId::plain("y"),
        ItemId::plain("ylim"),
        cfg.y0,
        cfg.line,
        cfg.policy,
        stats_y.clone(),
    );
    ay.set_peer(expected_x);
    ay.set_recorder(
        scenario.recorder.scoped(expected_y.0),
        scenario.site("B").site,
    );
    let agent_x = scenario.add_actor_for("A", Box::new(ax));
    let agent_y = scenario.add_actor_for("B", Box::new(ay));
    assert_eq!((agent_x, agent_y), (expected_x, expected_y));
    DemarcScenario {
        scenario,
        agent_x,
        agent_y,
        stats_x,
        stats_y,
    }
}

impl DemarcScenario {
    /// Inject an application attempt at absolute time `t`: the X agent
    /// tries `X += delta`, the Y agent tries `Y -= delta`.
    pub fn try_update(&mut self, t: SimTime, lower_side: bool, delta: i64) {
        let target = if lower_side {
            self.agent_x
        } else {
            self.agent_y
        };
        self.scenario.sim.inject_at(
            t,
            target,
            CmMsg::Custom {
                desc: EventDesc::Custom {
                    name: "TryUpdate".into(),
                    args: vec![Value::Int(delta)],
                },
                rule: None,
                trigger: None,
            },
        );
    }

    /// Run to quiescence.
    pub fn run(&mut self) -> RunOutcome {
        self.scenario.run_to_quiescence()
    }

    /// Check that `X ≤ Y` held at every instant of the recorded trace —
    /// the protocol's headline guarantee.
    #[must_use]
    pub fn invariant_held(&self) -> bool {
        let trace = self.scenario.trace();
        let x = ItemId::plain("x");
        let y = ItemId::plain("y");
        trace.salient_times().iter().all(|&t| {
            let xv = trace.value_at(&x, t).and_then(|v| v.as_int());
            let yv = trace.value_at(&y, t).and_then(|v| v.as_int());
            match (xv, yv) {
                (Some(xv), Some(yv)) => xv <= yv,
                _ => true,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: GrantPolicy) -> DemarcConfig {
        DemarcConfig {
            seed: 3,
            x0: 0,
            y0: 100,
            line: 50,
            policy,
        }
    }

    #[test]
    fn local_updates_within_limits_need_no_messages() {
        let mut d = build(cfg(GrantPolicy::Requested));
        d.try_update(SimTime::from_secs(1), true, 30); // X: 0 → 30 ≤ 50
        d.try_update(SimTime::from_secs(2), false, 40); // Y: 100 → 60 ≥ 50
        d.run();
        assert!(d.invariant_held());
        let sx = d.stats_x.borrow();
        let sy = d.stats_y.borrow();
        assert_eq!(sx.local_ok, 1);
        assert_eq!(sy.local_ok, 1);
        assert_eq!(sx.limit_requests + sy.limit_requests, 0);
    }

    #[test]
    fn crossing_the_line_negotiates_slack() {
        let mut d = build(cfg(GrantPolicy::Requested));
        // X wants 80 > line 50; Y has slack 100 − 50 = 50 ≥ need 30.
        d.try_update(SimTime::from_secs(1), true, 80);
        d.run();
        assert!(d.invariant_held());
        let sx = d.stats_x.borrow();
        assert_eq!(sx.granted, 1);
        assert_eq!(sx.denied, 0);
        assert_eq!(sx.slack_received, 30);
        // Final value reached.
        let trace = d.scenario.trace();
        let x = ItemId::plain("x");
        assert_eq!(trace.value_at(&x, trace.end_time()), Some(Value::Int(80)));
    }

    #[test]
    fn insufficient_slack_is_denied_and_invariant_survives() {
        let mut d = build(cfg(GrantPolicy::Requested));
        // X wants 200 — beyond even Y's full slack (Y=100).
        d.try_update(SimTime::from_secs(1), true, 200);
        d.run();
        assert!(d.invariant_held());
        let sx = d.stats_x.borrow();
        assert_eq!(sx.granted, 0);
        assert_eq!(sx.denied, 1);
    }

    #[test]
    fn policy_all_reduces_repeat_requests() {
        // Three successive over-the-line increases of 10 each, starting
        // at the line.
        let run_with = |policy| {
            let mut d = build(DemarcConfig {
                seed: 1,
                x0: 50,
                y0: 100,
                line: 50,
                policy,
            });
            for i in 0..3 {
                d.try_update(SimTime::from_secs(1 + i * 10), true, 10);
            }
            d.run();
            assert!(d.invariant_held());
            let s = d.stats_x.borrow();
            (s.limit_requests, s.granted + s.local_ok, s.denied)
        };
        let (req_exact, ok_exact, _) = run_with(GrantPolicy::Requested);
        let (req_all, ok_all, _) = run_with(GrantPolicy::All);
        assert_eq!(ok_exact, 3);
        assert_eq!(ok_all, 3);
        assert!(
            req_all < req_exact,
            "All policy should need fewer limit requests ({req_all} vs {req_exact})"
        );
    }

    #[test]
    fn generous_grants_starve_the_granter() {
        // Y grants everything, then wants to decrease below its new
        // tight limit: denied by X (no slack at X: x0 == its line).
        let mut d = build(DemarcConfig {
            seed: 2,
            x0: 50,
            y0: 100,
            line: 50,
            policy: GrantPolicy::All,
        });
        d.try_update(SimTime::from_secs(1), true, 10); // forces Y to grant all 50
        d.try_update(SimTime::from_secs(10), true, 40); // X uses the rest of its slack
        d.try_update(SimTime::from_secs(20), false, 20); // Y has no slack left anywhere
        d.run();
        assert!(d.invariant_held());
        let sy = d.stats_y.borrow();
        assert_eq!(sy.denied, 1, "Y gave away its slack and is now stuck");
    }

    #[test]
    fn grant_policy_math() {
        assert_eq!(GrantPolicy::Requested.grant(10, 50), 10);
        assert_eq!(GrantPolicy::Requested.grant(60, 50), 0);
        assert_eq!(GrantPolicy::All.grant(10, 50), 50);
        assert_eq!(GrantPolicy::HalfAvailable.grant(10, 50), 25);
        assert_eq!(GrantPolicy::HalfAvailable.grant(30, 50), 30);
        assert_eq!(GrantPolicy::HalfAvailable.grant(60, 50), 0);
        assert_eq!(GrantPolicy::All.grant(0, 50), 0);
        assert_eq!(GrantPolicy::All.grant(10, 0), 0);
    }
}
