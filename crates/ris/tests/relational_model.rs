//! Model-based testing of the relational engine: random command
//! sequences are executed both by the engine (through its *textual*
//! interface, like a real client) and by a trivial in-memory model;
//! query results must agree, and trigger firings must mirror the
//! model's mutations.
//!
//! Formerly proptest-based; now driven by a local SplitMix64 generator
//! so the suite needs no external crates and stays deterministic.

use hcm_core::Value;
use hcm_ris::relational::{Database, QueryResult, TriggerOp};
use std::collections::BTreeMap;

/// Minimal deterministic generator (SplitMix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo) as u64 + 1;
        lo + (self.next() % span) as i64
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert { id: u8, v: i64 },
    Update { id: u8, v: i64 },
    Delete { id: u8 },
    SelectOne { id: u8 },
    Count,
    Sum,
}

fn random_op(g: &mut Gen) -> Op {
    match g.next() % 6 {
        0 => Op::Insert {
            id: g.int_in(0, 11) as u8,
            v: g.int_in(-100, 99),
        },
        1 => Op::Update {
            id: g.int_in(0, 11) as u8,
            v: g.int_in(-100, 99),
        },
        2 => Op::Delete {
            id: g.int_in(0, 11) as u8,
        },
        3 => Op::SelectOne {
            id: g.int_in(0, 11) as u8,
        },
        4 => Op::Count,
        _ => Op::Sum,
    }
}

#[test]
fn engine_agrees_with_model() {
    let mut g = Gen::new(0x4B15_0001);
    for case in 0..128 {
        let ops: Vec<Op> = (0..g.int_in(1, 59)).map(|_| random_op(&mut g)).collect();

        let mut db = Database::new();
        db.create_table("t", &["id", "v"]).unwrap();
        let trig = db
            .add_trigger(
                "t",
                &[TriggerOp::Insert, TriggerOp::Update, TriggerOp::Delete],
            )
            .unwrap();
        let mut model: BTreeMap<u8, i64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { id, v } => {
                    // The engine has no primary keys; model duplicate
                    // inserts as update-or-insert like the workloads do.
                    if model.contains_key(&id) {
                        db.execute(&format!("UPDATE t SET v = {v} WHERE id = {id}"))
                            .unwrap();
                    } else {
                        db.execute(&format!("INSERT INTO t VALUES ({id}, {v})"))
                            .unwrap();
                    }
                    let expect_fire = model.insert(id, v) != Some(v) || !model.contains_key(&id);
                    let firings = db.take_firings();
                    // An update to the same value fires no trigger? It
                    // does (the row was rewritten); only the *change
                    // mapping* filters. Here we just check the id.
                    assert!(firings.iter().all(|f| f.trigger_id == trig), "case {case}");
                    let _ = expect_fire;
                }
                Op::Update { id, v } => {
                    let r = db
                        .execute(&format!("UPDATE t SET v = {v} WHERE id = {id}"))
                        .unwrap();
                    let expected = usize::from(model.contains_key(&id));
                    assert_eq!(r, QueryResult::Affected(expected), "case {case}");
                    if model.insert(id, v).is_some() {
                        assert_eq!(db.take_firings().len(), 1, "case {case}");
                    } else {
                        model.remove(&id);
                        assert!(db.take_firings().is_empty(), "case {case}");
                    }
                }
                Op::Delete { id } => {
                    let r = db
                        .execute(&format!("DELETE FROM t WHERE id = {id}"))
                        .unwrap();
                    let expected = usize::from(model.remove(&id).is_some());
                    assert_eq!(r, QueryResult::Affected(expected), "case {case}");
                    assert_eq!(db.take_firings().len(), expected, "case {case}");
                }
                Op::SelectOne { id } => {
                    let r = db
                        .execute(&format!("SELECT v FROM t WHERE id = {id}"))
                        .unwrap();
                    match (r.scalar(), model.get(&id)) {
                        (Some(got), Some(want)) => assert_eq!(got, &Value::Int(*want)),
                        (None, None) => {}
                        (got, want) => {
                            panic!("case {case}: select mismatch for {id}: engine {got:?}, model {want:?}")
                        }
                    }
                }
                Op::Count => {
                    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
                    assert_eq!(
                        r.scalar(),
                        Some(&Value::Int(model.len() as i64)),
                        "case {case}"
                    );
                }
                Op::Sum => {
                    let r = db.execute("SELECT SUM(v) FROM t").unwrap();
                    let want = if model.is_empty() {
                        Value::Null
                    } else {
                        Value::Int(model.values().sum())
                    };
                    assert_eq!(r.scalar(), Some(&want), "case {case}");
                }
            }
        }

        // Final full-table agreement via ORDER BY.
        let r = db.execute("SELECT id, v FROM t ORDER BY id").unwrap();
        match r {
            QueryResult::Rows { rows, .. } => {
                let got: Vec<(i64, i64)> = rows
                    .iter()
                    .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
                    .collect();
                let want: Vec<(i64, i64)> =
                    model.iter().map(|(k, v)| (i64::from(*k), *v)).collect();
                assert_eq!(got, want, "case {case}");
            }
            other => panic!("case {case}: unexpected {other:?}"),
        }
    }
}

/// CHECK constraints: the engine accepts exactly the updates the
/// predicate admits, and rejected commands change nothing.
#[test]
fn check_constraints_are_exact() {
    use hcm_ris::relational::{Check, CheckOperand, SqlOp};
    let mut g = Gen::new(0x4B15_0002);
    for case in 0..128 {
        let updates: Vec<i64> = (0..g.int_in(1, 29)).map(|_| g.int_in(-50, 149)).collect();

        let mut db = Database::new();
        db.create_table("t", &["id", "v"]).unwrap();
        db.execute("INSERT INTO t VALUES (1, 0)").unwrap();
        db.add_check(Check {
            table: "t".into(),
            left: CheckOperand::Col("v".into()),
            op: SqlOp::Le,
            right: CheckOperand::Lit(Value::Int(100)),
        })
        .unwrap();
        let mut current = 0i64;
        for v in updates {
            let r = db.execute(&format!("UPDATE t SET v = {v} WHERE id = 1"));
            if v <= 100 {
                assert!(r.is_ok(), "case {case}: update to {v} rejected");
                current = v;
            } else {
                assert!(r.is_err(), "case {case}: update to {v} accepted");
            }
            let got = db.execute("SELECT v FROM t WHERE id = 1").unwrap();
            assert_eq!(got.scalar(), Some(&Value::Int(current)), "case {case}");
        }
    }
}
