//! Model-based testing of the relational engine: random command
//! sequences are executed both by the engine (through its *textual*
//! interface, like a real client) and by a trivial in-memory model;
//! query results must agree, and trigger firings must mirror the
//! model's mutations.

use hcm_core::Value;
use hcm_ris::relational::{Database, QueryResult, TriggerOp};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: u8, v: i64 },
    Update { id: u8, v: i64 },
    Delete { id: u8 },
    SelectOne { id: u8 },
    Count,
    Sum,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, -100i64..100).prop_map(|(id, v)| Op::Insert { id, v }),
        (0u8..12, -100i64..100).prop_map(|(id, v)| Op::Update { id, v }),
        (0u8..12).prop_map(|id| Op::Delete { id }),
        (0u8..12).prop_map(|id| Op::SelectOne { id }),
        Just(Op::Count),
        Just(Op::Sum),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_agrees_with_model(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut db = Database::new();
        db.create_table("t", &["id", "v"]).unwrap();
        let trig = db.add_trigger("t", &[TriggerOp::Insert, TriggerOp::Update, TriggerOp::Delete]).unwrap();
        let mut model: BTreeMap<u8, i64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { id, v } => {
                    // The engine has no primary keys; model duplicate
                    // inserts as update-or-insert like the workloads do.
                    if model.contains_key(&id) {
                        db.execute(&format!("UPDATE t SET v = {v} WHERE id = {id}")).unwrap();
                    } else {
                        db.execute(&format!("INSERT INTO t VALUES ({id}, {v})")).unwrap();
                    }
                    let expect_fire = model.insert(id, v) != Some(v) || !model.contains_key(&id);
                    let firings = db.take_firings();
                    // An update to the same value fires no trigger? It
                    // does (the row was rewritten); only the *change
                    // mapping* filters. Here we just check the id.
                    prop_assert!(firings.iter().all(|f| f.trigger_id == trig));
                    let _ = expect_fire;
                }
                Op::Update { id, v } => {
                    let r = db.execute(&format!("UPDATE t SET v = {v} WHERE id = {id}")).unwrap();
                    let expected = usize::from(model.contains_key(&id));
                    prop_assert_eq!(r, QueryResult::Affected(expected));
                    if model.insert(id, v).is_some() {
                        prop_assert_eq!(db.take_firings().len(), 1);
                    } else {
                        model.remove(&id);
                        prop_assert!(db.take_firings().is_empty());
                    }
                }
                Op::Delete { id } => {
                    let r = db.execute(&format!("DELETE FROM t WHERE id = {id}")).unwrap();
                    let expected = usize::from(model.remove(&id).is_some());
                    prop_assert_eq!(r, QueryResult::Affected(expected));
                    prop_assert_eq!(db.take_firings().len(), expected);
                }
                Op::SelectOne { id } => {
                    let r = db.execute(&format!("SELECT v FROM t WHERE id = {id}")).unwrap();
                    match (r.scalar(), model.get(&id)) {
                        (Some(got), Some(want)) => prop_assert_eq!(got, &Value::Int(*want)),
                        (None, None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "select mismatch for {id}: engine {got:?}, model {want:?}"
                            )))
                        }
                    }
                }
                Op::Count => {
                    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
                    prop_assert_eq!(r.scalar(), Some(&Value::Int(model.len() as i64)));
                }
                Op::Sum => {
                    let r = db.execute("SELECT SUM(v) FROM t").unwrap();
                    let want = if model.is_empty() {
                        Value::Null
                    } else {
                        Value::Int(model.values().sum())
                    };
                    prop_assert_eq!(r.scalar(), Some(&want));
                }
            }
        }

        // Final full-table agreement via ORDER BY.
        let r = db.execute("SELECT id, v FROM t ORDER BY id").unwrap();
        match r {
            QueryResult::Rows { rows, .. } => {
                let got: Vec<(i64, i64)> = rows
                    .iter()
                    .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
                    .collect();
                let want: Vec<(i64, i64)> =
                    model.iter().map(|(k, v)| (i64::from(*k), *v)).collect();
                prop_assert_eq!(got, want);
            }
            other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
        }
    }

    /// CHECK constraints: the engine accepts exactly the updates the
    /// predicate admits, and rejected commands change nothing.
    #[test]
    fn check_constraints_are_exact(updates in prop::collection::vec(-50i64..150, 1..30)) {
        use hcm_ris::relational::{Check, CheckOperand, SqlOp};
        let mut db = Database::new();
        db.create_table("t", &["id", "v"]).unwrap();
        db.execute("INSERT INTO t VALUES (1, 0)").unwrap();
        db.add_check(Check {
            table: "t".into(),
            left: CheckOperand::Col("v".into()),
            op: SqlOp::Le,
            right: CheckOperand::Lit(Value::Int(100)),
        })
        .unwrap();
        let mut current = 0i64;
        for v in updates {
            let r = db.execute(&format!("UPDATE t SET v = {v} WHERE id = 1"));
            if v <= 100 {
                prop_assert!(r.is_ok());
                current = v;
            } else {
                prop_assert!(r.is_err());
            }
            let got = db.execute("SELECT v FROM t WHERE id = 1").unwrap();
            prop_assert_eq!(got.scalar(), Some(&Value::Int(current)));
        }
    }
}
